"""Tests for the process helpers: Process, all_of, join."""

import pytest

from repro.sim import Delay, Engine
from repro.sim.process import Process, all_of, join


class TestProcessHandle:
    def test_tracks_completion_and_result(self):
        eng = Engine()

        def work():
            yield Delay(50)
            return "done"

        p = Process(eng, work(), "worker")
        assert not p.finished
        eng.run()
        assert p.finished and p.result == "done"
        assert p.label == "worker"


class TestAllOf:
    def test_resolves_with_values_in_order(self):
        eng = Engine()
        futs = [eng.future(f"f{i}") for i in range(3)]
        combined = all_of(eng, futs)
        eng.call_at(30, futs[2].resolve, "c")
        eng.call_at(10, futs[0].resolve, "a")
        eng.call_at(20, futs[1].resolve, "b")
        eng.run()
        assert combined.resolved
        assert combined.value == ["a", "b", "c"]
        assert eng.now == 30

    def test_empty_input_resolves_immediately(self):
        eng = Engine()
        combined = all_of(eng, [])
        assert combined.resolved and combined.value == []

    def test_already_resolved_inputs(self):
        eng = Engine()
        f1, f2 = eng.future(), eng.future()
        f1.resolve(1)
        f2.resolve(2)
        combined = all_of(eng, [f1, f2])
        eng.run()
        assert combined.value == [1, 2]

    def test_waits_for_the_last(self):
        eng = Engine()
        futs = [eng.future() for _ in range(4)]
        combined = all_of(eng, futs)
        for i, f in enumerate(futs[:-1]):
            eng.call_at(10 * (i + 1), f.resolve, i)
        eng.run()
        assert not combined.resolved
        futs[-1].resolve(99)
        eng.run()
        assert combined.resolved


class TestJoin:
    def test_collects_values(self):
        eng = Engine()
        futs = [eng.future() for _ in range(3)]

        def waiter():
            values = yield from join(futs)
            return values

        done = eng.spawn(waiter())
        for i, f in enumerate(futs):
            eng.call_at(5 * (i + 1), f.resolve, i * 10)
        eng.run()
        assert done.value == [0, 10, 20]
        assert eng.now == 15

    def test_out_of_order_resolution(self):
        eng = Engine()
        futs = [eng.future() for _ in range(2)]

        def waiter():
            return (yield from join(futs))

        done = eng.spawn(waiter())
        eng.call_at(20, futs[0].resolve, "slow")
        eng.call_at(5, futs[1].resolve, "fast")
        eng.run()
        assert done.value == ["slow", "fast"]
        assert eng.now == 20

    def test_empty(self):
        eng = Engine()

        def waiter():
            return (yield from join([]))

        done = eng.spawn(waiter())
        eng.run()
        assert done.value == []
