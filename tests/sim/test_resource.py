"""Unit tests for FIFO resources, ported resources, and semaphores."""

import pytest

from repro.sim import (
    CountingSemaphore,
    Delay,
    Engine,
    PortedResource,
    Resource,
    SimulationError,
)


def test_single_job_completes_after_duration():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    done = cpu.serve(100)
    eng.run()
    assert done.resolved
    assert eng.now == 100
    assert cpu.busy_ns == 100


def test_jobs_queue_fifo():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    finish_times = []

    def submit():
        for dur in (100, 50, 25):
            fut = cpu.serve(dur)
            fut.add_callback(lambda _v: finish_times.append(eng.now))
        yield Delay(0)

    eng.spawn(submit())
    eng.run()
    assert finish_times == [100, 150, 175]


def test_job_submitted_later_starts_when_free():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    results = []
    cpu.serve(100).add_callback(lambda _v: results.append(eng.now))
    # Submitted at t=30 while the first job runs: starts at 100.
    eng.call_at(30, lambda: cpu.serve(10).add_callback(lambda _v: results.append(eng.now)))
    eng.run()
    assert results == [100, 110]


def test_idle_gap_not_counted_busy():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    cpu.serve(10)
    eng.call_at(100, lambda: cpu.serve(10))
    eng.run()
    assert cpu.busy_ns == 20
    assert cpu.utilization(eng.now) == pytest.approx(20 / 110)


def test_occupy_charges_without_future():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    cpu.occupy(40)
    done = cpu.serve(10)
    eng.run()
    assert done.resolved
    assert eng.now == 50


def test_negative_duration_rejected():
    eng = Engine()
    cpu = Resource(eng, "cpu")
    with pytest.raises(SimulationError):
        cpu.serve(-1)
    with pytest.raises(SimulationError):
        cpu.occupy(-5)


def test_ported_single_job_serves_at_release():
    eng = Engine()
    ports = PortedResource(eng, 2)
    start, finish, done = ports.serve_at(0, 30, 10)
    assert (start, finish) == (30, 40)
    eng.run()
    assert done.resolved
    assert eng.now == 40
    assert ports.busy_ns == [10, 0]
    assert ports.wait_ns == [0, 0]


def test_ported_jobs_queue_fifo_per_port():
    # Two jobs racing for port 0: the second starts when the first
    # finishes, and its wait is exactly the overlap.
    eng = Engine()
    ports = PortedResource(eng, 2)
    s0, f0, _ = ports.serve_at(0, 10, 100)
    s1, f1, _ = ports.serve_at(0, 40, 50)
    assert (s0, f0) == (10, 110)
    assert (s1, f1) == (110, 160)
    assert ports.wait_ns[0] == 70
    assert ports.jobs[0] == 2


def test_ported_ports_are_independent():
    eng = Engine()
    ports = PortedResource(eng, 2)
    ports.serve_at(0, 0, 100)
    s1, _f1, _ = ports.serve_at(1, 0, 100)
    assert s1 == 0                        # no cross-port interference
    assert ports.wait_ns == [0, 0]


def test_ported_submission_order_wins_over_release_order():
    # FIFO arbitration is engine-event (submission) order: a job
    # submitted second never overtakes, even with an earlier release.
    eng = Engine()
    ports = PortedResource(eng, 1)
    ports.serve_at(0, 50, 10)
    s1, _f1, _ = ports.serve_at(0, 0, 10)
    assert s1 == 60
    assert ports.wait_ns[0] == 60


def test_ported_free_at_tracks_clock_and_backlog():
    eng = Engine()
    ports = PortedResource(eng, 1)
    assert ports.free_at(0) == 0
    ports.serve_at(0, 0, 25)
    assert ports.free_at(0) == 25
    eng.run()
    eng.call_at(100, lambda: None)
    eng.run()
    assert ports.free_at(0) == 100        # never in the past


def test_ported_invalid_submissions_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        PortedResource(eng, 0)
    ports = PortedResource(eng, 1)
    with pytest.raises(SimulationError):
        ports.serve_at(0, 0, -1)
    eng.call_at(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        ports.serve_at(0, 5, 1)           # release in the past


def test_semaphore_wait_satisfied_by_later_posts():
    eng = Engine()
    sema = CountingSemaphore(eng, "arrivals")
    fut = sema.wait_for(3)
    for t in (10, 20, 30):
        eng.call_at(t, sema.post)
    eng.run()
    assert fut.resolved
    assert eng.now == 30
    assert sema.count == 0


def test_semaphore_wait_already_satisfied():
    eng = Engine()
    sema = CountingSemaphore(eng)
    sema.post(5)
    fut = sema.wait_for(3)
    assert fut.resolved
    assert sema.count == 2  # threshold consumed, surplus kept


def test_semaphore_wait_for_zero_resolves_immediately():
    eng = Engine()
    sema = CountingSemaphore(eng)
    fut = sema.wait_for(0)
    assert fut.resolved


def test_semaphore_reusable_across_phases():
    eng = Engine()
    sema = CountingSemaphore(eng)
    sema.post(2)
    f1 = sema.wait_for(2)
    assert f1.resolved
    f2 = sema.wait_for(1)
    assert not f2.resolved
    sema.post()
    assert f2.resolved


def test_semaphore_second_waiter_rejected():
    eng = Engine()
    sema = CountingSemaphore(eng)
    sema.wait_for(1)
    with pytest.raises(SimulationError):
        sema.wait_for(1)


def test_semaphore_negative_post_rejected():
    eng = Engine()
    sema = CountingSemaphore(eng)
    with pytest.raises(SimulationError):
        sema.post(-1)
