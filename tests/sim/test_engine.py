"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Delay, Engine, Future, SimulationError


def test_empty_run_leaves_time_at_zero():
    eng = Engine()
    eng.run()
    assert eng.now == 0


def test_call_at_orders_by_time():
    eng = Engine()
    log = []
    eng.call_at(50, lambda: log.append("b"))
    eng.call_at(10, lambda: log.append("a"))
    eng.call_at(90, lambda: log.append("c"))
    eng.run()
    assert log == ["a", "b", "c"]
    assert eng.now == 90


def test_ties_fire_in_schedule_order():
    eng = Engine()
    log = []
    for i in range(5):
        eng.call_at(42, log.append, i)
    eng.run()
    assert log == [0, 1, 2, 3, 4]


def test_call_after_is_relative():
    eng = Engine()
    seen = []
    eng.call_at(100, lambda: eng.call_after(5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [105]


def test_scheduling_in_the_past_raises():
    eng = Engine()
    eng.call_at(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(5, lambda: None)


def test_process_delay_advances_time():
    eng = Engine()
    times = []

    def proc():
        yield Delay(100)
        times.append(eng.now)
        yield 50  # bare int works too
        times.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert times == [100, 150]


def test_process_return_value_resolves_done_future():
    eng = Engine()

    def proc():
        yield Delay(7)
        return "payload"

    done = eng.spawn(proc())
    eng.run()
    assert done.resolved and done.value == "payload"


def test_zero_delay_does_not_schedule_event():
    eng = Engine()

    def proc():
        for _ in range(10):
            yield Delay(0)
        return eng.now

    done = eng.spawn(proc())
    eng.run()
    assert done.value == 0


def test_future_wait_receives_resolved_value():
    eng = Engine()
    fut = eng.future("data")
    got = []

    def waiter():
        value = yield fut
        got.append((eng.now, value))

    eng.spawn(waiter())
    eng.call_at(30, fut.resolve, "hello")
    eng.run()
    assert got == [(30, "hello")]


def test_wait_on_already_resolved_future_is_immediate():
    eng = Engine()
    fut = eng.future()
    fut.resolve(99)

    def waiter():
        value = yield Delay(10)
        value = yield fut
        return (eng.now, value)

    done = eng.spawn(waiter())
    eng.run()
    assert done.value == (10, 99)


def test_future_resolve_twice_raises():
    eng = Engine()
    fut = eng.future()
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)


def test_future_value_before_resolution_raises():
    eng = Engine()
    fut = eng.future("pending")
    with pytest.raises(SimulationError):
        _ = fut.value


def test_multiple_waiters_all_wake():
    eng = Engine()
    fut = eng.future()
    woken = []

    def waiter(i):
        yield fut
        woken.append(i)

    for i in range(4):
        eng.spawn(waiter(i))
    eng.call_at(5, fut.resolve, None)
    eng.run()
    assert sorted(woken) == [0, 1, 2, 3]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1)


def test_bad_yield_type_raises():
    eng = Engine()

    def proc():
        yield "nonsense"

    eng.spawn(proc())
    with pytest.raises(SimulationError, match="unsupported command"):
        eng.run()


def test_run_until_bound():
    eng = Engine()
    log = []
    eng.call_at(10, lambda: log.append(10))
    eng.call_at(20, lambda: log.append(20))
    eng.run(until=15)
    assert log == [10]
    assert eng.now == 15  # time advances to the bound
    eng.run()
    assert log == [10, 20]


def test_max_events_guard():
    eng = Engine()

    def ping():
        while True:
            yield Delay(1)

    eng.spawn(ping())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=100)


def test_run_until_quiescent_reports_deadlock():
    eng = Engine()
    fut = eng.future("never")

    def stuck():
        yield fut

    done = eng.spawn(stuck(), label="stuck-node")
    with pytest.raises(SimulationError, match="stuck-node"):
        eng.run_until_quiescent([done])


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        log = []

        def worker(i):
            yield Delay(i * 3 % 7)
            log.append((eng.now, i))
            yield Delay(5)
            log.append((eng.now, i))

        for i in range(10):
            eng.spawn(worker(i))
        eng.run()
        return log

    assert build() == build()


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_max_events_exact_count(scheduler):
    """Regression: the guard fires *before* event N+1, not after it.

    The seed engine checked the limit after dispatching, so ``max_events=N``
    silently let N+1 events run.  Pin the exact count: with 10 pending
    events and ``max_events=5``, exactly 5 dispatch, and the remaining 5
    are still intact afterwards.
    """
    eng = Engine(scheduler=scheduler)
    log = []
    for i in range(10):
        eng.call_at(i * 10, log.append, i)
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=5)
    assert log == [0, 1, 2, 3, 4]
    assert eng.events_dispatched == 5
    # No event was lost at the limit: a fresh run drains the rest in order.
    eng.run()
    assert log == list(range(10))
    assert eng.events_dispatched == 10


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_max_events_exact_count_same_instant(scheduler):
    """The exact-count guarantee also holds for same-instant ties
    (calendar scheduler: events sitting in the FIFO now-queue)."""
    eng = Engine(scheduler=scheduler)
    log = []

    def burst():
        for i in range(10):
            eng.call_at(eng.now, log.append, i)
        yield Delay(0)

    eng.spawn(burst())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=4)
    # Event 1 is the spawn step; events 2..4 are the first three appends.
    assert log == [0, 1, 2]
    eng.run()
    assert log == list(range(10))


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_straggler_behind_calendar_cursor(scheduler):
    """An event scheduled into an already-passed bucket region still fires.

    ``run(until=...)`` can leave the calendar cursor inside a future bucket;
    an event then scheduled at an earlier time (but >= now) must not strand
    in a bucket the cursor has already passed.
    """
    bucket = 1 << 14  # _BUCKET_SHIFT
    eng = Engine(scheduler=scheduler)
    log = []
    eng.call_at(3 * bucket + 5, log.append, "far")
    eng.run(until=2 * bucket)  # pulls the far bucket into the cursor
    assert eng.now == 2 * bucket
    eng.call_at(2 * bucket + 1, log.append, "straggler")
    eng.run()
    assert log == ["straggler", "far"]
