"""Smoke tests: every example script must run clean end to end.

Run as subprocesses (each example is a user-facing entry point; importing
would hide argv/module-level behaviour).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(name, *args, timeout=240):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_discovered():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 6


def test_quickstart():
    r = run_example("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "miss reduction: 100.0%" in r.stdout


def test_custom_protocol_bypass():
    r = run_example("custom_protocol_bypass.py")
    assert r.returncode == 0, r.stderr
    assert "default 8.0" in r.stdout


def test_protocol_trace():
    r = run_example("protocol_trace.py")
    assert r.returncode == 0, r.stderr
    assert "8 messages" in r.stdout
    assert "1 messages" in r.stdout


def test_textual_hpf():
    r = run_example("textual_hpf.py")
    assert r.returncode == 0, r.stderr
    assert "miss reduction" in r.stdout


def test_app_suite_cli():
    r = run_example("app_suite.py", "grav", "--nodes", "4",
                    "--param", "n=17", "--param", "iters=1")
    assert r.returncode == 0, r.stderr
    assert "simulated time" in r.stdout


def test_stencil_optimization():
    r = run_example("stencil_optimization.py")
    assert r.returncode == 0, r.stderr
    assert "mk_writable" in r.stdout
    assert "+bulk transfer" in r.stdout


def test_lu_pivot_broadcast():
    r = run_example("lu_pivot_broadcast.py")
    assert r.returncode == 0, r.stderr
    assert "L*U == A (distributed, optimized run): True" in r.stdout
