"""Strided parallel loops (FORALL step): red-black orderings end to end."""

import numpy as np
import pytest

from repro.core.access import analyze_loop
from repro.hpf.ast import LoopSpec
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig


def red_black_program(n=64, iters=3):
    """In-place red-black relaxation over columns of a single array."""
    b = ProgramBuilder("redblack")

    def init(shape):
        rng = np.random.default_rng(11)
        return rng.random(shape)

    u = b.array("u", (n, n), init=init)
    rows = S(1, n - 2)
    with b.timesteps(iters):
        # Red sweep: odd columns from even neighbours.
        b.forall(1, n - 2, u[rows, I],
                 (u[rows, I - 1] + u[rows, I + 1]) * 0.5,
                 step=2, label="red")
        # Black sweep: even columns from (freshly updated) odd neighbours.
        b.forall(2, n - 2, u[rows, I],
                 (u[rows, I - 1] + u[rows, I + 1]) * 0.5,
                 step=2, label="black")
    return b.build()


class TestLoopSpecStep:
    def test_step_validation(self):
        with pytest.raises(ValueError, match="positive int"):
            LoopSpec("j", 0, 9, step=0)
        with pytest.raises(ValueError, match="positive int"):
            LoopSpec("j", 0, 9, step=-2)

    def test_default_step_one(self):
        assert LoopSpec("j", 0, 9).step == 1


class TestStridedNumerics:
    def test_red_sweep_matches_numpy(self):
        prog = red_black_program(n=16, iters=1)
        got = run_uniproc(prog, ClusterConfig(n_nodes=2)).arrays["u"]
        ref = prog.initializers["u"]((16, 16)).copy()
        for _ in range(1):
            ref[1:15, 1:15:2] = (ref[1:15, 0:14:2] + ref[1:15, 2:16:2]) * 0.5
            ref[1:15, 2:15:2] = (ref[1:15, 1:14:2] + ref[1:15, 3:16:2]) * 0.5
        np.testing.assert_allclose(got, ref)

    def test_gauss_seidel_coupling(self):
        # The black sweep must see the red sweep's fresh values (that is
        # the whole point of red-black over Jacobi).
        prog = red_black_program(n=16, iters=1)
        jacobi_like = run_uniproc(prog, ClusterConfig(n_nodes=2)).arrays["u"]
        raw = prog.initializers["u"]((16, 16))
        pure_jacobi = raw.copy()
        pure_jacobi[1:15, 1:15] = (raw[1:15, 0:14] + raw[1:15, 2:16]) * 0.5
        assert not np.allclose(jacobi_like, pure_jacobi)


class TestStridedAnalysis:
    def test_iterations_are_strided(self):
        prog = red_black_program(n=32)
        red = prog.body[0].body[0]
        inst = analyze_loop(red, prog, 4).instantiate({})
        # Proc 0 owns cols 0..7; red iterations are the odd ones in 1..30.
        assert list(inst.iterations[0]) == [1, 3, 5, 7]
        assert list(inst.iterations[1]) == [9, 11, 13, 15]

    def test_halo_columns_are_even(self):
        prog = red_black_program(n=32)
        red = prog.body[0].body[0]
        inst = analyze_loop(red, prog, 4).instantiate({})
        # Proc 1 (cols 8-15) reads even cols 8..16; non-owner: col 16.
        nor = sorted(c for _a, sec in inst.non_owner_reads[1] for c in sec.last)
        assert nor == [16]

    def test_iterations_partition_the_strided_space(self):
        prog = red_black_program(n=32)
        red = prog.body[0].body[0]
        inst = analyze_loop(red, prog, 4).instantiate({})
        seen = sorted(v for it in inst.iterations for v in it)
        assert seen == list(range(1, 31, 2))


class TestStridedBackends:
    def test_all_backends_agree(self):
        cfg = ClusterConfig(n_nodes=4)
        prog = red_black_program()
        uni = run_uniproc(prog, cfg)
        for result in (
            run_shmem(prog, cfg),
            run_shmem(prog, cfg, optimize=True),
            run_shmem(prog, cfg, optimize=True, rt_elim=True),
            run_msgpass(prog, cfg),
        ):
            result.assert_same_numerics(uni)

    def test_optimization_reduces_misses(self):
        cfg = ClusterConfig(n_nodes=4)
        prog = red_black_program(n=256, iters=2)
        unopt = run_shmem(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        assert 0 < opt.total_misses < unopt.total_misses

    def test_update_protocol_handles_strides(self):
        cfg = ClusterConfig(n_nodes=4)
        prog = red_black_program(n=32, iters=2)
        run_shmem(prog, cfg, protocol="update").assert_same_numerics(
            run_uniproc(prog, cfg)
        )
