"""Shared program fixtures for runtime tests."""

import pytest

from repro.hpf.dsl import I, ProgramBuilder, S
from repro.tempest.config import ClusterConfig


@pytest.fixture
def cfg4():
    return ClusterConfig(n_nodes=4)


def jacobi_program(n=64, iters=3, name="jacobi"):
    """2-D 4-point stencil with an init loop and a copy-back loop."""
    b = ProgramBuilder(name)
    a = b.array("a", (n, n))
    new = b.array("new", (n, n))
    b.forall(0, n - 1, a[S(0, n - 1), I], 1.0, label="init")
    with b.timesteps(iters):
        b.forall(
            1,
            n - 2,
            new[S(1, n - 2), I],
            (
                a[S(0, n - 3), I]
                + a[S(2, n - 1), I]
                + a[S(1, n - 2), I - 1]
                + a[S(1, n - 2), I + 1]
            )
            * 0.25,
            label="sweep",
        )
        b.forall(1, n - 2, a[S(1, n - 2), I], new[S(1, n - 2), I], label="copy")
    return b.build()


def stable_reader_program(n=64, iters=4):
    """Reads a never-rewritten array every iteration — the PRE showcase."""
    b = ProgramBuilder("stable")
    coeff = b.array("coeff", (n, n))
    x = b.array("x", (n, n))
    b.forall(0, n - 1, coeff[S(0, n - 1), I], 2.0, label="init_coeff")
    b.forall(0, n - 1, x[S(0, n - 1), I], 1.0, label="init_x")
    with b.timesteps(iters):
        # x[j] += coeff[j-1]: the coeff halo never changes after init.
        b.forall(1, n - 1, x[S(0, n - 1), I], x[S(0, n - 1), I] + coeff[S(0, n - 1), I - 1])
    return b.build()
