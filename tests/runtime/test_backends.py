"""Integration tests: the four backends on real programs.

The central invariants:

* all backends produce bit-identical numerics,
* the optimized backend removes most demand misses,
* the optimizer options behave per the paper (bulk coalesces messages,
  rt-elim removes calls+barriers, PRE elides stable-data resends),
* no contract violations or stale reads anywhere.
"""

import numpy as np
import pytest

from repro.core.symbolic import Sym
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

from tests.runtime.conftest import jacobi_program, stable_reader_program


class TestNumericEquivalence:
    def test_all_backends_agree_on_jacobi(self, cfg4):
        prog = jacobi_program()
        uni = run_uniproc(prog, cfg4)
        for result in (
            run_shmem(prog, cfg4),
            run_shmem(prog, cfg4, optimize=True),
            run_shmem(prog, cfg4, optimize=True, rt_elim=True),
            run_shmem(prog, cfg4, optimize=True, rt_elim=True, pre=True),
            run_msgpass(prog, cfg4),
        ):
            result.assert_same_numerics(uni)

    def test_jacobi_numerics_match_direct_numpy(self, cfg4):
        prog = jacobi_program(n=32, iters=2)
        got = run_shmem(prog, cfg4, optimize=True).arrays["a"]
        a = np.ones((32, 32))
        a[:, 0] = 0  # init loop writes 1.0 everywhere; interior updated
        a = np.ones((32, 32))
        for _ in range(2):
            new = a.copy()
            new[1:-1, 1:-1] = (a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]) * 0.25
            a[1:-1, 1:-1] = new[1:-1, 1:-1]
        np.testing.assert_allclose(got, a)

    def test_single_cpu_config_agrees_too(self):
        cfg = ClusterConfig(n_nodes=4, dual_cpu=False)
        prog = jacobi_program(n=32, iters=2)
        run_shmem(prog, cfg, optimize=True).assert_same_numerics(run_uniproc(prog, cfg))


class TestMissReduction:
    def test_optimization_removes_most_misses(self, cfg4):
        # Needs columns of many blocks so edge effects don't dominate
        # (n=256 -> 16 blocks per column, 14 compiler-controllable).
        prog = jacobi_program(n=256)
        unopt = run_shmem(prog, cfg4)
        opt = run_shmem(prog, cfg4, optimize=True)
        assert opt.total_misses < 0.35 * unopt.total_misses
        assert unopt.total_misses > 0

    def test_small_columns_show_pronounced_edge_effects(self, cfg4):
        # The grav phenomenon: at 64x64 a column is only 4 blocks, and the
        # stencil's shifted-row sections leave half of each halo column as
        # boundary blocks -> far weaker miss reduction.
        prog = jacobi_program(n=64)
        unopt = run_shmem(prog, cfg4)
        opt = run_shmem(prog, cfg4, optimize=True)
        assert 0.4 * unopt.total_misses < opt.total_misses < unopt.total_misses

    def test_remaining_misses_are_boundary_blocks(self, cfg4):
        # With block-aligned halo columns (full columns transferred), the
        # optimized run's residual misses come only from the partial-column
        # reads at the loop edge.
        prog = jacobi_program(n=64)
        opt = run_shmem(prog, cfg4, optimize=True)
        # 64 rows * 8B = 512B = 4 blocks per column; rows 0..61 / 1..62 /
        # 2..63 sections leave the first and last block partially covered.
        assert 0 < opt.total_misses < 200

    def test_msgpass_has_zero_misses(self, cfg4):
        assert run_msgpass(jacobi_program(), cfg4).total_misses == 0

    def test_optimized_uses_data_messages_not_coherence(self, cfg4):
        prog = jacobi_program(n=256)
        opt = run_shmem(prog, cfg4, optimize=True)
        kinds = opt.stats.messages_by_kind()
        assert kinds[MsgKind.DATA] > 0
        coherence = sum(v for k, v in kinds.items() if k in COHERENCE_KINDS)
        data = kinds[MsgKind.DATA]
        unopt_coh = sum(
            v
            for k, v in run_shmem(prog, cfg4).stats.messages_by_kind().items()
            if k in COHERENCE_KINDS
        )
        assert coherence < 0.5 * unopt_coh


class TestOptimizerOptions:
    def test_bulk_reduces_data_message_count(self, cfg4):
        prog = jacobi_program()
        no_bulk = run_shmem(prog, cfg4, optimize=True, bulk=False)
        bulk = run_shmem(prog, cfg4, optimize=True, bulk=True)
        assert bulk.stats.messages_by_kind()[MsgKind.DATA] < no_bulk.stats.messages_by_kind()[MsgKind.DATA]
        assert bulk.elapsed_ns <= no_bulk.elapsed_ns

    def test_rt_elim_removes_barriers_and_time(self, cfg4):
        prog = jacobi_program()
        base = run_shmem(prog, cfg4, optimize=True)
        rte = run_shmem(prog, cfg4, optimize=True, rt_elim=True)
        assert rte.extra["barriers"] < base.extra["barriers"]
        assert rte.elapsed_ns < base.elapsed_ns

    def test_pre_elides_stable_data_sends(self, cfg4):
        prog = stable_reader_program()
        base = run_shmem(prog, cfg4, optimize=True)
        pre = run_shmem(prog, cfg4, optimize=True, pre=True)
        assert pre.extra["blocks_elided"] > 0
        assert (
            pre.stats.messages_by_kind()[MsgKind.DATA]
            < base.stats.messages_by_kind()[MsgKind.DATA]
        )
        pre.assert_same_numerics(base)

    def test_pre_does_not_elide_fresh_data(self, cfg4):
        prog = jacobi_program()
        pre = run_shmem(prog, cfg4, optimize=True, pre=True)
        # Halos are rewritten every iteration: only the repeated *first*
        # sweep blocks could ever be elided, and they are rewritten too.
        assert pre.extra["blocks_elided"] == 0

    def test_options_require_optimize(self, cfg4):
        with pytest.raises(ValueError, match="optimize"):
            run_shmem(jacobi_program(), cfg4, rt_elim=True)


class TestTimingSanity:
    def test_parallel_beats_uniproc_on_compute_bound(self):
        cfg = ClusterConfig(n_nodes=8)
        prog = jacobi_program(n=128, iters=4)
        uni = run_uniproc(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        assert 2.0 < uni.elapsed_ns / opt.elapsed_ns <= 8.0

    def test_optimization_improves_total_time(self, cfg4):
        prog = jacobi_program()
        assert (
            run_shmem(prog, cfg4, optimize=True).elapsed_ns
            < run_shmem(prog, cfg4).elapsed_ns
        )

    def test_single_cpu_slower_than_dual(self):
        prog = jacobi_program()
        dual = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=True))
        single = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=False))
        assert single.elapsed_ns > dual.elapsed_ns

    def test_optimization_helps_single_cpu_proportionally_more(self):
        # Needs a problem big enough that protocol occupancy (what the
        # second CPU absorbs) dominates the fixed barrier costs.
        prog = jacobi_program(n=128)
        d_un = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=True))
        d_op = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=True), optimize=True)
        s_un = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=False))
        s_op = run_shmem(prog, ClusterConfig(n_nodes=4, dual_cpu=False), optimize=True)
        gain_dual = d_un.elapsed_ns / d_op.elapsed_ns
        gain_single = s_un.elapsed_ns / s_op.elapsed_ns
        assert gain_single > gain_dual

    def test_deterministic_runs(self, cfg4):
        prog = jacobi_program(n=32, iters=2)
        r1 = run_shmem(prog, cfg4, optimize=True)
        r2 = run_shmem(prog, cfg4, optimize=True)
        assert r1.elapsed_ns == r2.elapsed_ns
        assert r1.total_misses == r2.total_misses


class TestNonOwnerWrites:
    def _program(self, n=32, rows=32):
        # 2-D so the shifted write sections are whole (block-aligned)
        # columns — 1-D single-element pieces would all be boundary blocks.
        b = ProgramBuilder("nowrite")
        a = b.array("a", (rows, n))
        w = b.array("w", (rows, n))
        b.forall(0, n - 1, a[S(0, rows - 1), I], 3.0, label="init")
        with b.timesteps(2):
            b.forall(
                1,
                n - 2,
                w[S(0, rows - 1), I + 1],
                a[S(0, rows - 1), I] * 2.0,
                on_home=a[S(0, rows - 1), I],
                label="shifted",
            )
        return b.build()

    def test_flush_path_correct_and_counted(self, cfg4):
        prog = self._program()
        uni = run_uniproc(prog, cfg4)
        opt = run_shmem(prog, cfg4, optimize=True)
        opt.assert_same_numerics(uni)
        assert opt.stats.messages_by_kind()[MsgKind.FLUSH] > 0

    def test_rt_elim_refused_with_non_owner_writes(self, cfg4):
        from repro.core.planner import PlanError

        with pytest.raises(PlanError, match="owner-computes"):
            run_shmem(self._program(), cfg4, optimize=True, rt_elim=True)

    def test_msgpass_handles_non_owner_writes(self, cfg4):
        prog = self._program()
        run_msgpass(prog, cfg4).assert_same_numerics(run_uniproc(prog, cfg4))


class TestSymbolicPrograms:
    def _triangular(self, n=32):
        """LU-flavoured: loop bounds and sections depend on the pivot k."""
        b = ProgramBuilder("tri")
        a = b.array("a", (n, n))
        b.forall(0, n - 1, a[S(0, n - 1), I], 1.0, label="init")
        with b.seq("k", 0, n - 2) as k:
            b.forall(
                k + 1,
                n - 1,
                a[S(0, n - 1), I],
                a[S(0, n - 1), I] - a[S(0, n - 1), k] * 0.01,
                label="update",
            )
        return b.build()

    def test_triangular_runs_and_agrees(self, cfg4):
        prog = self._triangular()
        uni = run_uniproc(prog, cfg4)
        for r in (
            run_shmem(prog, cfg4),
            run_shmem(prog, cfg4, optimize=True),
            run_msgpass(prog, cfg4),
        ):
            r.assert_same_numerics(uni)

    def test_triangular_broadcast_misses_reduced(self, cfg4):
        prog = self._triangular()
        unopt = run_shmem(prog, cfg4)
        opt = run_shmem(prog, cfg4, optimize=True)
        assert opt.total_misses < unopt.total_misses


class TestHomePolicies:
    @pytest.mark.parametrize(
        "policy", [HomePolicy.ALIGNED, HomePolicy.ROUND_ROBIN, HomePolicy.NODE0]
    )
    def test_numerics_independent_of_home_placement(self, cfg4, policy):
        prog = jacobi_program(n=32, iters=2)
        result = run_shmem(prog, cfg4, optimize=True, home_policy=policy)
        result.assert_same_numerics(run_uniproc(prog, cfg4))

    def test_misaligned_homes_cost_more(self, cfg4):
        prog = jacobi_program(n=64, iters=3)
        aligned = run_shmem(prog, cfg4, home_policy=HomePolicy.ALIGNED)
        node0 = run_shmem(prog, cfg4, home_policy=HomePolicy.NODE0)
        assert node0.elapsed_ns > aligned.elapsed_ns


class TestReductionsAndScalars:
    def _program(self, n=64):
        from repro.hpf.ast import ScalarRef

        b = ProgramBuilder("reduce")
        a = b.array("a", (n,))
        b.forall(0, n - 1, a[I], 2.0, label="init")
        b.reduce("total", 0, n - 1, a[I] * a[I], label="ss")
        b.scalar("scaled", ScalarRef("total") * 0.5)
        b.forall(0, n - 1, a[I], a[I] * ScalarRef("scaled"), label="scale")
        return b.build()

    def test_reduction_value_correct_everywhere(self, cfg4):
        prog = self._program()
        for r in (
            run_uniproc(prog, cfg4),
            run_shmem(prog, cfg4),
            run_shmem(prog, cfg4, optimize=True),
            run_msgpass(prog, cfg4),
        ):
            assert r.scalars["total"] == pytest.approx(64 * 4.0)
            assert r.scalars["scaled"] == pytest.approx(128.0)
            np.testing.assert_allclose(r.arrays["a"], 2.0 * 128.0)

    def test_reduce_message_traffic(self, cfg4):
        r = run_shmem(self._program(), cfg4)
        kinds = r.stats.messages_by_kind()
        assert kinds[MsgKind.REDUCE] == 4
        assert kinds[MsgKind.REDUCE_RESULT] == 4
