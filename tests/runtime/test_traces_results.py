"""Unit tests for trace building/replay and run results."""

import numpy as np
import pytest

from repro.runtime.results import RunResult
from repro.runtime.traces import NodeTrace, replay
from repro.tempest import Cluster, ClusterConfig, Distribution, SharedMemory
from repro.tempest.stats import ClusterStats


class TestNodeTrace:
    def test_emitters_append_ops(self):
        t = NodeTrace(0)
        t.compute(100)
        t.read(np.array([1, 2]), 1, "ctx")
        t.write(np.array([3]), 1)
        t.barrier()
        t.reduce(4)
        t.mkw((5,))
        t.iw((5,), ("memo",))
        t.send((5,), 1, True)
        t.recv(1)
        t.inv((5,))
        t.flush((5,), 1, False)
        t.mp_send(1, 64)
        t.mp_recv(2)
        kinds = [op[0] for op in t.ops]
        assert kinds == [
            "compute", "read", "write", "barrier", "reduce", "mkw", "iw",
            "send", "recv", "inv", "flush", "mp_send", "mp_recv",
        ]

    def test_empty_payloads_skipped(self):
        t = NodeTrace(0)
        t.compute(0)
        t.read(np.array([], dtype=np.int64), 1)
        t.write(np.array([], dtype=np.int64), 1)
        t.mkw(())
        t.iw(())
        t.send((), 1, True)
        t.recv(0)
        t.inv(())
        t.flush((), 0, True)
        t.mp_send(1, 0)
        t.mp_recv(0)
        assert len(t) == 0

    def test_replay_unknown_op_raises(self):
        cfg = ClusterConfig(n_nodes=2)
        mem = SharedMemory(cfg)
        mem.alloc("a", (16, 2), Distribution.block(2))
        cl = Cluster(cfg, mem)

        def prog():
            yield from replay(cl, 0, [("warp", 1)])

        cl.engine.spawn(prog())
        with pytest.raises(ValueError, match="unknown trace op"):
            cl.engine.run()

    def test_replay_executes_full_vocabulary(self):
        cfg = ClusterConfig(n_nodes=2)
        mem = SharedMemory(cfg)
        arr = mem.alloc("a", (16, 2), Distribution.block(2))
        cl = Cluster(cfg, mem)
        b0 = arr.block_of_element((0, 0))
        b1 = arr.block_of_element((0, 1))

        t0 = NodeTrace(0)
        t0.compute(1000)
        t0.write(np.array([b0]), 1)
        t0.mkw((b0,))
        t0.barrier()
        t0.send((b0,), 1, True)
        t0.barrier()
        t0.reduce(1)

        t1 = NodeTrace(1)
        t1.iw((b0,))
        t1.barrier()
        t1.recv(1)
        t1.read(np.array([b0]), 1, "check")
        t1.inv((b0,))
        t1.barrier()
        t1.reduce(1)

        stats = cl.run({0: replay(cl, 0, t0.ops), 1: replay(cl, 1, t1.ops)})
        assert stats.elapsed_ns > 0
        assert stats[1].read_misses == 0  # the pushed block hits


class TestRunResult:
    def _result(self, backend="shmem", elapsed=1_000_000, arrays=None):
        stats = ClusterStats.for_nodes(2)
        stats.elapsed_ns = elapsed
        stats[0].compute_ns = 400_000
        stats[1].compute_ns = 600_000
        stats[0].stall_ns = 100_000
        return RunResult(
            "prog",
            backend,
            elapsed,
            stats,
            arrays or {"a": np.arange(4.0)},
            {"s": 1.5},
        )

    def test_derived_metrics(self):
        r = self._result()
        assert r.elapsed_ms == 1.0
        assert r.compute_ms == pytest.approx(0.5)
        assert r.comm_ms == pytest.approx(0.05)

    def test_speedup(self):
        uni = self._result("uniproc", elapsed=4_000_000)
        par = self._result("shmem", elapsed=1_000_000)
        assert par.speedup_over(uni) == 4.0

    def test_checksums_stable(self):
        r = self._result()
        assert r.checksums() == {"a": 6.0}

    def test_assert_same_numerics_passes_on_equal(self):
        self._result().assert_same_numerics(self._result("msgpass"))

    def test_assert_same_numerics_catches_array_diff(self):
        other = self._result(arrays={"a": np.arange(4.0) + 1e-3})
        with pytest.raises(AssertionError):
            self._result().assert_same_numerics(other)

    def test_assert_same_numerics_catches_missing_array(self):
        other = self._result(arrays={"b": np.arange(4.0)})
        with pytest.raises(AssertionError, match="array sets differ"):
            self._result().assert_same_numerics(other)

    def test_assert_same_numerics_catches_scalar_diff(self):
        other = self._result()
        other.scalars["s"] = 2.0
        with pytest.raises(AssertionError, match="scalar"):
            self._result().assert_same_numerics(other)

    def test_summary_flat_dict(self):
        s = self._result().summary()
        assert s["backend"] == "shmem" and s["elapsed_ms"] == 1.0
