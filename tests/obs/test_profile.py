"""Per-phase profiler: exact decomposition, phase mapping, recovery bucket."""

import pytest

from repro.obs import (
    BUCKETS,
    EventBus,
    PhaseProfiler,
    breakdown_totals,
    render_breakdown,
)
from repro.runtime import run_shmem
from repro.tempest.config import ClusterConfig
from repro.tempest.faults import FaultConfig, PartitionScenario
from tests.runtime.conftest import jacobi_program

N = 4


def profiled_run(**kwargs):
    cfg = ClusterConfig(n_nodes=N)
    return run_shmem(jacobi_program(n=32, iters=2), cfg,
                     profile_phases=True, **kwargs)


class TestExactness:
    def test_bucket_sums_equal_node_totals_to_the_ns(self):
        bd = profiled_run().phase_breakdown
        for n in range(N):
            total = sum(
                sum(ph["node_ns"][n][b] for b in bd["buckets"])
                for ph in bd["phases"]
            )
            assert total == bd["node_total_ns"][n]

    def test_slowest_node_total_is_elapsed(self):
        # Replayed ops are contiguous from t=0, so the slowest node's op
        # spans tile the whole run exactly.
        res = profiled_run()
        assert max(res.phase_breakdown["node_total_ns"]) == res.elapsed_ns

    def test_optimized_run_decomposes_exactly_too(self):
        # dual_cpu at n=64 is the smallest config where the optimizer
        # actually engages (at n=32 single-CPU the plans are no-ops).
        prog = jacobi_program(n=64, iters=2)
        cfg = ClusterConfig(n_nodes=N, dual_cpu=True)
        unopt = run_shmem(prog, cfg, profile_phases=True)
        res = run_shmem(prog, cfg, profile_phases=True,
                        optimize=True, rt_elim=True)
        bd = res.phase_breakdown
        assert max(bd["node_total_ns"]) == res.elapsed_ns
        totals = breakdown_totals(bd)
        assert sum(totals.values()) == sum(bd["node_total_ns"])
        # The Figure-4 effect: less read-miss stalling, some explicit
        # protocol work (flush/inv ops) appearing as overhead instead.
        unopt_totals = breakdown_totals(unopt.phase_breakdown)
        assert totals["read_miss"] < unopt_totals["read_miss"]
        assert totals["protocol_overhead"] > 0


class TestPhases:
    def test_phases_follow_program_structure(self):
        bd = profiled_run().phase_breakdown
        labels = [ph["label"] for ph in bd["phases"]]
        # init, then (sweep, copy) x 2 iterations.
        assert labels == ["init", "sweep", "copy", "sweep", "copy"]
        assert [ph["index"] for ph in bd["phases"]] == [1, 2, 3, 4, 5]

    def test_fault_free_run_has_no_recovery_time(self):
        totals = breakdown_totals(profiled_run().phase_breakdown)
        assert totals["transport_recovery"] == 0
        assert totals["compute"] > 0 and totals["barrier_wait"] > 0

    def test_ops_without_markers_land_in_startup_phase(self):
        bus = EventBus()
        prof = PhaseProfiler(bus, 1)
        bus.emit("op", 0, 100, node=0, op="compute")
        bd = prof.breakdown()
        assert bd["phases"][0]["label"] == "startup"
        assert bd["phases"][0]["node_ns"][0]["compute"] == 100


class TestRecoveryBucket:
    def test_partition_time_is_attributed_to_transport_recovery(self):
        faults = FaultConfig(
            partitions=(
                PartitionScenario(
                    "cut", frozenset({1}),
                    t_start_ns=200_000, duration_ns=2_500_000,
                ),
            ),
            max_retries=6,
        )
        res = profiled_run(faults=faults)
        assert res.completed  # the partition healed
        assert res.stats.total_gave_up > 0  # and channels really gave up
        totals = breakdown_totals(res.phase_breakdown)
        assert totals["transport_recovery"] > 0
        # Recovery is carved out of the waiting buckets, never compute.
        clean = breakdown_totals(profiled_run().phase_breakdown)
        assert totals["compute"] == clean["compute"]

    def test_recovery_never_exceeds_op_duration(self):
        bus = EventBus()
        prof = PhaseProfiler(bus, 1)
        bus.emit("channel.giveup", 0, node=0, dst=1, parked=2, scenario="s")
        # Window still open: a read op fully inside it converts wholly.
        bus.emit("op", 10, 50, node=0, op="read")
        bd = prof.breakdown()
        buckets = bd["phases"][0]["node_ns"][0]
        assert buckets["transport_recovery"] == 50
        assert buckets["read_miss"] == 0


class TestRendering:
    def test_render_breakdown_table(self):
        bd = profiled_run().phase_breakdown
        text = render_breakdown(bd)
        lines = text.splitlines()
        assert "phase" in lines[0]
        for b in BUCKETS:
            assert b[:12] in lines[0]
        assert lines[-1].startswith("all phases")
        # One row per phase + header + all-phases.
        assert len(lines) == len(bd["phases"]) + 2

    def test_render_truncates_long_runs(self):
        bd = profiled_run().phase_breakdown
        text = render_breakdown(bd, max_phases=2)
        assert "more phases" in text
