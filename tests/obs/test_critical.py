"""Critical-path analyzer: exact-sum invariant, invisibility, what-if bounds.

The tentpole guarantees under test:

* **Exactness** — the critical-path decomposition sums to ``elapsed_ns``
  to the nanosecond, across the full contention stack (faults x combining
  x switch) and through crash + checkpoint + rollback recovery;
* **Invisibility** — threading causal lineage and attaching the analyzer
  never changes a run: stats, elapsed time and numerics stay bitwise
  identical to an unobserved run;
* **What-if bounds** — zeroing one cost class reports exactly
  ``elapsed - classes[knob]``, never negative, and the barrier knob is
  the perfect-overlap bound;
* **Self-diff** — ``diff_breakdowns(r, r)`` is all-zero, and the class
  deltas of any diff sum exactly to the elapsed delta.
"""

import numpy as np
import pytest

from repro.obs import COST_CLASSES, render_critical_path
from repro.runtime import run_shmem
from repro.serve.compare import diff_breakdowns, render_diff
from repro.tempest.config import ClusterConfig
from repro.tempest.faults import CrashScenario, FaultConfig
from tests.runtime.conftest import jacobi_program
from tests.tempest.test_protocol_fuzz import COMBINE_ON, FAULT_MATRIX, SWITCH_MATRIX

#: Restarting mid-run crash with per-barrier checkpoints: the run rolls
#: back and completes, so an exact decomposition exists (a degraded run
#: has no critical path by definition).
_CRASH = FaultConfig(
    checkpoint_every=1,
    crashes=(CrashScenario(node=2, t_ns=3_000_000, restart_delay_ns=500_000),),
)

#: run_shmem kwargs per matrix cell (8-node default cluster).
CELLS = {
    "clean": {},
    "opt": {"optimize": True},
    "storm": {"faults": FAULT_MATRIX["storm"]},
    "combine": {"combine": COMBINE_ON},
    "switch": {"switch": SWITCH_MATRIX["narrow"]},
    "storm+combine+switch": {
        "faults": FAULT_MATRIX["storm"],
        "combine": COMBINE_ON,
        "switch": SWITCH_MATRIX["narrow"],
    },
    "crash+rollback": {"optimize": True, "faults": _CRASH},
}


def run_cp(profile=False, **kwargs):
    return run_shmem(
        jacobi_program(n=32, iters=2),
        ClusterConfig(),
        critical_path=True,
        profile_phases=profile,
        **kwargs,
    )


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_critical_path_sums_to_elapsed_exactly(cell):
    r = run_cp(**CELLS[cell])
    assert r.completed
    cp = r.critical_path
    assert cp is not None
    assert cp["elapsed_ns"] == r.elapsed_ns
    # To the nanosecond, twice over: by class and by node.
    assert sum(cp["classes"].values()) == r.elapsed_ns
    assert sum(sum(nb.values()) for nb in cp["classes_by_node"]) == r.elapsed_ns
    assert set(cp["classes"]) == set(COST_CLASSES)
    assert all(v >= 0 for v in cp["classes"].values())
    if "crash" in cell:
        # The outage + re-execution is visible on the critical path.
        assert cp["classes"]["transport_recovery"] > 0


def test_lineage_and_analyzer_are_invisible():
    """Lineage-on run is ClusterStats- and numerics-identical to off."""
    prog = jacobi_program(n=32, iters=2)
    cfg = ClusterConfig()
    plain = run_shmem(prog, cfg)
    traced = run_shmem(prog, cfg, critical_path=True, profile_phases=True)
    assert plain.stats == traced.stats
    assert plain.elapsed_ns == traced.elapsed_ns
    for name in plain.arrays:
        assert np.array_equal(plain.arrays[name], traced.arrays[name]), name
    assert plain.scalars == traced.scalars
    assert plain.critical_path is None and traced.critical_path is not None


def test_whatif_bounds():
    r = run_cp(faults=FAULT_MATRIX["storm"])
    cp = r.critical_path
    for knob, cls in (
        ("barrier", "barrier_slack"),
        ("wire", "wire"),
        ("retransmit", "transport_recovery"),
    ):
        bound = cp["whatif"][knob]
        assert bound == cp["elapsed_ns"] - cp["classes"][cls]
        assert 0 <= bound <= cp["elapsed_ns"]
    text = render_critical_path(cp, whatif="barrier")
    assert "what-if barrier" in text and "saves at most" in text
    # Without a knob, every bound is rendered.
    assert render_critical_path(cp).count("what-if") == 3


def test_degraded_run_has_no_critical_path():
    """A never-restarting crash degrades; no exact decomposition exists."""
    r = run_shmem(
        jacobi_program(n=32, iters=2),
        ClusterConfig(),
        critical_path=True,
        faults=FaultConfig(crashes=(CrashScenario(node=2, t_ns=3_000_000),)),
    )
    assert not r.completed
    assert r.critical_path is None


class TestDiffBreakdowns:
    def test_self_diff_all_zero(self):
        r = run_cp(profile=True)
        d = diff_breakdowns(r, r)
        assert d["elapsed_ns"]["delta"] == 0
        assert all(v["delta"] == 0 for v in d["classes"].values())
        assert all(n["delta"] == 0 for n in d["nodes"])
        assert all(p["delta"] == 0 for p in d["phases"])
        assert "runs are identical" in render_diff(d)

    def test_class_deltas_sum_to_elapsed_delta(self):
        a = run_cp(profile=True)
        b = run_cp(profile=True, faults=FAULT_MATRIX["storm"])
        d = diff_breakdowns(a, b)
        delta = d["elapsed_ns"]["delta"]
        assert delta == b.elapsed_ns - a.elapsed_ns != 0
        assert sum(v["delta"] for v in d["classes"].values()) == delta
        assert sum(n["delta"] for n in d["nodes"]) == delta
        assert "attribution:" in render_diff(d)

    def test_unprofiled_views_come_back_none(self):
        a = run_cp()  # critical path only, no phase profiler
        d = diff_breakdowns(a, a)
        assert d["classes"] is not None
        assert d["phases"] is None
