"""EventBus mechanics: fan-out, filtering, counting, zero-cost-off."""

import pytest

from repro.obs import Event, EventBus


class TestEmit:
    def test_emit_returns_event_with_payload(self):
        bus = EventBus()
        ev = bus.emit("miss.read", 100, 50, node=2, block=7, home=1)
        assert isinstance(ev, Event)
        assert ev.kind == "miss.read"
        assert ev.t_ns == 100 and ev.dur_ns == 50 and ev.node == 2
        assert ev.args == {"block": 7, "home": 1}

    def test_instant_defaults_to_zero_duration(self):
        ev = EventBus().emit("phase", 10, node=0, index=1, label="sweep")
        assert ev.dur_ns == 0

    def test_events_published_counts_all_emits(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("op", i)
        assert bus.events_published == 5

    def test_fan_out_is_synchronous_and_ordered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda ev: seen.append(("a", ev.kind)))
        bus.subscribe(lambda ev: seen.append(("b", ev.kind)))
        bus.emit("barrier", 0)
        assert seen == [("a", "barrier"), ("b", "barrier")]


class TestSubscriptions:
    def test_kind_filter_is_exact(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds={"miss.read"})
        bus.emit("miss.read", 0)
        bus.emit("miss.write", 0)
        bus.emit("miss", 0)  # prefix of a subscribed kind: not a match
        assert [ev.kind for ev in seen] == ["miss.read"]

    def test_no_filter_receives_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a", 0)
        bus.emit("b.c", 0)
        assert len(seen) == 2

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(seen.append)
        bus.emit("a", 0)
        bus.unsubscribe(sub)
        bus.emit("b", 0)
        assert [ev.kind for ev in seen] == ["a"]
        assert bus.n_subscribers == 0
        # Publishing still counts even with nobody listening.
        assert bus.events_published == 2

    def test_unsubscribe_unknown_raises(self):
        bus = EventBus()
        sub = bus.subscribe(lambda ev: None)
        bus.unsubscribe(sub)
        with pytest.raises(ValueError):
            bus.unsubscribe(sub)


class TestZeroCostOff:
    def test_cluster_without_bus_publishes_nothing(self):
        from tests.tempest.conftest import make_cluster, run_programs

        cluster, arr = make_cluster()
        assert cluster.obs is None
        for comp in (
            cluster.network, cluster.protocol, cluster.ext,
            cluster.barrier_net, cluster.collectives,
        ):
            assert comp.obs is None

    def test_ensure_bus_attaches_everywhere(self):
        from tests.tempest.conftest import make_cluster

        cluster, _arr = make_cluster()
        bus = cluster.ensure_bus()
        assert isinstance(bus, EventBus)
        assert cluster.ensure_bus() is bus  # idempotent
        for comp in (
            cluster.network, cluster.protocol, cluster.ext,
            cluster.barrier_net, cluster.collectives,
        ):
            assert comp.obs is bus

    def test_attach_bus_reaches_transport_when_faulted(self):
        from repro.tempest import FaultConfig
        from tests.tempest.conftest import make_cluster

        cluster, _arr = make_cluster(faults=FaultConfig(drop_prob=0.05, seed=1))
        bus = cluster.ensure_bus()
        assert cluster.network.transport.obs is bus
