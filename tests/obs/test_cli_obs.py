"""CLI observability flags: --trace-out, --profile-phases, --trace-messages."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_chrome_trace

SMALL = ["jacobi", "--nodes", "4", "--param", "n=32", "--param", "iters=1"]


class TestParser:
    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            SMALL + ["--trace-out", "t.json", "--trace-kinds", "miss,barrier",
                     "--trace-cap", "5000", "--profile-phases"]
        )
        assert args.trace_out == "t.json"
        assert args.trace_kinds == "miss,barrier"
        assert args.trace_cap == 5000
        assert args.profile_phases

    def test_trace_messages_optional_value(self):
        assert build_parser().parse_args(SMALL).trace_messages is None
        assert build_parser().parse_args(
            SMALL + ["--trace-messages"]).trace_messages == "all"
        assert build_parser().parse_args(
            SMALL + ["--trace-messages", "read_req"]).trace_messages == "read_req"


class TestMain:
    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        rc = main(SMALL + ["--trace-out", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        assert "trace:" in capsys.readouterr().out

    def test_trace_kinds_filters(self, tmp_path):
        path = tmp_path / "trace.json"
        rc = main(SMALL + ["--trace-out", str(path), "--trace-kinds", "barrier"])
        assert rc == 0
        data = json.loads(path.read_text())
        kinds = {r["args"]["kind"] for r in data["traceEvents"]
                 if r["ph"] not in ("M", "s", "f")}
        assert kinds == {"barrier", "barrier.arrive", "barrier.release"}

    def test_profile_phases_prints_breakdown(self, capsys):
        rc = main(SMALL + ["--profile-phases"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase time breakdown" in out
        assert "all phases" in out
        assert "read_miss" in out

    def test_trace_messages_prints_chart(self, capsys):
        rc = main(SMALL + ["--trace-messages", "read_req,read_resp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "message trace:" in out
        assert "read_req" in out

    def test_bad_message_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(SMALL + ["--trace-messages", "bogus_kind"])

    def test_obs_flags_rejected_on_msgpass(self, capsys):
        with pytest.raises(SystemExit):
            main(SMALL + ["--backend", "msgpass", "--profile-phases"])
