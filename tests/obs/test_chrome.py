"""Chrome trace exporter: schema validity, filters, ring cap, tracks."""

import json

from repro.obs import ChromeTraceExporter, EventBus, validate_chrome_trace
from repro.obs.chrome import _PID_CLUSTER, _PID_FABRIC, _TID_SWITCH, _TID_TRANSPORT
from repro.tempest.stats import MsgKind


def make_bus_with_traffic():
    bus = EventBus()
    exp = ChromeTraceExporter(bus, n_nodes=2)
    bus.emit("op", 0, 500, node=0, op="compute")
    bus.emit("miss.read", 100, 300, node=1, block=4, home=0, remote=True)
    bus.emit("msg.send", 120, node=1, src=1, dst=0, msg=MsgKind.READ_REQ, size=16)
    bus.emit("frame.drop", 150, node=1, dst=0, seq=3, cause="loss")
    bus.emit("switch.traverse", 200, node=0, dst=1, port=1, wait_ns=40,
             forward_ns=10, depth=2, size=16)
    bus.emit("phase", 600, node=0, index=1, label="sweep")
    return bus, exp


class TestExport:
    def test_output_is_schema_valid(self):
        _bus, exp = make_bus_with_traffic()
        assert validate_chrome_trace(exp.to_chrome()) == []

    def test_json_roundtrip(self, tmp_path):
        _bus, exp = make_bus_with_traffic()
        path = tmp_path / "t.json"
        retained = exp.write(path)
        assert retained == 6
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["retained_events"] == 6

    def test_spans_and_instants(self):
        _bus, exp = make_bus_with_traffic()
        recs = {r["name"]: r for r in exp.to_chrome()["traceEvents"]
                if r["ph"] != "M"}
        assert recs["op:compute"]["ph"] == "X"
        assert recs["op:compute"]["dur"] == 0.5  # 500 ns -> 0.5 us
        assert recs["phase"]["ph"] == "i"
        # Enum payloads are sanitized to their values.
        assert recs["send:read_req"]["args"]["msg"] == "read_req"

    def test_track_assignment(self):
        _bus, exp = make_bus_with_traffic()
        recs = {r["name"]: r for r in exp.to_chrome()["traceEvents"]
                if r["ph"] != "M"}
        # Node-charged events live on the cluster process, tid = node.
        assert (recs["miss.read"]["pid"], recs["miss.read"]["tid"]) == (_PID_CLUSTER, 1)
        # Frame/channel events live on the fabric transport track even
        # though they carry a node (the charged sender).
        assert (recs["frame.drop"]["pid"], recs["frame.drop"]["tid"]) == (
            _PID_FABRIC, _TID_TRANSPORT)
        assert recs["switch.traverse"]["tid"] == _TID_SWITCH

    def test_thread_metadata_covers_all_nodes(self):
        _bus, exp = make_bus_with_traffic()
        meta = [r for r in exp.to_chrome()["traceEvents"] if r["ph"] == "M"]
        names = {(r["pid"], r.get("tid")): r["args"]["name"] for r in meta
                 if r["name"] == "thread_name"}
        # n_nodes=2 fills both node tracks even if only some saw events.
        assert names[(_PID_CLUSTER, 0)] == "node 0"
        assert names[(_PID_CLUSTER, 1)] == "node 1"
        assert names[(_PID_FABRIC, _TID_TRANSPORT)] == "transport"


class TestFilters:
    def test_kind_prefix_filter(self):
        bus = EventBus()
        exp = ChromeTraceExporter(bus, kinds=["miss", "frame.drop"])
        bus.emit("miss.read", 0, 10, node=0, block=1, home=0, remote=False)
        bus.emit("miss.write", 5, 10, node=0, block=1, home=0)
        bus.emit("frame.drop", 8, node=0, dst=1, seq=1, cause="loss")
        bus.emit("frame.retransmit", 9, node=0, dst=1, seq=1, retries=1,
                 spurious=False, backoff=False, timeout_ns=100)
        bus.emit("missile", 10, node=0)  # shares the prefix string, not a kind
        kinds = [ev.kind for ev in exp.events]
        assert kinds == ["miss.read", "miss.write", "frame.drop"]

    def test_ring_buffer_caps_and_counts(self):
        bus = EventBus()
        exp = ChromeTraceExporter(bus, max_events=3)
        for i in range(10):
            bus.emit("op", i, 1, node=0, op="compute")
        assert len(exp.events) == 3
        assert exp.dropped == 7
        # The newest events survive.
        assert [ev.t_ns for ev in exp.events] == [7, 8, 9]
        assert exp.to_chrome()["otherData"]["dropped_events"] == 7


class TestSchemaValidator:
    def test_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_rejects_bad_phase(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "Q", "pid": 1, "tid": 0, "ts": 0}
        ]}
        assert any("ph" in e for e in validate_chrome_trace(bad))

    def test_rejects_span_without_duration(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}
        ]}
        assert validate_chrome_trace(bad) != []

    def test_cli_entrypoint(self, tmp_path, capsys):
        from repro.obs.schema import main

        _bus, exp = make_bus_with_traffic()
        good = tmp_path / "good.json"
        exp.write(good)
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert main([str(bad)]) == 1
        assert main([]) == 2
