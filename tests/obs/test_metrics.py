"""Metrics registry: event-derived counters equal ClusterStats counters.

The fuzz-matrix axis of the observability PR: across faults x combining x
switch (the full contention stack), every counter the simulator keeps
inline must be reconstructible from the event stream alone — misses,
messages, retransmits, combined frames, switch queueing, per-port stats.
A drift between an emit site and its counter fails here loudly.
"""

import pytest

from repro.obs import EventBus, MetricsRegistry
from repro.runtime import run_shmem
from repro.tempest import HomePolicy
from repro.tempest.config import ClusterConfig
from tests.runtime.conftest import jacobi_program
from tests.tempest.test_protocol_fuzz import (
    COMBINE_ON,
    FAULT_MATRIX,
    N_NODES,
    SWITCH_MATRIX,
    build_cluster,
    fixed_schedule,
)

CELLS = {
    "clean": {},
    "storm": {"faults": FAULT_MATRIX["storm"]},
    "combine": {"combine": COMBINE_ON},
    "switch": {"switch": SWITCH_MATRIX["narrow"]},
    "storm+combine+switch": {
        "faults": FAULT_MATRIX["storm"],
        "combine": COMBINE_ON,
        "switch": SWITCH_MATRIX["narrow"],
    },
}


def run_instrumented(protocol="invalidate", analyzer=False, **cell_kwargs):
    schedule = fixed_schedule()
    cl, blocks = build_cluster(HomePolicy.ALIGNED, protocol=protocol, **cell_kwargs)
    bus = cl.ensure_bus()
    registry = MetricsRegistry(bus, N_NODES)
    if analyzer:
        # Lineage consumer riding along: the critical-path analyzer
        # subscribes to the same stream and must not disturb the counters.
        from repro.obs import CriticalPathAnalyzer

        CriticalPathAnalyzer(bus, N_NODES)

    def node_program(node):
        for phase_no, phase in enumerate(schedule, start=1):
            read_mask, write_mask, skew = phase[node]
            if skew:
                yield from cl.compute(node, skew * 10_000)
            reads = [b for i, b in enumerate(blocks) if read_mask >> i & 1]
            writes = [b for i, b in enumerate(blocks) if write_mask >> i & 1]
            yield from cl.read_blocks(node, reads, phase=phase_no)
            yield from cl.write_blocks(node, writes, phase=phase_no)
            yield from cl.barrier(node)

    stats = cl.run({n: node_program(n) for n in range(N_NODES)}, audit=True)
    return registry, stats


@pytest.mark.parametrize("protocol", ["invalidate", "update"])
@pytest.mark.parametrize("cell", sorted(CELLS))
def test_registry_matches_stats_across_matrix(cell, protocol):
    registry, stats = run_instrumented(protocol=protocol, **CELLS[cell])
    registry.assert_matches(stats)
    # The cells actually exercised what they claim to.
    if "storm" in cell:
        assert sum(registry.net_retransmits) == stats.total_retransmits > 0
    if "combine" in cell:
        assert sum(registry.combine_flushes) == stats.total_combine_flushes > 0
    if "switch" in cell:
        assert sum(registry.switch_frames) == stats.total_switch_frames > 0
        assert set(registry.ports) == {p.port for p in stats.ports}


def test_registry_matches_full_application_run():
    """End-to-end over the runtime: replayed jacobi, faults + combining."""
    bus = EventBus()
    registry = MetricsRegistry(bus, 4)
    result = run_shmem(
        jacobi_program(n=32, iters=2),
        ClusterConfig(n_nodes=4),
        faults=FAULT_MATRIX["storm"],
        combine=COMBINE_ON,
        obs=bus,
    )
    registry.assert_matches(result.stats)
    assert sum(sum(c.values()) for c in registry.messages) == result.stats.total_messages


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_registry_matches_with_lineage_analyzer(cell):
    """Lineage-enabled cells: analyzer subscribed, counters still exact."""
    registry, stats = run_instrumented(analyzer=True, **CELLS[cell])
    registry.assert_matches(stats)


def test_registry_matches_recovery_counters():
    """Crash + checkpoint + rollback: recovery counters rebuilt from events."""
    from repro.tempest.faults import CrashScenario, FaultConfig
    from tests.runtime.conftest import jacobi_program

    cfg = ClusterConfig(
        faults=FaultConfig(
            drop_prob=0.02,
            seed=7,
            checkpoint_every=1,
            crashes=(
                CrashScenario(node=2, t_ns=3_000_000, restart_delay_ns=500_000),
            ),
        )
    )
    bus = EventBus()
    registry = MetricsRegistry(bus, cfg.n_nodes)
    result = run_shmem(jacobi_program(n=32, iters=2), cfg, optimize=True, obs=bus)
    assert result.completed
    registry.assert_matches(result.stats)
    stats = result.stats
    assert registry.recovery_checkpoints == stats.recovery_checkpoints > 0
    assert registry.recovery_checkpoint_bytes == stats.recovery_checkpoint_bytes > 0
    assert registry.recovery_rollbacks == stats.recovery_rollbacks == 1
    assert registry.recovery_ns == stats.recovery_ns > 0


def test_diff_reports_mismatch():
    registry, stats = run_instrumented()
    stats.nodes[0].read_misses += 1
    diff = registry.diff(stats)
    assert diff and "read_misses" in diff[0]
    with pytest.raises(AssertionError):
        registry.assert_matches(stats)
