"""Golden no-perturbation guarantees.

The central promise of the observability layer: attaching a bus — with
any combination of subscribers — NEVER changes a run.  ``ClusterStats``
dataclass equality covers every per-node counter, per-port counter, the
event count, queue depth and the simulated clock, so these tests are
bitwise golden checks, not tolerances.
"""

import numpy as np
import pytest

from repro.obs import ChromeTraceExporter, EventBus, MetricsRegistry, PhaseProfiler
from repro.runtime import run_shmem
from repro.tempest import HomePolicy
from repro.tempest.config import ClusterConfig
from repro.tempest.tracing import MessageTracer
from tests.runtime.conftest import jacobi_program
from tests.tempest.test_protocol_fuzz import (
    COMBINE_ON,
    FAULT_MATRIX,
    N_NODES,
    SWITCH_MATRIX,
    build_cluster,
    fixed_schedule,
)

#: The golden configuration axis: perfect wire, fault storm, combining,
#: narrow shared switch.
CONFIGS = {
    "fault-free": {},
    "faults": {"faults": FAULT_MATRIX["storm"]},
    "combine": {"combine": COMBINE_ON},
    "switch": {"switch": SWITCH_MATRIX["narrow"]},
}


def run_schedule(instrument: bool, **cell_kwargs):
    schedule = fixed_schedule()
    cl, blocks = build_cluster(HomePolicy.ALIGNED, **cell_kwargs)
    if instrument:
        bus = cl.ensure_bus()
        # The full subscriber set at once.
        MetricsRegistry(bus, N_NODES)
        PhaseProfiler(bus, N_NODES)
        ChromeTraceExporter(bus, n_nodes=N_NODES)
        MessageTracer.on_bus(bus, N_NODES)

    def node_program(node):
        for phase_no, phase in enumerate(schedule, start=1):
            read_mask, write_mask, skew = phase[node]
            if skew:
                yield from cl.compute(node, skew * 10_000)
            reads = [b for i, b in enumerate(blocks) if read_mask >> i & 1]
            writes = [b for i, b in enumerate(blocks) if write_mask >> i & 1]
            yield from cl.read_blocks(node, reads, phase=phase_no)
            yield from cl.write_blocks(node, writes, phase=phase_no)
            yield from cl.barrier(node)

    return cl.run({n: node_program(n) for n in range(N_NODES)}, audit=True)


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_full_subscriber_set_is_invisible(config):
    plain = run_schedule(False, **CONFIGS[config])
    instrumented = run_schedule(True, **CONFIGS[config])
    # Dataclass equality: every counter, port, clock tick identical.
    assert plain == instrumented


def test_instrumented_application_run_identical():
    """run_shmem with every observer on: stats AND numerics byte-identical."""
    prog = jacobi_program(n=32, iters=2)
    cfg = ClusterConfig(n_nodes=4)
    plain = run_shmem(prog, cfg)

    bus = EventBus()
    MetricsRegistry(bus, 4)
    ChromeTraceExporter(bus, n_nodes=4)
    MessageTracer.on_bus(bus, 4)
    instrumented = run_shmem(prog, cfg, obs=bus, profile_phases=True)

    assert plain.stats == instrumented.stats
    assert plain.elapsed_ns == instrumented.elapsed_ns
    for name in plain.arrays:
        assert np.array_equal(plain.arrays[name], instrumented.arrays[name]), name
    assert plain.scalars == instrumented.scalars
    # The instrumented run observed real traffic while staying invisible.
    assert bus.events_published > 0
    assert instrumented.phase_breakdown is not None


def test_no_bus_means_no_events():
    """Zero-cost off: without a bus, nothing is even counted as published.

    (There is no bus object at all — the guard is ``obs is None`` at
    every publish site — so this asserts the wiring stays absent.)
    """
    prog = jacobi_program(n=32, iters=1)
    result = run_shmem(prog, ClusterConfig(n_nodes=4))
    assert result.phase_breakdown is None


def test_engine_queue_depth_and_rate_counters():
    """Satellite: cheap storm detectors on every ClusterStats summary."""
    prog = jacobi_program(n=32, iters=2)
    result = run_shmem(prog, ClusterConfig(n_nodes=4))
    stats = result.stats
    assert stats.max_queue_depth >= 4  # at least one pending event per node
    assert stats.events_dispatched > 0
    s = stats.summary()
    assert s["max_queue_depth"] == stats.max_queue_depth
    assert s["events_k"] == stats.events_dispatched / 1e3
    assert s["events_per_ms"] == pytest.approx(
        stats.events_dispatched / (stats.elapsed_ns / 1e6)
    )
    # A faulted run dispatches more events (retransmit timers) and its
    # queue runs deeper; the counters make that visible without a trace.
    faulted = run_shmem(prog, ClusterConfig(n_nodes=4),
                        faults=FAULT_MATRIX["storm"])
    assert faulted.stats.events_dispatched > stats.events_dispatched
    assert faulted.stats.max_queue_depth >= stats.max_queue_depth
