"""Figure 2, panel by panel: the run-time calls and their effect on block
states.

The paper's figure walks one non-owner-read optimization through six
snapshots (A-F).  This test executes the same call sequence on the
simulated cluster and asserts the access tags and directory state at every
panel boundary — the executable version of the figure.

Setup mirrors the figure: an owner processor, a reader processor, and
pages homed elsewhere (the figure's "home for page i" row), with a section
spanning two pages whose edges stay under the default protocol.
"""

import pytest

from repro.core.blocks import shmem_limits
from repro.core.sections import Section, StridedInterval
from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    DirState,
    Distribution,
    HomePolicy,
    SharedMemory,
)

OWNER, READER, HOME = 1, 2, 0


@pytest.fixture
def world():
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)  # home != owner
    # One distributed 1-D array; the owner's section a(m:n) is trimmed to
    # block boundaries by shmem_limits, exactly the figure's m_l:n_l.
    arr = mem.alloc("a", (128, 3), Distribution.block(3))
    cl = Cluster(cfg, mem)
    lo, hi = arr.column_byte_range(1)  # owner's column, homed at node 0
    sec = Section.of([(5, 120)], StridedInterval(1, 1))  # unaligned rows
    inner, boundary = shmem_limits(arr, sec)
    assert len(inner) > 0 and len(boundary) == 2  # the figure's edge blocks
    return cl, inner.tolist(), boundary.tolist()


def snapshot(cl, blocks):
    return {
        "tags": {n: [cl.access.get(n, b) for b in blocks] for n in range(3)},
        "dir": [cl.directory.state_of(b) for b in blocks],
        "owner": [cl.directory.owner_of(b) for b in blocks],
    }


def test_figure2_panels(world):
    cl, inner, boundary = world
    panels = {}

    def owner_prog():
        # Panel A: after shmem_limits — initial state, home holds data.
        panels["A"] = snapshot(cl, inner)
        yield from cl.ext.mk_writable(OWNER, inner)
        panels["B"] = snapshot(cl, inner)          # after mk_writable
        yield from cl.barrier(OWNER)
        yield from cl.barrier(OWNER)
        yield from cl.write_blocks(OWNER, inner, phase=1)
        yield from cl.ext.send_blocks(OWNER, inner, READER)
        yield from cl.barrier(OWNER)
        yield from cl.barrier(OWNER)

    def reader_prog():
        yield from cl.barrier(READER)
        yield from cl.ext.implicit_writable(READER, inner)
        panels["C"] = snapshot(cl, inner)          # after implicit_writable
        yield from cl.barrier(READER)
        yield from cl.ext.ready_to_recv(READER, len(inner))
        panels["D"] = snapshot(cl, inner)          # after send + ready_recv
        yield from cl.read_blocks(READER, inner)
        panels["E"] = snapshot(cl, inner)          # after the loop reads
        yield from cl.barrier(READER)
        yield from cl.ext.implicit_invalidate(READER, inner)
        panels["F"] = snapshot(cl, inner)          # after implicit_invalidate
        yield from cl.barrier(READER)

    def home_prog():
        for _ in range(4):
            yield from cl.barrier(HOME)

    cl.run({HOME: home_prog(), OWNER: owner_prog(), READER: reader_prog()})

    # Panel A: home holds the only (writable) copy; everyone else invalid.
    assert all(t is AccessTag.READWRITE for t in panels["A"]["tags"][HOME])
    assert all(t is AccessTag.INVALID for t in panels["A"]["tags"][OWNER])
    assert all(s is DirState.IDLE for s in panels["A"]["dir"])

    # Panel B: mk_writable made the owner exclusive; the directory knows it
    # ("the directory information reflects that the owner has the current
    # and only valid copy, relieving the actual home").
    assert all(t is AccessTag.READWRITE for t in panels["B"]["tags"][OWNER])
    assert all(t is AccessTag.INVALID for t in panels["B"]["tags"][HOME])
    assert all(s is DirState.EXCLUSIVE for s in panels["B"]["dir"])
    assert all(o == OWNER for o in panels["B"]["owner"])

    # Panel C: the reader holds readwrite tags "even though no data resides
    # in them"; the directory still believes exclusive-at-owner.
    assert all(t is AccessTag.READWRITE for t in panels["C"]["tags"][READER])
    assert all(s is DirState.EXCLUSIVE for s in panels["C"]["dir"])
    assert all(o == OWNER for o in panels["C"]["owner"])

    # Panel D: data has arrived; tags unchanged, directory still incoherent
    # with reality (that's the compiler's controlled incoherence).
    assert all(t is AccessTag.READWRITE for t in panels["D"]["tags"][READER])
    assert all(o == OWNER for o in panels["D"]["owner"])
    for b in inner:
        assert cl.directory.copy_is_current(READER, b)

    # Panel E: loop reads hit — no faults were taken on controlled blocks.
    assert cl.stats[READER].read_misses == 0

    # Panel F: consistency restored — reader invalid again, the directory's
    # belief (exclusive at owner) is true once more.
    assert all(t is AccessTag.INVALID for t in panels["F"]["tags"][READER])
    assert all(s is DirState.EXCLUSIVE for s in panels["F"]["dir"])
    assert all(o == OWNER for o in panels["F"]["owner"])


def test_boundary_blocks_stay_with_default_protocol(world):
    cl, inner, boundary = world

    def owner_prog():
        yield from cl.ext.mk_writable(OWNER, inner)
        yield from cl.barrier(OWNER)
        yield from cl.barrier(OWNER)
        yield from cl.ext.send_blocks(OWNER, inner, READER)
        yield from cl.barrier(OWNER)

    def reader_prog():
        yield from cl.barrier(READER)
        yield from cl.ext.implicit_writable(READER, inner)
        yield from cl.barrier(READER)
        yield from cl.ext.ready_to_recv(READER, len(inner))
        # The loop also touches the two edge blocks: they demand-miss.
        yield from cl.read_blocks(READER, inner + boundary)
        yield from cl.barrier(READER)

    def home_prog():
        for _ in range(3):
            yield from cl.barrier(HOME)

    stats = cl.run({HOME: home_prog(), OWNER: owner_prog(), READER: reader_prog()})
    assert stats[READER].read_misses == len(boundary)  # edges only
