"""Closed-form validation: the simulator must match pencil-and-paper counts.

Geometry chosen so every quantity has an exact analytic value: 4 nodes,
64×32 doubles.  A column is 512 B = exactly 4 blocks; each node owns 8
columns = exactly one 4 KB page, so home == owner everywhere (no remote
directory traffic muddying the arithmetic), and halo sections are whole
block-aligned columns (no boundary blocks).

Derivation (per iteration of sweep+copy):

* halo columns read across boundaries: node0 reads col 8; node1 reads
  cols 7 and 16; node2 reads 15 and 24; node3 reads 23 — six directed
  transfers of 4 blocks each;
* unoptimized: each halo block is re-fetched every iteration (2-message
  clean read), and each shared column of ``a`` is re-claimed by its owner
  in the copy loop (local write transaction: INV + ACK to the one reader);
* optimized: senders own their homes, so mk_writable is message-free; the
  six transfers coalesce into one 4-block DATA payload each; *zero*
  demand misses and *zero* coherence messages.

Any drift in the protocol, analysis or planner shows up as an off-by-N.
"""

import pytest

from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_shmem
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

N_NODES = 4
ROWS = 64                       # 512 B columns = 4 blocks
COLS = 32                       # 8 columns per node = 1 page per node
BLOCKS_PER_COL = ROWS * 8 // 128
ITERS = 5
HALO_COLS_PER_ITER = 1 + 2 + 2 + 1   # directed transfers per iteration
TRANSFERS_PER_ITER = 6


def whole_column_jacobi():
    b = ProgramBuilder("exact")
    full = S(0, ROWS - 1)
    a = b.array("a", (ROWS, COLS))
    new = b.array("new", (ROWS, COLS))
    b.forall(0, COLS - 1, a[full, I], 1.0, label="init")
    with b.timesteps(ITERS):
        b.forall(1, COLS - 2, new[full, I],
                 (a[full, I - 1] + a[full, I + 1]) * 0.5, label="sweep")
        b.forall(1, COLS - 2, a[full, I], new[full, I], label="copy")
    return b.build()


@pytest.fixture(scope="module")
def runs():
    cfg = ClusterConfig(n_nodes=N_NODES)
    prog = whole_column_jacobi()
    return run_shmem(prog, cfg), run_shmem(prog, cfg, optimize=True)


class TestUnoptimizedCounts:
    def test_read_miss_count_exact(self, runs):
        unopt, _ = runs
        per_node = [1, 2, 2, 1]
        for node, halo_cols in enumerate(per_node):
            assert (
                unopt.stats.nodes[node].read_misses
                == halo_cols * BLOCKS_PER_COL * ITERS
            ), node
        assert sum(
            s.read_misses for s in unopt.stats.nodes
        ) == HALO_COLS_PER_ITER * BLOCKS_PER_COL * ITERS

    def test_write_fault_count_exact(self, runs):
        unopt, _ = runs
        # Only a's six remotely-read columns fault, re-claimed by their
        # owners in the copy loop each iteration; new is never read
        # remotely and never faults.
        per_node = [1, 2, 2, 1]  # shared columns owned per node
        for node, cols in enumerate(per_node):
            assert (
                unopt.stats.nodes[node].write_faults
                == cols * BLOCKS_PER_COL * ITERS
            ), node

    def test_coherence_message_count_exact(self, runs):
        unopt, _ = runs
        fetches = HALO_COLS_PER_ITER * BLOCKS_PER_COL * ITERS
        m = unopt.stats.messages_by_kind()
        assert m[MsgKind.READ_REQ] == fetches
        assert m[MsgKind.READ_RESP] == fetches
        assert m[MsgKind.INV] == fetches
        assert m[MsgKind.ACK] == fetches
        # home == owner everywhere: no remote write-request traffic.
        assert m.get(MsgKind.WRITE_REQ, 0) == 0
        assert m.get(MsgKind.GRANT, 0) == 0
        assert m.get(MsgKind.PUT_REQ, 0) == 0
        coh = sum(v for k, v in m.items() if k in COHERENCE_KINDS)
        assert coh == 4 * fetches


class TestOptimizedCounts:
    def test_zero_demand_misses(self, runs):
        _, opt = runs
        assert opt.total_misses == 0

    def test_data_message_count_exact(self, runs):
        _, opt = runs
        m = opt.stats.messages_by_kind()
        assert m[MsgKind.DATA] == TRANSFERS_PER_ITER * ITERS

    def test_zero_coherence_messages(self, runs):
        _, opt = runs
        m = opt.stats.messages_by_kind()
        coh = sum(v for k, v in m.items() if k in COHERENCE_KINDS)
        assert coh == 0

    def test_bytes_on_wire_exact(self, runs):
        _, opt = runs
        m = opt.stats.messages_by_kind()
        data_bytes = TRANSFERS_PER_ITER * ITERS * (16 + BLOCKS_PER_COL * 128)
        non_data_msgs = sum(v for k, v in m.items() if k != MsgKind.DATA)
        # Everything else (barriers, reduce) is header-only.
        expect = data_bytes + 16 * non_data_msgs
        assert sum(s.bytes_sent for s in opt.stats.nodes) == expect

    def test_barrier_count_exact(self, runs):
        _, opt = runs
        # init + 2 loops/iter, each with: 2 plan stage barriers (sweep
        # only; the copy loop is local => empty plan) + 1 loop-end barrier.
        m = opt.stats.messages_by_kind()
        sweeps_with_plans = ITERS          # the sweep loop per iteration
        loop_end = 1 + 2 * ITERS           # init + sweep + copy
        expect_rounds = loop_end + 2 * sweeps_with_plans
        assert m[MsgKind.BARRIER_ARRIVE] == expect_rounds * N_NODES
        assert m[MsgKind.BARRIER_RELEASE] == expect_rounds * N_NODES
