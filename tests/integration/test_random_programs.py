"""End-to-end fuzz: random mini-HPF programs through every backend.

Hypothesis generates small random programs — random array shapes, random
stencil offsets and coefficients, random loop bounds, optional reductions
and time-step loops — and asserts the system-level invariants:

* every backend (unopt, optimized with every knob, msgpass) computes
  numerics identical to the uniprocessor reference;
* no stale read, contract violation or deadlock occurs anywhere;
* the optimized run never takes more demand misses than the unoptimized.

This is the widest net over the whole pipeline: analysis, planning,
contract, protocol and executors all under one generator.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig


@st.composite
def stencil_programs(draw):
    rows = draw(st.sampled_from([8, 20, 32]))        # 20 => unaligned columns
    cols = draw(st.sampled_from([16, 24, 33]))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    n_sweeps = draw(st.integers(1, 2))
    timesteps = draw(st.integers(1, 3))
    max_off = draw(st.integers(1, 2))
    with_reduce = draw(st.booleans())

    b = ProgramBuilder("fuzz")
    seed = draw(st.integers(0, 2**16))

    def init(shape, seed=seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(shape)

    u = b.array("u", (rows, cols), dist=dist, init=init)
    v = b.array("v", (rows, cols), dist=dist)
    full = S(0, rows - 1)
    lo = max_off
    hi = cols - 1 - max_off

    with b.timesteps(timesteps):
        for s in range(n_sweeps):
            offsets = draw(
                st.lists(st.integers(-max_off, max_off), min_size=1, max_size=3)
            )
            coeffs = draw(
                st.lists(
                    st.floats(-2, 2, allow_nan=False, width=32),
                    min_size=len(offsets),
                    max_size=len(offsets),
                )
            )
            expr = None
            for off, c in zip(offsets, coeffs):
                term = u[full, I + off] * float(c)
                expr = term if expr is None else expr + term
            b.forall(lo, hi, v[full, I], expr, label=f"sweep{s}")
            b.forall(lo, hi, u[full, I], v[full, I] * 0.5 + u[full, I] * 0.5,
                     label=f"mix{s}")
        if with_reduce:
            b.reduce("norm", 0, cols - 1, u[full, I] * u[full, I])
    return b.build()


CFG = ClusterConfig(n_nodes=4)


@given(prog=stencil_programs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_programs_all_backends_agree(prog):
    uni = run_uniproc(prog, CFG)
    unopt = run_shmem(prog, CFG)
    opt = run_shmem(prog, CFG, optimize=True)
    rte = run_shmem(prog, CFG, optimize=True, rt_elim=True)
    pre = run_shmem(prog, CFG, optimize=True, pre=True)
    adv = run_shmem(prog, CFG, optimize=True, advisory="prefetch")
    mp = run_msgpass(prog, CFG)
    for r in (unopt, opt, rte, pre, adv, mp):
        r.assert_same_numerics(uni)
    assert opt.total_misses <= unopt.total_misses


@given(prog=stencil_programs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_programs_update_protocol_agrees(prog):
    uni = run_uniproc(prog, CFG)
    upd = run_shmem(prog, CFG, protocol="update")
    upd.assert_same_numerics(uni)
