"""Failure injection: broken compiler schedules must be *caught*, loudly.

The value of the contract/validator machinery is that a buggy planner can
never silently compute garbage.  Each test here hand-builds a schedule
with one of the paper's preconditions removed and asserts the specific
detector that fires.
"""

import pytest

from repro.sim import SimulationError
from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.directory import StaleReadError
from repro.tempest.extensions import ContractViolation
from tests.tempest.conftest import run_programs


def build(home_policy=HomePolicy.NODE0):
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=home_policy)
    a = mem.alloc("a", (16, 3), Distribution.block(3))
    return Cluster(cfg, mem), a


class TestMissingInvalidate:
    def test_stale_hit_detected_next_phase(self):
        # The receiver "forgets" implicit_invalidate; the producer's next
        # (silent, exclusive) write leaves it stale, and the next read hits.
        cl, a = build()
        b = a.block_of_element((0, 1))

        def producer():
            yield from cl.ext.mk_writable(1, [b])
            yield from cl.barrier(1)
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.ext.send_blocks(1, [b], 2)
            yield from cl.barrier(1)
            yield from cl.write_blocks(1, [b], phase=2)  # silent: exclusive
            yield from cl.barrier(1)

        def consumer():
            yield from cl.ext.implicit_writable(2, [b])
            yield from cl.barrier(2)
            yield from cl.ext.ready_to_recv(2, 1)
            yield from cl.read_blocks(2, [b], phase=1)
            # BUG: no implicit_invalidate here.
            yield from cl.barrier(2)
            yield from cl.barrier(2)
            yield from cl.read_blocks(2, [b], phase=3)  # stale hit!

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        with pytest.raises(StaleReadError):
            run_programs(cl, n0=home(), n1=producer(), n2=consumer())


class TestMissingImplicitWritable:
    def test_unprepared_receiver_detected_at_arrival(self):
        cl, a = build()
        b = a.block_of_element((0, 1))

        def producer():
            yield from cl.ext.mk_writable(1, [b])
            yield from cl.ext.send_blocks(1, [b], 2)

        with pytest.raises(ContractViolation, match="implicit_writable"):
            run_programs(cl, n1=producer())


class TestMissingBarrier:
    def test_send_racing_implicit_writable_detected(self):
        # Without the barrier between steps 2 and 3, the data message can
        # arrive before the receiver's tags are set.
        cl, a = build()
        b = a.block_of_element((0, 1))

        def producer():
            yield from cl.ext.mk_writable(1, [b])
            # BUG: no synchronization with the receiver.
            yield from cl.ext.send_blocks(1, [b], 2)

        def consumer():
            yield from cl.compute(2, 10_000_000)  # receiver is late
            yield from cl.ext.implicit_writable(2, [b])
            yield from cl.ext.ready_to_recv(2, 1)

        with pytest.raises(ContractViolation, match="missing barrier"):
            run_programs(cl, n1=producer(), n2=consumer())


class TestStaleSender:
    def test_sender_without_current_copy_detected(self):
        # A sender that skipped mk_writable after another node rewrote the
        # block would push stale bytes; the send-side currency check fires.
        cl, a = build()
        b = a.block_of_element((0, 1))

        def interloper():
            yield from cl.write_blocks(0, [b], phase=1)
            yield from cl.barrier(0)

        def sender():
            yield from cl.barrier(1)
            # BUG: no mk_writable; our copy predates node 0's write.
            yield from cl.ext.send_blocks(1, [b], 2)

        def receiver():
            yield from cl.ext.implicit_writable(2, [b])
            yield from cl.barrier(2)

        with pytest.raises(ContractViolation, match="stale"):
            run_programs(cl, n0=interloper(), n1=sender(), n2=receiver())


class TestCountMismatch:
    def test_receiver_waiting_for_more_than_sent_deadlocks_loudly(self):
        cl, a = build()
        b = a.block_of_element((0, 1))

        def producer():
            yield from cl.ext.mk_writable(1, [b])
            yield from cl.ext.send_blocks(1, [b], 2)

        def consumer():
            yield from cl.ext.implicit_writable(2, [b])
            yield from cl.ext.ready_to_recv(2, 2)  # BUG: expects 2 blocks

        with pytest.raises(SimulationError, match="deadlock.*node2"):
            run_programs(cl, n1=producer(), n2=consumer())


class TestMismatchedBarriers:
    def test_lopsided_barrier_counts_deadlock_loudly(self):
        cl, _a = build()

        def eager():
            yield from cl.barrier(0)
            yield from cl.barrier(0)  # BUG: second barrier nobody joins

        def others(n):
            yield from cl.barrier(n)

        with pytest.raises(SimulationError, match="deadlock"):
            run_programs(cl, n0=eager(), n1=others(1), n2=others(2))


class TestOverlappingRangesConflict:
    """Fuzz-found: a block compiler-controlled (and retained under rt-elim
    or PRE) in one loop but *boundary* (demand-read) in another loop of the
    same program.  Without the conflict resolution in the executor, the
    demand read hits the retained stale tag — the paper's "extra work
    required for dealing with overlapping ranges; we omit the details".
    """

    @staticmethod
    def _program():
        import numpy as np

        from repro.hpf.dsl import I, ProgramBuilder, S

        b = ProgramBuilder("overlap")
        # 8-double (64 B) columns: two columns per 128 B block, so a
        # 1-column halo is boundary while a 2-column halo is controlled.
        u = b.array("u", (8, 16), init=lambda s: np.arange(128.0).reshape(s))
        v = b.array("v", (8, 16))
        full = S(0, 7)
        with b.timesteps(3):
            b.forall(2, 13, v[full, I], u[full, I - 1] * 0.25, label="one_col")
            b.forall(2, 13, u[full, I], v[full, I] * 0.5 + u[full, I] * 0.5,
                     label="mix0")
            b.forall(2, 13, v[full, I], u[full, I - 2] * 0.125, label="two_col")
            b.forall(2, 13, u[full, I], v[full, I] * 0.5 + u[full, I] * 0.5,
                     label="mix1")
        return b.build()

    @pytest.mark.parametrize(
        "options",
        [dict(rt_elim=True), dict(pre=True), dict(rt_elim=True, pre=True)],
        ids=["rt_elim", "pre", "both"],
    )
    def test_retained_vs_demand_read_conflict_resolved(self, options):
        from repro.runtime import run_shmem, run_uniproc
        from repro.tempest.config import ClusterConfig

        cfg = ClusterConfig(n_nodes=4)
        prog = self._program()
        result = run_shmem(prog, cfg, optimize=True, **options)
        result.assert_same_numerics(run_uniproc(prog, cfg))
