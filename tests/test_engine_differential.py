"""Differential golden test: heap scheduler vs calendar-queue scheduler.

The calendar-queue engine (PR 9) replaced the seed's single binary heap.
The seed scheduler survives as ``Engine(scheduler="heap")`` — selected here
via the ``REPRO_ENGINE`` environment variable, the supported debug flag —
and the rewrite's correctness contract is that both schedulers produce
**bit-identical simulated results** on every configuration: same elapsed
time, same ClusterStats (full dataclass, no fields excluded), same
numerics, across the fault / combining / switch / crash fuzz matrix.

The matrix deliberately includes the degraded cells (a partition that
never heals, a crash with no restart) where recovery rolls the clock
forward externally — the calendar cursor must tolerate that too.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import APPS
from repro.runtime import run_shmem
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.faults import (
    CrashScenario,
    FaultConfig,
    LinkFaultConfig,
    PartitionScenario,
)

_STORM = FaultConfig(drop_prob=0.05, dup_prob=0.02, jitter_ns=3000, seed=7)

#: (cell-name, app, run_shmem kwargs).  A trimmed copy of the fuzz matrix:
#: every wire model (plain / combining / switch / lossy / all-three), both
#: protocols, the optimizer path, and every failure mode incl. degraded.
MATRIX = [
    ("jacobi-plain", "jacobi", dict(config=ClusterConfig(n_nodes=8))),
    ("jacobi-opt", "jacobi",
     dict(config=ClusterConfig(n_nodes=8), optimize=True, rt_elim=True)),
    ("shallow-plain", "shallow", dict(config=ClusterConfig(n_nodes=8))),
    ("jacobi-combine", "jacobi",
     dict(config=ClusterConfig(n_nodes=8, combine=CombineConfig(enabled=True)))),
    ("jacobi-switch", "jacobi",
     dict(config=ClusterConfig(n_nodes=8, switch=SwitchConfig(enabled=True)))),
    ("jacobi-storm", "jacobi",
     dict(config=ClusterConfig(n_nodes=8, faults=_STORM))),
    ("jacobi-storm-combine-switch", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8, faults=_STORM,
         combine=CombineConfig(enabled=True),
         switch=SwitchConfig(enabled=True)))),
    ("jacobi-update", "jacobi",
     dict(config=ClusterConfig(n_nodes=8), protocol="update")),
    ("jacobi-adaptive", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(drop_prob=0.03, seed=3, adaptive_rto=True)))),
    ("jacobi-linkfault", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(
             seed=5,
             link_faults=(LinkFaultConfig(src=0, dst=1, drop_prob=0.2),))))),
    ("jacobi-partition-heal", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(
             seed=2,
             partitions=(PartitionScenario(
                 name="w", nodes=frozenset({1}),
                 t_start_ns=200_000, duration_ns=5_000_000),))))),
    ("jacobi-partition-never", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(
             seed=2,
             partitions=(PartitionScenario(
                 name="w", nodes=frozenset({1}),
                 t_start_ns=200_000, duration_ns=None),))))),
    ("jacobi-crash-recover", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(
             seed=4,
             crashes=(CrashScenario(
                 node=2, t_ns=500_000, restart_delay_ns=1_000_000),),
             checkpoint_every=4)))),
    ("jacobi-crash-degraded", "jacobi",
     dict(config=ClusterConfig(
         n_nodes=8,
         faults=FaultConfig(
             seed=4,
             crashes=(CrashScenario(
                 node=2, t_ns=500_000, restart_delay_ns=None),))))),
]


def _plain(obj):
    """Recursively reduce stats/extra objects to comparable plain values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _plain(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.shape, str(obj.dtype), obj.tobytes())
    if isinstance(obj, dict):
        return {k: _plain(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    return obj


def _run(app, kw, scheduler, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", scheduler)
    return run_shmem(APPS[app].program("default"), **kw)


@pytest.mark.parametrize("name,app,kw", MATRIX, ids=[m[0] for m in MATRIX])
def test_heap_and_calendar_bit_identical(name, app, kw, monkeypatch):
    heap = _run(app, kw, "heap", monkeypatch)
    cal = _run(app, kw, "calendar", monkeypatch)

    # Simulated clock and completion state.
    assert cal.elapsed_ns == heap.elapsed_ns
    assert cal.completed == heap.completed

    # Full ClusterStats dataclass equality — including the engine-side
    # diagnostics (events_dispatched, max_queue_depth): the fused fast
    # paths schedule the *same* event chains the classic paths do, so even
    # the event count and queue high-water must agree.
    assert _plain(cal.stats) == _plain(heap.stats)

    # Numerics: every output array bit-for-bit.
    assert set(cal.arrays) == set(heap.arrays)
    for k in cal.arrays:
        assert np.array_equal(cal.arrays[k], heap.arrays[k]), k
    assert cal.scalars == heap.scalars

    # Run metadata (failure objects carry timestamps/labels; compare the
    # rest structurally).
    ek = {k: v for k, v in cal.extra.items() if k != "failure"}
    hk = {k: v for k, v in heap.extra.items() if k != "failure"}
    assert _plain(ek) == _plain(hk)
