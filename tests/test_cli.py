"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["jacobi"])
        assert args.app == "jacobi"
        assert args.scale == "default"
        assert args.nodes == 8
        assert not args.no_opt

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["linpack"])

    def test_all_flags_parse(self):
        args = build_parser().parse_args(
            [
                "grav", "--scale", "paper", "--nodes", "4", "--single-cpu",
                "--no-bulk", "--rt-elim", "--pre", "--advisory", "prefetch",
                "--param", "n=17",
            ]
        )
        assert args.advisory == "prefetch" and args.param == ["n=17"]

    def test_switch_flags_parse(self):
        args = build_parser().parse_args(
            ["jacobi", "--switch", "--switch-ports", "4", "--switch-bw", "80"]
        )
        assert args.switch and args.switch_ports == 4 and args.switch_bw == 80.0
        args = build_parser().parse_args(["jacobi", "--no-switch"])
        assert not args.switch
        assert build_parser().parse_args(["jacobi"]).switch is False


class TestMain:
    def test_runs_small_app(self, capsys):
        rc = main(["grav", "--nodes", "4", "--param", "n=17", "--param", "iters=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "misses" in out

    def test_msgpass_backend(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--backend", "msgpass",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0
        assert "msgpass" in capsys.readouterr().out

    def test_update_protocol_requires_no_opt(self):
        with pytest.raises(ValueError, match="invalidate"):
            main(["jacobi", "--nodes", "4", "--protocol", "update",
                  "--param", "n=32", "--param", "iters=1"])

    def test_update_protocol_with_no_opt(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--protocol", "update", "--no-opt",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0

    def test_switch_run_reports_contention(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--switch",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "switch:" in out
        assert "ports" in out

    def test_bad_param_syntax(self, capsys):
        rc = main(["jacobi", "--param", "n32"])
        assert rc == 2
        assert "KEY=VAL" in capsys.readouterr().err
