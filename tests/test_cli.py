"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    _parse_crash,
    _parse_link_fault,
    _parse_partition,
    build_parser,
    main,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["jacobi"])
        assert args.app == "jacobi"
        assert args.scale == "default"
        assert args.nodes == 8
        assert not args.no_opt

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["linpack"])

    def test_all_flags_parse(self):
        args = build_parser().parse_args(
            [
                "grav", "--scale", "paper", "--nodes", "4", "--single-cpu",
                "--no-bulk", "--rt-elim", "--pre", "--advisory", "prefetch",
                "--param", "n=17",
            ]
        )
        assert args.advisory == "prefetch" and args.param == ["n=17"]

    def test_switch_flags_parse(self):
        args = build_parser().parse_args(
            ["jacobi", "--switch", "--switch-ports", "4", "--switch-bw", "80"]
        )
        assert args.switch and args.switch_ports == 4 and args.switch_bw == 80.0
        args = build_parser().parse_args(["jacobi", "--no-switch"])
        assert not args.switch
        assert build_parser().parse_args(["jacobi"]).switch is False


class TestMain:
    def test_runs_small_app(self, capsys):
        rc = main(["grav", "--nodes", "4", "--param", "n=17", "--param", "iters=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "misses" in out

    def test_msgpass_backend(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--backend", "msgpass",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0
        assert "msgpass" in capsys.readouterr().out

    def test_update_protocol_requires_no_opt(self):
        with pytest.raises(ValueError, match="invalidate"):
            main(["jacobi", "--nodes", "4", "--protocol", "update",
                  "--param", "n=32", "--param", "iters=1"])

    def test_update_protocol_with_no_opt(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--protocol", "update", "--no-opt",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0

    def test_switch_run_reports_contention(self, capsys):
        rc = main(["jacobi", "--nodes", "4", "--switch",
                   "--param", "n=32", "--param", "iters=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "switch:" in out
        assert "ports" in out

    def test_bad_param_syntax(self, capsys):
        rc = main(["jacobi", "--param", "n32"])
        assert rc == 2
        assert "KEY=VAL" in capsys.readouterr().err


class TestFaultOverlayParsing:
    def test_link_fault_spec(self):
        lf = _parse_link_fault("0:1:drop=0.3,jitter_us=50")
        assert lf.key == (0, 1)
        assert lf.drop_prob == 0.3
        assert lf.jitter_ns == 50_000
        assert lf.dup_prob is None  # unstated axes inherit the uniform value

    def test_link_fault_stall_keys(self):
        lf = _parse_link_fault("2:0:stall=0.1,stall_us=300")
        assert lf.stall_prob == 0.1 and lf.stall_ns == 300_000

    @pytest.mark.parametrize(
        "spec",
        ["0:1", "0:1:drop", "0:1:bogus=1", "0:1:", "1:1:drop=0.5"],
    )
    def test_bad_link_fault_spec(self, spec):
        with pytest.raises(ValueError):
            _parse_link_fault(spec)

    def test_partition_spec(self):
        s = _parse_partition("1,2:100:3000", 0)
        assert s.nodes == frozenset({1, 2})
        assert s.t_start_ns == 100_000
        assert s.duration_ns == 3_000_000
        assert s.name == "cli-partition-0"

    @pytest.mark.parametrize("dur", ["never", "inf", "NEVER"])
    def test_partition_never_heals(self, dur):
        assert _parse_partition(f"1:0:{dur}", 1).duration_ns is None

    @pytest.mark.parametrize("spec", ["1:100", "1:100:3000:9", ":100:never"])
    def test_bad_partition_spec(self, spec):
        with pytest.raises(ValueError):
            _parse_partition(spec, 0)


class TestFaultMain:
    SMALL = ["grav", "--nodes", "4", "--param", "n=17", "--param", "iters=1"]

    def test_stall_axis_reachable(self, capsys):
        rc = main(self.SMALL + ["--fault-stall", "0.2", "--fault-stall-us", "300"])
        assert rc == 0
        assert "reliability" in capsys.readouterr().out

    def test_stall_without_window_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--fault-stall", "0.2"])
        assert "stall_ns" in capsys.readouterr().err

    def test_rto_adaptive_alone_rejected(self, capsys):
        # Historically silently ignored; must fail fast now.
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--rto-adaptive"])
        assert "--fault-" in capsys.readouterr().err

    def test_rto_adaptive_with_faults_accepted(self, capsys):
        rc = main(self.SMALL + ["--rto-adaptive", "--fault-drop", "0.05"])
        assert rc == 0
        assert "adaptive RTO" in capsys.readouterr().out

    def test_rto_max_alone_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--rto-max-us", "20000"])
        assert "--rto-max-us" in capsys.readouterr().err

    def test_rto_max_with_faults_accepted(self, capsys):
        rc = main(self.SMALL + ["--rto-max-us", "20000",
                                "--fault-drop", "0.05"])
        assert rc == 0
        assert "reliability" in capsys.readouterr().out

    def test_rto_max_below_initial_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--rto-max-us", "10", "--fault-drop", "0.05"])
        assert "max_backoff_ns" in capsys.readouterr().err

    def test_link_profile_run(self, capsys):
        rc = main(self.SMALL + ["--fault-link", "0:1:drop=0.3"])
        assert rc == 0
        assert "link profiles:    0->1" in capsys.readouterr().out

    def test_bad_link_profile_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--fault-link", "0:1:bogus=1"])
        assert "bogus" in capsys.readouterr().err

    def test_partition_node_out_of_range(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--fault-partition", "9:100:never"])
        assert "outside" in capsys.readouterr().err

    def test_healed_partition_completes(self, capsys):
        rc = main(self.SMALL + ["--fault-partition", "1:100:3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "healed and drained" in out
        assert "post-heal" in out

    def test_permanent_partition_degrades_with_exit_4(self, capsys):
        rc = main(self.SMALL + ["--fault-partition", "1:100:never",
                                "--fault-retries", "3"])
        assert rc == 4
        out = capsys.readouterr().out
        assert "RUN DEGRADED" in out
        assert "dead channels" in out
        assert "recorded before give-up" in out


class TestCrashMain:
    SMALL = ["jacobi", "--param", "n=32", "--param", "iters=2"]

    def test_crash_spec(self):
        s = _parse_crash("2:3000:500")
        assert (s.node, s.t_ns, s.restart_delay_ns) == (2, 3_000_000, 500_000)

    @pytest.mark.parametrize("never", ["never", "inf", "NEVER"])
    def test_crash_spec_never_restarts(self, never):
        assert _parse_crash(f"1:100:{never}").restart_delay_ns is None

    @pytest.mark.parametrize("spec", ["1", "1:2:3:4", "x:100", "1:y"])
    def test_bad_crash_spec(self, spec):
        with pytest.raises((ValueError, SystemExit)):
            _parse_crash(spec)

    def test_crash_recovery_run(self, capsys):
        rc = main(self.SMALL + ["--fault-crash", "2:3000:500",
                                "--checkpoint-every", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fail-stop:" in out
        assert "1 rollback(s)" in out
        assert "outage recovered" in out

    def test_crash_without_checkpoint_degrades_with_exit_4(self, capsys):
        rc = main(self.SMALL + ["--fault-crash", "2:3000:500"])
        assert rc == 4
        out = capsys.readouterr().out
        assert "RUN DEGRADED" in out
        assert "fail-stopped" in out

    def test_checkpoint_without_crash_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--checkpoint-every", "2"])
        assert "--fault-crash" in capsys.readouterr().err

    def test_heartbeat_without_crash_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--heartbeat-us", "200"])
        assert "--fault-crash" in capsys.readouterr().err

    def test_crash_node_out_of_range(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--fault-crash", "9:100"])
        assert "outside" in capsys.readouterr().err

    def test_duplicate_crash_node_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--fault-crash", "1:100",
                               "--fault-crash", "1:500"])
        assert "once" in capsys.readouterr().err
