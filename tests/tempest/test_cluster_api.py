"""Direct tests of the Cluster facade."""

import pytest

from repro.tempest import Cluster, ClusterConfig, Distribution, SharedMemory


def build(n_nodes=2, **cfg_kw):
    cfg = ClusterConfig(n_nodes=n_nodes, **cfg_kw)
    mem = SharedMemory(cfg)
    arr = mem.alloc("a", (16, n_nodes * 2), Distribution.block(n_nodes))
    return Cluster(cfg, mem), arr


class TestConstruction:
    def test_config_mismatch_rejected(self):
        cfg_a = ClusterConfig(n_nodes=2)
        cfg_b = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg_a)
        mem.alloc("a", (16, 2), Distribution.block(2))
        with pytest.raises(ValueError, match="different config"):
            Cluster(cfg_b, mem)

    def test_equal_config_values_accepted(self):
        # A distinct-but-equal config object is fine (frozen dataclass eq).
        cfg_a = ClusterConfig(n_nodes=2)
        cfg_b = ClusterConfig(n_nodes=2)
        mem = SharedMemory(cfg_a)
        mem.alloc("a", (16, 2), Distribution.block(2))
        Cluster(cfg_b, mem)

    def test_initial_tags_follow_homes(self):
        cl, arr = build()
        from repro.tempest import AccessTag

        for b in arr.block_range():
            home = cl.directory.home_of(b)
            assert cl.access.get(home, b) is AccessTag.READWRITE
            for n in range(cl.n_nodes):
                if n != home:
                    assert cl.access.get(n, b) is AccessTag.INVALID


class TestRunValidation:
    def test_missing_program_rejected(self):
        cl, _ = build()

        def prog():
            return
            yield

        with pytest.raises(ValueError, match="one program per node"):
            cl.run({0: prog()})

    def test_extra_program_rejected(self):
        cl, _ = build()

        def prog():
            return
            yield

        with pytest.raises(ValueError, match="one program per node"):
            cl.run({0: prog(), 1: prog(), 2: prog()})

    def test_elapsed_recorded(self):
        cl, _ = build()

        def prog(n):
            yield from cl.compute(n, 123_000)

        stats = cl.run({0: prog(0), 1: prog(1)})
        assert stats.elapsed_ns == 123_000


class TestFragments:
    def test_compute_units_uses_rate(self):
        cl, _ = build()

        def prog():
            yield from cl.compute_units(0, 100)

        cl.engine.spawn(prog())
        cl.engine.run()
        assert cl.engine.now == 100 * cl.config.compute_ns_per_unit

    def test_empty_reads_and_writes_are_noops(self):
        cl, _ = build()

        def prog():
            yield from cl.read_blocks(0, [])
            yield from cl.write_blocks(0, [], phase=1)
            return cl.engine.now

        done = cl.engine.spawn(prog())
        cl.engine.run()
        assert done.value == 0
        assert cl.stats.total_messages == 0

    def test_read_accepts_numpy_and_lists(self):
        import numpy as np

        cl, arr = build()
        b = arr.base_block

        def prog():
            yield from cl.read_blocks(1, np.asarray([b]))
            yield from cl.read_blocks(1, [b])  # hit, list form

        stats = cl.engine.spawn(prog())
        cl.engine.run()
        assert cl.stats[1].read_misses == 1

    def test_write_to_own_homed_block_is_free(self):
        cl, arr = build()
        b = arr.base_block
        home = cl.directory.home_of(b)

        def prog():
            yield from cl.write_blocks(home, [b], phase=1)

        cl.engine.spawn(prog())
        cl.engine.run()
        assert cl.stats.total_messages == 0
        assert cl.stats[home].write_faults == 0
