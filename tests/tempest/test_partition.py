"""Per-link fault profiles, partition scenarios, and partition survival.

Three layers under test:

* config validation for :class:`LinkFaultConfig` / :class:`PartitionScenario`
  and their composition into :class:`FaultConfig`;
* transport mechanics — private RNG streams per overridden link, the
  deterministic (draw-free) partition cut, give-up/park/heal on a channel,
  and the organic-loss edge cases (drop+dup on one wire copy, ack storms);
* cluster/runtime recovery — a healed partition drains and re-proves
  coherence, a permanent one ends in a *degraded* result that preserves
  every counter accumulated before the give-up, instead of a traceback.
"""

import pytest

from repro.tempest import (
    ClusterConfig,
    FaultConfig,
    LinkFaultConfig,
    MsgKind,
    PartitionScenario,
)
from repro.tempest.faults import _US
from repro.tempest.transport import OPEN, PARTITIONED
from tests.tempest.conftest import make_cluster
from tests.tempest.test_faults import ScriptedRandom, send_and_run


def faulty_cluster(faults, n_nodes=2):
    cluster, _arr = make_cluster(n_nodes=n_nodes, faults=faults)
    return cluster


def one_partition(nodes, start_us, dur_us, name="cut", **fault_kwargs):
    """FaultConfig with a single partition window (durations in us)."""
    scenario = PartitionScenario(
        name,
        frozenset(nodes),
        t_start_ns=start_us * _US,
        duration_ns=None if dur_us is None else dur_us * _US,
    )
    return FaultConfig(partitions=(scenario,), **fault_kwargs)


# --------------------------------------------------------------------- #
# config validation
# --------------------------------------------------------------------- #
class TestLinkFaultConfig:
    def test_minimal_override(self):
        lf = LinkFaultConfig(3, 0, drop_prob=0.3)
        assert lf.key == (3, 0)
        assert lf.dup_prob is None  # inherit the uniform value

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(src=1, dst=1, drop_prob=0.1),      # loopback is dead config
            dict(src=-1, dst=0, drop_prob=0.1),
            dict(src=0, dst=1, drop_prob=1.0),
            dict(src=0, dst=1, dup_prob=-0.5),
            dict(src=0, dst=1, jitter_ns=-1),
            dict(src=0, dst=1, stall_ns=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkFaultConfig(**kwargs)

    def test_profiles_enable_faults(self):
        faults = FaultConfig(link_faults=(LinkFaultConfig(0, 1, drop_prob=0.2),))
        assert faults.enabled
        assert faults.link_overrides() == {(0, 1): faults.link_faults[0]}

    def test_duplicate_profile_rejected(self):
        with pytest.raises(ValueError, match="duplicate link profile"):
            FaultConfig(
                link_faults=(
                    LinkFaultConfig(0, 1, drop_prob=0.2),
                    LinkFaultConfig(0, 1, dup_prob=0.2),
                )
            )

    def test_effective_stall_validated(self):
        # stall_prob on the link, no stall_ns anywhere: dead config.
        with pytest.raises(ValueError, match="stall_ns"):
            FaultConfig(link_faults=(LinkFaultConfig(0, 1, stall_prob=0.5),))
        # ...but a uniform stall_ns makes the override complete.
        FaultConfig(
            stall_prob=0.1, stall_ns=100,
            link_faults=(LinkFaultConfig(0, 1, stall_prob=0.5),),
        )


class TestPartitionScenario:
    def test_window_semantics(self):
        s = PartitionScenario("s", {1, 2}, t_start_ns=100, duration_ns=50)
        assert not s.active_at(99)
        assert s.active_at(100)
        assert s.active_at(149)
        assert not s.active_at(150)      # heal instant is *out* of the window
        assert s.heals and s.heal_ns == 150

    def test_never_healing(self):
        s = PartitionScenario("s", {0})
        assert s.active_at(10**12)
        assert not s.heals and s.heal_ns is None

    def test_separates_is_boundary_crossing(self):
        s = PartitionScenario("s", {1, 2})
        assert s.separates(0, 1) and s.separates(2, 3)
        assert not s.separates(1, 2)     # both inside
        assert not s.separates(0, 3)     # both outside

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="s", nodes=frozenset()),
            dict(name="s", nodes={-1}),
            dict(name="s", nodes={0}, t_start_ns=-1),
            dict(name="s", nodes={0}, duration_ns=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PartitionScenario(**kwargs)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate partition"):
            FaultConfig(
                partitions=(
                    PartitionScenario("s", {0}),
                    PartitionScenario("s", {1}),
                )
            )

    def test_partitions_enable_faults(self):
        assert one_partition({1}, 0, None).enabled


# --------------------------------------------------------------------- #
# per-link profiles: private streams, uniform links untouched
# --------------------------------------------------------------------- #
class TestLinkProfiles:
    def test_override_bypasses_uniform_stream(self):
        # The uniform stream is scripted to DROP every draw, but both
        # directions of the 0<->1 pair carry a clean override: data and ack
        # resolve through private profiles with zero rates (no draws at
        # all), so delivery must succeed on the first copy.
        faults = FaultConfig(
            drop_prob=0.9, seed=0,
            link_faults=(
                LinkFaultConfig(0, 1, drop_prob=0.0),
                LinkFaultConfig(1, 0, drop_prob=0.0),
            ),
        )
        cluster = faulty_cluster(faults)
        cluster.network.transport.rng = ScriptedRandom([0.0])  # poison pill
        log = send_and_run(cluster)
        assert len(log) == 1
        assert cluster.stats.total_drops == 0
        assert cluster.stats.total_retransmits == 0

    def test_unused_override_never_perturbs_other_links(self):
        # A profile on a link that carries no traffic must leave every
        # other link's draw sequence — and therefore the whole schedule —
        # byte-identical.
        def run(extra_links):
            faults = FaultConfig(
                drop_prob=0.3, dup_prob=0.2, jitter_ns=20 * _US, seed=9,
                link_faults=extra_links,
            )
            cluster = faulty_cluster(faults, n_nodes=3)
            log = send_and_run(cluster, n_messages=4)
            return log, cluster.stats.reliability_summary()

        base_log, base_rel = run(())
        prof_log, prof_rel = run((LinkFaultConfig(1, 2, drop_prob=0.9),))
        assert base_log == prof_log
        assert base_rel == prof_rel

    def test_overridden_link_has_private_seeded_stream(self):
        # Same config, two runs: the override's private stream is seeded
        # from (seed, src, dst), so the flaky link's behavior replays.
        def run():
            faults = FaultConfig(
                seed=3,
                link_faults=(LinkFaultConfig(0, 1, drop_prob=0.5),),
            )
            cluster = faulty_cluster(faults)
            log = send_and_run(cluster, n_messages=6)
            return log, cluster.stats.reliability_summary()

        a, b = run(), run()
        assert a == b
        assert a[1]["drops"] > 0  # the profile actually bit


# --------------------------------------------------------------------- #
# partition cut, give-up, park, heal (transport level)
# --------------------------------------------------------------------- #
class TestPartitionTransport:
    def test_frame_cut_parks_then_heals_and_delivers(self):
        # Window [0, 1000us): the frame's only wire copy is cut, the first
        # retransmit timer fires inside the window and parks the channel
        # immediately (no retry storm), the heal drains it.
        cluster = faulty_cluster(one_partition({1}, 0, 1000))
        log = send_and_run(cluster)
        assert len(log) == 1
        assert log[0][1] >= 1000 * _US            # delivered post-heal
        assert cluster.stats.total_drops == 1     # the cut copy
        assert cluster.stats.total_retransmits == 0
        assert cluster.stats.total_gave_up == 1
        t = cluster.network.transport
        assert t.parked_frames == 0
        assert t.partitioned_channels() == []
        assert t._channel(0, 1).state is OPEN
        (event,) = cluster.stats.partition_events
        assert event["scenario"] == "cut"
        assert event["healed"] is True

    def test_partition_consumes_no_rng_draws(self):
        # A scenario isolating a node nobody talks to must leave the run
        # byte-identical: cuts are pure functions of simulated time.
        def run(faults):
            cluster = faulty_cluster(faults, n_nodes=3)
            log = send_and_run(cluster, n_messages=5)
            return log, cluster.stats.reliability_summary()

        base = run(FaultConfig(drop_prob=0.3, jitter_ns=15 * _US, seed=4))
        cut = run(
            FaultConfig(
                drop_prob=0.3, jitter_ns=15 * _US, seed=4,
                partitions=(PartitionScenario("idle", {2}),),
            )
        )
        assert base == cut

    def test_never_healing_partition_parks_forever(self):
        cluster = faulty_cluster(one_partition({1}, 0, None, max_retries=3))
        log = send_and_run(cluster, n_messages=2)
        assert log == []
        t = cluster.network.transport
        assert t._channel(0, 1).state is PARTITIONED
        assert t.partitioned_channels() == [{"src": 0, "dst": 1, "parked": 2}]
        assert cluster.stats.total_gave_up == 1
        (event,) = cluster.stats.partition_events
        assert event["scenario"] == "cut" and event["healed"] is False

    def test_send_on_partitioned_channel_parks_without_wire_traffic(self):
        cluster = faulty_cluster(one_partition({1}, 0, None))
        send_and_run(cluster)                      # first frame gives up
        t = cluster.network.transport
        assert t.parked_frames == 1
        drops_before = cluster.stats.total_drops
        log = send_and_run(cluster)                # second send: parks cold
        assert log == []
        assert t.parked_frames == 2
        assert cluster.stats.total_drops == drops_before  # never hit the wire
        assert cluster.stats.total_gave_up == 1    # still one give-up event

    def test_heal_drains_in_sequence_order(self):
        cluster = faulty_cluster(one_partition({1}, 0, 800))
        log = send_and_run(cluster, n_messages=3)
        assert [i for i, _t in log] == [0, 1, 2]
        assert cluster.network.transport.parked_frames == 0

    def test_ack_crossing_partition_is_cut(self):
        # Window opens after the data frame is delivered but before its ack
        # survives: node 1's ack (1->0) is cut; the retransmit timer then
        # fires inside the window and parks; the heal re-sends and the
        # receiver dedups.  Handler still runs exactly once.
        # The 16 B header serializes in <1 us, so a window opening at 5 us
        # lets the data frame through and cuts the ack behind it.
        cluster = faulty_cluster(one_partition({1}, 5, 2000))
        log = send_and_run(cluster)
        assert len(log) == 1
        assert cluster.stats.total_gave_up == 1
        assert cluster.stats.total_dups == 1       # post-heal re-send deduped
        assert cluster.network.transport.parked_frames == 0


# --------------------------------------------------------------------- #
# organic-loss edge cases (no scenario to blame)
# --------------------------------------------------------------------- #
class TestOrganicEdgeCases:
    def test_drop_and_dup_on_same_wire_copy(self):
        # One wire copy draws BOTH faults: the original is dropped and the
        # duplicate survives — delivery is exactly-once with no retransmit.
        cluster = faulty_cluster(FaultConfig(drop_prob=0.5, dup_prob=0.5, seed=0))
        cluster.network.transport.rng = ScriptedRandom([0.0, 0.0, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1
        assert cluster.stats.total_drops == 1
        assert cluster.stats.total_dups == 0       # receiver saw one copy
        assert cluster.stats.total_retransmits == 0
        assert cluster.network.transport.in_flight == 0

    def test_ack_loss_storm_gives_up_after_delivery(self):
        # Every data copy lands, every ack dies: the receiver ran the
        # handler (exactly once) but the sender exhausts its budget and
        # parks — the historic TransportError must not resurface.
        cluster = faulty_cluster(
            FaultConfig(drop_prob=0.9, seed=0, max_retries=2)
        )
        # Alternating draws: data passes (0.95), its ack drops (0.0).
        cluster.network.transport.rng = ScriptedRandom(
            [0.95, 0.0, 0.95, 0.0, 0.95, 0.0, 0.0]
        )
        log = send_and_run(cluster)
        assert len(log) == 1                       # delivered exactly once
        assert cluster.stats.total_dups == 2       # both retransmits deduped
        assert cluster.stats.total_retransmits == 2
        assert cluster.stats.total_gave_up == 1
        t = cluster.network.transport
        assert t.partitioned_channels() == [{"src": 0, "dst": 1, "parked": 1}]
        (event,) = cluster.stats.partition_events
        assert event["scenario"] is None           # organic: nothing to heal


# --------------------------------------------------------------------- #
# cluster-level recovery: healed runs complete, permanent ones degrade
# --------------------------------------------------------------------- #
def partition_workload(cluster, n_nodes):
    def program(n):
        blocks = list(range(n_nodes))
        yield from cluster.write_blocks(n, [n], phase=1)
        yield from cluster.barrier(n)
        yield from cluster.read_blocks(n, blocks, phase=2)
        yield from cluster.barrier(n)

    return {n: program(n) for n in range(n_nodes)}


class TestClusterRecovery:
    def test_healed_partition_completes_with_clean_audit(self):
        cluster = faulty_cluster(one_partition({1}, 0, 1500), n_nodes=4)
        stats = cluster.run(partition_workload(cluster, 4), audit=True)
        assert stats.completed
        assert stats.total_gave_up > 0             # the window actually bit
        assert stats.partition_events
        assert all(e["healed"] for e in stats.partition_events)
        assert cluster.network.transport.parked_frames == 0

    def test_permanent_partition_degrades_instead_of_raising(self):
        cluster = faulty_cluster(
            one_partition({1}, 0, None, max_retries=3), n_nodes=4
        )
        stats = cluster.run(partition_workload(cluster, 4))
        assert not stats.completed
        failure = stats.failure
        assert failure is not None
        assert failure["unreachable_nodes"] == [1]
        assert failure["gave_up"] == stats.total_gave_up > 0
        assert failure["parked_frames"] > 0
        assert all(
            ch["parked"] > 0 for ch in failure["partitioned_channels"]
        )
        # Everybody blocks on the lost node eventually (barrier).
        assert set(failure["stuck"]) == {f"node{i}" for i in range(4)}

    def test_degraded_stats_preserve_counters_up_to_give_up(self):
        # Regression: the degraded path must return the stats accumulated
        # before the give-up, not a zeroed shell.  Work wholly outside the
        # partition (node 2 writing its own block) must be fully counted.
        cluster = faulty_cluster(
            one_partition({1}, 0, None, max_retries=3), n_nodes=4
        )
        stats = cluster.run(partition_workload(cluster, 4))
        assert not stats.completed
        assert stats.total_messages > 0
        assert stats.elapsed_ns > 0
        assert stats[1].net_gave_up > 0            # the cut sender recorded it
        per_node_msgs = [sum(s.messages.values()) for s in stats.nodes]
        assert any(per_node_msgs)                  # counters survived
        assert stats.summary()["completed"] is False
        assert stats.summary()["partition_events"] == len(stats.partition_events)

    def test_genuine_deadlock_still_raises(self):
        # No give-up, no partition: a node stuck at a barrier nobody else
        # reaches must stay a loud SimulationError.
        from repro.sim import SimulationError

        cluster = faulty_cluster(FaultConfig(jitter_ns=1, seed=0), n_nodes=2)

        def lonely():
            yield from cluster.barrier(0)

        def idle():
            return
            yield  # pragma: no cover

        with pytest.raises(SimulationError, match="deadlock"):
            cluster.run({0: lonely(), 1: idle()})


# --------------------------------------------------------------------- #
# runtime surface: RunResult contract
# --------------------------------------------------------------------- #
class TestRunResultContract:
    def make(self, faults):
        from repro.runtime import run_shmem
        from tests.runtime.conftest import jacobi_program

        cfg = ClusterConfig(n_nodes=4)
        return run_shmem(jacobi_program(n=32, iters=2), cfg, faults=faults)

    def test_healed_partition_run_matches_fault_free_numerics(self):
        clean = self.make(None)
        healed = self.make(one_partition({1}, 200, 2500, max_retries=6))
        assert healed.completed and clean.completed
        healed.assert_same_numerics(clean)
        events = healed.extra["partition_events"]
        assert events and all(e["healed"] for e in events)
        assert healed.extra["faults"]["partitions"] == ["cut"]

    def test_permanent_partition_returns_degraded_result(self):
        result = self.make(one_partition({1}, 200, None, max_retries=3))
        assert result.completed is False
        assert result.summary()["completed"] is False
        failure = result.extra["failure"]
        assert failure["unreachable_nodes"] == [1]
        assert failure["residual_violations"] == []  # survivors coherent
        # Partial per-node counters made it through the RunResult.
        assert result.stats.total_messages > 0
        assert result.stats.total_misses > 0
        assert result.stats[1].net_gave_up + result.stats[0].net_gave_up > 0
