"""Property tests for block-ownership helpers used by the planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tempest import ClusterConfig, Distribution, SharedMemory


def make_array(rows, cols, dist, n_nodes, block_size=128):
    cfg = ClusterConfig(n_nodes=n_nodes, block_size=block_size)
    mem = SharedMemory(cfg)
    d = Distribution.block(n_nodes) if dist == "block" else Distribution.cyclic(n_nodes)
    return mem.alloc("a", (rows, cols), d)


@given(
    rows=st.integers(1, 40),
    cols=st.integers(2, 32),
    dist=st.sampled_from(["block", "cyclic"]),
    n_nodes=st.integers(2, 8),
)
@settings(max_examples=150, deadline=None)
def test_owners_of_blocks_matches_element_owner(rows, cols, dist, n_nodes):
    arr = make_array(rows, cols, dist, n_nodes)
    blocks = np.asarray(list(arr.block_range()))
    owners = arr.owners_of_blocks(blocks)
    for b, owner in zip(blocks.tolist(), owners.tolist()):
        byte = max(b * 128, arr.base)
        col = min((byte - arr.base) // (rows * 8), cols - 1)
        assert owner == arr.owner_of_column(col)


@given(
    rows=st.integers(1, 40),
    cols=st.integers(2, 32),
    dist=st.sampled_from(["block", "cyclic"]),
    n_nodes=st.integers(2, 8),
)
@settings(max_examples=150, deadline=None)
def test_single_owner_blocks_matches_bruteforce(rows, cols, dist, n_nodes):
    arr = make_array(rows, cols, dist, n_nodes)
    blocks = np.asarray(list(arr.block_range()))
    mask = arr.single_owner_blocks(blocks)
    colbytes = rows * 8
    for b, single in zip(blocks.tolist(), mask.tolist()):
        first = max(b * 128 - arr.base, 0)
        last = min((b + 1) * 128 - 1 - arr.base, arr.nbytes - 1)
        owners = {
            arr.owner_of_column(min(byte // colbytes, cols - 1))
            for byte in (first, last)
        }
        # Columns between first and last (cyclic can alternate inside).
        for col in range(first // colbytes, min(last // colbytes, cols - 1) + 1):
            owners.add(arr.owner_of_column(col))
        assert single == (len(owners) == 1), (b, owners)


def test_replicated_rejects_owner_queries():
    cfg = ClusterConfig(n_nodes=4)
    mem = SharedMemory(cfg)
    arr = mem.alloc("r", (8, 8), Distribution.replicated(4))
    with pytest.raises(ValueError):
        arr.owners_of_blocks(np.asarray([arr.base_block]))
    with pytest.raises(ValueError):
        arr.single_owner_blocks(np.asarray([arr.base_block]))


def test_block_aligned_columns_all_single_owner():
    arr = make_array(16, 8, "block", 4)  # 16 doubles == exactly one block
    blocks = np.asarray(list(arr.block_range()))
    assert arr.single_owner_blocks(blocks).all()


def test_straddling_columns_flag_multi_owner():
    # 20-double columns straddle 128 B blocks at every owner boundary.
    arr = make_array(20, 8, "block", 4)
    blocks = np.asarray(list(arr.block_range()))
    mask = arr.single_owner_blocks(blocks)
    assert not mask.all() and mask.any()
