"""Unit tests for the statistics accounting."""

import pytest

from repro.tempest.stats import COHERENCE_KINDS, ClusterStats, MsgKind, NodeStats


class TestNodeStats:
    def test_count_message(self):
        s = NodeStats(0)
        s.count_message(MsgKind.READ_REQ, 16)
        s.count_message(MsgKind.READ_REQ, 16)
        s.count_message(MsgKind.DATA, 144)
        assert s.messages[MsgKind.READ_REQ] == 2
        assert s.bytes_sent == 176

    def test_misses_combines_reads_and_writes(self):
        s = NodeStats(0, read_misses=3, write_faults=4)
        assert s.misses == 7

    def test_comm_ns_is_the_papers_definition(self):
        s = NodeStats(0, stall_ns=10, barrier_ns=20, call_ns=30, reduce_ns=40)
        s.compute_ns = 1000  # not part of comm
        assert s.comm_ns == 100

    def test_coherence_messages_filters_kinds(self):
        s = NodeStats(0)
        s.count_message(MsgKind.READ_REQ, 16)
        s.count_message(MsgKind.DATA, 144)
        s.count_message(MsgKind.BARRIER_ARRIVE, 16)
        s.count_message(MsgKind.UPDATE, 144)
        assert s.coherence_messages == 2  # read_req + update


class TestClusterStats:
    def _stats(self):
        cs = ClusterStats.for_nodes(3)
        for i, node in enumerate(cs.nodes):
            node.read_misses = i
            node.compute_ns = 100 * (i + 1)
            node.stall_ns = 10 * i
            node.count_message(MsgKind.INV, 16)
        return cs

    def test_for_nodes_indexing(self):
        cs = ClusterStats.for_nodes(3)
        assert cs[2].node == 2

    def test_aggregates(self):
        cs = self._stats()
        assert cs.total_misses == 3
        assert cs.avg_misses_per_node == 1.0
        assert cs.total_messages == 3
        assert cs.messages_by_kind()[MsgKind.INV] == 3
        assert cs.total_bytes == 48
        assert cs.avg_compute_ns == 200
        assert cs.avg_comm_ns == 10
        assert cs.max_comm_ns == 20

    def test_summary_keys(self):
        cs = self._stats()
        cs.elapsed_ns = 5_000_000
        s = cs.summary()
        assert s["elapsed_ms"] == 5.0
        for key in ("compute_ms", "comm_ms", "misses", "messages", "mbytes"):
            assert key in s

    def test_coherence_kinds_cover_protocol_messages(self):
        for kind in (MsgKind.READ_REQ, MsgKind.GRANT, MsgKind.UPDATE_ACK):
            assert kind in COHERENCE_KINDS
        for kind in (MsgKind.DATA, MsgKind.MP_DATA, MsgKind.BARRIER_ARRIVE,
                     MsgKind.SELF_INV):
            assert kind not in COHERENCE_KINDS
