"""Tests for the advisory primitives: co-operative prefetch & self-invalidate."""

import pytest

from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    DirState,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.stats import MsgKind
from tests.tempest.conftest import run_programs


def build(n_nodes=2):
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg)
    a = mem.alloc("a", (16, 2 * n_nodes), Distribution.block(n_nodes))
    return Cluster(cfg, mem), a


class TestPrefetch:
    def test_prefetch_hides_miss_latency(self):
        cl, a = build()
        b = a.block_of_element((0, 0))  # homed at node 0

        def reader():
            yield from cl.ext.prefetch(1, [b])
            yield from cl.compute(1, 200_000)  # overlap window
            t0 = cl.engine.now
            yield from cl.read_blocks(1, [b])
            return cl.engine.now - t0

        done = cl.engine.spawn(reader())
        cl.engine.run()
        assert done.value == 0  # arrived during the compute
        assert cl.stats[1].prefetches == 1
        assert cl.stats[1].read_misses == 0

    def test_demand_read_waits_on_inflight_prefetch(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.ext.prefetch(1, [b])
            t0 = cl.engine.now
            yield from cl.read_blocks(1, [b])  # prefetch still in flight
            return cl.engine.now - t0

        done = cl.engine.spawn(reader())
        cl.engine.run()
        assert 0 < done.value < 93_000  # partial overlap, single transaction
        assert cl.stats[1].prefetch_waits == 1
        assert cl.stats[1].read_misses == 0
        # Exactly one read transaction on the wire.
        assert cl.stats.messages_by_kind()[MsgKind.READ_REQ] == 1

    def test_prefetch_of_valid_block_is_noop(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.read_blocks(1, [b])
            msgs = cl.stats.total_messages
            yield from cl.ext.prefetch(1, [b])
            assert cl.stats.total_messages == msgs

        run_programs(cl, n1=reader())
        assert cl.stats[1].prefetches == 0

    def test_duplicate_prefetch_single_transaction(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.ext.prefetch(1, [b])
            yield from cl.ext.prefetch(1, [b])
            yield from cl.read_blocks(1, [b])

        run_programs(cl, n1=reader())
        assert cl.stats[1].prefetches == 1
        assert cl.stats.messages_by_kind()[MsgKind.READ_REQ] == 1

    def test_prefetched_data_is_current(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def writer():
            yield from cl.write_blocks(0, [b], phase=1)
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        def reader():
            yield from cl.barrier(1)
            yield from cl.ext.prefetch(1, [b])
            yield from cl.compute(1, 500_000)
            yield from cl.read_blocks(1, [b], phase=2)  # validated
            yield from cl.barrier(1)

        run_programs(cl, n0=writer(), n1=reader())
        assert cl.directory.copy_is_current(1, b)


class TestSelfInvalidate:
    def test_drops_copy_and_notifies_home(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.read_blocks(1, [b])
            assert 1 in cl.directory.sharers_of(b)
            yield from cl.ext.self_invalidate(1, [b])
            assert cl.access.get(1, b) is AccessTag.INVALID

        stats = run_programs(cl, n1=reader())
        assert stats.messages_by_kind()[MsgKind.SELF_INV] == 1
        assert 1 not in cl.directory.sharers_of(b)

    def test_spares_writer_the_invalidation_roundtrip(self):
        def run2(self_inv):
            cl, a = build()
            b = a.block_of_element((0, 0))

            def reader():
                yield from cl.read_blocks(1, [b])
                if self_inv:
                    yield from cl.ext.self_invalidate(1, [b])
                yield from cl.barrier(1)
                yield from cl.barrier(1)

            def writer():
                yield from cl.barrier(0)
                yield from cl.write_blocks(0, [b], phase=1)
                yield from cl.barrier(0)

            stats = cl.run({0: writer(), 1: reader()})
            return stats.messages_by_kind()

        with_si = run2(True)
        without = run2(False)
        assert without[MsgKind.INV] == 1 and without[MsgKind.ACK] == 1
        assert with_si.get(MsgKind.INV, 0) == 0
        assert with_si[MsgKind.SELF_INV] == 1

    def test_ignores_nonreadonly_blocks(self):
        cl, a = build()
        b = a.block_of_element((0, 0))

        def owner():
            # Own block is READWRITE: self-invalidate must not touch it.
            yield from cl.ext.self_invalidate(0, [b])
            assert cl.access.get(0, b) is AccessTag.READWRITE

        run_programs(cl, n0=owner())

    def test_local_home_clears_synchronously(self):
        cl, a = build()
        # Node 0 reads a block homed at node 1 then self-invalidates; the
        # notice crosses the network.  Also test the home's own copy path.
        b1 = a.block_of_element((0, 2))  # homed at node 1

        def reader():
            yield from cl.read_blocks(0, [b1])
            yield from cl.ext.self_invalidate(0, [b1])
            yield from cl.barrier(0)

        def other():
            yield from cl.barrier(1)

        run_programs(cl, n0=reader(), n1=other())
        assert 0 not in cl.directory.sharers_of(b1)


class TestAdvisoryPlanning:
    def test_advisory_reduces_misses_on_edge_heavy_app(self):
        from repro.apps import APPS
        from repro.runtime import run_shmem, run_uniproc

        cfg = ClusterConfig(n_nodes=8)
        prog = APPS["grav"].program()
        base = run_shmem(prog, cfg, optimize=True)
        adv = run_shmem(prog, cfg, optimize=True, advisory=True)
        adv.assert_same_numerics(run_uniproc(prog, cfg))
        assert adv.total_misses < base.total_misses
        assert sum(s.prefetches for s in adv.stats.nodes) > 0

    def test_advisory_requires_optimize(self):
        from repro.apps import APPS
        from repro.runtime import run_shmem

        with pytest.raises(ValueError, match="optimize"):
            run_shmem(APPS["grav"].program(), ClusterConfig(n_nodes=4), advisory=True)
