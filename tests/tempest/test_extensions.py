"""Tests for the compiler-control primitives and their contract checks."""

import pytest

from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    DirState,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.extensions import ContractViolation, coalesce_runs
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

from tests.tempest.conftest import run_programs


def build(n_nodes=3, cols=3, home_policy=HomePolicy.NODE0):
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg, home_policy=home_policy)
    a = mem.alloc("a", (32, cols), Distribution.block(n_nodes))
    return Cluster(cfg, mem), a


class TestCoalesceRuns:
    def test_empty(self):
        assert coalesce_runs([], 8) == []

    def test_single(self):
        assert coalesce_runs([5], 8) == [(5, 1)]

    def test_contiguous_run(self):
        assert coalesce_runs([3, 4, 5, 6], 8) == [(3, 4)]

    def test_gap_splits(self):
        assert coalesce_runs([1, 2, 5, 6, 7], 8) == [(1, 2), (5, 3)]

    def test_max_run_limits_payload(self):
        assert coalesce_runs(list(range(10)), 4) == [(0, 4), (4, 4), (8, 2)]

    def test_max_run_one_is_per_block(self):
        assert coalesce_runs([1, 2, 3], 1) == [(1, 1), (2, 1), (3, 1)]

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            coalesce_runs([3, 3], 8)
        with pytest.raises(ValueError):
            coalesce_runs([5, 2], 8)


class TestMkWritable:
    def test_brings_blocks_exclusive_at_caller(self):
        cl, a = build()
        blocks = list(a.blocks_covering(*a.column_byte_range(1)))

        def owner():
            yield from cl.ext.mk_writable(1, blocks)
            for b in blocks:
                assert cl.directory.state_of(b) is DirState.EXCLUSIVE
                assert cl.directory.owner_of(b) == 1
                assert cl.access.get(1, b) is AccessTag.READWRITE
                assert cl.directory.copy_is_current(1, b)

        run_programs(cl, n1=owner())

    def test_pipelined_faster_than_serial_misses(self):
        cl, a = build(cols=3)
        blocks = list(a.block_range())  # 6 blocks, all homed at node 0

        def owner():
            yield from cl.ext.mk_writable(1, blocks)

        stats = run_programs(cl, n1=owner())
        # Serial read misses would cost ~6 * 93us; pipelining must beat it.
        assert stats.elapsed_ns < 6 * 93_000

    def test_not_counted_as_demand_faults(self):
        cl, a = build()
        blocks = list(a.block_range())

        def owner():
            yield from cl.ext.mk_writable(1, blocks)

        stats = run_programs(cl, n1=owner())
        assert stats[1].write_faults == 0
        assert stats[1].call_ns > 0

    def test_idempotent_on_owned_blocks(self):
        cl, a = build()
        blocks = list(a.block_range())

        def owner():
            yield from cl.ext.mk_writable(1, blocks)
            msgs_before = cl.stats.total_messages
            yield from cl.ext.mk_writable(1, blocks)
            assert cl.stats.total_messages == msgs_before  # all short-circuit

        run_programs(cl, n1=owner())


class TestImplicitWritable:
    def test_sets_tags_without_directory_update(self):
        cl, a = build()
        b = a.base_block

        def reader():
            yield from cl.ext.implicit_writable(2, [b])
            assert cl.access.get(2, b) is AccessTag.READWRITE
            # Directory deliberately unaware (Figure 2C).
            assert cl.directory.state_of(b) is DirState.IDLE
            assert 2 not in cl.directory.sharers_of(b)

        run_programs(cl, n2=reader())

    def test_memoized_fast_path(self):
        cl, a = build()
        blocks = list(a.block_range())
        times = []

        def reader():
            t0 = cl.engine.now
            yield from cl.ext.implicit_writable(2, blocks, memo_key=(blocks[0], len(blocks)))
            times.append(cl.engine.now - t0)
            t0 = cl.engine.now
            yield from cl.ext.implicit_writable(2, blocks, memo_key=(blocks[0], len(blocks)))
            times.append(cl.engine.now - t0)

        run_programs(cl, n2=reader())
        assert times[1] < times[0]
        assert times[1] == cl.config.memoized_call_ns

    def test_memoized_call_tests_and_repairs(self):
        # "At subsequent times the call need only do the test": if a tag
        # was revoked in between, the test repairs it (paying per-block
        # cost for the lost ones only).
        cl, a = build()
        b = a.base_block
        key = (b, 1)

        def reader():
            yield from cl.ext.implicit_writable(2, [b], memo_key=key)
            yield from cl.ext.implicit_invalidate(2, [b])
            t0 = cl.engine.now
            yield from cl.ext.implicit_writable(2, [b], memo_key=key)
            repair_cost = cl.engine.now - t0
            assert cl.access.get(2, b) is AccessTag.READWRITE
            # Third call: nothing lost, pure constant-time test.
            t0 = cl.engine.now
            yield from cl.ext.implicit_writable(2, [b], memo_key=key)
            assert cl.engine.now - t0 == cl.config.memoized_call_ns
            assert repair_cost > cl.config.memoized_call_ns

        run_programs(cl, n2=reader())


class TestSendRecv:
    def test_full_fig2_sequence_no_misses(self):
        cl, a = build()
        blocks = list(a.blocks_covering(*a.column_byte_range(1)))
        p, q = 1, 2

        def producer():
            yield from cl.ext.mk_writable(p, blocks)
            yield from cl.barrier(p)
            yield from cl.barrier(p)
            yield from cl.write_blocks(p, blocks, phase=1)
            yield from cl.ext.send_blocks(p, blocks, q)
            yield from cl.barrier(p)
            yield from cl.barrier(p)

        def consumer():
            yield from cl.barrier(q)
            yield from cl.ext.implicit_writable(q, blocks)
            yield from cl.barrier(q)
            yield from cl.ext.ready_to_recv(q, len(blocks))
            yield from cl.read_blocks(q, blocks)
            yield from cl.barrier(q)
            yield from cl.ext.implicit_invalidate(q, blocks)
            yield from cl.barrier(q)

        def home():
            for _ in range(4):
                yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        assert stats[q].read_misses == 0
        assert cl.access.get(q, blocks[0]) is AccessTag.INVALID  # restored

    def test_bulk_transfer_single_message(self):
        cl, a = build()
        blocks = list(a.block_range())[:4]  # contiguous

        def setup_and_send():
            yield from cl.ext.mk_writable(1, blocks)
            yield from cl.ext.send_blocks(1, blocks, 2, bulk=True)

        def receiver():
            yield from cl.ext.implicit_writable(2, blocks)
            yield from cl.ext.ready_to_recv(2, len(blocks))

        stats = run_programs(cl, n1=setup_and_send(), n2=receiver())
        assert stats.messages_by_kind()[MsgKind.DATA] == 1

    def test_non_bulk_one_message_per_block(self):
        cl, a = build()
        blocks = list(a.block_range())[:4]

        def setup_and_send():
            yield from cl.ext.mk_writable(1, blocks)
            yield from cl.ext.send_blocks(1, blocks, 2, bulk=False)

        def receiver():
            yield from cl.ext.implicit_writable(2, blocks)
            yield from cl.ext.ready_to_recv(2, len(blocks))

        stats = run_programs(cl, n1=setup_and_send(), n2=receiver())
        assert stats.messages_by_kind()[MsgKind.DATA] == 4

    def test_bulk_respects_max_payload(self):
        cl, a = build(cols=6)
        blocks = list(a.block_range())  # 12 contiguous blocks
        cl.config  # max_payload_blocks=16 by default; shrink via coalesce

        def setup_and_send():
            yield from cl.ext.mk_writable(1, blocks)
            yield from cl.ext.send_blocks(1, blocks, 2, bulk=True)

        def receiver():
            yield from cl.ext.implicit_writable(2, blocks)
            yield from cl.ext.ready_to_recv(2, len(blocks))

        stats = run_programs(cl, n1=setup_and_send(), n2=receiver())
        assert stats.messages_by_kind()[MsgKind.DATA] == 1  # 12 <= 16

    def test_data_to_unprepared_receiver_violates_contract(self):
        cl, a = build()
        blocks = [a.base_block]

        def bad_sender():
            yield from cl.ext.mk_writable(1, blocks)
            yield from cl.ext.send_blocks(1, blocks, 2)  # no implicit_writable at 2!

        with pytest.raises(ContractViolation, match="implicit_writable"):
            run_programs(cl, n1=bad_sender())

    def test_sending_stale_copy_violates_contract(self):
        cl, a = build()
        b = a.base_block

        def stale_sender():
            yield from cl.ext.mk_writable(1, [b])
            yield from cl.barrier(1)
            # node 2 writes the block (recalls it from node 1)...
            yield from cl.barrier(1)
            # ...then node 1, now stale, tries to push its old copy.
            yield from cl.ext.send_blocks(1, [b], 0)

        def other_writer():
            yield from cl.barrier(2)
            yield from cl.write_blocks(2, [b], phase=3)
            yield from cl.barrier(2)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)
            yield from cl.ext.implicit_writable(0, [b])

        with pytest.raises(ContractViolation, match="stale"):
            run_programs(cl, n0=home(), n1=stale_sender(), n2=other_writer())

    def test_optimized_steady_state_is_one_message(self):
        # Figure 1(b): after setup, each iteration moves one DATA message
        # and zero coherence messages.
        cl, a = build()
        b = a.base_block
        p, q = 1, 2

        def producer():
            yield from cl.ext.mk_writable(p, [b])
            yield from cl.barrier(p)
            before = None
            for it in range(1, 4):
                yield from cl.write_blocks(p, [b], phase=it)
                yield from cl.ext.send_blocks(p, [b], q)
                yield from cl.barrier(p)

        def consumer():
            yield from cl.ext.implicit_writable(q, [b])
            yield from cl.barrier(q)
            for _ in range(3):
                yield from cl.ext.ready_to_recv(q, 1)
                yield from cl.read_blocks(q, [b])
                yield from cl.barrier(q)

        def home():
            for _ in range(4):
                yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        m = stats.messages_by_kind()
        assert m[MsgKind.DATA] == 3
        coherence = sum(v for k, v in m.items() if k in COHERENCE_KINDS)
        assert coherence == 2  # mk_writable's single upgrade only


class TestFlush:
    def test_non_owner_write_flush_restores_owner(self):
        cl, a = build()
        b = a.base_block
        owner, writer = 1, 2

        def owner_prog():
            yield from cl.ext.mk_writable(owner, [b])
            yield from cl.barrier(owner)
            yield from cl.barrier(owner)
            yield from cl.ext.ready_to_recv(owner, 1)
            yield from cl.read_blocks(owner, [b])  # sees writer's data

        def writer_prog():
            yield from cl.barrier(writer)
            yield from cl.ext.implicit_writable(writer, [b])
            yield from cl.write_blocks(writer, [b], phase=2)
            yield from cl.ext.flush_and_invalidate(writer, [b], owner)
            yield from cl.barrier(writer)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=owner_prog(), n2=writer_prog())
        assert cl.access.get(writer, b) is AccessTag.INVALID
        assert cl.directory.copy_is_current(owner, b)
        assert stats.messages_by_kind()[MsgKind.FLUSH] == 1

    def test_flush_to_unprepared_owner_violates_contract(self):
        cl, a = build()
        b = a.base_block

        def writer_prog():
            yield from cl.ext.implicit_writable(2, [b])
            yield from cl.write_blocks(2, [b], phase=1)
            yield from cl.ext.flush_and_invalidate(2, [b], 1)  # node 1 unprepared

        with pytest.raises(ContractViolation, match="mk_writable"):
            run_programs(cl, n2=writer_prog())
