"""Shared fixtures for the Tempest substrate tests."""

import pytest

from repro.tempest import Cluster, ClusterConfig, Distribution, HomePolicy, SharedMemory


@pytest.fixture
def cfg():
    """Paper-parameter config with a small node count for cheap tests."""
    return ClusterConfig(n_nodes=4)


def make_cluster(
    n_nodes=4,
    shape=(32, 16),
    dist="block",
    home_policy=HomePolicy.ALIGNED,
    config=None,
    **config_overrides,
):
    """Build a cluster with one distributed array named 'a'."""
    config = config or ClusterConfig(n_nodes=n_nodes, **config_overrides)
    mem = SharedMemory(config, home_policy=home_policy)
    d = {
        "block": Distribution.block,
        "cyclic": Distribution.cyclic,
    }[dist](config.n_nodes)
    arr = mem.alloc("a", shape, d)
    cluster = Cluster(config, mem)
    return cluster, arr


def run_programs(cluster, **programs):
    """Run programs given as node_id=generator kwargs; idle others."""

    def idle():
        return
        yield  # pragma: no cover

    full = {n: idle() for n in range(cluster.n_nodes)}
    for key, gen in programs.items():
        full[int(key.lstrip("n"))] = gen
    return cluster.run(full)
