"""Unit tests for the shared segment geometry: distributions, blocks, homes."""

import numpy as np
import pytest

from repro.tempest import ClusterConfig, Distribution, HomePolicy, SharedMemory
from repro.tempest.memory import DistKind


# --------------------------------------------------------------------- #
# distributions
# --------------------------------------------------------------------- #
class TestDistribution:
    def test_block_owner_partitions_contiguously(self):
        d = Distribution.block(4)
        owners = [d.owner(j, 16) for j in range(16)]
        assert owners == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_block_uneven_extent_last_proc_short(self):
        d = Distribution.block(4)
        # extent 10, chunk ceil(10/4)=3: 3,3,3,1
        assert [len(d.owned_indices(p, 10)) for p in range(4)] == [3, 3, 3, 1]

    def test_block_extent_smaller_than_procs(self):
        d = Distribution.block(8)
        # extent 3: procs 0..2 get one each, rest empty
        sizes = [len(d.owned_indices(p, 3)) for p in range(8)]
        assert sizes == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_cyclic_owner_round_robin(self):
        d = Distribution.cyclic(3)
        assert [d.owner(j, 7) for j in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_cyclic_owned_indices(self):
        d = Distribution.cyclic(3)
        assert list(d.owned_indices(1, 10)) == [1, 4, 7]

    def test_owned_indices_cover_exactly_once(self):
        for d in (Distribution.block(5), Distribution.cyclic(5)):
            seen = []
            for p in range(5):
                seen.extend(d.owned_indices(p, 23))
            assert sorted(seen) == list(range(23))

    def test_replicated_has_no_owner(self):
        d = Distribution.replicated(4)
        with pytest.raises(ValueError):
            d.owner(0, 10)
        assert list(d.owned_indices(2, 5)) == [0, 1, 2, 3, 4]

    def test_out_of_range_index_raises(self):
        d = Distribution.block(4)
        with pytest.raises(IndexError):
            d.owner(16, 16)
        with pytest.raises(IndexError):
            d.owned_indices(4, 16)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Distribution(DistKind.BLOCK, 0)


# --------------------------------------------------------------------- #
# array geometry
# --------------------------------------------------------------------- #
class TestGlobalArray:
    @pytest.fixture
    def mem(self):
        return SharedMemory(ClusterConfig(n_nodes=4))

    def test_fortran_element_addressing(self, mem):
        a = mem.alloc("a", (8, 4), Distribution.block(4))
        # column-major: a(i, j) at (i + j*8) * 8 bytes
        assert a.element_byte((0, 0)) == a.base
        assert a.element_byte((1, 0)) == a.base + 8
        assert a.element_byte((0, 1)) == a.base + 8 * 8

    def test_column_is_contiguous(self, mem):
        a = mem.alloc("a", (8, 4), Distribution.block(4))
        lo, hi = a.column_byte_range(2)
        assert lo == a.element_byte((0, 2))
        assert hi - lo == 8 * 8

    def test_3d_addressing(self, mem):
        a = mem.alloc("a", (4, 3, 2), Distribution.block(4))
        # a(i,j,k) at (i + j*4 + k*12) * itemsize
        assert a.element_byte((1, 2, 1)) == a.base + (1 + 8 + 12) * 8

    def test_block_of_element(self, mem):
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        # 128-byte blocks hold 16 doubles: each column is exactly one block
        assert a.block_of_element((0, 0)) == a.base_block
        assert a.block_of_element((15, 0)) == a.base_block
        assert a.block_of_element((0, 1)) == a.base_block + 1

    def test_blocks_covering_vs_within(self, mem):
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        bs = 128
        # A range straddling one block boundary: covering=2, within=0 or 1
        lo = a.base + bs // 2
        hi = lo + bs
        assert len(a.blocks_covering(lo, hi)) == 2
        assert len(a.blocks_within(lo, hi)) == 0
        # Aligned range: equal
        assert list(a.blocks_covering(a.base, a.base + 2 * bs)) == list(
            a.blocks_within(a.base, a.base + 2 * bs)
        )

    def test_blocks_within_empty_for_subblock_range(self, mem):
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        assert len(a.blocks_within(a.base + 8, a.base + 24)) == 0

    def test_blocks_covering_empty_range(self, mem):
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        assert len(a.blocks_covering(a.base, a.base)) == 0

    def test_owner_of_column_follows_distribution(self, mem):
        a = mem.alloc("a", (8, 8), Distribution.cyclic(4))
        assert a.owner_of_column(5) == 1

    def test_index_validation(self, mem):
        a = mem.alloc("a", (8, 4), Distribution.block(4))
        with pytest.raises(IndexError):
            a.element_byte((8, 0))
        with pytest.raises(IndexError):
            a.element_byte((0, 0, 0))
        with pytest.raises(IndexError):
            a.column_byte_range(4)

    def test_bad_shape_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc("bad", (0, 4), Distribution.block(4))

    def test_data_is_fortran_ordered(self, mem):
        a = mem.alloc("a", (8, 4), Distribution.block(4))
        assert a.data.flags["F_CONTIGUOUS"]
        assert a.data.dtype == np.float64


# --------------------------------------------------------------------- #
# segment allocation and homes
# --------------------------------------------------------------------- #
class TestSharedMemory:
    def test_arrays_page_aligned_and_disjoint(self):
        mem = SharedMemory(ClusterConfig(n_nodes=4))
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        b = mem.alloc("b", (100, 7), Distribution.block(4))
        assert a.base % 4096 == 0 and b.base % 4096 == 0
        assert b.base >= a.base + a.nbytes

    def test_duplicate_name_rejected(self):
        mem = SharedMemory(ClusterConfig(n_nodes=4))
        mem.alloc("a", (4, 4), Distribution.block(4))
        with pytest.raises(ValueError):
            mem.alloc("a", (4, 4), Distribution.block(4))

    def test_aligned_homes_follow_owners(self):
        cfg = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg, home_policy=HomePolicy.ALIGNED)
        # 64x64 doubles: column = 512 B; page = 4096 B = 8 columns.
        # BLOCK dist: proc p owns 16 columns = 2 pages.
        a = mem.alloc("a", (64, 64), Distribution.block(4))
        homes = [mem.home_of_page(p) for p in range(mem.n_pages)]
        assert homes == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_round_robin_homes(self):
        cfg = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg, home_policy=HomePolicy.ROUND_ROBIN)
        mem.alloc("a", (64, 64), Distribution.block(4))
        homes = [mem.home_of_page(p) for p in range(mem.n_pages)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_node0_homes(self):
        cfg = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
        mem.alloc("a", (64, 64), Distribution.block(4))
        assert all(mem.home_of_page(p) == 0 for p in range(mem.n_pages))

    def test_home_of_block_consistent_with_page(self):
        cfg = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg)
        mem.alloc("a", (64, 64), Distribution.block(4))
        bpp = cfg.blocks_per_page
        for page in range(mem.n_pages):
            for b in (page * bpp, (page + 1) * bpp - 1):
                assert mem.home_of_block(b) == mem.home_of_page(page)

    def test_home_of_block_out_of_segment_raises(self):
        mem = SharedMemory(ClusterConfig(n_nodes=4))
        mem.alloc("a", (16, 4), Distribution.block(4))
        with pytest.raises(IndexError):
            mem.home_of_block(mem.n_blocks)

    def test_array_of_block(self):
        mem = SharedMemory(ClusterConfig(n_nodes=4))
        a = mem.alloc("a", (16, 4), Distribution.block(4))
        b = mem.alloc("b", (16, 4), Distribution.block(4))
        assert mem.array_of_block(a.base_block) is a
        assert mem.array_of_block(b.base_block) is b
        # padding blocks past array payload belong to nothing
        assert mem.array_of_block(a.base_block + a.n_blocks) is None

    def test_total_bytes(self):
        mem = SharedMemory(ClusterConfig(n_nodes=4))
        mem.alloc("a", (16, 4), Distribution.block(4))
        mem.alloc("b", (8, 2), Distribution.block(4))
        assert mem.total_bytes() == 16 * 4 * 8 + 8 * 2 * 8

    def test_owned_blocks_partition_uniform_array(self):
        # Columns aligned to blocks: every block has a unique owner.
        cfg = ClusterConfig(n_nodes=4)
        mem = SharedMemory(cfg)
        a = mem.alloc("a", (16, 8), Distribution.block(4))  # col == 1 block
        all_owned = []
        for p in range(4):
            owned = a.owned_blocks(p)
            assert len(owned) == 2
            all_owned.extend(owned)
        assert sorted(all_owned) == list(a.block_range())
