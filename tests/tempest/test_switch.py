"""Tests for the shared-switch contention model.

The unit tests drive ``Network.send`` directly with hand-computed
schedules: per-port FIFO ordering, two senders serializing on one
output port, exact contention-delay accounting, and backpressure on the
sending link.  The app-level tests pin the two properties the model
must keep: **disabled runs are byte-identical** to the link-only model
(ClusterStats equality, events included), and enabled runs keep the
numerics while exposing real queueing.  The interaction tests cover the
two cross-layer contracts: the adaptive RTO absorbs pure port-queueing
delay without spurious retransmits, and the combining layer's
link-idle flush still fires when the *switch*, not the link, is the
bottleneck.

Cost model cheat-sheet (paper parameters, 16-byte header frames):
ser(16 B) = 800 ns, wire latency 10 us split 5 us either side of the
switch, port forwarding at the link rate (fwd(16 B) = 800 ns),
dispatch 4 us, ack handler 4 us.
"""

import pytest

from repro.apps import APPS
from repro.runtime import run_shmem
from repro.tempest import ClusterConfig, FaultConfig, MsgKind
from repro.tempest.config import MS, US, CombineConfig, SwitchConfig
from tests.tempest.conftest import make_cluster

SWITCH_ON = SwitchConfig(enabled=True)
JACOBI = dict(n=64, iters=3)


def switch_cluster(n_nodes=3, switch=SWITCH_ON, **overrides):
    cluster, _arr = make_cluster(n_nodes=n_nodes, switch=switch, **overrides)
    return cluster


def send_header(cluster, src, dst, log, tag, kind=MsgKind.ACK):
    cluster.network.send(
        src, dst, kind,
        lambda: log.append((tag, cluster.engine.now)),
        cluster.config.handler_ack_ns,
    )


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
class TestSwitchConfig:
    def test_disabled_by_default(self):
        assert not SwitchConfig().enabled
        assert not ClusterConfig().switch.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(ports=0),
            dict(ports=-1),
            dict(bandwidth_bytes_per_us=0),
            dict(bandwidth_bytes_per_us=-20.0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SwitchConfig(enabled=True, **kwargs)

    def test_port_count_defaults_to_node_count(self):
        assert ClusterConfig(n_nodes=8).switch_ports == 8
        cfg = ClusterConfig(n_nodes=8, switch=SwitchConfig(ports=3))
        assert cfg.switch_ports == 3

    def test_forwarding_rate_defaults_to_link_rate(self):
        cfg = ClusterConfig()
        assert cfg.switch_forward_ns(16) == cfg.transfer_ns(16)

    def test_aggregate_bandwidth_splits_across_ports(self):
        # 40 MB/s over 4 ports = 10 B/us per port: 16 bytes take 1600 ns.
        cfg = ClusterConfig(
            n_nodes=4,
            switch=SwitchConfig(enabled=True, bandwidth_bytes_per_us=40.0),
        )
        assert cfg.switch_forward_ns(16) == 1600

    def test_disabled_network_has_no_machinery(self):
        cluster = switch_cluster(switch=SwitchConfig())
        net = cluster.network
        assert net.switch is None
        assert net.residual_latency_ns == cluster.config.wire_latency_ns
        assert cluster.stats.ports == []
        assert not hasattr(net, "_port_depth")


# --------------------------------------------------------------------- #
# port queueing, hand-computed
# --------------------------------------------------------------------- #
class TestPortQueueing:
    def test_uncontended_frame_pays_one_extra_serialization(self):
        # With link-rate ports the only added cost is the single
        # store-and-forward hop: delivery shifts by exactly fwd(size).
        log_off, log_on = [], []
        for switch, log in ((SwitchConfig(), log_off), (SWITCH_ON, log_on)):
            cluster = switch_cluster(switch=switch)
            send_header(cluster, 0, 1, log, "x")
            cluster.engine.run()
        fwd = ClusterConfig().switch_forward_ns(16)
        assert log_on[0][1] == log_off[0][1] + fwd

    def test_two_senders_serialize_on_one_port(self):
        # Nodes 0 and 1 both send a header frame to node 2 at t=0.
        #   ser 800 | to-switch 5000 | port: [5800, 6600) and [6600, 7400)
        #   | residual 5000 + dispatch 4000 | ack handler 4000.
        # Node 0 wins the port (engine event order); node 1 queues 800 ns
        # behind it, then another 4000 ns for node 2's protocol CPU.
        cluster = switch_cluster()
        log = []

        def kickoff():
            send_header(cluster, 0, 2, log, "a")
            send_header(cluster, 1, 2, log, "b")

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        assert log == [("a", 19600), ("b", 23600)]
        assert cluster.stats[0].switch_wait_ns == 0
        assert cluster.stats[1].switch_wait_ns == 800
        assert cluster.stats[0].switch_frames == 1
        assert cluster.stats[1].switch_frames == 1

    def test_port_counters_match_hand_computed_values(self):
        cluster = switch_cluster()

        def kickoff():
            send_header(cluster, 0, 2, [], "a")
            send_header(cluster, 1, 2, [], "b")

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        ps = cluster.stats.ports[2]
        assert (ps.frames, ps.busy_ns, ps.wait_ns, ps.max_depth) == (2, 1600, 800, 2)
        assert cluster.stats.ports[0].frames == 0
        assert cluster.stats.ports[1].frames == 0
        assert cluster.stats.total_switch_wait_ns == 800
        assert cluster.stats.max_port_depth == 2

    def test_backpressure_holds_the_sending_link(self):
        # Node 1's link stays occupied until port 2 accepts its frame:
        # 800 ns serialization + the 800 ns the port made it wait.
        cluster = switch_cluster()

        def kickoff():
            send_header(cluster, 0, 2, [], "a")
            send_header(cluster, 1, 2, [], "b")

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        assert cluster.network.links[0].busy_ns == 800
        assert cluster.network.links[1].busy_ns == 1600

    def test_per_port_fifo_follows_submission_order(self):
        # Three senders race to one destination in one engine event;
        # deliveries come out in exactly submission order.
        cluster = switch_cluster(n_nodes=4)
        log = []

        def kickoff():
            for src, tag in ((2, "first"), (0, "second"), (1, "third")):
                send_header(cluster, src, 3, log, tag)

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        assert [tag for tag, _t in log] == ["first", "second", "third"]
        times = [t for _tag, t in log]
        assert times == sorted(times)
        # Waits stack: 0, one fwd, two fwds.
        assert [cluster.stats[n].switch_wait_ns for n in (2, 0, 1)] == [0, 800, 1600]

    def test_destinations_map_to_ports_modulo(self):
        # 2 ports on a 4-node cluster: dst 1 and dst 3 share port 1.
        cluster = switch_cluster(
            n_nodes=4, switch=SwitchConfig(enabled=True, ports=2)
        )

        def kickoff():
            send_header(cluster, 0, 1, [], "a")
            send_header(cluster, 2, 3, [], "b")

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        assert len(cluster.stats.ports) == 2
        assert cluster.stats.ports[1].frames == 2
        assert cluster.stats.ports[0].frames == 0
        # Different destinations, same port: the second sender queued.
        assert cluster.stats[2].switch_wait_ns == 800

    def test_loopback_skips_the_switch(self):
        cluster = switch_cluster()
        log = []
        send_header(cluster, 1, 1, log, "self")
        cluster.engine.run()
        assert len(log) == 1
        assert cluster.stats.total_switch_frames == 0
        assert all(p.frames == 0 for p in cluster.stats.ports)


# --------------------------------------------------------------------- #
# disabled == byte-identical; enabled == same numerics
# --------------------------------------------------------------------- #
class TestAppsUnderSwitch:
    CFG8 = ClusterConfig(n_nodes=8)

    def test_disabled_switch_is_byte_identical(self):
        # A disabled-but-nondefault SwitchConfig must not perturb the
        # schedule at all: full ClusterStats equality, events included.
        prog = APPS["jacobi"].program(**JACOBI)
        base = run_shmem(prog, self.CFG8)
        off = run_shmem(prog, self.CFG8.scaled(
            switch=SwitchConfig(enabled=False, ports=3,
                                bandwidth_bytes_per_us=5.0),
        ))
        assert off.stats == base.stats
        assert off.stats.events_dispatched == base.stats.events_dispatched

    def test_enabled_switch_keeps_numerics_and_counts_queueing(self):
        prog = APPS["jacobi"].program(**JACOBI)
        base = run_shmem(prog, self.CFG8)
        on = run_shmem(prog, self.CFG8.scaled(switch=SWITCH_ON))
        on.assert_same_numerics(base)
        # Every remote frame routed through the fabric; the all-to-one
        # barrier fan-in alone guarantees real contention.
        assert on.stats.total_switch_frames > 0
        assert on.stats.total_switch_wait_ns > 0
        assert on.stats.max_port_depth >= 2
        assert on.stats.elapsed_ns >= base.stats.elapsed_ns

    def test_contended_run_is_deterministic(self):
        prog = APPS["jacobi"].program(**JACOBI)
        cfg = self.CFG8.scaled(switch=SWITCH_ON)
        a = run_shmem(prog, cfg)
        b = run_shmem(prog, cfg)
        assert a.stats == b.stats

    def test_summary_keys_only_when_enabled(self):
        prog = APPS["jacobi"].program(**JACOBI)
        base = run_shmem(prog, self.CFG8)
        on = run_shmem(prog, self.CFG8.scaled(switch=SWITCH_ON))
        assert "switch_frames" not in base.stats.summary()
        assert base.stats.switch_summary() == {
            "switch_frames": 0, "switch_wait_ms": 0.0, "max_port_depth": 0,
        }
        assert on.stats.summary()["switch_frames"] > 0
        assert "max_port_depth" in on.stats.summary()


# --------------------------------------------------------------------- #
# interaction: adaptive RTO under pure queueing delay
# --------------------------------------------------------------------- #
def paired_bulk_run(adaptive, rounds=6):
    """Two bulk senders to one destination in spaced rounds.

    Each round, nodes 1 and 2 submit a 2 KB frame to node 0 together;
    node 2 loses the port race and eats a full forwarding time (~103 us)
    of pure queueing delay every round.  The first round staggers node 2
    by 50 us so its channel takes a moderate warm-up RTT sample first.
    """
    faults = FaultConfig(jitter_ns=1, seed=0, adaptive_rto=adaptive)
    cluster, _ = make_cluster(n_nodes=3, faults=faults, switch=SWITCH_ON)
    delivered = []

    def send(src, i):
        cluster.network.send(
            src, 0, MsgKind.DATA, lambda: delivered.append((src, i)),
            cluster.config.handler_data_recv_ns, payload_bytes=2048,
        )

    for r in range(rounds):
        t = r * 1000 * US
        cluster.engine.call_after(t, send, 1, r)
        cluster.engine.call_after(t + (50 * US if r == 0 else 0), send, 2, r)
    cluster.engine.run()
    return cluster.stats, delivered


class TestAdaptiveRtoUnderContention:
    def test_adaptive_rto_absorbs_port_queueing(self):
        # Pure queueing delay (no drops, no dups): the size-aware,
        # switch-aware timer plus the Jacobson estimator must never fire
        # while the frame is just waiting for a hot port.
        stats, delivered = paired_bulk_run(adaptive=True)
        rel = stats.reliability_summary()
        assert rel["spurious_retransmits"] == 0
        assert rel["retransmits"] == 0
        assert rel["drops"] == 0 and rel["dups"] == 0
        assert len(delivered) == 12
        # ... and the delay was real: node 2 queued behind node 1 every
        # round (a full 2 KB forwarding time each, minus the warm-up).
        assert stats[2].switch_wait_ns > 500 * US

    def test_fixed_rto_fires_spuriously_on_the_same_schedule(self):
        # The contrast that makes the absorption meaningful: the fixed
        # 120 us timer cannot cover ~100 us of queueing plus the bulk
        # path, so every contended frame retransmits in vain.
        stats, delivered = paired_bulk_run(adaptive=False)
        rel = stats.reliability_summary()
        assert rel["spurious_retransmits"] > 0
        assert rel["retransmits"] == rel["spurious_retransmits"]
        assert len(delivered) == 12


# --------------------------------------------------------------------- #
# interaction: combining's link-idle flush under switch backpressure
# --------------------------------------------------------------------- #
class TestCombiningUnderSwitch:
    def test_link_idle_flush_fires_when_switch_is_the_bottleneck(self):
        # Port 0 is backlogged by node 1's 4 KB frame; node 2's 2 KB
        # frame queues behind it, and backpressure holds node 2's link
        # for the whole 308 us wait (vs 103.2 us of pure serialization).
        # Three control frames park behind the held link.  The hold
        # timer is 10 ms — only the link-idle trigger can explain a
        # flush at link-free time (411.2 us), and it must still fire
        # even though the *switch*, not the link, set that time.
        combine = CombineConfig(enabled=True, max_wait_ns=10 * MS)
        cluster = switch_cluster(combine=combine)
        net, cfg = cluster.network, cluster.config
        log = []

        def kickoff():
            net.send(1, 0, MsgKind.DATA, lambda: None,
                     cfg.handler_data_recv_ns, payload_bytes=4096)
            net.send(2, 0, MsgKind.DATA, lambda: None,
                     cfg.handler_data_recv_ns, payload_bytes=2048)
            for i in range(3):
                net.send(2, 0, MsgKind.ACK,
                         lambda i=i: log.append((i, cluster.engine.now)),
                         cfg.handler_ack_ns, combinable=True)

        cluster.engine.call_after(0, kickoff)
        cluster.engine.run()
        # The three parked acks rode one combined frame, in order.
        assert cluster.stats.total_combine_flushes == 1
        assert cluster.stats.msgs_combined_by_kind()[MsgKind.ACK] == 3
        assert [i for i, _t in log] == [0, 1, 2]
        delivered = log[0][1]
        assert all(t == delivered for _i, t in log)
        # Flushed at link-free (411.2 us, set by backpressure), queued
        # once more behind the 2 KB forwarding, delivered at 550.4 us —
        # nowhere near the 10 ms hold-timer deadline.
        assert delivered == 550400
        assert delivered < combine.max_wait_ns
        # The link really was held by the switch: 103.2 us serialization
        # + 308 us of backpressure + the combined frame's own ser/hold.
        assert net.links[2].busy_ns == 514400
        assert cluster.stats[2].switch_wait_ns == 409800
