"""Integration tests for the default coherence protocol.

These validate the paper's Figure 1(a) message sequences, state
transitions, eager-write semantics and race serialization.
"""

import pytest

from repro.sim import SimulationError
from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    DirState,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

from tests.tempest.conftest import make_cluster, run_programs


def one_block_cluster(n_nodes=3, home_policy=HomePolicy.NODE0):
    """Cluster with a single-block-per-column array; returns (cl, block)."""
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg, home_policy=home_policy)
    a = mem.alloc("a", (16, n_nodes), Distribution.block(n_nodes))
    cl = Cluster(cfg, mem)
    return cl, a


class TestReadMiss:
    def test_clean_remote_read_is_two_messages(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))  # homed at node 0

        def reader():
            yield from cl.read_blocks(1, [b])

        stats = run_programs(cl, n1=reader())
        m = stats.messages_by_kind()
        assert m[MsgKind.READ_REQ] == 1 and m[MsgKind.READ_RESP] == 1
        assert stats[1].read_misses == 1
        assert cl.access.get(1, b) is AccessTag.READONLY
        assert cl.directory.state_of(b) is DirState.SHARED
        assert 1 in cl.directory.sharers_of(b)

    def test_clean_remote_read_latency_93us(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.read_blocks(1, [b])

        stats = run_programs(cl, n1=reader())
        assert stats.elapsed_ns == pytest.approx(93_000, rel=0.02)

    def test_three_hop_read_from_exclusive_owner(self):
        # Figure 1a: requester -> home -> exclusive owner -> home -> requester
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 1))  # home = node 0

        def writer():
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)
            yield from cl.barrier(1)

        def reader():
            yield from cl.barrier(2)
            yield from cl.read_blocks(2, [b])
            yield from cl.barrier(2)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=writer(), n2=reader())
        m = stats.messages_by_kind()
        assert m[MsgKind.PUT_REQ] == 1 and m[MsgKind.PUT_RESP] == 1
        assert m[MsgKind.READ_REQ] == 1 and m[MsgKind.READ_RESP] == 1
        # After service: owner downgraded, both share, home data current.
        assert cl.access.get(1, b) is AccessTag.READONLY
        assert cl.access.get(2, b) is AccessTag.READONLY
        assert cl.directory.state_of(b) is DirState.SHARED
        assert cl.directory.copy_is_current(0, b)

    def test_home_local_read_recalls_exclusive(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 2))  # home = node 0

        def writer():
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)
            yield from cl.barrier(1)

        def home_reads():
            yield from cl.barrier(0)
            yield from cl.read_blocks(0, [b])
            yield from cl.barrier(0)

        def idle2():
            yield from cl.barrier(2)
            yield from cl.barrier(2)

        stats = run_programs(cl, n0=home_reads(), n1=writer(), n2=idle2())
        assert stats[0].read_misses == 1
        assert stats[0].remote_read_misses == 0
        m = stats.messages_by_kind()
        assert m[MsgKind.PUT_REQ] == 1 and m[MsgKind.PUT_RESP] == 1
        assert cl.directory.copy_is_current(0, b)

    def test_read_hit_costs_nothing(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))

        def reader():
            yield from cl.read_blocks(1, [b])
            t = cl.engine.now
            yield from cl.read_blocks(1, [b])  # hit
            assert cl.engine.now == t

        stats = run_programs(cl, n1=reader())
        assert stats[1].read_misses == 1


class TestWriteFault:
    def test_write_to_idle_remote_block(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 1))

        def writer():
            yield from cl.write_blocks(1, [b], phase=1)
            assert cl.access.get(1, b) is AccessTag.READWRITE  # eager
            yield from cl.barrier(1)

        def other(n):
            yield from cl.barrier(n)

        stats = run_programs(cl, n0=other(0), n1=writer(), n2=other(2))
        m = stats.messages_by_kind()
        assert m[MsgKind.WRITE_REQ] == 1 and m[MsgKind.GRANT] == 1
        assert cl.directory.state_of(b) is DirState.EXCLUSIVE
        assert cl.directory.owner_of(b) == 1
        # Home's own copy is dead.
        assert cl.access.get(0, b) is AccessTag.INVALID

    def test_write_invalidates_sharers_fig1_count(self):
        # Steady-state producer-consumer: 8 coherence messages per iteration.
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 1))
        iters = 4

        def producer():
            for it in range(1, iters + 1):
                yield from cl.write_blocks(1, [b], phase=it)
                yield from cl.barrier(1)
                yield from cl.barrier(1)

        def consumer():
            for _ in range(iters):
                yield from cl.barrier(2)
                yield from cl.read_blocks(2, [b])
                yield from cl.barrier(2)

        def home():
            for _ in range(iters):
                yield from cl.barrier(0)
                yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        m = stats.messages_by_kind()
        total = sum(v for k, v in m.items() if k in COHERENCE_KINDS)
        # First iteration is cold (6 msgs: write 2 + read 4); rest are 8.
        assert total == 6 + 8 * (iters - 1)

    def test_eager_write_does_not_block(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 1))

        def writer():
            t0 = cl.engine.now
            yield from cl.write_blocks(1, [b], phase=1)
            # Inline cost only (fault + send overhead), well under a roundtrip.
            assert cl.engine.now - t0 < 20_000
            assert len(cl.nodes[1].pending) == 1
            yield from cl.barrier(1)
            assert len(cl.nodes[1].pending) == 0

        def other(n):
            yield from cl.barrier(n)

        run_programs(cl, n0=other(0), n1=writer(), n2=other(2))

    def test_write_upgrade_from_shared(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))

        def reader_then_writer():
            yield from cl.read_blocks(1, [b])
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)

        def other_reader():
            yield from cl.read_blocks(2, [b])
            yield from cl.barrier(2)

        def home():
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=reader_then_writer(), n2=other_reader())
        assert cl.directory.state_of(b) is DirState.EXCLUSIVE
        assert cl.directory.owner_of(b) == 1
        assert cl.access.get(2, b) is AccessTag.INVALID
        m = stats.messages_by_kind()
        assert m[MsgKind.INV] >= 1 and m[MsgKind.ACK] >= 1

    def test_write_write_race_serializes(self):
        # Two nodes write the same block concurrently; home serializes.
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))

        def writer(n):
            yield from cl.write_blocks(n, [b], phase=1)
            yield from cl.barrier(n)

        def home():
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=writer(1), n2=writer(2))
        # Exactly one ends up exclusive; the other was invalidated.
        owner = cl.directory.owner_of(b)
        assert owner in (1, 2)
        loser = 3 - owner
        assert cl.directory.state_of(b) is DirState.EXCLUSIVE
        assert cl.access.get(loser, b) is AccessTag.INVALID

    def test_write_recall_from_other_exclusive(self):
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 0))

        def first_writer():
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)
            yield from cl.barrier(1)

        def second_writer():
            yield from cl.barrier(2)
            yield from cl.write_blocks(2, [b], phase=2)
            yield from cl.barrier(2)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=first_writer(), n2=second_writer())
        assert cl.directory.owner_of(b) == 2
        assert cl.access.get(1, b) is AccessTag.INVALID
        m = stats.messages_by_kind()
        assert m[MsgKind.INV] == 1 and m[MsgKind.PUT_RESP] == 1


class TestConsistencyValidation:
    def test_stale_read_without_synchronization_detected(self):
        # A reader that skips the barrier after a remote write trips the
        # stale-copy validator (this is exactly the bug class it exists for).
        cl, a = one_block_cluster()
        b = a.block_of_element((0, 1))

        def reader_then_rereads():
            yield from cl.read_blocks(2, [b])     # gets version 0
            yield from cl.barrier(2)              # writer writes in between
            yield from cl.barrier(2)
            # Reader's tag was invalidated by the protocol, so this is a
            # miss, not a stale hit — the protocol keeps us safe.
            yield from cl.read_blocks(2, [b])

        def writer():
            yield from cl.barrier(1)
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=writer(), n2=reader_then_rereads())
        assert stats[2].read_misses == 2  # second read missed again: coherent

    def test_deadlock_detection_surfaces_stuck_nodes(self):
        cl, _ = one_block_cluster()

        def stuck():
            yield from cl.barrier(1)  # nobody else arrives

        with pytest.raises(SimulationError, match="node1"):
            run_programs(cl, n1=stuck())


class TestSingleVsDualCpu:
    def _run(self, dual):
        cfg = ClusterConfig(n_nodes=2, dual_cpu=dual)
        mem = SharedMemory(cfg)
        a = mem.alloc("a", (16, 2), Distribution.block(2))
        cl = Cluster(cfg, mem)
        b = a.block_of_element((0, 0))  # homed at 0

        def reader():
            for _ in range(10):
                yield from cl.read_blocks(1, [b])
                yield from cl.ext.implicit_invalidate(1, [b])

        def home_computes():
            yield from cl.compute(0, 2_000_000)

        stats = run_programs(cl, n0=home_computes(), n1=reader())
        return stats

    def test_single_cpu_is_slower(self):
        dual = self._run(dual=True)
        single = self._run(dual=False)
        assert single.elapsed_ns > dual.elapsed_ns

    def test_single_cpu_steals_compute_time(self):
        # Node 0 computes while serving node 1's misses: on a single CPU
        # the handlers delay the computation's completion.
        single = self._run(dual=False)
        assert single[0].stall_ns > 0
