"""Tests for the adaptive (Jacobson/Karels) retransmission timer.

The estimator tests drive ``_sample_rtt`` directly so the integer
arithmetic is checked against closed-form expectations; the end-to-end
tests build the scenario the feature exists for — bulk payloads whose
serialization alone exceeds the fixed timeout — and compare the two
timers on the simulator's spurious-retransmit ground truth.
"""

import pytest

from repro.tempest import FaultConfig, MsgKind
from repro.tempest.faults import _US
from tests.tempest.conftest import make_cluster
from tests.tempest.test_faults import ScriptedRandom, faulty_cluster, send_and_run


def adaptive_cluster(n_nodes=2, **fault_overrides):
    faults = FaultConfig(jitter_ns=1, seed=0, adaptive_rto=True,
                         **fault_overrides)
    cluster, _arr = make_cluster(n_nodes=n_nodes, faults=faults)
    return cluster


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
class TestAdaptiveConfig:
    def test_adaptive_alone_does_not_engage_transport(self):
        # Like a bare seed: the flag without fault rates must not perturb
        # fault-free schedules.
        assert not FaultConfig(adaptive_rto=True).enabled
        cluster, _ = make_cluster(
            n_nodes=2, faults=FaultConfig(adaptive_rto=True)
        )
        assert cluster.network.transport is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rto_min_ns=0),
            dict(rto_min_ns=-1),
            dict(rto_min_ns=100 * _US, rto_max_ns=50 * _US),
        ],
    )
    def test_invalid_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(adaptive_rto=True, **kwargs)

    def test_floor_defaults_to_fixed_timeout(self):
        # The adaptive timer never fires earlier than the fixed timer it
        # replaces: with no explicit floor, rto_min is the fixed timeout.
        assert (FaultConfig(adaptive_rto=True).rto_min_ns
                == FaultConfig().retransmit_timeout_ns)
        assert (FaultConfig(retransmit_timeout_ns=77 * _US).rto_min_ns
                == 77 * _US)

    def test_initial_rto_is_clamped_fixed_timeout(self):
        # Before any sample a channel runs on the configured fixed timeout,
        # clamped into [rto_min, rto_max].
        cluster = adaptive_cluster(
            retransmit_timeout_ns=10 * _US, rto_min_ns=40 * _US
        )
        assert cluster.network.transport._initial_rto == 40 * _US
        cluster = adaptive_cluster(
            retransmit_timeout_ns=5_000 * _US, max_backoff_ns=5_000 * _US,
            rto_min_ns=40 * _US,
        )
        assert cluster.network.transport._initial_rto == FaultConfig().rto_max_ns

    def test_fixed_mode_ignores_bounds(self):
        cluster = faulty_cluster(FaultConfig(jitter_ns=1))
        t = cluster.network.transport
        assert not t.adaptive
        assert t._initial_rto == FaultConfig().retransmit_timeout_ns


# --------------------------------------------------------------------- #
# the estimator itself
# --------------------------------------------------------------------- #
class TestEstimator:
    def channel(self, **fault_overrides):
        t = adaptive_cluster(**fault_overrides).network.transport
        return t, t._channel(0, 1)

    def test_first_sample_seeds_srtt_and_rttvar(self):
        t, ch = self.channel()
        t._sample_rtt(ch, 50 * _US)
        assert ch.srtt_ns == 50 * _US
        assert ch.rttvar_ns == 25 * _US
        assert ch.rto_ns == 150 * _US    # srtt + 4 * rttvar

    def test_constant_rtt_converges_to_it(self):
        # Floor lowered so the raw estimator arithmetic is visible.
        t, ch = self.channel(rto_min_ns=1 * _US)
        for _ in range(200):
            t._sample_rtt(ch, 50 * _US)
        assert ch.srtt_ns == 50 * _US
        assert ch.rttvar_ns == 0         # variance decays to exactly zero
        assert ch.rto_ns == 50 * _US

    def test_rto_floor_clamps_small_rtts(self):
        t, ch = self.channel()
        for _ in range(200):
            t._sample_rtt(ch, 1 * _US)
        assert ch.rto_ns == FaultConfig().rto_min_ns

    def test_rto_ceiling_clamps_huge_rtts(self):
        t, ch = self.channel()
        t._sample_rtt(ch, 10_000 * _US)
        assert ch.rto_ns == FaultConfig().rto_max_ns

    def test_variance_widens_rto(self):
        # Alternating RTTs keep RTTVAR high: the RTO must stay above the
        # largest observed sample.
        t, ch = self.channel()
        for i in range(100):
            t._sample_rtt(ch, (50 if i % 2 else 150) * _US)
        assert ch.rto_ns > 150 * _US

    def test_channels_learn_independently(self):
        t = adaptive_cluster(n_nodes=3).network.transport
        a, b = t._channel(0, 1), t._channel(0, 2)
        t._sample_rtt(a, 50 * _US)
        assert b.srtt_ns == -1
        assert b.rto_ns == t._initial_rto


# --------------------------------------------------------------------- #
# sampling discipline over the real wire
# --------------------------------------------------------------------- #
class TestSampling:
    def test_clean_exchange_takes_a_sample(self):
        cluster = adaptive_cluster()
        send_and_run(cluster)
        ch = cluster.network.transport._channel(0, 1)
        assert ch.srtt_ns > 0
        assert ch.rto_ns >= FaultConfig().rto_min_ns

    def test_karn_retransmitted_frame_never_samples(self):
        # First copy drops; the ack answers the retransmit, which is
        # ambiguous, so the channel must still have no RTT estimate.
        cluster = faulty_cluster(
            FaultConfig(drop_prob=0.5, seed=0, adaptive_rto=True)
        )
        cluster.network.transport.rng = ScriptedRandom([0.0, 0.9, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1
        ch = cluster.network.transport._channel(0, 1)
        assert ch.srtt_ns == -1

    def test_sample_excludes_own_serialization(self):
        # A lone bulk frame and a lone header frame on an idle link see the
        # same variable path (wire + ack); their samples must agree even
        # though their serialization times differ by ~100 us.
        bulk = adaptive_cluster()
        bulk.network.send(
            0, 1, MsgKind.DATA, lambda: None,
            bulk.config.handler_data_recv_ns, payload_bytes=2048,
        )
        bulk.engine.run()
        small = adaptive_cluster()
        send_and_run(small)
        srtt_bulk = bulk.network.transport._channel(0, 1).srtt_ns
        srtt_small = small.network.transport._channel(0, 1).srtt_ns
        assert abs(srtt_bulk - srtt_small) <= 2  # jitter draws only


# --------------------------------------------------------------------- #
# the headline scenario: bulk serialization vs the retransmit timer
# --------------------------------------------------------------------- #
def bulk_stream(adaptive, n_frames=4, payload=2048, gap=1_000 * _US):
    """Widely spaced bulk frames: each serializes for ~103 us, so the ack
    round trip (~124 us) overruns the fixed 120 us timer every time."""
    faults = FaultConfig(jitter_ns=1, seed=0, adaptive_rto=adaptive)
    cluster, _arr = make_cluster(n_nodes=2, faults=faults)
    log = []

    def send_one(i):
        cluster.network.send(
            0, 1, MsgKind.DATA, lambda: log.append(i),
            cluster.config.handler_data_recv_ns, payload_bytes=payload,
        )

    for i in range(n_frames):
        cluster.engine.call_after(i * gap, send_one, i)
    cluster.engine.run()
    return cluster.stats, log


class TestBulkSerialization:
    def test_fixed_timer_fires_spuriously_on_every_bulk_frame(self):
        stats, log = bulk_stream(adaptive=False)
        assert log == [0, 1, 2, 3]                   # delivered exactly once
        rel = stats.reliability_summary()
        assert rel["spurious_retransmits"] == 4
        assert rel["retransmits"] == 4
        assert rel["drops"] == 0                     # nothing was ever lost

    def test_adaptive_timer_never_fires(self):
        stats, log = bulk_stream(adaptive=True)
        assert log == [0, 1, 2, 3]
        rel = stats.reliability_summary()
        assert rel["spurious_retransmits"] == 0
        assert rel["retransmits"] == 0

    def test_adaptive_strictly_beats_fixed(self):
        fixed, _ = bulk_stream(adaptive=False)
        adapt, _ = bulk_stream(adaptive=True)
        assert (adapt.total_spurious_retransmits
                < fixed.total_spurious_retransmits)


# --------------------------------------------------------------------- #
# determinism and coherence under adaptive timing
# --------------------------------------------------------------------- #
def adaptive_storm(seed):
    faults = FaultConfig(
        drop_prob=0.1, dup_prob=0.1, jitter_ns=20 * _US, seed=seed,
        adaptive_rto=True,
    )
    cluster, _arr = make_cluster(n_nodes=4, faults=faults)

    def program(n):
        yield from cluster.write_blocks(n, [n], phase=1)
        yield from cluster.barrier(n)
        yield from cluster.read_blocks(n, list(range(4)), phase=2)
        yield from cluster.barrier(n)

    return cluster.run(
        {n: program(n) for n in range(4)}, audit=True, audit_each_barrier=True
    )


class TestAdaptiveDeterminism:
    def test_same_seed_same_run(self):
        a, b = adaptive_storm(5), adaptive_storm(5)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.reliability_summary() == b.reliability_summary()

    def test_storm_still_coherent(self):
        rel = adaptive_storm(7).reliability_summary()
        assert rel["drops"] > 0 or rel["dups"] > 0
