"""The coherence auditor: clean states pass, seeded corruptions are named.

Each corruption test takes a healthy post-run cluster, breaks exactly one
invariant by hand (simulating a protocol bug or an undetected transport
failure), and asserts the auditor raises :class:`CoherenceAuditError`
mentioning the right site.
"""

import numpy as np
import pytest

from repro.tempest import AccessTag, CoherenceAuditError, audit_coherence
from tests.tempest.conftest import make_cluster


def run_small_workload(read_all=True, **overrides):
    """All nodes write their own block, then read (everybody's | their own).

    ``read_all=False`` leaves most (node, block) pairs untouched, so tests
    that need an *outsider* — a node with no directory standing for some
    block — can find one.
    """
    cluster, _arr = make_cluster(n_nodes=4, **overrides)

    def program(n):
        yield from cluster.write_blocks(n, [n], phase=1)
        yield from cluster.barrier(n)
        reads = list(range(4)) if read_all else [n]
        yield from cluster.read_blocks(n, reads, phase=2)
        yield from cluster.barrier(n)

    cluster.run({n: program(n) for n in range(4)})
    return cluster


class TestCleanStatesPass:
    def test_fresh_cluster_audits_clean(self):
        cluster, _ = make_cluster(n_nodes=4)
        assert cluster.audit() > 0

    def test_post_run_cluster_audits_clean(self):
        cluster = run_small_workload()
        cluster.audit()

    def test_audit_during_run_at_barriers(self):
        cluster, _arr = make_cluster(n_nodes=2)

        def program(n):
            yield from cluster.write_blocks(n, [n], phase=1)
            yield from cluster.barrier(n)
            yield from cluster.read_blocks(n, [1 - n], phase=2)
            yield from cluster.barrier(n)

        cluster.run(
            {n: program(n) for n in range(2)}, audit=True, audit_each_barrier=True
        )


class TestCorruptionsCaught:
    def test_unexplained_readable_tag(self):
        cluster = run_small_workload(read_all=False)
        # Give a random non-holder a readable tag behind the directory's back.
        b = 0
        outsider = next(
            n for n in range(4)
            if n not in cluster.directory.sharers_of(b)
            and n != cluster.directory.home_of(b)
            and cluster.access.get(n, b) is AccessTag.INVALID
        )
        cluster.access._tags[outsider, b] = int(AccessTag.READONLY)
        with pytest.raises(CoherenceAuditError, match="unexplained"):
            cluster.audit()

    def test_exclusive_owner_without_readwrite_tag(self):
        cluster = run_small_workload()
        b = 0
        cluster.directory.set_exclusive(b, 2)
        cluster.access._tags[:, b] = int(AccessTag.INVALID)
        with pytest.raises(CoherenceAuditError, match="not READWRITE"):
            cluster.audit()

    def test_exclusive_with_sharer_residue(self):
        cluster = run_small_workload()
        b = 1
        cluster.directory.set_exclusive(b, 2)
        cluster.access._tags[:, b] = int(AccessTag.INVALID)
        cluster.access._tags[2, b] = int(AccessTag.READWRITE)
        cluster.directory.copy_version[2, b] = cluster.directory.global_version[b]
        cluster.audit()  # healthy exclusive
        cluster.directory.sharers[b] = np.uint64(0b1000)  # stale sharer bit
        with pytest.raises(CoherenceAuditError, match="sharer bitmask"):
            cluster.audit()

    def test_stale_sharer_copy(self):
        cluster = run_small_workload()
        # Pick a genuinely shared block and silently bump its version, as a
        # lost invalidation would: every sharer is now stale.
        b = next(
            b for b in range(4) if cluster.directory.sharers_of(b)
        )
        cluster.directory.global_version[b] += 1
        with pytest.raises(CoherenceAuditError, match="stale"):
            cluster.audit()

    def test_shared_with_empty_sharer_set(self):
        cluster = run_small_workload()
        b = next(b for b in range(4) if cluster.directory.sharers_of(b))
        cluster.directory.sharers[b] = np.uint64(0)
        with pytest.raises(CoherenceAuditError, match="empty sharer set"):
            cluster.audit()

    def test_idle_home_memory_stale(self):
        cluster, _ = make_cluster(n_nodes=4)
        b = 0
        home = cluster.directory.home_of(b)
        cluster.directory.global_version[b] += 1  # write nobody holds
        assert cluster.directory.state_of(b).name == "IDLE"
        with pytest.raises(CoherenceAuditError, match="stale"):
            cluster.audit()
        # Repairing the home's copy restores a clean audit.
        cluster.directory.copy_version[home, b] = cluster.directory.global_version[b]
        cluster.audit()

    def test_implicit_flag_on_invalid_tag(self):
        cluster = run_small_workload()
        cluster.access._implicit[3, 0] = True
        cluster.access._tags[3, 0] = int(AccessTag.INVALID)
        with pytest.raises(CoherenceAuditError, match="compiler-controlled"):
            cluster.audit()


class TestImplicitTagsExempt:
    def test_compiler_granted_tag_is_explained(self):
        cluster = run_small_workload(read_all=False)
        b = 0
        outsider = next(
            n for n in range(4)
            if n not in cluster.directory.sharers_of(b)
            and n != cluster.directory.home_of(b)
            and cluster.access.get(n, b) is AccessTag.INVALID
        )
        # The same foreign tag as in the corruption test, but marked as
        # compiler-granted: the auditor must accept it (its freshness is
        # the contract checker's responsibility).
        cluster.access.set(outsider, b, AccessTag.READWRITE, implicit=True)
        cluster.audit()


class TestSampledAudit:
    """``sample_prob < 1`` audits a seeded random subset of blocks."""

    @pytest.mark.parametrize("prob", [0.0, -0.5, 1.5])
    def test_bad_sample_prob_rejected(self, prob):
        cluster = run_small_workload()
        with pytest.raises(ValueError, match="sample_prob"):
            cluster.audit(sample_prob=prob)

    def test_full_probability_is_the_full_audit(self):
        cluster = run_small_workload()
        assert cluster.audit(sample_prob=1.0) == cluster.audit()

    def test_sampled_audit_checks_fewer_blocks_deterministically(self):
        cluster = run_small_workload()
        total = cluster.audit()
        rng = np.random.default_rng(3)
        checked = cluster.audit(sample_prob=0.5, rng=rng)
        assert 0 < checked < total
        # The selection is exactly the seeded generator's draw.
        expect = np.flatnonzero(
            np.random.default_rng(3).random(cluster.directory.n_blocks) < 0.5
        )
        assert checked == expect.size

    def test_default_rng_is_seeded(self):
        cluster = run_small_workload()
        assert (cluster.audit(sample_prob=0.5)
                == cluster.audit(sample_prob=0.5))

    def test_sampled_violations_name_real_block_ids(self):
        # Corrupt exactly the blocks a known seed selects; the sampled
        # audit must report them under their true ids, and only them.
        cluster = run_small_workload(read_all=False)
        n_blocks = cluster.directory.n_blocks
        seed = next(
            s for s in range(100)
            if {0, 1} & set(
                np.flatnonzero(np.random.default_rng(s).random(n_blocks) < 0.5)
            ) == {0}
        )
        cluster.access._tags[3, 0] = int(AccessTag.READWRITE)
        cluster.access._tags[3, 1] = int(AccessTag.READWRITE)
        cluster.access._implicit[3, 0:2] = False
        with pytest.raises(CoherenceAuditError) as exc:
            audit_coherence(
                cluster.directory, cluster.access,
                sample_prob=0.5, rng=np.random.default_rng(seed),
            )
        messages = "\n".join(exc.value.violations)
        assert "block 0:" in messages      # sampled, real id reported
        assert "block 1:" not in messages  # corrupted but not sampled

    def test_sampled_miss_passes_full_audit_catches(self):
        # A corruption outside the sample goes unseen -- that is the
        # bargain -- but the full audit still raises.
        cluster = run_small_workload(read_all=False)
        n_blocks = cluster.directory.n_blocks
        seed = next(
            s for s in range(100)
            if 0 not in np.flatnonzero(
                np.random.default_rng(s).random(n_blocks) < 0.5
            )
        )
        cluster.access._tags[3, 0] = int(AccessTag.READWRITE)
        cluster.access._implicit[3, 0] = False
        audit_coherence(
            cluster.directory, cluster.access,
            sample_prob=0.5, rng=np.random.default_rng(seed),
        )
        with pytest.raises(CoherenceAuditError):
            cluster.audit()

    def test_run_with_sampled_barrier_audits(self):
        cluster, _arr = make_cluster(n_nodes=2)

        def program(n):
            yield from cluster.write_blocks(n, [n], phase=1)
            yield from cluster.barrier(n)
            yield from cluster.read_blocks(n, [1 - n], phase=2)
            yield from cluster.barrier(n)

        cluster.run(
            {n: program(n) for n in range(2)},
            audit=True, audit_each_barrier=True, audit_sample_prob=0.5,
        )


class TestErrorStructure:
    def test_violations_listed_and_context_kept(self):
        cluster = run_small_workload(read_all=False)
        cluster.access._tags[3, 0] = int(AccessTag.READWRITE)
        cluster.access._tags[3, 1] = int(AccessTag.READWRITE)
        cluster.access._implicit[3, 0:2] = False
        with pytest.raises(CoherenceAuditError) as exc:
            audit_coherence(cluster.directory, cluster.access, context="t99")
        err = exc.value
        assert len(err.violations) >= 2
        assert err.context == "t99"
        assert "t99" in str(err)

    def test_is_an_assertion_error(self):
        # Like StaleReadError, audit failures are assertion-class: test
        # harnesses and validators treat them as correctness failures.
        assert issubclass(CoherenceAuditError, AssertionError)
