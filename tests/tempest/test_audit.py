"""The coherence auditor: clean states pass, seeded corruptions are named.

Each corruption test takes a healthy post-run cluster, breaks exactly one
invariant by hand (simulating a protocol bug or an undetected transport
failure), and asserts the auditor raises :class:`CoherenceAuditError`
mentioning the right site.
"""

import numpy as np
import pytest

from repro.tempest import AccessTag, CoherenceAuditError, audit_coherence
from tests.tempest.conftest import make_cluster


def run_small_workload(read_all=True, **overrides):
    """All nodes write their own block, then read (everybody's | their own).

    ``read_all=False`` leaves most (node, block) pairs untouched, so tests
    that need an *outsider* — a node with no directory standing for some
    block — can find one.
    """
    cluster, _arr = make_cluster(n_nodes=4, **overrides)

    def program(n):
        yield from cluster.write_blocks(n, [n], phase=1)
        yield from cluster.barrier(n)
        reads = list(range(4)) if read_all else [n]
        yield from cluster.read_blocks(n, reads, phase=2)
        yield from cluster.barrier(n)

    cluster.run({n: program(n) for n in range(4)})
    return cluster


class TestCleanStatesPass:
    def test_fresh_cluster_audits_clean(self):
        cluster, _ = make_cluster(n_nodes=4)
        assert cluster.audit() > 0

    def test_post_run_cluster_audits_clean(self):
        cluster = run_small_workload()
        cluster.audit()

    def test_audit_during_run_at_barriers(self):
        cluster, _arr = make_cluster(n_nodes=2)

        def program(n):
            yield from cluster.write_blocks(n, [n], phase=1)
            yield from cluster.barrier(n)
            yield from cluster.read_blocks(n, [1 - n], phase=2)
            yield from cluster.barrier(n)

        cluster.run(
            {n: program(n) for n in range(2)}, audit=True, audit_each_barrier=True
        )


class TestCorruptionsCaught:
    def test_unexplained_readable_tag(self):
        cluster = run_small_workload(read_all=False)
        # Give a random non-holder a readable tag behind the directory's back.
        b = 0
        outsider = next(
            n for n in range(4)
            if n not in cluster.directory.sharers_of(b)
            and n != cluster.directory.home_of(b)
            and cluster.access.get(n, b) is AccessTag.INVALID
        )
        cluster.access._tags[outsider, b] = int(AccessTag.READONLY)
        with pytest.raises(CoherenceAuditError, match="unexplained"):
            cluster.audit()

    def test_exclusive_owner_without_readwrite_tag(self):
        cluster = run_small_workload()
        b = 0
        cluster.directory.set_exclusive(b, 2)
        cluster.access._tags[:, b] = int(AccessTag.INVALID)
        with pytest.raises(CoherenceAuditError, match="not READWRITE"):
            cluster.audit()

    def test_exclusive_with_sharer_residue(self):
        cluster = run_small_workload()
        b = 1
        cluster.directory.set_exclusive(b, 2)
        cluster.access._tags[:, b] = int(AccessTag.INVALID)
        cluster.access._tags[2, b] = int(AccessTag.READWRITE)
        cluster.directory.copy_version[2, b] = cluster.directory.global_version[b]
        cluster.audit()  # healthy exclusive
        cluster.directory.sharers[b] = np.uint64(0b1000)  # stale sharer bit
        with pytest.raises(CoherenceAuditError, match="sharer bitmask"):
            cluster.audit()

    def test_stale_sharer_copy(self):
        cluster = run_small_workload()
        # Pick a genuinely shared block and silently bump its version, as a
        # lost invalidation would: every sharer is now stale.
        b = next(
            b for b in range(4) if cluster.directory.sharers_of(b)
        )
        cluster.directory.global_version[b] += 1
        with pytest.raises(CoherenceAuditError, match="stale"):
            cluster.audit()

    def test_shared_with_empty_sharer_set(self):
        cluster = run_small_workload()
        b = next(b for b in range(4) if cluster.directory.sharers_of(b))
        cluster.directory.sharers[b] = np.uint64(0)
        with pytest.raises(CoherenceAuditError, match="empty sharer set"):
            cluster.audit()

    def test_idle_home_memory_stale(self):
        cluster, _ = make_cluster(n_nodes=4)
        b = 0
        home = cluster.directory.home_of(b)
        cluster.directory.global_version[b] += 1  # write nobody holds
        assert cluster.directory.state_of(b).name == "IDLE"
        with pytest.raises(CoherenceAuditError, match="stale"):
            cluster.audit()
        # Repairing the home's copy restores a clean audit.
        cluster.directory.copy_version[home, b] = cluster.directory.global_version[b]
        cluster.audit()

    def test_implicit_flag_on_invalid_tag(self):
        cluster = run_small_workload()
        cluster.access._implicit[3, 0] = True
        cluster.access._tags[3, 0] = int(AccessTag.INVALID)
        with pytest.raises(CoherenceAuditError, match="compiler-controlled"):
            cluster.audit()


class TestImplicitTagsExempt:
    def test_compiler_granted_tag_is_explained(self):
        cluster = run_small_workload(read_all=False)
        b = 0
        outsider = next(
            n for n in range(4)
            if n not in cluster.directory.sharers_of(b)
            and n != cluster.directory.home_of(b)
            and cluster.access.get(n, b) is AccessTag.INVALID
        )
        # The same foreign tag as in the corruption test, but marked as
        # compiler-granted: the auditor must accept it (its freshness is
        # the contract checker's responsibility).
        cluster.access.set(outsider, b, AccessTag.READWRITE, implicit=True)
        cluster.audit()


class TestErrorStructure:
    def test_violations_listed_and_context_kept(self):
        cluster = run_small_workload(read_all=False)
        cluster.access._tags[3, 0] = int(AccessTag.READWRITE)
        cluster.access._tags[3, 1] = int(AccessTag.READWRITE)
        cluster.access._implicit[3, 0:2] = False
        with pytest.raises(CoherenceAuditError) as exc:
            audit_coherence(cluster.directory, cluster.access, context="t99")
        err = exc.value
        assert len(err.violations) >= 2
        assert err.context == "t99"
        assert "t99" in str(err)

    def test_is_an_assertion_error(self):
        # Like StaleReadError, audit failures are assertion-class: test
        # harnesses and validators treat them as correctness failures.
        assert issubclass(CoherenceAuditError, AssertionError)
