"""Unit tests for cluster configuration and calibration arithmetic."""

import dataclasses

import pytest

from repro.tempest.config import US, ClusterConfig, small_config


def test_defaults_match_paper_platform():
    cfg = ClusterConfig()
    assert cfg.n_nodes == 8
    assert cfg.block_size == 128
    assert cfg.dual_cpu
    assert cfg.bandwidth_bytes_per_us == 20.0  # 20 MB/s


def test_blocks_per_page():
    cfg = ClusterConfig()
    assert cfg.blocks_per_page == 4096 // 128


def test_transfer_time_tracks_bandwidth():
    cfg = ClusterConfig()
    # 20 bytes/us -> 128 bytes = 6.4 us
    assert cfg.transfer_ns(128) == 6400
    assert cfg.transfer_ns(0) == 0


def test_message_latency_includes_wire():
    cfg = ClusterConfig()
    assert cfg.message_latency_ns(0) == cfg.wire_latency_ns
    assert cfg.message_latency_ns(200) > cfg.wire_latency_ns


def test_short_message_roundtrip_near_40us():
    cfg = ClusterConfig()
    one_way = cfg.send_overhead_ns + cfg.message_latency_ns(20) + cfg.dispatch_overhead_ns
    assert 2 * one_way == pytest.approx(40 * US, rel=0.10)


def test_single_cpu_copy():
    cfg = ClusterConfig()
    single = cfg.single_cpu()
    assert not single.dual_cpu
    assert cfg.dual_cpu  # original untouched (frozen)


def test_with_nodes():
    assert ClusterConfig().with_nodes(2).n_nodes == 2


def test_scaled_replaces_fields():
    cfg = ClusterConfig().scaled(block_size=64, n_nodes=3)
    assert cfg.block_size == 64 and cfg.n_nodes == 3


def test_frozen():
    cfg = ClusterConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.n_nodes = 2


@pytest.mark.parametrize(
    "bad",
    [
        dict(n_nodes=0),
        dict(block_size=0),
        dict(block_size=33),  # not a multiple of 8
        dict(page_size=100),  # not a multiple of block_size
        dict(max_payload_blocks=0),
    ],
)
def test_validation_rejects(bad):
    with pytest.raises(ValueError):
        ClusterConfig(**bad)


def test_small_config_is_valid_and_tiny():
    cfg = small_config()
    assert cfg.n_nodes == 4
    assert cfg.block_size == 32
    assert cfg.blocks_per_page == 4
    assert small_config(n_nodes=2).n_nodes == 2
