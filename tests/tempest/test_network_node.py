"""Unit tests for the network transport and node CPU model."""

import pytest

from repro.sim import Delay, Engine
from repro.tempest import ClusterConfig
from repro.tempest.network import HEADER_BYTES, Network
from repro.tempest.node import Node
from repro.tempest.stats import ClusterStats, MsgKind


def make_net(n_nodes=2, **cfg_kw):
    cfg = ClusterConfig(n_nodes=n_nodes, **cfg_kw)
    eng = Engine()
    stats = ClusterStats.for_nodes(n_nodes)
    nodes = [Node(i, eng, cfg, stats[i]) for i in range(n_nodes)]
    return eng, cfg, stats, nodes, Network(eng, cfg, stats, nodes)


class TestNetwork:
    def test_delivery_time_components(self):
        eng, cfg, stats, nodes, net = make_net()
        seen = []
        net.send(0, 1, MsgKind.ACK, lambda: seen.append(eng.now), 0, payload_bytes=0)
        eng.run()
        expect = (
            cfg.transfer_ns(HEADER_BYTES) + cfg.wire_latency_ns + cfg.dispatch_overhead_ns
        )
        assert seen == [expect]

    def test_payload_extends_serialization(self):
        eng, cfg, _stats, _nodes, net = make_net()
        seen = []
        net.send(0, 1, MsgKind.DATA, lambda: seen.append(eng.now), 0, payload_bytes=1024)
        eng.run()
        base = cfg.transfer_ns(HEADER_BYTES) + cfg.wire_latency_ns + cfg.dispatch_overhead_ns
        assert seen[0] == base + cfg.transfer_ns(1024)

    def test_back_to_back_sends_serialize_on_the_link(self):
        eng, cfg, _stats, _nodes, net = make_net()
        seen = []
        for _ in range(3):
            net.send(0, 1, MsgKind.DATA, lambda: seen.append(eng.now), 0, payload_bytes=2000)
        eng.run()
        gaps = [b - a for a, b in zip(seen, seen[1:])]
        assert all(g == cfg.transfer_ns(HEADER_BYTES + 2000) for g in gaps)

    def test_handler_occupancy_serializes_at_destination(self):
        eng, cfg, _stats, _nodes, net = make_net()
        seen = []
        net.send(0, 1, MsgKind.ACK, lambda: seen.append(("a", eng.now)), 50_000)
        net.send(0, 1, MsgKind.ACK, lambda: seen.append(("b", eng.now)), 50_000)
        eng.run()
        # Second handler's effects apply a full occupancy after the first.
        assert seen[1][1] - seen[0][1] >= 50_000 - cfg.transfer_ns(HEADER_BYTES)

    def test_loopback_skips_wire(self):
        eng, cfg, _stats, _nodes, net = make_net()
        seen = []
        net.send(1, 1, MsgKind.ACK, lambda: seen.append(eng.now), 0)
        eng.run()
        assert seen == [cfg.dispatch_overhead_ns]

    def test_message_accounting(self):
        eng, cfg, stats, _nodes, net = make_net()
        net.send(0, 1, MsgKind.DATA, lambda: None, 0, payload_bytes=128)
        eng.run()
        assert stats[0].messages[MsgKind.DATA] == 1
        assert stats[0].bytes_sent == HEADER_BYTES + 128
        assert stats[1].bytes_sent == 0

    def test_broadcast(self):
        eng, cfg, stats, _nodes, net = make_net(n_nodes=4)
        got = []
        sent = net.broadcast(1, MsgKind.INV, lambda d: (lambda: got.append(d)), 0)
        eng.run()
        assert sent == 3 and sorted(got) == [0, 2, 3]
        got2 = []
        net.broadcast(1, MsgKind.INV, lambda d: (lambda: got2.append(d)), 0, include_self=True)
        eng.run()
        assert sorted(got2) == [0, 1, 2, 3]


class TestNodeCompute:
    def test_dual_cpu_compute_unsliced(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1, dual_cpu=True)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])

        def prog():
            yield from node.compute(10_000_000)

        eng.spawn(prog())
        eng.run()
        assert eng.now == 10_000_000
        assert node.stats.compute_ns == 10_000_000
        # One job on the CPU, not many slices.
        assert node.compute_cpu.jobs == 1

    def test_single_cpu_compute_sliced(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1, dual_cpu=False)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])

        def prog():
            yield from node.compute(1_000_000)

        eng.spawn(prog())
        eng.run()
        assert eng.now == 1_000_000
        assert node.compute_cpu.jobs == 1_000_000 // cfg.compute_quantum_ns

    def test_single_cpu_handlers_interleave_and_stall_accounted(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1, dual_cpu=False)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])
        handler_done = []
        eng.call_at(150_000, node.run_handler, 30_000, lambda: handler_done.append(eng.now))

        def prog():
            yield from node.compute(1_000_000)

        eng.spawn(prog())
        eng.run()
        # The handler ran mid-computation (well before the compute end)...
        assert handler_done[0] < 1_000_000
        # ...and its occupancy + interrupt overhead delayed the compute.
        delay = cfg.interrupt_overhead_ns + 30_000
        assert eng.now == 1_000_000 + delay
        assert node.stats.stall_ns == delay

    def test_dual_cpu_handlers_do_not_steal_compute(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1, dual_cpu=True)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])
        eng.call_at(150_000, node.run_handler, 30_000, lambda: None)

        def prog():
            yield from node.compute(1_000_000)

        eng.spawn(prog())
        eng.run()
        assert node.stats.stall_ns == 0

    def test_zero_compute_is_noop(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])

        def prog():
            yield from node.compute(0)
            return eng.now

        done = eng.spawn(prog())
        eng.run()
        assert done.value == 0

    def test_drain_pending_waits_and_accounts(self):
        eng = Engine()
        cfg = ClusterConfig(n_nodes=1)
        node = Node(0, eng, cfg, ClusterStats.for_nodes(1)[0])
        fut = eng.future()
        node.post_pending(fut)
        eng.call_at(70_000, fut.resolve, None)

        def prog():
            yield from node.drain_pending()

        eng.spawn(prog())
        eng.run()
        assert eng.now == 70_000
        assert node.stats.stall_ns == 70_000
        assert node.pending == []
