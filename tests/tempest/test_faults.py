"""Unit tests for the fault model and the reliable transport.

The controlled tests replace the transport's seeded RNG with a scripted
one, so each reliability mechanism (retransmit, backoff, dedup, reorder)
is exercised by name rather than hoped for statistically; the end-to-end
tests then run real workloads under seeded fault storms.
"""

import pytest

from repro.tempest import FaultConfig, MsgKind
from repro.tempest.faults import _US
from tests.tempest.conftest import make_cluster


class ScriptedRandom:
    """random.Random stand-in replaying a fixed script of draws.

    ``random()`` pops from ``uniforms`` (then repeats the final value);
    ``randrange(n)`` pops from ``ranges`` (then returns 0).
    """

    def __init__(self, uniforms=(), ranges=()):
        self.uniforms = list(uniforms)
        self.ranges = list(ranges)

    def random(self):
        return self.uniforms.pop(0) if len(self.uniforms) > 1 else self.uniforms[0]

    def randrange(self, n):
        v = self.ranges.pop(0) if self.ranges else 0
        assert v < n
        return v


def faulty_cluster(faults, n_nodes=2):
    cluster, _arr = make_cluster(n_nodes=n_nodes, faults=faults)
    return cluster


def _idle():
    return
    yield  # pragma: no cover


def send_and_run(cluster, n_messages=1, src=0, dst=1):
    """Send header-only messages and drain the engine; returns delivery log."""
    log = []
    for i in range(n_messages):
        cluster.network.send(
            src, dst, MsgKind.ACK,
            lambda i=i: log.append((i, cluster.engine.now)),
            cluster.config.handler_ack_ns,
        )
    cluster.engine.run()
    return log


# --------------------------------------------------------------------- #
# FaultConfig validation
# --------------------------------------------------------------------- #
class TestFaultConfig:
    def test_defaults_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drop_prob=0.1),
            dict(dup_prob=0.1),
            dict(jitter_ns=1),
            dict(stall_prob=0.1, stall_ns=1000),
        ],
    )
    def test_any_fault_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drop_prob=1.0),
            dict(drop_prob=-0.1),
            dict(dup_prob=1.5),
            dict(stall_prob=0.5),          # stall_ns missing
            dict(jitter_ns=-1),
            dict(retransmit_timeout_ns=0),
            dict(retransmit_timeout_ns=100, max_backoff_ns=50),
            dict(max_retries=0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_seed_alone_does_not_enable(self):
        # A seed without fault rates must not perturb fault-free runs.
        assert not FaultConfig(seed=99).enabled


# --------------------------------------------------------------------- #
# transport wiring
# --------------------------------------------------------------------- #
class TestTransportEngagement:
    def test_perfect_wire_has_no_transport(self):
        cluster, _ = make_cluster(n_nodes=2)
        assert cluster.network.transport is None

    def test_faulty_wire_builds_transport(self):
        cluster = faulty_cluster(FaultConfig(drop_prob=0.1))
        assert cluster.network.transport is not None

    def test_loopback_bypasses_transport(self):
        # Self-sends never cross the wire, so they take no fault draws.
        cluster = faulty_cluster(FaultConfig(drop_prob=0.5, seed=1))
        cluster.network.transport.rng = ScriptedRandom([0.0])  # would drop
        log = send_and_run(cluster, src=0, dst=0)
        assert len(log) == 1
        assert cluster.stats.total_drops == 0


# --------------------------------------------------------------------- #
# reliability mechanisms, each forced by a scripted RNG
# --------------------------------------------------------------------- #
class TestRetransmit:
    def test_dropped_frame_retransmitted_and_delivered_once(self):
        cluster = faulty_cluster(FaultConfig(drop_prob=0.5, seed=0))
        # Draw order per wire copy: drop?, dup?.  Script: first copy drops,
        # every later draw (retransmit, acks) passes.
        cluster.network.transport.rng = ScriptedRandom([0.0, 0.9, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1
        assert cluster.stats.total_drops == 1
        assert cluster.stats.total_retransmits == 1
        # Delivery waited for the retransmit timeout.
        assert log[0][1] >= FaultConfig().retransmit_timeout_ns

    def test_lost_ack_recovered_by_dedup(self):
        cluster = faulty_cluster(FaultConfig(drop_prob=0.5, seed=0))
        # dup_prob is 0, so draws are alternating data-drop/ack-drop:
        # data passes, ack DROPS; retransmitted data passes, ack passes.
        cluster.network.transport.rng = ScriptedRandom([0.9, 0.0, 0.9, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1                       # handler still exactly-once
        assert cluster.stats.total_retransmits == 1
        assert cluster.stats.total_dups == 1       # the retransmitted copy
        assert cluster.network.transport.in_flight == 0

    def test_unreachable_peer_parks_instead_of_raising(self):
        # Historically this raised TransportError and aborted the run; the
        # recovery protocol instead marks the channel PARTITIONED, parks
        # the frame, and records the give-up in the stats.
        cluster = faulty_cluster(
            FaultConfig(drop_prob=0.9, seed=0, max_retries=3)
        )
        cluster.network.transport.rng = ScriptedRandom([0.0])  # drop forever
        log = send_and_run(cluster)
        assert log == []                                # never delivered
        assert cluster.stats.total_retransmits == 3
        assert cluster.stats.total_gave_up == 1
        t = cluster.network.transport
        assert t.parked_frames == 1
        assert t.partitioned_channels() == [{"src": 0, "dst": 1, "parked": 1}]
        (event,) = cluster.stats.partition_events
        assert event["src"] == 0 and event["dst"] == 1
        assert event["scenario"] is None                # organic loss
        assert event["healed"] is False


class TestBackoff:
    def test_timeout_doubles_until_capped(self):
        faults = FaultConfig(
            drop_prob=0.9, seed=0,
            retransmit_timeout_ns=100 * _US,
            max_backoff_ns=400 * _US,
            max_retries=6,
        )
        cluster = faulty_cluster(faults)
        cluster.network.transport.rng = ScriptedRandom([0.0])  # drop forever
        log = send_and_run(cluster)
        assert log == []  # retransmit budget exhausted; frame parked
        # 100 -> 200 -> 400 (cap) -> 400 -> ...: only two real increases.
        assert cluster.stats.total_backoffs == 2
        assert cluster.stats.total_retransmits == 6
        assert cluster.stats.total_gave_up == 1

    def test_retransmit_spacing_follows_backoff(self):
        faults = FaultConfig(
            drop_prob=0.5, seed=0,
            retransmit_timeout_ns=100 * _US,
            max_backoff_ns=10_000 * _US,
        )
        cluster = faulty_cluster(faults)
        # Drop the first two copies, deliver the third, ack passes.
        cluster.network.transport.rng = ScriptedRandom([0.0, 0.0, 0.9, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1
        # Two timeouts elapsed before the successful copy: 100us then 200us.
        assert log[0][1] >= (100 + 200) * _US
        assert cluster.stats.total_backoffs == 2


class TestDedupAndOrdering:
    def test_duplicate_wire_copy_suppressed(self):
        cluster = faulty_cluster(FaultConfig(dup_prob=0.5, seed=0))
        # drop_prob is 0 so the only draw per wire copy is the dup draw:
        # DUPLICATE the first copy, then all clean.
        cluster.network.transport.rng = ScriptedRandom([0.0, 0.9])
        log = send_and_run(cluster)
        assert len(log) == 1
        assert cluster.stats.total_dups == 1

    def test_jitter_cannot_reorder_handlers(self):
        # Frame 0 takes near-maximal jitter, frame 1 none: frame 1's wire
        # copy arrives first but must wait for frame 0 in the reorder
        # buffer.  The retransmit timeout exceeds the jitter bound so the
        # delayed copy is not also retransmitted.
        cluster = faulty_cluster(
            FaultConfig(jitter_ns=100 * _US, retransmit_timeout_ns=500 * _US)
        )
        cluster.network.transport.rng = ScriptedRandom(
            [0.9], ranges=[100 * _US - 1, 0, 0, 0]
        )
        log = send_and_run(cluster, n_messages=2)
        assert [i for i, _t in log] == [0, 1]
        assert cluster.stats.total_dups == 0
        assert cluster.stats.total_retransmits == 0

    def test_interleaved_channels_are_independent(self):
        # Sequence spaces are per (src, dst): a drop on 0->1 must not stall
        # deliveries on 1->0.
        cluster = faulty_cluster(FaultConfig(drop_prob=0.5, seed=0))
        t = cluster.network.transport
        t.rng = ScriptedRandom([0.0, 0.9, 0.9])  # only the very first copy drops
        log = []
        cluster.network.send(
            0, 1, MsgKind.ACK, lambda: log.append("fwd"),
            cluster.config.handler_ack_ns,
        )
        cluster.network.send(
            1, 0, MsgKind.ACK, lambda: log.append("rev"),
            cluster.config.handler_ack_ns,
        )
        cluster.engine.run()
        assert sorted(log) == ["fwd", "rev"]
        assert log[0] == "rev"  # undropped direction delivered first


# --------------------------------------------------------------------- #
# stalls
# --------------------------------------------------------------------- #
class TestStallWindows:
    def test_stall_inflates_handler_occupancy(self):
        base = faulty_cluster(FaultConfig(jitter_ns=1))  # transport, no stalls
        base.network.transport.rng = ScriptedRandom([0.9], ranges=[0])
        t_base = send_and_run(base)[0][1]

        stalled = faulty_cluster(
            FaultConfig(stall_prob=0.5, stall_ns=300 * _US, seed=0)
        )
        stalled.network.transport.rng = ScriptedRandom([0.0])  # always stall
        t_stall = send_and_run(stalled)[0][1]
        assert t_stall - t_base == 300 * _US


# --------------------------------------------------------------------- #
# end-to-end determinism under real fault storms
# --------------------------------------------------------------------- #
def storm_run(seed):
    cluster = faulty_cluster(
        FaultConfig(drop_prob=0.1, dup_prob=0.1, jitter_ns=20 * _US, seed=seed),
        n_nodes=4,
    )

    def program(n):
        blocks = list(range(4))
        yield from cluster.write_blocks(n, [n], phase=1)
        yield from cluster.barrier(n)
        yield from cluster.read_blocks(n, blocks, phase=2)
        yield from cluster.barrier(n)

    stats = cluster.run(
        {n: program(n) for n in range(4)}, audit=True, audit_each_barrier=True
    )
    return stats


class TestDeterminism:
    def test_same_seed_same_run(self):
        a, b = storm_run(5), storm_run(5)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.reliability_summary() == b.reliability_summary()
        assert a.messages_by_kind() == b.messages_by_kind()

    def test_different_seed_different_faults(self):
        a, b = storm_run(5), storm_run(6)
        assert a.reliability_summary() != b.reliability_summary()

    def test_fault_storm_still_coherent(self):
        stats = storm_run(7)
        rel = stats.reliability_summary()
        assert rel["drops"] > 0 or rel["dups"] > 0  # the storm actually hit
        # audit=True in storm_run already proved coherence; spot-check the
        # summary surface too.
        assert "drops" in stats.summary()

    def test_fault_free_summary_has_no_reliability_keys(self):
        cluster, _ = make_cluster(n_nodes=2)
        cluster.run({0: _idle(), 1: _idle()})
        assert "drops" not in cluster.stats.summary()


# --------------------------------------------------------------------- #
# elapsed-time accounting under faults
# --------------------------------------------------------------------- #
class TestElapsedAccounting:
    def test_trailing_retransmit_timers_not_counted(self):
        # After the last program finishes, already-armed (stale) retransmit
        # timers still pop as no-ops; elapsed_ns must reflect program
        # completion, not the last timer.
        cluster = faulty_cluster(FaultConfig(jitter_ns=1, seed=0))

        def sender():
            cluster.network.send(
                0, 1, MsgKind.ACK, lambda: None, cluster.config.handler_ack_ns
            )
            return
            yield

        stats = cluster.run({0: sender(), 1: _idle()})
        # The timer pops at ~retransmit_timeout; completion is much earlier.
        assert stats.elapsed_ns < FaultConfig().retransmit_timeout_ns
        assert cluster.engine.now >= FaultConfig().retransmit_timeout_ns
