"""Tests for the control-message combining layer.

The unit tests drive ``Network.send`` directly so each flush trigger
(cold-eager send, hot-channel parking, max_msgs cap, hold timer,
link-idle flush, non-combinable flush-ahead) is exercised by name.  The
app-level tests then prove the two properties the optimization must
keep: identical numerics (with a clean coherence audit) and a real
reduction in header-only wire traffic on invalidation-heavy apps.
"""

import pytest

from repro.apps import APPS
from repro.runtime import run_shmem, run_uniproc
from repro.sim import SimulationError
from repro.tempest import ClusterConfig, MsgKind
from repro.tempest.config import US, CombineConfig
from repro.tempest.network import HEADER_BYTES
from tests.tempest.conftest import make_cluster

#: Kinds that travel as bare headers and are marked combinable somewhere
#: in the protocol stack (transport acks are counted separately).
HEADER_KINDS = (
    MsgKind.INV,
    MsgKind.ACK,
    MsgKind.BARRIER_ARRIVE,
    MsgKind.BARRIER_RELEASE,
    MsgKind.SELF_INV,
    MsgKind.UPDATE_ACK,
)

#: Cheap per-app parameters (mirrors tests/apps/test_apps.py).
SMALL = {
    "pde": dict(n=24, iters=2),
    "shallow": dict(rows=65, cols=33, iters=3),
    "grav": dict(n=17, iters=2),
    "lu": dict(n=48),
    "cg": dict(rows=40, cols=80, iters=8),
    "jacobi": dict(n=64, iters=3),
}

CFG = ClusterConfig(n_nodes=4)
CFG_COMBINE = ClusterConfig(n_nodes=4, combine=CombineConfig(enabled=True))


def combining_cluster(n_nodes=2, **combine_overrides):
    combine = CombineConfig(enabled=True, **combine_overrides)
    cluster, _arr = make_cluster(n_nodes=n_nodes, combine=combine)
    return cluster


def send_burst(cluster, n, src=0, dst=1, kind=MsgKind.ACK, combinable=True,
               log=None, tag=None):
    """Back-to-back header-only sends; returns the delivery log."""
    log = log if log is not None else []
    for i in range(n):
        label = i if tag is None else tag
        cluster.network.send(
            src, dst, kind,
            lambda label=label: log.append((label, cluster.engine.now)),
            cluster.config.handler_ack_ns,
            combinable=combinable,
        )
    return log


def header_only_frames(stats):
    """Control frames on the wire: lone header-only messages + combined."""
    kinds = stats.messages_by_kind()
    return (
        sum(kinds.get(k, 0) for k in HEADER_KINDS)
        + kinds.get(MsgKind.COMBINED, 0)
    )


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
class TestCombineConfig:
    def test_disabled_by_default(self):
        assert not CombineConfig().enabled
        assert not ClusterConfig().combine.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_msgs=1),
            dict(max_msgs=0),
            dict(slot_bytes=0),
            dict(max_wait_ns=0),
            dict(max_wait_ns=-1),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CombineConfig(enabled=True, **kwargs)

    def test_disabled_network_has_no_machinery(self):
        cluster, _ = make_cluster(n_nodes=2)
        assert not cluster.network.combining
        assert not hasattr(cluster.network, "_pending")


# --------------------------------------------------------------------- #
# flush triggers, one by one
# --------------------------------------------------------------------- #
class TestFlushTriggers:
    def test_burst_combines_behind_eager_leader(self):
        # First frame on a cold channel goes out eagerly and heats the
        # channel; the three followers park and ride one combined frame.
        cluster = combining_cluster()
        log = send_burst(cluster, 4)
        cluster.engine.run()
        assert [i for i, _t in log] == [0, 1, 2, 3]  # send order preserved
        kinds = cluster.stats.messages_by_kind()
        assert kinds[MsgKind.ACK] == 1          # the eager leader
        assert kinds[MsgKind.COMBINED] == 1     # the followers, together
        assert cluster.stats.total_combine_flushes == 1
        assert cluster.stats.msgs_combined_by_kind()[MsgKind.ACK] == 3

    def test_combined_frame_wire_bytes(self):
        # One 16-byte leader + one combined frame of header + 3 slots.
        cluster = combining_cluster()
        send_burst(cluster, 4)
        cluster.engine.run()
        slot = cluster.config.combine.slot_bytes
        assert cluster.stats[0].bytes_sent == HEADER_BYTES + (HEADER_BYTES + 3 * slot)

    def test_max_msgs_cap_flushes_eagerly(self):
        # Cap 2: leader, then pairs of followers flush the moment they fill.
        cluster = combining_cluster(max_msgs=2)
        log = send_burst(cluster, 5)
        cluster.engine.run()
        assert [i for i, _t in log] == [0, 1, 2, 3, 4]
        kinds = cluster.stats.messages_by_kind()
        assert kinds[MsgKind.ACK] == 1
        assert kinds[MsgKind.COMBINED] == 2
        assert cluster.stats.total_msgs_combined == 4
        assert cluster.stats.total_combine_flushes == 2

    def test_lone_parked_frame_travels_as_its_own_kind(self):
        # A follower with no channel-mates degenerates to a normal single
        # message: no combined frame, no combining counters.
        cluster = combining_cluster()
        send_burst(cluster, 2)
        cluster.engine.run()
        kinds = cluster.stats.messages_by_kind()
        assert kinds[MsgKind.ACK] == 2
        assert MsgKind.COMBINED not in kinds
        assert cluster.stats.total_combine_flushes == 0
        assert cluster.stats.total_msgs_combined == 0

    def test_hold_timer_bounds_parked_latency(self):
        # A follower parked on a hot-but-idle channel leaves on the hold
        # timer, max_wait_ns after parking -- never later.
        cluster = combining_cluster()
        log = send_burst(cluster, 1)               # heats the channel at t=0
        cluster.engine.call_after(
            20 * US, lambda: send_burst(cluster, 1, log=log, tag=1)
        )
        cluster.engine.run()
        wait = cluster.config.combine.max_wait_ns
        # Parked at 20us, flushed at 20us + max_wait, delivered after the
        # usual wire costs; it must not have left before the timer.
        assert log[1][1] >= 20 * US + wait
        assert log[1][1] < 20 * US + wait + 30 * US
        assert cluster.stats.messages_by_kind()[MsgKind.ACK] == 2

    def test_noncombinable_send_flushes_parked_frames_ahead(self):
        # Per-channel FIFO: a parked control frame must reach the link
        # before any later non-combinable message to the same destination.
        cluster = combining_cluster()
        log = send_burst(cluster, 2)               # leader + one parked
        cluster.network.send(
            0, 1, MsgKind.GRANT,
            lambda: log.append(("grant", cluster.engine.now)),
            cluster.config.handler_ack_ns,
        )
        cluster.engine.run()
        assert [i for i, _t in log] == [0, 1, "grant"]

    def test_loopback_never_combines(self):
        cluster = combining_cluster()
        log = send_burst(cluster, 3, src=0, dst=0)
        cluster.engine.run()
        assert len(log) == 3
        kinds = cluster.stats.messages_by_kind()
        assert kinds[MsgKind.ACK] == 3
        assert MsgKind.COMBINED not in kinds

    def test_combinable_payload_rejected(self):
        cluster = combining_cluster()
        with pytest.raises(SimulationError, match="header-only"):
            cluster.network.send(
                0, 1, MsgKind.DATA, lambda: None,
                cluster.config.handler_ack_ns,
                payload_bytes=64, combinable=True,
            )

    def test_cold_channel_after_quiet_spell_sends_eagerly(self):
        # Once max_wait_ns passes with no traffic the channel cools; the
        # next lone control frame again pays zero combining latency.
        cluster = combining_cluster()
        log = send_burst(cluster, 1)
        cluster.engine.call_after(
            100 * US, lambda: send_burst(cluster, 1, log=log, tag=1)
        )
        cluster.engine.run()
        # Same uncombined delivery latency for both isolated frames.
        assert log[1][1] - 100 * US == log[0][1]
        assert MsgKind.COMBINED not in cluster.stats.messages_by_kind()


# --------------------------------------------------------------------- #
# application-level: numerics, audit, and actual traffic reduction
# --------------------------------------------------------------------- #
class TestAppsUnderCombining:
    @pytest.mark.parametrize("app", sorted(SMALL))
    def test_numerics_and_audit_unchanged(self, app):
        prog = APPS[app].program(**SMALL[app])
        base = run_shmem(prog, CFG)
        comb = run_shmem(prog, CFG_COMBINE)     # end-of-run audit built in
        comb.assert_same_numerics(base)
        assert comb.stats.total_messages <= base.stats.total_messages

    @pytest.mark.parametrize("app", ["grav", "jacobi", "lu", "pde"])
    def test_message_conservation(self, app):
        # Where combining does not shift protocol timing (hit/miss
        # patterns), every header-only message is accounted for: it went
        # alone or it rode a combined frame.
        prog = APPS[app].program(**SMALL[app])
        base = run_shmem(prog, CFG).stats.messages_by_kind()
        comb_run = run_shmem(prog, CFG_COMBINE).stats
        comb = comb_run.messages_by_kind()
        absorbed = comb_run.msgs_combined_by_kind()
        for kind in HEADER_KINDS:
            assert comb.get(kind, 0) + absorbed.get(kind, 0) == base.get(kind, 0)

    def test_invalidation_heavy_app_sheds_20_percent_of_control_frames(self):
        # The acceptance bar: unoptimized jacobi (all boundary traffic goes
        # through INV/ACK storms) puts >= 20% fewer header-only frames on
        # the wire with combining enabled.
        prog = APPS["jacobi"].program(**SMALL["jacobi"])
        base = run_shmem(prog, CFG)
        comb = run_shmem(prog, CFG_COMBINE)
        comb.assert_same_numerics(base)
        before = header_only_frames(base.stats)
        after = header_only_frames(comb.stats)
        assert after <= 0.8 * before
        assert comb.stats.total_msgs_combined > 0

    def test_combining_is_deterministic(self):
        prog = APPS["jacobi"].program(**SMALL["jacobi"])
        a = run_shmem(prog, CFG_COMBINE)
        b = run_shmem(prog, CFG_COMBINE)
        assert a.stats.elapsed_ns == b.stats.elapsed_ns
        assert a.stats.messages_by_kind() == b.stats.messages_by_kind()
        assert a.stats.combining_summary() == b.stats.combining_summary()

    def test_disabled_runs_report_no_combining(self):
        prog = APPS["jacobi"].program(**SMALL["jacobi"])
        base = run_shmem(prog, CFG)
        assert MsgKind.COMBINED not in base.stats.messages_by_kind()
        assert base.stats.combining_summary() == {
            "msgs_combined": 0, "combine_flushes": 0,
        }
        assert "msgs_combined" not in base.stats.summary()

    def test_combining_with_optimized_run(self):
        # The fast path composes with the compiler optimizations and the
        # uniprocessor reference numerics.
        prog = APPS["pde"].program(**SMALL["pde"])
        uni = run_uniproc(prog, CFG)
        comb = run_shmem(prog, CFG_COMBINE, optimize=True, bulk=True)
        comb.assert_same_numerics(uni)
