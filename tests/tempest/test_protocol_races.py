"""Regression tests for protocol transaction races.

These encode race conditions found while running the application suite at
paper scale — each was a real ordering bug in the transaction state
machines, caught by the stale-read validator.
"""

import pytest

from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from tests.tempest.conftest import run_programs


def build(n_nodes=2):
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg)
    a = mem.alloc("a", (16, n_nodes), Distribution.block(n_nodes))
    return Cluster(cfg, mem), a


class TestReadResponseVsQueuedInvalidation:
    """A read response must not be overtaken by a queued write's INV.

    Scenario: the home is also the owner; a remote read is in service when
    the owner write-faults on the same block (its tag was downgraded by
    the in-flight read).  The write transaction queues on the block lock.
    When the read completes, its response and the write's invalidation are
    both submitted home->reader; if the invalidation wins, the reader
    installs a copy the directory believes dead, and a later silent write
    by the (exclusive) owner leaves the reader stale forever.
    """

    def test_reader_never_left_stale(self):
        cl, a = build()
        b = a.block_of_element((0, 0))  # homed & owned by node 0

        def owner():
            # Establish exclusivity via a write.
            yield from cl.write_blocks(0, [b], phase=1)
            yield from cl.barrier(0)
            # Phase 2: write concurrently with node 1's read.
            yield from cl.write_blocks(0, [b], phase=2)
            yield from cl.barrier(0)
            # Phase 3: silent write (we should be exclusive again).
            yield from cl.write_blocks(0, [b], phase=3)
            yield from cl.barrier(0)

        def reader():
            yield from cl.barrier(1)
            yield from cl.read_blocks(1, [b], phase=2)
            yield from cl.barrier(1)
            yield from cl.barrier(1)
            # Phase 4 read: either we still hold a current copy or we miss;
            # a stale hit would raise StaleReadError here.
            yield from cl.read_blocks(1, [b], phase=4)

        run_programs(cl, n0=owner(), n1=reader())

    def test_many_interleavings_fuzz(self):
        # Drive the same pattern with varying compute skews so the
        # read/write transactions interleave at many different points.
        for skew in range(0, 100_000, 7_000):
            cl, a = build()
            b = a.block_of_element((0, 0))

            def owner(skew=skew):
                yield from cl.write_blocks(0, [b], phase=1)
                yield from cl.barrier(0)
                yield from cl.compute(0, skew)
                yield from cl.write_blocks(0, [b], phase=2)
                yield from cl.barrier(0)
                yield from cl.write_blocks(0, [b], phase=3)
                yield from cl.barrier(0)

            def reader():
                yield from cl.barrier(1)
                yield from cl.read_blocks(1, [b], phase=2)
                yield from cl.barrier(1)
                yield from cl.barrier(1)
                yield from cl.read_blocks(1, [b], phase=4)

            run_programs(cl, n0=owner(), n1=reader())


class TestEagerTagVsRacingInvalidation:
    """A granted write must re-install the tag a racing INV wiped."""

    def test_write_write_race_leaves_winner_writable(self):
        cl, a = build(n_nodes=3)
        b = a.block_of_element((0, 0))

        def writer(n):
            def prog():
                yield from cl.write_blocks(n, [b], phase=1)
                yield from cl.barrier(n)

            return prog()

        def home():
            yield from cl.barrier(0)

        run_programs(cl, n0=home(), n1=writer(1), n2=writer(2))
        owner = cl.directory.owner_of(b)
        assert owner in (1, 2)
        assert cl.access.get(owner, b) is AccessTag.READWRITE
        assert cl.access.get(3 - owner, b) is AccessTag.INVALID
