"""Tests for the message-based barrier and collective operations."""

import pytest

from repro.tempest import Cluster, ClusterConfig, Distribution, SharedMemory
from repro.tempest.stats import MsgKind

from tests.tempest.conftest import make_cluster, run_programs


def plain_cluster(n_nodes=4):
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg)
    mem.alloc("a", (16, n_nodes), Distribution.block(n_nodes))
    return Cluster(cfg, mem)


class TestBarrier:
    def test_no_node_leaves_before_all_arrive(self):
        cl = plain_cluster()
        exits = {}

        def prog(n, arrive_delay):
            yield from cl.compute(n, arrive_delay)
            yield from cl.barrier(n)
            exits[n] = cl.engine.now

        stats = cl.run({n: prog(n, n * 500_000) for n in range(4)})
        # The last arrival is at 1.5 ms; every exit must be later.
        assert all(t > 1_500_000 for t in exits.values())
        assert stats.elapsed_ns > 1_500_000

    def test_barrier_message_count(self):
        cl = plain_cluster(4)

        def prog(n):
            yield from cl.barrier(n)

        stats = cl.run({n: prog(n) for n in range(4)})
        m = stats.messages_by_kind()
        assert m[MsgKind.BARRIER_ARRIVE] == 4
        assert m[MsgKind.BARRIER_RELEASE] == 4

    def test_sequential_barriers_do_not_mix_generations(self):
        cl = plain_cluster(3) if False else plain_cluster(4)
        order = []

        def prog(n):
            for k in range(5):
                yield from cl.compute(n, (n + 1) * 10_000)
                yield from cl.barrier(n)
                order.append((k, n, cl.engine.now))

        cl.run({n: prog(n) for n in range(4)})
        # Within each round, all nodes exit before any node exits the next.
        by_round = {}
        for k, n, t in order:
            by_round.setdefault(k, []).append(t)
        for k in range(4):
            assert max(by_round[k]) <= min(by_round[k + 1])

    def test_barrier_time_accounted(self):
        cl = plain_cluster()

        def fast(n):
            yield from cl.barrier(n)

        def slow():
            yield from cl.compute(3, 5_000_000)
            yield from cl.barrier(3)

        stats = run_programs(cl, n0=fast(0), n1=fast(1), n2=fast(2), n3=slow())
        # The early arrivals waited ~5ms.
        assert stats[0].barrier_ns > 4_000_000
        assert stats[3].barrier_ns < 1_000_000

    def test_barrier_drains_pending_writes(self):
        # 512x2 doubles = two 4 KB pages; column 1 (page 1) is homed at node 1.
        cl, a = make_cluster(n_nodes=2, shape=(512, 2))
        b = a.block_of_element((0, 1))  # homed at node 1
        assert cl.directory.home_of(b) == 1

        def writer():
            yield from cl.write_blocks(0, [b], phase=1)
            assert cl.nodes[0].pending
            yield from cl.barrier(0)
            assert not cl.nodes[0].pending

        def other():
            yield from cl.barrier(1)

        run_programs(cl, n0=writer(), n1=other())


class TestReduce:
    def test_all_nodes_wait_for_reduction(self):
        cl = plain_cluster()
        exits = {}

        def prog(n):
            yield from cl.compute(n, n * 300_000)
            yield from cl.reduce(n)
            exits[n] = cl.engine.now

        cl.run({n: prog(n) for n in range(4)})
        assert all(t > 900_000 for t in exits.values())

    def test_reduce_message_count(self):
        cl = plain_cluster(4)

        def prog(n):
            yield from cl.reduce(n, n_values=4)

        stats = cl.run({n: prog(n) for n in range(4)})
        m = stats.messages_by_kind()
        assert m[MsgKind.REDUCE] == 4
        assert m[MsgKind.REDUCE_RESULT] == 4
        assert cl.collectives.reductions_completed == 1

    def test_reduce_time_accounted(self):
        cl = plain_cluster()

        def prog(n):
            yield from cl.reduce(n)

        stats = cl.run({n: prog(n) for n in range(4)})
        assert all(s.reduce_ns > 0 for s in stats.nodes)

    def test_repeated_reductions(self):
        cl = plain_cluster()

        def prog(n):
            for _ in range(3):
                yield from cl.reduce(n)

        cl.run({n: prog(n) for n in range(4)})
        assert cl.collectives.reductions_completed == 3


class TestMessagePassing:
    def test_send_recv_rendezvous(self):
        cl = plain_cluster(2)
        t_recv = {}

        def sender():
            yield from cl.compute(0, 1_000_000)
            yield from cl.collectives.mp_send(0, 1, nbytes=4096)

        def receiver():
            yield from cl.collectives.mp_recv(1, n_messages=1)
            t_recv[1] = cl.engine.now

        run_programs(cl, n0=sender(), n1=receiver())
        assert t_recv[1] > 1_000_000  # waited for the send
        assert cl.stats[1].stall_ns > 900_000

    def test_multiple_messages_counted(self):
        cl = plain_cluster(2)

        def sender():
            for _ in range(5):
                yield from cl.collectives.mp_send(0, 1, nbytes=128)

        def receiver():
            yield from cl.collectives.mp_recv(1, n_messages=5)

        stats = run_programs(cl, n0=sender(), n1=receiver())
        assert stats.messages_by_kind()[MsgKind.MP_DATA] == 5

    def test_payload_bytes_affect_latency(self):
        def run_one(nbytes):
            cl = plain_cluster(2)

            def sender():
                yield from cl.collectives.mp_send(0, 1, nbytes=nbytes)

            def receiver():
                yield from cl.collectives.mp_recv(1, n_messages=1)

            return run_programs(cl, n0=sender(), n1=receiver()).elapsed_ns

        # 64 KB at 20 MB/s adds ~3.2 ms of serialization over 1 KB.
        assert run_one(65536) - run_one(1024) == pytest.approx(3_225_600, rel=0.05)


class TestTreeReduce:
    def _run(self, n_nodes, reductions=3, algo="tree"):
        cfg = ClusterConfig(n_nodes=n_nodes, reduce_algorithm=algo)
        mem = SharedMemory(cfg)
        mem.alloc("a", (16, n_nodes), Distribution.block(n_nodes))
        cl = Cluster(cfg, mem)
        exits = {}

        def prog(i):
            yield from cl.compute(i, i * 100_000)
            for _ in range(reductions):
                yield from cl.reduce(i)
            exits[i] = cl.engine.now

        stats = cl.run({i: prog(i) for i in range(n_nodes)})
        return cl, stats, exits

    @pytest.mark.parametrize("n_nodes", [2, 3, 5, 8, 16])
    def test_all_nodes_synchronize(self, n_nodes):
        cl, stats, exits = self._run(n_nodes)
        # Nobody leaves a reduction before the slowest contributor arrived.
        slowest_arrival = (n_nodes - 1) * 100_000
        assert all(t > slowest_arrival for t in exits.values())
        assert cl.collectives.reductions_completed == 3

    def test_message_count_is_2n_minus_2_per_round(self):
        cl, stats, _ = self._run(8, reductions=1)
        m = stats.messages_by_kind()
        assert m[MsgKind.REDUCE] == 7
        assert m[MsgKind.REDUCE_RESULT] == 7

    def test_tree_beats_central_at_scale(self):
        _cl, tree, _ = self._run(16, algo="tree")
        _cl, central, _ = self._run(16, algo="central")
        assert tree.elapsed_ns < central.elapsed_ns

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="reduce_algorithm"):
            ClusterConfig(n_nodes=4, reduce_algorithm="butterfly")

    def test_apps_agree_under_tree_reduce(self):
        from repro.apps import APPS
        from repro.runtime import run_shmem, run_uniproc

        cfg = ClusterConfig(n_nodes=8, reduce_algorithm="tree")
        prog = APPS["grav"].program(n=17, iters=1)
        run_shmem(prog, cfg, optimize=True).assert_same_numerics(
            run_uniproc(prog, cfg)
        )
