"""Unit tests for access-control tags and the directory/version tracker."""

import numpy as np
import pytest

from repro.tempest.access import AccessControl, AccessTag
from repro.tempest.directory import Directory, DirState, StaleReadError


class TestAccessControl:
    def test_initial_tags_invalid(self):
        ac = AccessControl(4, 10)
        assert ac.get(0, 0) is AccessTag.INVALID
        assert not ac.readable(2, 5)

    def test_set_get_roundtrip(self):
        ac = AccessControl(4, 10)
        ac.set(1, 3, AccessTag.READONLY)
        assert ac.get(1, 3) is AccessTag.READONLY
        assert ac.readable(1, 3) and not ac.writable(1, 3)
        ac.set(1, 3, AccessTag.READWRITE)
        assert ac.writable(1, 3)

    def test_set_range_with_range_object(self):
        ac = AccessControl(2, 20)
        ac.set_range(0, range(5, 15), AccessTag.READWRITE)
        assert ac.count_with_tag(0, AccessTag.READWRITE) == 10
        assert ac.get(0, 4) is AccessTag.INVALID

    def test_set_range_with_list(self):
        ac = AccessControl(2, 20)
        ac.set_range(1, [2, 7, 19], AccessTag.READONLY)
        assert [ac.get(1, b) for b in (2, 7, 19)] == [AccessTag.READONLY] * 3

    def test_set_range_empty_list_noop(self):
        ac = AccessControl(2, 20)
        ac.set_range(0, [], AccessTag.READWRITE)
        assert ac.count_with_tag(0, AccessTag.READWRITE) == 0

    def test_holders(self):
        ac = AccessControl(4, 5)
        ac.set(0, 2, AccessTag.READONLY)
        ac.set(3, 2, AccessTag.READWRITE)
        assert ac.holders(2) == [0, 3]
        assert ac.holders(2, AccessTag.READWRITE) == [3]

    def test_snapshot(self):
        ac = AccessControl(3, 4)
        ac.set(1, 0, AccessTag.READWRITE)
        assert ac.snapshot(0) == (
            AccessTag.INVALID,
            AccessTag.READWRITE,
            AccessTag.INVALID,
        )

    def test_nonreadable_subset(self):
        ac = AccessControl(2, 10)
        ac.set_range(0, range(0, 5), AccessTag.READONLY)
        assert ac.nonreadable_subset(0, range(0, 10)) == [5, 6, 7, 8, 9]
        assert ac.nonreadable_subset(0, []) == []

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            AccessControl(0, 10)


class TestDirectory:
    @pytest.fixture
    def d(self):
        return Directory(4, 8, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_initial_state_idle(self, d):
        assert d.state_of(0) is DirState.IDLE
        assert d.owner_of(0) == -1
        assert d.sharers_of(0) == []

    def test_homes(self, d):
        assert d.home_of(0) == 0 and d.home_of(5) == 2

    def test_homes_length_checked(self):
        with pytest.raises(ValueError):
            Directory(4, 8, [0, 1])

    def test_sharer_bookkeeping(self, d):
        d.add_sharer(3, 1)
        d.add_sharer(3, 2)
        assert d.state_of(3) is DirState.SHARED
        assert d.sharers_of(3) == [1, 2]
        d.clear_sharer(3, 1)
        assert d.sharers_of(3) == [2]
        d.clear_sharer(3, 2)
        assert d.state_of(3) is DirState.IDLE

    def test_exclusive_clears_sharers(self, d):
        d.add_sharer(0, 1)
        d.set_exclusive(0, 2)
        assert d.state_of(0) is DirState.EXCLUSIVE
        assert d.owner_of(0) == 2
        assert d.sharers_of(0) == []

    def test_set_idle(self, d):
        d.set_exclusive(0, 2)
        d.set_idle(0)
        assert d.state_of(0) is DirState.IDLE and d.owner_of(0) == -1

    # ----------------------- versions / staleness ---------------------- #
    def test_everyone_current_initially(self, d):
        for n in range(4):
            d.validate_read(n, 0)

    def test_write_makes_other_copies_stale(self, d):
        d.record_write(1, [3], phase=5)
        d.validate_read(1, 3)  # writer is current
        with pytest.raises(StaleReadError):
            d.validate_read(0, 3)

    def test_deliver_copy_restores_currency(self, d):
        d.record_write(1, [3], phase=5)
        d.deliver_copy(0, [3])
        d.validate_read(0, 3)

    def test_record_write_with_range(self, d):
        d.record_write(2, range(2, 5), phase=1)
        assert d.copy_is_current(2, 4)
        assert not d.copy_is_current(0, 4)

    def test_phase_monotonicity_kept(self, d):
        d.record_write(1, [0], phase=7)
        d.record_write(2, [0], phase=3)  # out-of-order phase must not regress
        assert int(d.global_version[0]) == 7

    def test_bulk_validation_reports_blocks(self, d):
        d.record_write(1, [2, 3], phase=1)
        with pytest.raises(StaleReadError, match=r"\[2, 3\]"):
            d.validate_reads_bulk(0, [0, 1, 2, 3])

    def test_bulk_validation_empty_ok(self, d):
        d.validate_reads_bulk(0, [])

    def test_context_in_error(self, d):
        d.record_write(1, [0], phase=1)
        with pytest.raises(StaleReadError, match="loop7"):
            d.validate_read(0, 0, context="loop7")
