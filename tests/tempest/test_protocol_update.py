"""Tests for the write-update protocol variant."""

import pytest

from repro.apps import APPS
from repro.runtime import run_shmem, run_uniproc
from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    Distribution,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.stats import MsgKind
from tests.tempest.conftest import run_programs


def build(n_nodes=3):
    cfg = ClusterConfig(n_nodes=n_nodes)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
    a = mem.alloc("a", (16, n_nodes), Distribution.block(n_nodes))
    return Cluster(cfg, mem, protocol="update"), a


class TestUpdateSemantics:
    def test_producer_consumer_single_data_message_steady_state(self):
        cl, a = build()
        b = a.block_of_element((0, 1))
        iters = 4

        def producer():
            for it in range(1, iters + 1):
                yield from cl.write_blocks(1, [b], phase=it)
                yield from cl.barrier(1)
                yield from cl.barrier(1)

        def consumer():
            for it in range(1, iters + 1):
                yield from cl.barrier(2)
                yield from cl.read_blocks(2, [b], phase=it)
                yield from cl.barrier(2)

        def home():
            for _ in range(iters):
                yield from cl.barrier(0)
                yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        m = stats.messages_by_kind()
        # Consumer misses once (cold); afterwards updates keep it current.
        assert stats[2].read_misses == 1
        assert m[MsgKind.UPDATE] > 0
        # Steady state: updates to {home, consumer} per iteration.
        assert m[MsgKind.UPDATE] == m[MsgKind.UPDATE_ACK]

    def test_sharers_stay_current_without_refetch(self):
        cl, a = build()
        b = a.block_of_element((0, 1))

        def producer():
            yield from cl.write_blocks(1, [b], phase=1)
            yield from cl.barrier(1)
            yield from cl.barrier(1)
            yield from cl.write_blocks(1, [b], phase=2)
            yield from cl.barrier(1)

        def consumer():
            yield from cl.barrier(2)
            yield from cl.read_blocks(2, [b], phase=1)
            yield from cl.barrier(2)
            yield from cl.barrier(2)
            # Still a hit, and still current: the update refreshed it.
            yield from cl.read_blocks(2, [b], phase=3)

        def home():
            for _ in range(3):
                yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        assert stats[2].read_misses == 1  # only the cold one
        assert cl.directory.copy_is_current(2, b)

    def test_write_allocate_counts_write_fault(self):
        cl, a = build()
        b = a.block_of_element((0, 0))  # homed at 0

        def writer():
            yield from cl.write_blocks(2, [b], phase=1)
            yield from cl.barrier(2)

        def others(n):
            yield from cl.barrier(n)

        stats = run_programs(cl, n0=others(0), n1=others(1), n2=writer())
        assert stats[2].write_faults == 1
        assert stats[2].read_misses == 0
        assert cl.access.get(2, b) is AccessTag.READWRITE

    def test_private_writes_are_free(self):
        cl, a = build()
        b = a.block_of_element((0, 0))  # home 0 writes its own block

        def writer():
            for it in range(1, 5):
                yield from cl.write_blocks(0, [b], phase=it)

        stats = run_programs(cl, n0=writer())
        assert stats.total_messages == 0

    def test_useless_updates_to_past_readers(self):
        # The pathology: a one-time reader keeps receiving updates forever.
        cl, a = build()
        b = a.block_of_element((0, 1))
        iters = 5

        def producer():
            yield from cl.barrier(1)  # consumer reads once first
            for it in range(1, iters + 1):
                yield from cl.write_blocks(1, [b], phase=it)
            yield from cl.barrier(1)

        def consumer():
            yield from cl.read_blocks(2, [b])
            yield from cl.barrier(2)
            yield from cl.barrier(2)  # never reads again

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        m = stats.messages_by_kind()
        # Every write updated both the home and the long-gone reader.
        assert m[MsgKind.UPDATE] == 2 * iters

    def test_self_invalidate_mitigates_useless_updates(self):
        cl, a = build()
        b = a.block_of_element((0, 1))
        iters = 5

        def producer():
            yield from cl.barrier(1)
            for it in range(1, iters + 1):
                yield from cl.write_blocks(1, [b], phase=it)
            yield from cl.barrier(1)

        def consumer():
            yield from cl.read_blocks(2, [b])
            yield from cl.ext.self_invalidate(2, [b])  # the classic fix
            yield from cl.barrier(2)
            yield from cl.barrier(2)

        def home():
            yield from cl.barrier(0)
            yield from cl.barrier(0)

        stats = run_programs(cl, n0=home(), n1=producer(), n2=consumer())
        m = stats.messages_by_kind()
        assert m[MsgKind.UPDATE] == iters  # home only

    def test_compiler_extensions_rejected(self):
        cl, a = build()
        with pytest.raises(NotImplementedError, match="invalidate"):
            next(cl.protocol.write_block(1, a.base_block))


class TestUpdateProtocolEndToEnd:
    @pytest.mark.parametrize("name", ["jacobi", "grav"])
    def test_apps_run_correctly(self, name):
        cfg = ClusterConfig(n_nodes=4)
        params = {"jacobi": dict(n=64, iters=3), "grav": dict(n=17, iters=2)}[name]
        prog = APPS[name].program(**params)
        upd = run_shmem(prog, cfg, protocol="update")
        upd.assert_same_numerics(run_uniproc(prog, cfg))
        assert upd.extra["protocol"] == "update"

    def test_optimize_refused_under_update(self):
        cfg = ClusterConfig(n_nodes=4)
        prog = APPS["jacobi"].program(n=32, iters=2)
        with pytest.raises(ValueError, match="invalidate"):
            run_shmem(prog, cfg, optimize=True, protocol="update")

    def test_unknown_protocol_rejected(self):
        cfg = ClusterConfig(n_nodes=2)
        mem = SharedMemory(cfg)
        mem.alloc("a", (16, 2), Distribution.block(2))
        with pytest.raises(ValueError, match="unknown protocol"):
            Cluster(cfg, mem, protocol="token")
