"""Tests for the message tracer."""

import pytest

from repro.tempest import Cluster, ClusterConfig, Distribution, HomePolicy, SharedMemory
from repro.tempest.stats import MsgKind
from repro.tempest.tracing import MessageTracer
from tests.tempest.conftest import run_programs


def build():
    cfg = ClusterConfig(n_nodes=3)
    mem = SharedMemory(cfg, home_policy=HomePolicy.NODE0)
    a = mem.alloc("a", (16, 3), Distribution.block(3))
    return Cluster(cfg, mem), a


def run_one_transfer(cl, a):
    b = a.block_of_element((0, 1))

    def writer():
        yield from cl.write_blocks(1, [b], phase=1)
        yield from cl.barrier(1)
        yield from cl.barrier(1)

    def reader():
        yield from cl.barrier(2)
        yield from cl.read_blocks(2, [b])
        yield from cl.barrier(2)

    def home():
        yield from cl.barrier(0)
        yield from cl.barrier(0)

    run_programs(cl, n0=home(), n1=writer(), n2=reader())


class TestMessageTracer:
    def test_records_all_messages(self):
        cl, a = build()
        tracer = MessageTracer(cl)
        run_one_transfer(cl, a)
        assert len(tracer.records) == cl.stats.total_messages
        assert tracer.bytes_total() == cl.stats.total_bytes

    def test_records_are_time_ordered(self):
        cl, a = build()
        tracer = MessageTracer(cl)
        run_one_transfer(cl, a)
        times = [r.t_ns for r in tracer.records]
        assert times == sorted(times)

    def test_kind_filter(self):
        cl, a = build()
        tracer = MessageTracer(cl, kinds={MsgKind.READ_REQ, MsgKind.READ_RESP})
        run_one_transfer(cl, a)
        assert tracer.by_kind() == {MsgKind.READ_REQ: 1, MsgKind.READ_RESP: 1}
        # The untraced messages still flowed (the run completed).
        assert cl.stats.total_messages > 2

    def test_by_link_and_involving(self):
        cl, a = build()
        tracer = MessageTracer(cl, kinds={MsgKind.READ_REQ})
        run_one_transfer(cl, a)
        assert tracer.by_link() == {(2, 0): 1}
        assert len(tracer.involving(2)) == 1
        assert tracer.involving(1) == []

    def test_between(self):
        cl, a = build()
        tracer = MessageTracer(cl)
        run_one_transfer(cl, a)
        t_mid = tracer.records[len(tracer.records) // 2].t_ns
        early = tracer.between(0, t_mid)
        late = tracer.between(t_mid, tracer.records[-1].t_ns + 1)
        assert len(early) + len(late) == len(tracer.records)

    def test_max_records_drops_and_reports(self):
        cl, a = build()
        tracer = MessageTracer(cl, max_records=3)
        run_one_transfer(cl, a)
        assert len(tracer.records) == 3
        assert tracer.dropped == cl.stats.total_messages - 3
        assert "dropped" in tracer.sequence_chart()

    def test_sequence_chart_renders(self):
        cl, a = build()
        tracer = MessageTracer(cl, kinds={MsgKind.READ_REQ, MsgKind.READ_RESP, MsgKind.PUT_REQ, MsgKind.PUT_RESP})
        run_one_transfer(cl, a)
        chart = tracer.sequence_chart()
        assert "n0" in chart and "n2" in chart
        assert "read_req" in chart
        # One line per traced message plus two header lines.
        assert len(chart.splitlines()) == 2 + len(tracer.records)

    def test_uninstall_restores(self):
        cl, a = build()
        tracer = MessageTracer(cl)
        tracer.uninstall()
        run_one_transfer(cl, a)
        assert tracer.records == []

    def test_summary_readable(self):
        cl, a = build()
        tracer = MessageTracer(cl)
        run_one_transfer(cl, a)
        s = tracer.summary()
        assert "messages" in s and "read_req:1" in s
