"""Property-based fuzzing of the default coherence protocol.

Hypothesis generates random bulk-synchronous access schedules — per phase,
each node reads and/or writes a random subset of blocks, separated by
barriers — and runs them on the simulated cluster.  The properties:

* no deadlock (the simulation always drains),
* no stale read is ever observed (the version validator stays silent),
* the directory and access tags end mutually consistent:
  - EXCLUSIVE(n)  => only n holds a tag, and it is ReadWrite,
  - SHARED        => every directory-known sharer holds >= ReadOnly and
                     nobody holds ReadWrite except via compiler control
                     (not used here),
* determinism: the same schedule yields the same message counts.

This is the strongest net over the protocol state machines: every race the
transaction interleavings can produce must resolve coherently.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tempest import (
    AccessTag,
    Cluster,
    ClusterConfig,
    CombineConfig,
    DirState,
    Distribution,
    FaultConfig,
    HomePolicy,
    LinkFaultConfig,
    PartitionScenario,
    SharedMemory,
    SwitchConfig,
)
from repro.tempest.faults import CrashScenario, _US

N_NODES = 3
N_BLOCKS = 4


def build_cluster(
    home_policy, faults=None, protocol="invalidate", switch=None, combine=None
):
    cfg = ClusterConfig(
        n_nodes=N_NODES,
        faults=faults or FaultConfig(),
        switch=switch or SwitchConfig(),
        combine=combine or CombineConfig(),
    )
    mem = SharedMemory(cfg, home_policy=home_policy)
    arr = mem.alloc("a", (16, N_BLOCKS), Distribution.block(N_NODES))
    return Cluster(cfg, mem, protocol=protocol), list(arr.block_range())


# One phase: per node, (read_mask, write_mask, compute_skew).
phase_strategy = st.tuples(
    *[
        st.tuples(
            st.integers(0, 2**N_BLOCKS - 1),
            st.integers(0, 2**N_BLOCKS - 1),
            st.integers(0, 3),
        )
        for _ in range(N_NODES)
    ]
)

schedule_strategy = st.lists(phase_strategy, min_size=1, max_size=6)
policy_strategy = st.sampled_from(
    [HomePolicy.ALIGNED, HomePolicy.ROUND_ROBIN, HomePolicy.NODE0]
)


def run_schedule(schedule, home_policy):
    cl, blocks = build_cluster(home_policy)

    def node_program(node):
        for phase_no, phase in enumerate(schedule, start=1):
            read_mask, write_mask, skew = phase[node]
            if skew:
                yield from cl.compute(node, skew * 10_000)
            reads = [b for i, b in enumerate(blocks) if read_mask >> i & 1]
            writes = [b for i, b in enumerate(blocks) if write_mask >> i & 1]
            yield from cl.read_blocks(node, reads, phase=phase_no)
            yield from cl.write_blocks(node, writes, phase=phase_no)
            yield from cl.barrier(node)

    stats = cl.run({n: node_program(n) for n in range(N_NODES)})
    return cl, blocks, stats


@given(schedule=schedule_strategy, policy=policy_strategy)
@settings(max_examples=120, deadline=None)
def test_random_schedules_stay_coherent(schedule, policy):
    cl, blocks, _stats = run_schedule(schedule, policy)
    # Post-quiescence consistency between tags and directory.
    for b in blocks:
        state = cl.directory.state_of(b)
        tags = cl.access.snapshot(b)
        if state is DirState.EXCLUSIVE:
            owner = cl.directory.owner_of(b)
            assert tags[owner] is AccessTag.READWRITE
            for n in range(N_NODES):
                if n != owner:
                    assert tags[n] is AccessTag.INVALID, (b, n, tags)
            # The owner's copy is the latest version.
            assert cl.directory.copy_is_current(owner, b)
        elif state is DirState.SHARED:
            for sharer in cl.directory.sharers_of(b):
                assert tags[sharer] in (AccessTag.READONLY, AccessTag.READWRITE)
                assert cl.directory.copy_is_current(sharer, b)
        else:  # IDLE: the home holds the data
            home = cl.directory.home_of(b)
            assert cl.directory.copy_is_current(home, b)


@given(schedule=schedule_strategy, policy=policy_strategy)
@settings(max_examples=40, deadline=None)
def test_random_schedules_deterministic(schedule, policy):
    _cl1, _b1, s1 = run_schedule(schedule, policy)
    _cl2, _b2, s2 = run_schedule(schedule, policy)
    assert s1.elapsed_ns == s2.elapsed_ns
    assert s1.messages_by_kind() == s2.messages_by_kind()
    assert s1.total_misses == s2.total_misses


@given(schedule=schedule_strategy)
@settings(max_examples=40, deadline=None)
def test_every_reader_after_barrier_sees_latest(schedule):
    """Explicit end-to-end staleness probe, beyond the built-in validator:
    after the final barrier, force every node to read every block — each
    either hits (validated current) or misses (fetches current)."""
    cl, blocks = build_cluster(HomePolicy.ALIGNED)

    def node_program(node):
        for phase_no, phase in enumerate(schedule, start=1):
            read_mask, write_mask, _skew = phase[node]
            reads = [b for i, b in enumerate(blocks) if read_mask >> i & 1]
            writes = [b for i, b in enumerate(blocks) if write_mask >> i & 1]
            yield from cl.read_blocks(node, reads, phase=phase_no)
            yield from cl.write_blocks(node, writes, phase=phase_no)
            yield from cl.barrier(node)
        yield from cl.read_blocks(node, blocks, phase=len(schedule) + 1)

    cl.run({n: node_program(n) for n in range(N_NODES)})


# --------------------------------------------------------------------- #
# Seeded fault-matrix sweep: the same schedules must end in the same
# protocol state whether or not the wire misbehaves — the reliable
# transport makes faults *invisible* above it (only timing changes).
# --------------------------------------------------------------------- #
FAULT_MATRIX = {
    "drop": FaultConfig(drop_prob=0.08, seed=11),
    "dup": FaultConfig(dup_prob=0.08, seed=11),
    "jitter": FaultConfig(jitter_ns=30_000, seed=11),
    "storm": FaultConfig(
        drop_prob=0.05, dup_prob=0.05, jitter_ns=15_000, seed=11
    ),
}


def fixed_schedule(n_phases=6, seed=2026):
    """One deterministic pseudo-random schedule, shared by all cells."""
    rng = random.Random(seed)
    return [
        tuple(
            (
                rng.randrange(2**N_BLOCKS),
                rng.randrange(2**N_BLOCKS),
                rng.randrange(4),
            )
            for _ in range(N_NODES)
        )
        for _ in range(n_phases)
    ]


def run_faulted(schedule, protocol, faults=None, switch=None, combine=None):
    cl, blocks = build_cluster(
        HomePolicy.ALIGNED, faults=faults, protocol=protocol,
        switch=switch, combine=combine,
    )

    def node_program(node):
        for phase_no, phase in enumerate(schedule, start=1):
            read_mask, write_mask, skew = phase[node]
            if skew:
                yield from cl.compute(node, skew * 10_000)
            reads = [b for i, b in enumerate(blocks) if read_mask >> i & 1]
            writes = [b for i, b in enumerate(blocks) if write_mask >> i & 1]
            yield from cl.read_blocks(node, reads, phase=phase_no)
            yield from cl.write_blocks(node, writes, phase=phase_no)
            yield from cl.barrier(node)

    stats = cl.run(
        {n: node_program(n) for n in range(N_NODES)},
        audit=True,
        audit_each_barrier=faults is not None,
    )
    return cl, stats


def protocol_state(cl):
    """Everything the protocol layer can observe, as comparable arrays."""
    return {
        "state": cl.directory.state.copy(),
        "owner": cl.directory.owner.copy(),
        "sharers": cl.directory.sharers.copy(),
        "global_version": cl.directory.global_version.copy(),
        "copy_version": cl.directory.copy_version.copy(),
        "tags": cl.access._tags.copy(),
    }


@pytest.mark.parametrize("protocol", ["invalidate", "update"])
@pytest.mark.parametrize("fault_name", sorted(FAULT_MATRIX))
def test_fault_matrix_preserves_protocol_outcome(protocol, fault_name):
    schedule = fixed_schedule()
    clean_cl, clean_stats = run_faulted(schedule, protocol)
    faulted_cl, faulted_stats = run_faulted(
        schedule, protocol, FAULT_MATRIX[fault_name]
    )
    # Identical final protocol state (validators + per-barrier audits
    # already passed during the run).  Timing shifts from retransmits and
    # jitter may legally re-order racy same-phase transactions — changing
    # the message mix along the way — but every schedule must converge to
    # the same tags, directory entries and versions.
    clean, faulted = protocol_state(clean_cl), protocol_state(faulted_cl)
    for key in clean:
        assert np.array_equal(clean[key], faulted[key]), key
    # Transport repairs stay below the protocol counters: acks and
    # retransmitted copies never show up as protocol messages...
    kinds = set(clean_stats.messages_by_kind()) | set(
        faulted_stats.messages_by_kind()
    )
    assert kinds <= set(clean_stats.messages_by_kind())
    # ...and reliability counters appear only where the wire misbehaved.
    assert not any(clean_stats.reliability_summary().values())


@pytest.mark.parametrize("protocol", ["invalidate", "update"])
def test_fault_matrix_is_seed_deterministic(protocol):
    schedule = fixed_schedule()
    runs = [
        run_faulted(schedule, protocol, FAULT_MATRIX["storm"])[1]
        for _ in range(2)
    ]
    assert runs[0].elapsed_ns == runs[1].elapsed_ns
    assert runs[0].reliability_summary() == runs[1].reliability_summary()


# --------------------------------------------------------------------- #
# Per-link-profile axis: asymmetric faults (one flaky link, or a healed
# partition window) must be just as invisible to the protocol layer as the
# uniform storms above — the transport repairs, parks and heals below it.
# --------------------------------------------------------------------- #
LINK_MATRIX = {
    "flaky-link": FaultConfig(
        seed=11,
        link_faults=(LinkFaultConfig(0, 1, drop_prob=0.3),),
    ),
    "storm-plus-profile": FaultConfig(
        drop_prob=0.05, dup_prob=0.05, jitter_ns=15_000, seed=11,
        link_faults=(LinkFaultConfig(1, 2, drop_prob=0.25, jitter_ns=40_000),),
    ),
    "healed-partition": FaultConfig(
        seed=11,
        partitions=(
            PartitionScenario(
                "blip", frozenset({1}),
                t_start_ns=50_000, duration_ns=1_500_000,
            ),
        ),
    ),
}


@pytest.mark.parametrize("protocol", ["invalidate", "update"])
@pytest.mark.parametrize("cell_name", sorted(LINK_MATRIX))
def test_link_matrix_preserves_protocol_outcome(protocol, cell_name):
    schedule = fixed_schedule()
    clean_cl, _ = run_faulted(schedule, protocol)
    cell_cl, cell_stats = run_faulted(
        schedule, protocol, LINK_MATRIX[cell_name]
    )
    assert cell_stats.completed  # the partition cell heals; nothing degrades
    clean, cell = protocol_state(clean_cl), protocol_state(cell_cl)
    for key in clean:
        assert np.array_equal(clean[key], cell[key]), key
    if cell_name == "healed-partition":
        # Channels that gave up inside the window were all drained.
        assert all(e["healed"] for e in cell_stats.partition_events)
        assert cell_stats.total_gave_up == len(cell_stats.partition_events)
    else:
        assert cell_stats.total_drops > 0  # the flaky link actually bit


@pytest.mark.parametrize("cell_name", sorted(LINK_MATRIX))
def test_link_matrix_is_seed_deterministic(cell_name):
    schedule = fixed_schedule()
    runs = [
        run_faulted(schedule, "invalidate", LINK_MATRIX[cell_name])[1]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


# --------------------------------------------------------------------- #
# Switch axis: shared-switch contention stretches the same schedules
# (queueing, backpressure, retransmit timing) but — like faults and
# combining — must never change what the protocol layer concludes.
# --------------------------------------------------------------------- #
SWITCH_MATRIX = {
    "on": SwitchConfig(enabled=True),
    "narrow": SwitchConfig(enabled=True, ports=2),
    "slow": SwitchConfig(enabled=True, bandwidth_bytes_per_us=30.0),
}

COMBINE_ON = CombineConfig(enabled=True)


@pytest.mark.parametrize("combine", [None, COMBINE_ON], ids=["plain", "combine"])
@pytest.mark.parametrize("switch_name", sorted(SWITCH_MATRIX))
def test_switch_matrix_preserves_protocol_outcome(switch_name, combine):
    # faults x combine x switch against the clean link-only baseline.
    schedule = fixed_schedule()
    clean_cl, _ = run_faulted(schedule, "invalidate")
    cell_cl, cell_stats = run_faulted(
        schedule, "invalidate",
        faults=FAULT_MATRIX["storm"],
        switch=SWITCH_MATRIX[switch_name],
        combine=combine,
    )
    clean, cell = protocol_state(clean_cl), protocol_state(cell_cl)
    for key in clean:
        assert np.array_equal(clean[key], cell[key]), key
    # The fabric was actually exercised, and the counters say so.
    assert cell_stats.total_switch_frames > 0
    assert len(cell_stats.ports) == (2 if switch_name == "narrow" else N_NODES)


def test_switch_off_cells_report_no_switch_counters():
    schedule = fixed_schedule()
    _cl, stats = run_faulted(
        schedule, "invalidate", faults=FAULT_MATRIX["storm"]
    )
    assert stats.total_switch_frames == 0
    assert stats.ports == []
    assert "switch_frames" not in stats.summary()


@pytest.mark.parametrize("protocol", ["invalidate", "update"])
def test_contended_runs_are_golden_deterministic(protocol):
    # Two identical seeded runs under full contention (storm faults +
    # combining + a narrow switch) must produce *identical* ClusterStats —
    # dataclass equality covers every per-node counter, every per-port
    # counter, the event count and the clock.
    schedule = fixed_schedule()
    runs = [
        run_faulted(
            schedule, protocol,
            faults=FAULT_MATRIX["storm"],
            switch=SWITCH_MATRIX["narrow"],
            combine=COMBINE_ON,
        )[1]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    assert runs[0].events_dispatched == runs[1].events_dispatched
    assert runs[0].total_switch_wait_ns == runs[1].total_switch_wait_ns


def test_fault_matrix_final_memory_matches_fault_free():
    """End-to-end: a faulty wire must not change a program's numerics."""
    from repro.runtime import run_shmem
    from tests.runtime.conftest import jacobi_program

    cfg = ClusterConfig(n_nodes=4)
    prog = jacobi_program(n=32, iters=2)
    clean = run_shmem(prog, cfg)  # audit=True by default
    faulted = run_shmem(prog, cfg, faults=FAULT_MATRIX["storm"])
    faulted.assert_same_numerics(clean)
    assert faulted.extra["faults"]["retransmits"] >= 0
    assert faulted.stats.messages_by_kind() == clean.stats.messages_by_kind()


# --------------------------------------------------------------------- #
# CRASH axis: a mid-run fail-stop with barrier checkpoints, alone and
# composed with the storm / switch / combine cells above.  The rollback
# re-replays the trace from the last consistent cut, so — like every
# other axis — the survivor must land on exactly the fault-free numerics
# and stay golden across identical seeded repeats.  Crash cells ride
# ``run_shmem`` because rollback needs the trace-replay program factory;
# the hand-built generator schedules above have nothing to re-spawn.
# --------------------------------------------------------------------- #
CRASH_MATRIX = {
    "crash": FaultConfig(
        crashes=(CrashScenario(2, 3_000 * _US, 500 * _US),),
        checkpoint_every=1,
    ),
    "crash+storm": FaultConfig(
        drop_prob=0.05, dup_prob=0.05, jitter_ns=15_000, seed=11,
        crashes=(CrashScenario(2, 3_000 * _US, 500 * _US),),
        checkpoint_every=1,
    ),
    "crash+sparse-ckpt": FaultConfig(
        crashes=(CrashScenario(1, 3_000 * _US, 250 * _US),),
        checkpoint_every=2,
    ),
}


def _run_crash_cell(faults, switch=None, combine=None):
    from repro.runtime import run_shmem
    from tests.runtime.conftest import jacobi_program

    cfg = ClusterConfig(n_nodes=4)
    return run_shmem(
        jacobi_program(n=32, iters=2), cfg,
        faults=faults, switch=switch, combine=combine,
    )


@pytest.mark.parametrize("cell_name", sorted(CRASH_MATRIX))
def test_crash_matrix_recovers_fault_free_numerics(cell_name):
    clean = _run_crash_cell(None)
    cell = _run_crash_cell(CRASH_MATRIX[cell_name])
    assert cell.completed  # end-of-run audit ran clean post-recovery
    cell.assert_same_numerics(clean)
    assert cell.stats.recovery_rollbacks >= 1
    assert cell.stats.recovery_checkpoints >= 1
    assert all(e["recovered"] for e in cell.stats.crash_events)
    # Recovery is visible in the clock, never in the answer.
    assert cell.elapsed_ns > clean.elapsed_ns


def test_crash_composed_with_switch_and_combine():
    # Full-contention cell: fail-stop + narrow shared switch + combining.
    clean = _run_crash_cell(None)
    cell = _run_crash_cell(
        CRASH_MATRIX["crash"],
        switch=SWITCH_MATRIX["narrow"],
        combine=COMBINE_ON,
    )
    assert cell.completed
    cell.assert_same_numerics(clean)
    assert cell.stats.recovery_rollbacks >= 1
    assert cell.stats.total_switch_frames > 0


@pytest.mark.parametrize("cell_name", sorted(CRASH_MATRIX))
def test_crash_matrix_is_golden_deterministic(cell_name):
    runs = [_run_crash_cell(CRASH_MATRIX[cell_name]) for _ in range(2)]
    assert runs[0].stats == runs[1].stats
    assert runs[0].elapsed_ns == runs[1].elapsed_ns
