"""Node fail-stop survival: detection, checkpointing, rollback-recovery.

Four layers under test:

* config validation for :class:`CrashScenario` and the crash/checkpoint
  fields on :class:`FaultConfig`;
* the transport's liveness layer — hand-computed detection latency through
  keepalive give-up (no oracle), and the coalesced one-timer-per-channel
  invariant that keeps the detector O(channels);
* the degraded contract — a crash with no checkpoint (or a never-restart
  scenario) ends in ``completed=False`` with the dead node named;
* rollback-recovery — a mid-run crash with barrier checkpoints completes
  with final numerics byte-identical to the crash-free run, a clean
  end-of-run coherence audit, and deterministic stats across repeats.
"""

import numpy as np
import pytest

from repro.apps import jacobi
from repro.runtime.shmem import run_shmem
from repro.tempest import FaultConfig
from repro.tempest.faults import CrashScenario, PartitionScenario, _US
from tests.tempest.conftest import make_cluster, run_programs


def crash_faults(node=1, t_us=0, restart_us=None, **kwargs):
    restart_ns = None if restart_us is None else restart_us * _US
    return FaultConfig(
        crashes=(CrashScenario(node, t_us * _US, restart_ns),), **kwargs
    )


# --------------------------------------------------------------------- #
# config validation
# --------------------------------------------------------------------- #
class TestCrashScenario:
    def test_minimal(self):
        s = CrashScenario(2, 1000)
        assert not s.restarts and s.restart_delay_ns is None

    def test_restarting(self):
        s = CrashScenario(2, 1000, 500)
        assert s.restarts

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(node=-1, t_ns=0),
            dict(node=0, t_ns=-1),
            dict(node=0, t_ns=0, restart_delay_ns=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CrashScenario(**kwargs)

    def test_crashes_enable_faults(self):
        assert crash_faults().enabled

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError, match="crashes more than once"):
            FaultConfig(crashes=(CrashScenario(1, 0), CrashScenario(1, 50)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(heartbeat_interval_ns=0),
            dict(checkpoint_every=-1),
            dict(checkpoint_cost_ns_per_kb=-1),
        ],
    )
    def test_bad_tuning_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(crashes=(CrashScenario(0, 0),), **kwargs)


# --------------------------------------------------------------------- #
# liveness layer: detection latency and timer coalescing
# --------------------------------------------------------------------- #
class TestDetection:
    def test_hand_computed_detection_latency(self):
        """Keepalive give-up at interval + sum of backed-off probe timeouts.

        hb interval 200us, initial RTO 120us, max_retries 3: the probe
        transmits at 200us and retries at +120, +240, +480; the fourth
        fire (at +960 past the third) exhausts the budget, so the channel
        gives up at 200 + 120 + 240 + 480 + 960 = 2000us exactly.
        """
        faults = crash_faults(
            node=1, t_us=0,
            heartbeat_interval_ns=200 * _US,
            max_retries=3,
        )
        cluster, _ = make_cluster(n_nodes=2, faults=faults)
        stats = run_programs(cluster, n0=cluster.barrier(0))
        assert stats.completed is False
        [event] = stats.crash_events
        assert event["node"] == 1
        assert event["t_ns"] == 0
        assert event["detected_t_ns"] == 2_000 * _US
        assert event["recovered"] is False
        [cut] = stats.partition_events
        assert (cut["src"], cut["dst"]) == (0, 1)
        assert cut["t_ns"] == 2_000 * _US
        assert stats[0].net_gave_up == 1

    def test_degraded_report_names_crashed_node(self):
        faults = crash_faults(node=1, t_us=0, max_retries=2)
        cluster, _ = make_cluster(n_nodes=2, faults=faults)
        stats = run_programs(cluster, n0=cluster.barrier(0))
        assert stats.failure["crashed_nodes"] == [1]
        assert stats.failure["unreachable_nodes"] == [1]
        assert "node0" in stats.failure["stuck"]

    def test_crash_after_completion_is_benign(self):
        # The crash fires after every program finished: probes are already
        # suspended, nothing detects (or needs to detect) the death.
        faults = crash_faults(node=1, t_us=5_000)
        cluster, _ = make_cluster(n_nodes=2, faults=faults)
        stats = run_programs(cluster)  # all idle, finish at t=0
        assert stats.completed is True
        [event] = stats.crash_events
        assert event["detected_t_ns"] is None

    def test_one_timer_per_channel(self):
        """The retransmit/keepalive timer is coalesced: many outstanding
        frames on a channel hold exactly one armed engine timer, and
        full-mesh monitoring arms exactly one per directed channel."""
        from repro.tempest.stats import MsgKind

        faults = crash_faults(node=3, t_us=10**6)  # far-future crash
        cluster, _ = make_cluster(n_nodes=4, faults=faults)
        transport = cluster.network.transport
        transport.start_monitoring()
        n = cluster.n_nodes
        assert transport.armed_timers == n * (n - 1)
        for _ in range(40):
            cluster.network.send(
                0, 1, MsgKind.ACK, lambda: None,
                cluster.config.handler_ack_ns,
            )
        # 40 unacked frames on 0->1: still one timer per channel.
        assert len(transport._channel(0, 1).unacked) >= 40
        assert transport.armed_timers == n * (n - 1)
        transport.suspend_monitoring()
        cluster.engine.run()
        assert transport.in_flight == 0


# --------------------------------------------------------------------- #
# rollback-recovery end to end
# --------------------------------------------------------------------- #
def _jacobi():
    return jacobi.build(n=32, iters=2)


class TestRecovery:
    def test_crash_recovers_with_identical_numerics(self):
        clean = run_shmem(_jacobi(), optimize=True)
        faults = crash_faults(node=2, t_us=3_000, restart_us=500,
                              checkpoint_every=1)
        rec = run_shmem(_jacobi(), optimize=True, faults=faults)
        assert rec.completed is True  # end-of-run audit ran clean
        for name in clean.arrays:
            assert np.array_equal(clean.arrays[name], rec.arrays[name])
        assert rec.stats.recovery_rollbacks == 1
        assert rec.stats.recovery_checkpoints > 0
        assert rec.stats.recovery_ns == 500 * _US
        [event] = rec.stats.crash_events
        assert event["recovered"] is True
        assert event["restart_t_ns"] == 3_500 * _US
        assert rec.extra["recovery"]["rollbacks"] == 1
        # Recovery costs real simulated time over the crash-free run.
        assert rec.elapsed_ns > clean.elapsed_ns

    def test_recovery_is_deterministic(self):
        faults = crash_faults(node=2, t_us=3_000, restart_us=500,
                              checkpoint_every=2)
        a = run_shmem(_jacobi(), optimize=True, faults=faults)
        b = run_shmem(_jacobi(), optimize=True, faults=faults)
        assert a.completed and b.completed
        assert a.stats == b.stats

    def test_crash_without_checkpoint_degrades(self):
        faults = crash_faults(node=2, t_us=3_000, restart_us=500)
        deg = run_shmem(_jacobi(), optimize=True, faults=faults)
        assert deg.completed is False
        assert deg.extra["failure"]["crashed_nodes"] == [2]

    def test_never_restart_degrades_despite_checkpoints(self):
        faults = crash_faults(node=2, t_us=3_000, checkpoint_every=1)
        deg = run_shmem(_jacobi(), optimize=True, faults=faults)
        assert deg.completed is False
        assert deg.stats.recovery_checkpoints > 0
        assert deg.stats.recovery_rollbacks == 0
        assert deg.extra["failure"]["crashed_nodes"] == [2]

    def test_crash_during_partition_still_recovers(self):
        # A healing partition window overlaps the crash: the transport must
        # recover both the parked partition traffic (wholesale, via the
        # rollback channel reset) and the dead node.
        cut = PartitionScenario(
            "overlap", frozenset({1}), t_start_ns=1_000 * _US,
            duration_ns=1_500 * _US,
        )
        clean = run_shmem(_jacobi(), optimize=True)
        faults = FaultConfig(
            partitions=(cut,),
            crashes=(CrashScenario(2, 3_000 * _US, 500 * _US),),
            checkpoint_every=1,
        )
        rec = run_shmem(_jacobi(), optimize=True, faults=faults)
        assert rec.completed is True
        for name in clean.arrays:
            assert np.array_equal(clean.arrays[name], rec.arrays[name])
        assert rec.stats.recovery_rollbacks >= 1

    def test_checkpoint_cost_defers_completion(self):
        # Nonzero modeled write cost must show up as simulated time.
        cheap = crash_faults(node=2, t_us=3_000, restart_us=500,
                             checkpoint_every=1, checkpoint_cost_ns_per_kb=0)
        dear = crash_faults(node=2, t_us=3_000, restart_us=500,
                            checkpoint_every=1,
                            checkpoint_cost_ns_per_kb=10_000)
        a = run_shmem(_jacobi(), optimize=True, faults=cheap)
        b = run_shmem(_jacobi(), optimize=True, faults=dear)
        assert a.completed and b.completed
        assert b.elapsed_ns > a.elapsed_ns
