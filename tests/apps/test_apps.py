"""Application-suite tests: numerics, convergence, and optimization shape.

Every app must (a) run on all four backends with identical numerics,
(b) compute something verifiably correct against plain NumPy, and
(c) show the optimization behaviour the paper reports for it.
"""

import numpy as np
import pytest

from repro.apps import APPS, get_app
from repro.apps.lu import check_factorization
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import MsgKind

CFG = ClusterConfig(n_nodes=4)

# Small-but-meaningful parameters for the equivalence sweep.
SMALL = {
    "pde": dict(n=24, iters=2),
    "shallow": dict(rows=65, cols=33, iters=3),
    "grav": dict(n=17, iters=2),
    "lu": dict(n=48),
    "cg": dict(rows=40, cols=80, iters=8),
    "jacobi": dict(n=64, iters=3),
}


class TestRegistry:
    def test_all_six_apps_present(self):
        assert sorted(APPS) == ["cg", "grav", "jacobi", "lu", "pde", "shallow"]

    def test_get_app(self):
        assert get_app("lu").name == "lu"
        with pytest.raises(KeyError, match="unknown app"):
            get_app("linpack")

    def test_paper_rows_complete(self):
        for spec in APPS.values():
            for key in (
                "problem",
                "memory_mb",
                "compute_s",
                "comm_s_dual",
                "comm_reduction_dual",
                "miss_count_k",
                "miss_reduction",
            ):
                assert key in spec.paper, f"{spec.name} missing {key}"

    def test_program_scales(self):
        spec = get_app("jacobi")
        small = spec.program()
        big = spec.program("paper")
        assert big.arrays["a"].shape[0] > small.arrays["a"].shape[0]
        assert spec.program(n=32).arrays["a"].shape == (32, 32)
        with pytest.raises(ValueError, match="scale"):
            spec.program("huge")

    def test_paper_scale_memory_tracks_table2(self):
        # Our float64 arrays should weigh about 2x the paper's 4-byte MB.
        for name, expect_mb in [("jacobi", 32), ("pde", 56), ("lu", 4)]:
            prog = get_app(name).program("paper")
            ours_mb = prog.total_bytes() / 1e6
            assert 0.8 * expect_mb < ours_mb < 3.0 * expect_mb, (name, ours_mb)


@pytest.mark.parametrize("name", sorted(APPS))
class TestBackendEquivalence:
    def test_all_backends_identical_numerics(self, name):
        prog = get_app(name).program(**SMALL[name])
        uni = run_uniproc(prog, CFG)
        for result in (
            run_shmem(prog, CFG),
            run_shmem(prog, CFG, optimize=True),
            run_msgpass(prog, CFG),
        ):
            result.assert_same_numerics(uni)

    def test_optimized_never_increases_misses(self, name):
        prog = get_app(name).program(**SMALL[name])
        unopt = run_shmem(prog, CFG)
        opt = run_shmem(prog, CFG, optimize=True)
        assert opt.total_misses <= unopt.total_misses


class TestNumericalCorrectness:
    def test_lu_factorization_reconstructs_input(self):
        from repro.apps.lu import build

        n = 48
        prog = build(n=n)
        original = prog.initializers["a"]((n, n))
        result = run_shmem(prog, CFG, optimize=True)
        assert check_factorization(result.arrays["a"], original)

    def test_lu_matches_scipy_reference(self):
        import scipy.linalg

        n = 32
        prog = get_app("lu").program(n=n)
        original = prog.initializers["a"]((n, n))
        got = run_uniproc(prog, CFG).arrays["a"]
        # scipy does partial pivoting; our matrix is diagonally dominant so
        # compare against a hand-rolled no-pivot elimination instead.
        ref = np.array(original)
        for k in range(n - 1):
            ref[k + 1 :, k] /= ref[k, k]
            ref[k + 1 :, k + 1 :] -= np.outer(ref[k + 1 :, k], ref[k, k + 1 :])
        np.testing.assert_allclose(got, ref, rtol=1e-9)

    def test_cg_converges(self):
        prog = get_app("cg").program(rows=40, cols=80, iters=30)
        result = run_uniproc(prog, CFG)
        # rho tracks ||A^T r||^2: must have dropped by orders of magnitude.
        assert result.scalars["rho"] < 1e-8

    def test_cg_solves_normal_equations(self):
        from repro.apps.cg import build

        rows, cols = 40, 80
        prog = build(rows=rows, cols=cols, iters=60)
        a = prog.initializers["a_cols"]((rows, cols))
        b = prog.initializers["resid"]((rows,))
        result = run_uniproc(prog, CFG)
        x = result.arrays["x"]
        # x should satisfy the normal equations A^T A x = A^T b.
        np.testing.assert_allclose(a.T @ (a @ x), a.T @ b, atol=1e-6)

    def test_jacobi_moves_toward_boundary_values(self):
        prog = get_app("jacobi").program(n=32, iters=40)
        a = run_uniproc(prog, CFG).arrays["a"]
        # Laplace relaxation with all-1 boundary: heat diffuses inward, so
        # near-boundary interior points lead the (slowly converging) centre.
        assert 0.0 < a[16, 16] < 1.0
        assert 0.3 < a[1, 1] < 1.0
        assert a[1, 1] > a[16, 16]  # corners converge first

    def test_pde_reduces_residual(self):
        from repro.apps.pde import build

        n = 16
        prog = build(n=n, iters=30)
        result = run_uniproc(prog, CFG)
        u = result.arrays["u"]
        f = prog.initializers["f"]((n, n, n))
        h2 = (1.0 / (n - 1)) ** 2
        lap = (
            u[:-2, 1:-1, 1:-1]
            + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1]
            + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2]
            + u[1:-1, 1:-1, 2:]
            - 6 * u[1:-1, 1:-1, 1:-1]
        )
        residual = np.abs(lap - f[1:-1, 1:-1, 1:-1] * h2).max()
        assert residual < 0.01  # near fixed point of the relaxation

    def test_grav_reductions_computed(self):
        prog = get_app("grav").program(n=17, iters=2)
        result = run_uniproc(prog, CFG)
        rho0 = prog.initializers["rho"]((17, 17, 17))
        # Mass is conserved up to the tiny rescale leak.
        assert result.scalars["mass"] == pytest.approx(rho0.sum(), rel=1e-3)
        assert result.scalars["energy"] > 0

    def test_shallow_fields_stay_finite(self):
        prog = get_app("shallow").program(rows=65, cols=33, iters=5)
        result = run_uniproc(prog, CFG)
        for name in ("u", "v", "p"):
            assert np.isfinite(result.arrays[name]).all()
        assert result.arrays["p"].mean() == pytest.approx(50.0, abs=5.0)


class TestOptimizationShape:
    """Per-app optimization behaviour matching the paper's qualitative story."""

    def test_stencils_show_strong_miss_reduction(self):
        cfg = ClusterConfig(n_nodes=8)
        prog = get_app("jacobi").program(n=256, iters=4)
        unopt = run_shmem(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        assert opt.total_misses < 0.3 * unopt.total_misses

    def test_grav_shows_weak_miss_reduction(self):
        # "grav shows a shortcoming of our approach... only 38% removed"
        cfg = ClusterConfig(n_nodes=8)
        prog = get_app("grav").program()
        unopt = run_shmem(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        ratio = 1 - opt.total_misses / unopt.total_misses
        assert 0.1 < ratio < 0.75  # reduced, but far from the stencil codes

    def test_grav_dominated_by_reductions(self):
        cfg = ClusterConfig(n_nodes=8)
        result = run_shmem(get_app("grav").program(), cfg, optimize=True)
        kinds = result.stats.messages_by_kind()
        assert kinds[MsgKind.REDUCE] >= 16  # 8 reductions x 2 iterations... per node
        reduce_time = sum(s.reduce_ns for s in result.stats.nodes)
        assert reduce_time > 0

    def test_lu_broadcast_shrinks_with_k(self):
        # Early pivot columns move as compiler DATA; late ones are all edge.
        cfg = ClusterConfig(n_nodes=4)
        prog = get_app("lu").program(n=64)
        opt = run_shmem(prog, cfg, optimize=True)
        unopt = run_shmem(prog, cfg)
        assert 0 < opt.total_misses < unopt.total_misses
        assert opt.stats.messages_by_kind()[MsgKind.DATA] > 0

    def test_cg_moderate_reduction_reductions_remain(self):
        cfg = ClusterConfig(n_nodes=8)
        prog = get_app("cg").program()
        unopt = run_shmem(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        ratio = 1 - opt.total_misses / unopt.total_misses
        assert 0.3 < ratio < 0.9
        kinds = opt.stats.messages_by_kind()
        assert kinds[MsgKind.REDUCE] > 0  # the dots don't go away


class TestPdeRedBlack:
    """The Genesis original's red-black ordering (strided FORALLs)."""

    def test_backends_agree(self):
        from repro.apps.pde import build

        prog = build(n=24, iters=2, ordering="redblack")
        uni = run_uniproc(prog, CFG)
        run_shmem(prog, CFG, optimize=True).assert_same_numerics(uni)
        run_msgpass(prog, CFG).assert_same_numerics(uni)

    def test_converges_faster_than_jacobi(self):
        from repro.apps.pde import build

        n, iters = 16, 10

        def residual(result):
            u = result.arrays["u"]
            f = build(n, 1).initializers["f"]((n, n, n))
            h2 = (1.0 / (n - 1)) ** 2
            lap = (
                u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
                + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
                + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
                - 6 * u[1:-1, 1:-1, 1:-1]
            )
            return np.abs(lap - f[1:-1, 1:-1, 1:-1] * h2).max()

        jac = run_uniproc(build(n, iters, "jacobi"), CFG)
        rb = run_uniproc(build(n, iters, "redblack"), CFG)
        assert residual(rb) < residual(jac)

    def test_halves_array_memory(self):
        from repro.apps.pde import build

        jac = build(n=16, iters=1, ordering="jacobi")
        rb = build(n=16, iters=1, ordering="redblack")
        assert rb.total_bytes() == pytest.approx(jac.total_bytes() * 2 / 3)

    def test_optimization_still_applies(self):
        from repro.apps.pde import build

        cfg = ClusterConfig(n_nodes=8)
        prog = build(n=64, iters=2, ordering="redblack")
        unopt = run_shmem(prog, cfg)
        opt = run_shmem(prog, cfg, optimize=True)
        assert 0 < opt.total_misses < unopt.total_misses

    def test_unknown_ordering_rejected(self):
        from repro.apps.pde import build

        with pytest.raises(ValueError, match="ordering"):
            build(n=16, ordering="wavefront")
