"""Tests for the evaluation-report generator."""

import json

import pytest

from repro.report import (
    BENCH_ARTIFACTS,
    AppEvaluation,
    evaluate_app,
    load_bench_artifact,
    main,
    render_bench_appendix,
    render_report,
)


@pytest.fixture(scope="module")
def grav_eval():
    # Tiny override keeps the full matrix cheap.
    return evaluate_app("grav", n_nodes=4, n=33, iters=1)


class TestEvaluateApp:
    def test_matrix_complete(self, grav_eval):
        assert grav_eval.app == "grav"
        assert grav_eval.uni.backend == "uniproc"
        assert grav_eval.msgpass.backend == "msgpass"
        assert grav_eval.opt_dual.extra["rt_elim"] is True

    def test_derived_metrics_sensible(self, grav_eval):
        assert 0 < grav_eval.miss_reduction <= 100
        assert grav_eval.comm_reduction_dual > 0
        assert grav_eval.speedup(grav_eval.opt_dual) > grav_eval.speedup(
            grav_eval.unopt_dual
        )

    def test_cg_disables_rt_elim(self):
        e = evaluate_app("cg", n_nodes=4, rows=24, cols=48, iters=2)
        assert e.opt_dual.extra["rt_elim"] is False


class TestRenderReport:
    def test_contains_all_sections(self, grav_eval):
        text = render_report([grav_eval], 4)
        assert "Table 3" in text
        assert "Figure 3" in text
        assert "Figure 4" in text
        assert "| grav |" in text
        # Paper values in parentheses.
        assert "(38.2)" in text

    def test_markdown_tables_well_formed(self, grav_eval):
        text = render_report([grav_eval], 4)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line


class TestBenchArtifacts:
    MATRIX = {
        "scale": "default",
        "n_nodes": 8,
        "apps": {"jacobi": {"link+plain": {"elapsed_ns": 61_300_000},
                            "switch+plain": {"elapsed_ns": 63_900_000}}},
    }

    def test_missing_artifact_is_none_not_error(self, tmp_path):
        assert load_bench_artifact(str(tmp_path / "BENCH_switch.json")) is None

    def test_corrupt_artifact_is_none_not_error(self, tmp_path):
        bad = tmp_path / "BENCH_switch.json"
        bad.write_text("{not json")
        assert load_bench_artifact(str(bad)) is None
        bad.write_text(json.dumps(["wrong", "shape"]))
        assert load_bench_artifact(str(bad)) is None
        bad.write_text(json.dumps({"apps": "not-a-dict"}))
        assert load_bench_artifact(str(bad)) is None

    def test_valid_artifact_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_switch.json"
        path.write_text(json.dumps(self.MATRIX))
        assert load_bench_artifact(str(path)) == self.MATRIX

    def test_appendix_renders_present_and_missing(self):
        text = render_bench_appendix(
            {"BENCH_switch.json": self.MATRIX, "BENCH_combining.json": None}
        )
        assert "Appendix" in text
        assert "| jacobi | 61.3 | 63.9 |" in text
        assert "`BENCH_combining.json`: not found" in text
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line

    def test_all_artifact_names_registered(self):
        assert set(BENCH_ARTIFACTS) == {
            "BENCH_combining.json", "BENCH_switch.json",
            "BENCH_partition.json", "BENCH_recovery.json",
            "BENCH_obs.json", "BENCH_engine.json", "BENCH_serve.json",
        }

    def test_serve_artifact_renders_provenance(self):
        serve = {
            "schema": "serve/1", "scale": "default", "n_cells": 8,
            "jobs": 4, "cpus": 4, "serial_s": 6.0, "parallel_s": 2.0,
            "warm_s": 0.05, "speedup": 3.0, "warm_fraction": 0.008,
            "warm_hit_rate": 1.0,
            "provenance": {
                "serial": {"computed": 8, "pool": 0, "cache_hits": 0,
                           "deduped": 0, "plans_built": 2},
                "warm": {"computed": 0, "pool": 0, "cache_hits": 8,
                         "deduped": 0, "plans_built": 0},
            },
        }
        text = render_bench_appendix({"BENCH_serve.json": serve})
        assert "serve layer: 8 cells" in text
        assert "3.00x vs serial" in text
        assert "hit rate 100%" in text
        assert "cache provenance" in text
        assert "8 cached" in text

    def test_engine_artifact_renders_speedups(self):
        engine = {
            "schema": "engine-speed/1", "baseline_commit": "bfcfe3e",
            "geomean_speedup": 1.61, "n_nodes": 8, "repeats": 3,
            "apps": {"jacobi": {"default": {"speedup": 1.37},
                                "paper": {"speedup": 3.12}}},
        }
        text = render_bench_appendix({"BENCH_engine.json": engine})
        assert "`bfcfe3e`" in text
        assert "geomean 1.61x" in text
        assert "| jacobi | 1.37x | 3.12x |" in text


class TestMain:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        rc = main(["--apps", "grav", "--nodes", "4", "-o", str(out)])
        assert rc == 0
        assert "Table 3" in out.read_text()

    def test_unknown_app(self, capsys):
        assert main(["--apps", "hpl"]) == 2
        assert "unknown apps" in capsys.readouterr().err

    def test_bench_dir_with_no_artifacts_still_succeeds(self, tmp_path):
        # The tolerant loaders: an empty bench dir must produce a report
        # that *says* the artifacts are missing, not a traceback.
        out = tmp_path / "r.md"
        rc = main(["--apps", "grav", "--nodes", "4", "-o", str(out),
                   "--bench-dir", str(tmp_path)])
        assert rc == 0
        text = out.read_text()
        assert "`BENCH_switch.json`: not found" in text
        assert "`BENCH_combining.json`: not found" in text
