"""Tests for the evaluation-report generator."""

import pytest

from repro.report import AppEvaluation, evaluate_app, main, render_report


@pytest.fixture(scope="module")
def grav_eval():
    # Tiny override keeps the full matrix cheap.
    return evaluate_app("grav", n_nodes=4, n=33, iters=1)


class TestEvaluateApp:
    def test_matrix_complete(self, grav_eval):
        assert grav_eval.app == "grav"
        assert grav_eval.uni.backend == "uniproc"
        assert grav_eval.msgpass.backend == "msgpass"
        assert grav_eval.opt_dual.extra["rt_elim"] is True

    def test_derived_metrics_sensible(self, grav_eval):
        assert 0 < grav_eval.miss_reduction <= 100
        assert grav_eval.comm_reduction_dual > 0
        assert grav_eval.speedup(grav_eval.opt_dual) > grav_eval.speedup(
            grav_eval.unopt_dual
        )

    def test_cg_disables_rt_elim(self):
        e = evaluate_app("cg", n_nodes=4, rows=24, cols=48, iters=2)
        assert e.opt_dual.extra["rt_elim"] is False


class TestRenderReport:
    def test_contains_all_sections(self, grav_eval):
        text = render_report([grav_eval], 4)
        assert "Table 3" in text
        assert "Figure 3" in text
        assert "Figure 4" in text
        assert "| grav |" in text
        # Paper values in parentheses.
        assert "(38.2)" in text

    def test_markdown_tables_well_formed(self, grav_eval):
        text = render_report([grav_eval], 4)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line


class TestMain:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        rc = main(["--apps", "grav", "--nodes", "4", "-o", str(out)])
        assert rc == 0
        assert "Table 3" in out.read_text()

    def test_unknown_app(self, capsys):
        assert main(["--apps", "hpl"]) == 2
        assert "unknown apps" in capsys.readouterr().err
