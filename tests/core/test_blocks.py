"""Tests for section→block mapping and the shmem_limits subsetting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import section_blocks, section_byte_runs, shmem_limits
from repro.core.sections import Section, StridedInterval
from repro.tempest import ClusterConfig, Distribution, SharedMemory


def make_array(shape, block_size=128, n_nodes=4):
    cfg = ClusterConfig(n_nodes=n_nodes, block_size=block_size)
    mem = SharedMemory(cfg)
    return mem.alloc("a", shape, Distribution.block(n_nodes))


class TestByteRuns:
    def test_1d_contiguous_single_run(self):
        a = make_array((64,))
        runs = section_byte_runs(a, Section.of([], StridedInterval(8, 23)))
        assert runs == [(a.base + 64, a.base + 192)]

    def test_1d_strided_runs_per_element(self):
        a = make_array((64,))
        runs = section_byte_runs(a, Section.of([], StridedInterval(0, 8, 4)))
        assert runs == [
            (a.base, a.base + 8),
            (a.base + 32, a.base + 40),
            (a.base + 64, a.base + 72),
        ]

    def test_2d_full_columns_merge(self):
        a = make_array((16, 8))
        # Full columns 2..5, unit stride: one big run.
        sec = Section.of([(0, 15)], StridedInterval(2, 5))
        runs = section_byte_runs(a, sec)
        assert runs == [(a.base + 2 * 128, a.base + 6 * 128)]

    def test_2d_partial_rows_one_run_per_column(self):
        a = make_array((16, 8))
        sec = Section.of([(1, 14)], StridedInterval(2, 3))
        runs = section_byte_runs(a, sec)
        assert runs == [
            (a.base + 2 * 128 + 8, a.base + 2 * 128 + 120),
            (a.base + 3 * 128 + 8, a.base + 3 * 128 + 120),
        ]

    def test_3d_interior_runs(self):
        a = make_array((4, 4, 2))
        # interior rows 1..2, middle 1..2, column 0
        sec = Section.of([(1, 2), (1, 2)], StridedInterval(0, 0))
        runs = section_byte_runs(a, sec)
        # 2 middle planes x (rows 1..2) = 2 runs of 16 bytes each.
        assert runs == [
            (a.base + (1 + 4) * 8, a.base + (3 + 4) * 8),
            (a.base + (1 + 8) * 8, a.base + (3 + 8) * 8),
        ]

    def test_3d_full_inner_merges_across_column(self):
        a = make_array((4, 4, 4))
        sec = Section.of([(0, 3), (0, 3)], StridedInterval(1, 2))
        runs = section_byte_runs(a, sec)
        assert runs == [(a.base + 16 * 8, a.base + 48 * 8)]

    def test_empty_section_no_runs(self):
        a = make_array((16, 8))
        assert section_byte_runs(a, Section.empty(2)) == []

    def test_rank_mismatch_rejected(self):
        a = make_array((16, 8))
        with pytest.raises(ValueError, match="rank"):
            section_byte_runs(a, Section.of([], StridedInterval(0, 3)))


class TestSectionBlocks:
    def test_aligned_columns_map_to_blocks(self):
        a = make_array((16, 8))  # one column == one 128B block
        sec = Section.of([(0, 15)], StridedInterval(2, 4))
        got = section_blocks(a, sec)
        np.testing.assert_array_equal(got, [a.base_block + 2, a.base_block + 3, a.base_block + 4])

    def test_partial_column_still_touches_block(self):
        a = make_array((16, 8))
        sec = Section.of([(5, 9)], StridedInterval(2, 2))
        np.testing.assert_array_equal(section_blocks(a, sec), [a.base_block + 2])

    def test_unaligned_columns_share_blocks(self):
        # 20 doubles per column = 160 bytes: columns straddle 128B blocks.
        a = make_array((20, 4))
        sec = Section.of([(0, 19)], StridedInterval(1, 1))
        # Column 1 = bytes 160..320 => blocks 1 and 2.
        np.testing.assert_array_equal(
            section_blocks(a, sec), [a.base_block + 1, a.base_block + 2]
        )

    def test_deduplication_across_runs(self):
        a = make_array((4, 8))  # 32-byte columns, 4 per block
        sec = Section.of([(0, 3)], StridedInterval(0, 3))
        np.testing.assert_array_equal(section_blocks(a, sec), [a.base_block])


class TestShmemLimits:
    def test_aligned_section_fully_controllable(self):
        a = make_array((16, 8))
        sec = Section.of([(0, 15)], StridedInterval(2, 5))
        inner, boundary = shmem_limits(a, sec)
        assert len(inner) == 4 and len(boundary) == 0

    def test_partial_column_all_boundary(self):
        a = make_array((16, 8))
        sec = Section.of([(3, 12)], StridedInterval(2, 2))  # 80 bytes mid-block
        inner, boundary = shmem_limits(a, sec)
        assert len(inner) == 0
        np.testing.assert_array_equal(boundary, [a.base_block + 2])

    def test_straddling_section_trims_to_block_boundaries(self):
        # Paper's example: a(m:n) -> subset a(m_l:n_l) on block boundaries.
        a = make_array((64,))  # 16 doubles per block
        sec = Section.of([], StridedInterval(5, 40))
        inner, boundary = shmem_limits(a, sec)
        # bytes 40..328: full blocks are 1 (128..256); partial: 0 and 2.
        np.testing.assert_array_equal(inner, [a.base_block + 1])
        np.testing.assert_array_equal(boundary, [a.base_block, a.base_block + 2])

    def test_unaligned_columns_boundary_blocks_exact(self):
        a = make_array((20, 4))
        sec = Section.of([(0, 19)], StridedInterval(1, 1))  # bytes 160..320
        inner, boundary = shmem_limits(a, sec)
        # ceil(160/128)=2; 320//128=2 => no fully-contained block.
        assert len(inner) == 0
        np.testing.assert_array_equal(boundary, [a.base_block + 1, a.base_block + 2])

    def test_inner_plus_boundary_equals_touched(self):
        a = make_array((20, 8))
        sec = Section.of([(0, 19)], StridedInterval(1, 6))
        inner, boundary = shmem_limits(a, sec)
        touched = section_blocks(a, sec)
        np.testing.assert_array_equal(np.union1d(inner, boundary), touched)
        assert len(np.intersect1d(inner, boundary)) == 0

    @given(
        rows=st.integers(1, 40),
        col_lo=st.integers(0, 7),
        width=st.integers(0, 7),
        row_lo=st.integers(0, 39),
        row_hi=st.integers(0, 39),
    )
    @settings(max_examples=100)
    def test_property_partition_and_containment(self, rows, col_lo, width, row_lo, row_hi):
        a = make_array((40, 8), block_size=64)
        sec = Section.of(
            [(min(row_lo, rows - 1), min(row_hi, rows - 1))],
            StridedInterval(col_lo, min(col_lo + width, 7)),
        )
        inner, boundary = shmem_limits(a, sec)
        touched = section_blocks(a, sec)
        # Partition property.
        np.testing.assert_array_equal(np.union1d(inner, boundary), touched)
        assert len(np.intersect1d(inner, boundary)) == 0
        # Containment: every inner block's bytes lie inside some run.
        runs = section_byte_runs(a, sec)
        for b in inner:
            lo, hi = b * 64, (b + 1) * 64
            assert any(rlo <= lo and hi <= rhi for rlo, rhi in runs)
