"""Access-set analysis tests — the heart of the paper's Section 4.1."""

import pytest

from repro.core.access import RefPattern, Transfer, analyze_loop
from repro.core.sections import Section, StridedInterval
from repro.core.symbolic import Sym
from repro.hpf.dsl import I, ProgramBuilder, S


def stencil_program(n=16, procs=4, dist="block"):
    """out[j] = (a[j-1] + a[j+1]) / 2 over j = 1..n-2."""
    b = ProgramBuilder("stencil")
    a = b.array("a", (n,), dist=dist)
    out = b.array("out", (n,), dist=dist)
    stmt = b.forall(1, n - 2, out[I], (a[I - 1] + a[I + 1]) * 0.5)
    return stmt, b.build(), procs


class TestStencilAnalysis:
    def test_writes_are_owned(self):
        stmt, prog, procs = stencil_program()
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        for p in range(procs):
            assert inst.non_owner_writes[p] == ()
            for _, sec in inst.writes[p]:
                owned = StridedInterval(p * 4, p * 4 + 3)
                assert set(sec.last) <= set(owned)

    def test_non_owner_reads_are_halo_columns(self):
        stmt, prog, procs = stencil_program()
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        # proc 1 owns 4..7; executes 4..7; reads a[3..6] and a[5..8].
        nor = inst.non_owner_reads[1]
        cols = sorted(c for _, sec in nor for c in sec.last)
        assert cols == [3, 8]

    def test_boundary_procs_have_one_halo(self):
        stmt, prog, procs = stencil_program()
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        cols0 = [c for _, sec in inst.non_owner_reads[0] for c in sec.last]
        assert cols0 == [4]  # proc 0 reads right halo only (loop starts at 1)
        cols3 = [c for _, sec in inst.non_owner_reads[3] for c in sec.last]
        assert cols3 == [11]

    def test_transfers_pair_neighbours(self):
        stmt, prog, procs = stencil_program()
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        got = {(t.src, t.dst, tuple(t.section.last)) for t in inst.transfers}
        expect = {
            (1, 0, (4,)),
            (0, 1, (3,)),
            (2, 1, (8,)),
            (1, 2, (7,)),
            (3, 2, (12,)),
            (2, 3, (11,)),
        }
        assert got == expect
        assert all(t.kind == "read" for t in inst.transfers)

    def test_total_reads_cover_rhs_exactly(self):
        stmt, prog, procs = stencil_program()
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        cols = sorted(
            {c for p in range(procs) for _, sec in inst.reads[p] for c in sec.last}
        )
        assert cols == list(range(0, 16))  # a[0..14-1+1+1] = 0..15... j±1 over 1..14

    def test_instantiation_cached(self):
        stmt, prog, procs = stencil_program()
        acc = analyze_loop(stmt, prog, procs)
        assert acc.instantiate({}) is acc.instantiate({})


class TestCyclicAnalysis:
    def test_cyclic_non_owner_reads_everywhere(self):
        # With CYCLIC, every j±1 neighbour belongs to another proc.
        stmt, prog, procs = stencil_program(dist="cyclic")
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        # proc 1 owns 1,5,9,13; executes those; reads j-1 and j+1 — all remote.
        nor_cols = sorted(c for _, sec in inst.non_owner_reads[1] for c in sec.last)
        assert nor_cols == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_cyclic_transfers_strided_sections(self):
        stmt, prog, procs = stencil_program(dist="cyclic")
        inst = analyze_loop(stmt, prog, procs).instantiate({})
        from_0_to_1 = [t for t in inst.transfers if (t.src, t.dst) == (0, 1)]
        cols = sorted(c for t in from_0_to_1 for c in t.section.last)
        assert cols == [0, 4, 8, 12]


class TestBroadcastAnalysis:
    def test_slice_read_reads_whole_array(self):
        # q[j] = sum-like over full x: every proc reads all of x.
        b = ProgramBuilder("mv")
        x = b.array("x", (16,))
        q = b.array("q", (16,))
        stmt = b.forall(0, 15, q[I], x[S(0, 15)] * 1.0)
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({})
        for p in range(4):
            nor_cols = sorted(c for _, sec in inst.non_owner_reads[p] for c in sec.last)
            owned = set(range(p * 4, p * 4 + 4))
            assert set(nor_cols) == set(range(16)) - owned

    def test_point_read_broadcast_from_owner(self):
        # Pivot-column broadcast (LU): everyone reads column k.
        b = ProgramBuilder("lu_bcast")
        a = b.array("a", (16, 16))
        k = Sym("k")
        stmt = b.forall(k + 1, 15, a[S(0, 15), I], a[S(0, 15), I] - a[S(0, 15), k])
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({"k": 2})
        # Column 2 is owned by proc 0; procs 1..3 each need it.
        bcast = [t for t in inst.transfers if tuple(t.section.last) == (2,)]
        assert {(t.src, t.dst) for t in bcast} == {(0, 1), (0, 2), (0, 3)}

    def test_symbolic_reinstantiation_changes_sets(self):
        b = ProgramBuilder("lu_bcast")
        a = b.array("a", (16, 16))
        k = Sym("k")
        stmt = b.forall(k + 1, 15, a[S(0, 15), I], a[S(0, 15), I] - a[S(0, 15), k])
        prog = b.build()
        acc = analyze_loop(stmt, prog, 4)
        i2 = acc.instantiate({"k": 2})
        i13 = acc.instantiate({"k": 13})
        assert len(i2.transfers) == 3
        # k=13: only proc 3 has iterations (14, 15), owner of col 13 is 3: no transfer.
        assert len(i13.transfers) == 0
        assert list(i13.iterations[3]) == [14, 15]


class TestNonOwnerWrites:
    def test_on_home_produces_write_transfers(self):
        b = ProgramBuilder("now")
        a = b.array("a", (16,))
        w = b.array("w", (16,))
        # Iterations follow a's owner, but writes land in w[j+1]:
        # proc 0 executes j=1..3 writing w[2..4]; w[4] belongs to proc 1.
        stmt = b.forall(1, 14, w[I + 1], a[I], on_home=a[I])
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({})
        assert inst.non_owner_writes[0] != ()
        wt = [t for t in inst.transfers if t.kind == "write"]
        assert {(t.src, t.dst, tuple(t.section.last)) for t in wt} == {
            (1, 0, (4,)),
            (2, 1, (8,)),
            (3, 2, (12,)),
        }


class TestReduceAnalysis:
    def test_reduce_reads_owned_only(self):
        b = ProgramBuilder("r")
        a = b.array("a", (16,))
        stmt = b.reduce("s", 0, 15, a[I] * a[I])
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({})
        for p in range(4):
            assert inst.non_owner_reads[p] == ()
            assert inst.writes[p] == ()

    def test_reduce_without_distributed_ref_rejected(self):
        b = ProgramBuilder("r")
        a = b.array("a", (16,), dist="replicated")
        stmt = b.reduce("s", 0, 15, a[I])
        prog = b.build()
        with pytest.raises(ValueError, match="no distributed"):
            analyze_loop(stmt, prog, 4)


class TestSingleOwnerAnalysis:
    def test_only_owner_iterates(self):
        b = ProgramBuilder("so")
        a = b.array("a", (16, 16))
        stmt = b.assign_at(a[S(0, 15), 6], a[S(0, 15), 6] * 2.0)
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({})
        assert [it.is_empty for it in inst.iterations] == [True, False, True, True]
        assert inst.transfers == ()

    def test_single_owner_remote_read(self):
        b = ProgramBuilder("so")
        a = b.array("a", (16, 16))
        # Owner of col 6 (proc 1) reads col 0 (proc 0's).
        stmt = b.assign_at(a[S(0, 15), 6], a[S(0, 15), 0] * 2.0)
        prog = b.build()
        inst = analyze_loop(stmt, prog, 4).instantiate({})
        assert {(t.src, t.dst, tuple(t.section.last)) for t in inst.transfers} == {
            (0, 1, (0,))
        }


class TestTransferValidation:
    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError):
            Transfer("a", Section.of([], StridedInterval(0, 1)), 1, 1, "read")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Transfer("a", Section.of([], StridedInterval(0, 1)), 0, 1, "mixed")
