"""Unit tests for the communication planner, contract checker and PRE."""

import numpy as np
import pytest

from repro.core.access import analyze_loop
from repro.core.calls import (
    FlushBlocks,
    ImplicitInvalidate,
    ImplicitWritable,
    MkWritable,
    ReadyToRecv,
    SendBlocks,
)
from repro.core.contract import ContractError, check_plan
from repro.core.planner import CommPlan, PlanError, plan_loop
from repro.core.pre import AvailabilityTracker
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime.shmem import _allocate
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy


def stencil_setup(n=128, rows=16, procs=4, on_home=False):
    """2-D stencil whose halo columns are exactly one block each."""
    b = ProgramBuilder("p")
    a = b.array("a", (rows, n))
    out = b.array("out", (rows, n))
    if on_home:
        stmt = b.forall(1, n - 2, out[S(0, rows - 1), I + 1],
                        a[S(0, rows - 1), I], on_home=a[S(0, rows - 1), I])
    else:
        stmt = b.forall(
            1, n - 2,
            out[S(0, rows - 1), I],
            (a[S(0, rows - 1), I - 1] + a[S(0, rows - 1), I + 1]) * 0.5,
        )
    prog = b.build()
    cfg = ClusterConfig(n_nodes=procs)
    mem, _arrays = _allocate(prog, cfg, HomePolicy.ALIGNED)
    inst = analyze_loop(stmt, prog, procs).instantiate({})
    return inst, mem


class TestPlanLoop:
    def test_full_plan_structure(self):
        inst, mem = stencil_setup()
        plan = plan_loop(inst, mem)
        assert len(plan.pre) == 3
        assert all(isinstance(op, MkWritable) for op in plan.pre[0])
        assert all(isinstance(op, ImplicitWritable) for op in plan.pre[1])
        assert all(isinstance(op, (SendBlocks, ReadyToRecv)) for op in plan.pre[2])
        assert len(plan.post) == 1
        assert all(isinstance(op, ImplicitInvalidate) for op in plan.post[0])

    def test_send_receive_counts_balance(self):
        inst, mem = stencil_setup()
        plan = plan_loop(inst, mem)
        sent = {}
        for op in plan.pre[2]:
            if isinstance(op, SendBlocks):
                sent[op.dst] = sent.get(op.dst, 0) + len(op.blocks)
        recv = {op.node: op.count for op in plan.pre[2] if isinstance(op, ReadyToRecv)}
        assert sent == recv

    def test_rt_elim_drops_stage_and_invalidate(self):
        inst, mem = stencil_setup()
        plan = plan_loop(inst, mem, rt_elim=True)
        assert len(plan.pre) == 2  # no mk_writable stage
        assert not any(isinstance(op, MkWritable) for st in plan.pre for op in st)
        assert plan.post == []
        # implicit_writable carries a memo key for the fast path
        for op in plan.pre[0]:
            assert isinstance(op, ImplicitWritable) and op.memo_key is not None

    def test_rt_elim_refuses_write_transfers(self):
        inst, mem = stencil_setup(on_home=True)
        with pytest.raises(PlanError, match="owner-computes"):
            plan_loop(inst, mem, rt_elim=True)

    def test_write_transfers_produce_flush_and_preload(self):
        inst, mem = stencil_setup(on_home=True)
        plan = plan_loop(inst, mem)
        flushes = [op for op in plan.post[0] if isinstance(op, FlushBlocks)]
        assert flushes
        preloads = [
            op for op in plan.pre[2] if isinstance(op, SendBlocks) and op.purpose == "write"
        ]
        assert preloads
        # Flush targets must be the preload sources.
        assert {f.owner for f in flushes} == {p.node for p in preloads}
        # Owners wait for the flushed data before the final barrier.
        recv = [op for op in plan.post[0] if isinstance(op, ReadyToRecv)]
        assert {r.node for r in recv} == {f.owner for f in flushes}

    def test_empty_plan_for_local_loop(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16, 64))
        out = b.array("out", (16, 64))
        stmt = b.forall(0, 63, out[S(0, 15), I], a[S(0, 15), I] * 2.0)
        prog = b.build()
        cfg = ClusterConfig(n_nodes=4)
        mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
        plan = plan_loop(analyze_loop(stmt, prog, 4).instantiate({}), mem)
        assert plan.is_empty

    def test_multi_owner_section_gets_designated_senders(self):
        # Broadcast of a vector whose per-owner chunks are sub-block: the
        # merged section must still be mostly controllable.
        b = ProgramBuilder("p")
        x = b.array("x", (128,))
        y = b.array("y", (128,))
        stmt = b.forall(0, 127, y[I], x[S(0, 127)] * 1.0)
        prog = b.build()
        cfg = ClusterConfig(n_nodes=8)  # 16 elements = 1 block per proc
        mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
        plan = plan_loop(analyze_loop(stmt, prog, 8).instantiate({}), mem)
        total = plan.total_controlled_blocks()
        assert total > 0
        # Every receiver gets ~7 of the 8 blocks (all but its own).
        for node, blocks in plan.controlled.items():
            assert len(blocks) >= 6

    def test_boundary_blocks_reported(self):
        # 20-double columns straddle 128B blocks: edges must be reported.
        b = ProgramBuilder("p")
        a = b.array("a", (20, 64))
        out = b.array("out", (20, 64))
        stmt = b.forall(
            1, 62,
            out[S(0, 19), I],
            (a[S(0, 19), I - 1] + a[S(0, 19), I + 1]) * 0.5,
        )
        prog = b.build()
        cfg = ClusterConfig(n_nodes=4)
        mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
        plan = plan_loop(analyze_loop(stmt, prog, 4).instantiate({}), mem)
        assert any(len(v) for v in plan.boundary.values())


class TestCheckPlan:
    def _valid_plan(self):
        inst, mem = stencil_setup()
        return plan_loop(inst, mem)

    def test_valid_plan_passes(self):
        check_plan(self._valid_plan())

    def test_missing_implicit_writable_caught(self):
        plan = self._valid_plan()
        plan.pre[1] = []  # drop all implicit_writable ops
        with pytest.raises(ContractError, match="implicit_writable"):
            check_plan(plan)

    def test_same_stage_send_and_iw_caught(self):
        plan = self._valid_plan()
        # Move the iw ops into the send stage: no barrier between them.
        plan.pre[2] = plan.pre[1] + plan.pre[2]
        plan.pre[1] = []
        with pytest.raises(ContractError, match="barrier-separated"):
            check_plan(plan)

    def test_missing_mk_writable_caught(self):
        plan = self._valid_plan()
        plan.pre[0] = []
        with pytest.raises(ContractError, match="mk_writable"):
            check_plan(plan)

    def test_recv_count_mismatch_caught(self):
        plan = self._valid_plan()
        plan.pre[2] = [
            op if not isinstance(op, ReadyToRecv) else ReadyToRecv(op.node, op.count + 1)
            for op in plan.pre[2]
        ]
        with pytest.raises(ContractError, match="expects"):
            check_plan(plan)

    def test_missing_invalidate_caught(self):
        plan = self._valid_plan()
        plan.post = []
        with pytest.raises(ContractError, match="restores consistency"):
            check_plan(plan)

    def test_retained_blocks_excuse_missing_invalidate(self):
        plan = self._valid_plan()
        plan.post = []
        retained: dict[int, set[int]] = {}
        for op in plan.pre[2]:
            if isinstance(op, SendBlocks):
                retained.setdefault(op.dst, set()).update(op.blocks)
        check_plan(plan, retained)  # PRE-style retention: fine

    def test_rt_elim_plan_passes_without_mkw(self):
        inst, mem = stencil_setup()
        check_plan(plan_loop(inst, mem, rt_elim=True))


class TestAvailabilityTracker:
    def test_first_send_passes_through(self):
        tr = AvailabilityTracker(4)
        out = tr.filter_send(1, np.array([10, 11, 12]))
        np.testing.assert_array_equal(out, [10, 11, 12])

    def test_repeat_send_fully_elided(self):
        tr = AvailabilityTracker(4)
        tr.filter_send(1, np.array([10, 11]))
        out = tr.filter_send(1, np.array([10, 11]))
        assert len(out) == 0
        assert tr.sends_elided == 1
        assert tr.blocks_elided == 2

    def test_write_kills_availability_except_writer(self):
        tr = AvailabilityTracker(4)
        tr.filter_send(1, np.array([10]))
        tr.filter_send(2, np.array([10]))
        tr.note_writes(2, np.array([10]))
        assert len(tr.filter_send(1, np.array([10]))) == 1  # killed at 1
        assert len(tr.filter_send(2, np.array([10]))) == 0  # writer keeps it

    def test_partial_overlap(self):
        tr = AvailabilityTracker(4)
        tr.filter_send(3, np.array([5, 6]))
        out = tr.filter_send(3, np.array([6, 7]))
        np.testing.assert_array_equal(out, [7])

    def test_drain_returns_and_clears(self):
        tr = AvailabilityTracker(4)
        tr.filter_send(1, np.array([3, 4]))
        np.testing.assert_array_equal(tr.drain(1), [3, 4])
        assert tr.retained(1) == set()
        assert len(tr.filter_send(1, np.array([3]))) == 1

    def test_stats(self):
        tr = AvailabilityTracker(2)
        tr.filter_send(1, np.array([1, 2, 3]))
        tr.filter_send(1, np.array([1, 2, 3]))
        s = tr.stats()
        assert s["sends_elided"] == 1 and s["blocks_elided"] == 3
        assert s["live_blocks"] == 3
