"""Tests for the static redundant-communication analysis (paper §4.3)."""

import pytest

from repro.core.pre_static import analyze_redundancy
from repro.core.symbolic import Sym
from repro.hpf.dsl import I, ProgramBuilder, S

from tests.runtime.conftest import jacobi_program, stable_reader_program


class TestPhaseGraph:
    def test_timestep_loop_gets_back_edge(self):
        prog = jacobi_program(n=32, iters=2)
        info = analyze_redundancy(prog, 4)
        # init, sweep, copy
        assert len(info.nodes) == 3
        sweep, copy = info.nodes[1], info.nodes[2]
        assert sweep.index in copy.succs  # the loop back edge
        assert copy.index in sweep.preds

    def test_scalar_statements_transparent(self):
        from repro.hpf.ast import ScalarRef

        b = ProgramBuilder("p")
        a = b.array("a", (16,))
        b.forall(0, 15, a[I], 1.0)
        b.scalar("x", ScalarRef("x") * 2.0)
        b.forall(0, 15, a[I], 2.0)
        info = analyze_redundancy(b.build(), 4)
        assert len(info.nodes) == 2
        assert info.nodes[1].preds == [0]


class TestRedundancyDetection:
    def test_stable_coefficient_halos_redundant(self):
        prog = stable_reader_program()
        info = analyze_redundancy(prog, 4)
        # The time-step loop re-reads coeff's halo, which nothing rewrites:
        # steady-state redundant.
        assert any("coeff" in arrays for arrays in info.redundant.values())

    def test_jacobi_halos_not_redundant(self):
        prog = jacobi_program(n=32, iters=3)
        info = analyze_redundancy(prog, 4)
        # a is rewritten by the copy loop each iteration; new by the sweep:
        # nothing is steady-state redundant.
        assert not info.any_redundant

    def test_straightline_repeat_read_redundant(self):
        b = ProgramBuilder("p")
        x = b.array("x", (16, 32))
        y = b.array("y", (16, 32))
        z = b.array("z", (16, 32))
        full = S(0, 15)
        b.forall(1, 30, y[full, I], x[full, I - 1])
        b.forall(1, 30, z[full, I], x[full, I - 1])  # same halo again
        info = analyze_redundancy(b.build(), 4)
        assert info.redundant_arrays("L2") == frozenset({"x"})

    def test_intervening_write_kills(self):
        b = ProgramBuilder("p")
        x = b.array("x", (16, 32))
        y = b.array("y", (16, 32))
        full = S(0, 15)
        b.forall(1, 30, y[full, I], x[full, I - 1])
        b.forall(0, 31, x[full, I], y[full, I])       # kills x facts
        b.forall(1, 30, y[full, I], x[full, I - 1])
        info = analyze_redundancy(b.build(), 4)
        assert not info.any_redundant

    def test_different_patterns_are_different_facts(self):
        b = ProgramBuilder("p")
        x = b.array("x", (16, 32))
        y = b.array("y", (16, 32))
        full = S(0, 15)
        b.forall(1, 30, y[full, I], x[full, I - 1])
        b.forall(1, 30, y[full, I], x[full, I + 1])   # other halo: fresh fact
        info = analyze_redundancy(b.build(), 4)
        assert not info.any_redundant

    def test_symbolic_loops_conservatively_skipped(self):
        # lu-style: the pivot column differs per k; never redundant.
        b = ProgramBuilder("p")
        a = b.array("a", (32, 32), dist="cyclic")
        with b.seq("k", 0, 30) as k:
            b.forall(k + 1, 31, a[S(0, 31), I],
                     a[S(0, 31), I] - a[S(0, 31), k] * 0.1)
        info = analyze_redundancy(b.build(), 4)
        assert not info.any_redundant
        assert info.nodes[0].symbolic

    def test_summary_format(self):
        prog = stable_reader_program()
        info = analyze_redundancy(prog, 4)
        summary = info.summary()
        assert all(isinstance(v, list) for v in summary.values())


class TestSoundnessAgainstDynamicPRE:
    """Everything static analysis calls redundant must actually be elided
    by the dynamic tracker at run time — on the whole application suite."""

    @pytest.mark.parametrize(
        "name,params",
        [
            ("jacobi", dict(n=64, iters=3)),
            ("pde", dict(n=16, iters=2)),
            ("shallow", dict(rows=65, cols=33, iters=3)),
            ("grav", dict(n=17, iters=2)),
            ("cg", dict(rows=40, cols=80, iters=5)),
        ],
    )
    def test_static_redundancy_implies_dynamic_elision(self, name, params):
        from repro.apps import APPS
        from repro.runtime import run_shmem
        from repro.tempest.config import ClusterConfig

        prog = APPS[name].program(**params)
        info = analyze_redundancy(prog, 4)
        result = run_shmem(prog, ClusterConfig(n_nodes=4), optimize=True, pre=True)
        if info.any_redundant:
            # The dynamic tracker must have found at least as much.
            assert result.extra["blocks_elided"] > 0, (name, info.summary())
        # (The converse need not hold: the dynamic tracker also elides
        # transfers that are redundant only on some paths/iterations.)
