"""Unit tests for linear symbolic expressions."""

import pytest

from repro.core.symbolic import Env, Lin, Sym, as_lin

N = Sym("N")
P = Sym("p")


def test_sym_arithmetic_builds_lin():
    e = N + 1
    assert isinstance(e, Lin)
    assert e.eval({"N": 9}) == 10


def test_constant_lin():
    e = Lin(5)
    assert e.is_const and e.eval({}) == 5


def test_addition_merges_terms():
    e = N + N + 2
    assert e.eval({"N": 3}) == 8
    assert e.terms == {"N": 2}


def test_subtraction_and_cancellation():
    e = (N + 5) - N
    assert e.is_const and e.const == 5


def test_rsub():
    e = 10 - N
    assert e.eval({"N": 3}) == 7


def test_scalar_multiplication():
    e = 3 * (N + 1)
    assert e.eval({"N": 2}) == 9


def test_negation():
    assert (-N).eval({"N": 4}) == -4


def test_mixed_symbols():
    e = 2 * N - P + 7
    assert e.eval({"N": 5, "p": 3}) == 14
    assert e.symbols() == {"N", "p"}


def test_mul_by_non_int_rejected():
    with pytest.raises(TypeError):
        Lin.of(N) * 1.5


def test_missing_binding_raises():
    with pytest.raises(KeyError):
        (N + 1).eval({})


def test_substitute_partial():
    e = N + P
    e2 = e.substitute({"N": 4})
    assert e2.terms == {"p": 1} and e2.const == 4
    assert e2.eval({"p": 1}) == 5


def test_equality_with_int():
    assert Lin(3) == 3
    assert (N - N + 3) == 3
    assert not (Lin.of(N) == 3)


def test_equality_with_sym():
    assert Lin.of(N) == N


def test_hashable_and_canonical():
    assert hash(N + 1) == hash(Lin(1, {"N": 1}))
    assert (N + 1) == (1 + N)


def test_zero_coefficients_dropped():
    e = N * 0 + 3
    assert e.is_const


def test_repr_readable():
    assert repr(N + 1) == "N + 1"
    assert repr(Lin(0, {"N": 2})) == "2*N"
    assert repr(Lin(7)) == "7"


def test_as_lin_type_errors():
    with pytest.raises(TypeError):
        as_lin("N")
