"""Property-based tests of the communication planner.

Hypothesis generates random stencil geometries (array shape, distribution,
node count, block size, halo offsets) and checks the planner's structural
invariants on every resulting plan:

* controlled and boundary block sets partition the touched non-owner
  blocks (no block is both, none is lost);
* every plan passes the static contract checker;
* sends balance receives per destination;
* every controlled block's bytes lie inside the receiver's non-owner read
  sections;
* senders are never their own destination;
* rt-elim plans contain no mk_writable, no invalidates, and only
  single-owner blocks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.access import analyze_loop
from repro.core.blocks import section_blocks, section_byte_runs
from repro.core.calls import (
    ImplicitInvalidate,
    MkWritable,
    ReadyToRecv,
    SendBlocks,
)
from repro.core.contract import check_plan
from repro.core.planner import PlanError, plan_loop
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.runtime.shmem import _allocate
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy


@st.composite
def geometries(draw):
    rows = draw(st.sampled_from([4, 8, 16, 20, 32]))
    cols = draw(st.sampled_from([12, 16, 24, 33]))
    n_nodes = draw(st.sampled_from([2, 3, 4, 8]))
    block_size = draw(st.sampled_from([32, 64, 128]))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    offsets = draw(
        st.lists(st.integers(-3, 3), min_size=1, max_size=3, unique=True)
    )
    max_off = max(abs(o) for o in offsets) or 1
    row_lo = draw(st.integers(0, rows - 1))
    row_hi = draw(st.integers(row_lo, rows - 1))
    return rows, cols, n_nodes, block_size, dist, offsets, row_lo, row_hi, max_off


def build_case(rows, cols, n_nodes, block_size, dist, offsets, row_lo, row_hi, max_off):
    b = ProgramBuilder("geom")
    u = b.array("u", (rows, cols), dist=dist)
    v = b.array("v", (rows, cols), dist=dist)
    expr = None
    for off in offsets:
        term = u[S(row_lo, row_hi), I + off] * 1.0
        expr = term if expr is None else expr + term
    stmt = b.forall(max_off, cols - 1 - max_off, v[S(row_lo, row_hi), I], expr)
    prog = b.build()
    cfg = ClusterConfig(n_nodes=n_nodes, block_size=block_size,
                        page_size=max(block_size * 4, 512))
    mem, _ = _allocate(prog, cfg, HomePolicy.ALIGNED)
    inst = analyze_loop(stmt, prog, n_nodes).instantiate({})
    return prog, cfg, mem, inst


@given(geom=geometries(), bulk=st.booleans())
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_plan_structural_invariants(geom, bulk):
    prog, cfg, mem, inst = build_case(*geom)
    plan = plan_loop(inst, mem, bulk=bulk)
    if not plan.is_empty:
        check_plan(plan)

    sends = [op for st_ in plan.pre for op in st_ if isinstance(op, SendBlocks)]
    recvs = [op for st_ in plan.pre for op in st_ if isinstance(op, ReadyToRecv)]

    # Sends balance receives per destination.
    sent = {}
    for op in sends:
        assert op.node != op.dst
        sent[op.dst] = sent.get(op.dst, 0) + len(op.blocks)
    got = {op.node: op.count for op in recvs}
    assert sent == got

    # Controlled/boundary disjointness per receiver.
    for dst in range(cfg.n_nodes):
        c = set(plan.controlled.get(dst, np.empty(0)).tolist())
        e = set(plan.boundary.get(dst, np.empty(0)).tolist())
        assert not (c & e), (dst, c & e)

        # Controlled ∪ boundary covers exactly the receiver's non-owner
        # touched blocks.
        arr = mem.arrays["u"]
        touched = set()
        for aname, sec in inst.non_owner_reads[dst]:
            touched |= set(section_blocks(mem.arrays[aname], sec).tolist())
        assert c | e == touched, dst

        # Every controlled block is fully inside some contiguous run of a
        # non-owner section.
        runs = []
        for aname, sec in inst.non_owner_reads[dst]:
            runs.extend(section_byte_runs(mem.arrays[aname], sec))
        for blk in c:
            lo, hi = blk * cfg.block_size, (blk + 1) * cfg.block_size
            assert any(rlo <= lo and hi <= rhi for rlo, rhi in runs), (dst, blk)

    # Post-loop invalidations cover every controlled block.
    invalidated = {}
    for st_ in plan.post:
        for op in st_:
            if isinstance(op, ImplicitInvalidate):
                invalidated.setdefault(op.node, set()).update(op.blocks)
    for dst, blocks in plan.controlled.items():
        assert set(blocks.tolist()) <= invalidated.get(dst, set())


@given(geom=geometries())
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_rt_elim_plan_invariants(geom):
    prog, cfg, mem, inst = build_case(*geom)
    plan = plan_loop(inst, mem, rt_elim=True)
    for st_ in plan.pre:
        assert not any(isinstance(op, MkWritable) for op in st_)
    assert not any(
        isinstance(op, ImplicitInvalidate) for st_ in plan.post for op in st_
    )
    arr = mem.arrays["u"]
    for dst, blocks in plan.controlled.items():
        if len(blocks):
            assert arr.single_owner_blocks(blocks).all()
    if not plan.is_empty:
        check_plan(plan)


@given(geom=geometries())
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bulk_and_nonbulk_cover_same_blocks(geom):
    prog, cfg, mem, inst = build_case(*geom)
    p1 = plan_loop(inst, mem, bulk=True)
    p2 = plan_loop(inst, mem, bulk=False)
    c1 = {d: set(b.tolist()) for d, b in p1.controlled.items()}
    c2 = {d: set(b.tolist()) for d, b in p2.controlled.items()}
    assert c1 == c2
