"""Unit + property tests for the regular-section-descriptor algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sections import (
    Section,
    StridedInterval,
    SymSection,
    coalesce_points,
)
from repro.core.symbolic import Sym


# --------------------------------------------------------------------- #
# StridedInterval basics
# --------------------------------------------------------------------- #
class TestStridedIntervalBasics:
    def test_contiguous_members(self):
        si = StridedInterval(3, 7)
        assert list(si) == [3, 4, 5, 6, 7]
        assert len(si) == 5
        assert si.is_contiguous

    def test_strided_members(self):
        si = StridedInterval(1, 10, 3)
        assert list(si) == [1, 4, 7, 10]

    def test_hi_snaps_to_last_member(self):
        si = StridedInterval(0, 11, 4)
        assert si.hi == 8
        assert list(si) == [0, 4, 8]

    def test_empty_normalizes(self):
        si = StridedInterval(5, 3)
        assert si.is_empty and len(si) == 0 and list(si) == []

    def test_singleton_step_normalized(self):
        si = StridedInterval(4, 4, 7)
        assert si.step == 1 and list(si) == [4]

    def test_contains(self):
        si = StridedInterval(2, 14, 4)
        assert 6 in si and 7 not in si and 18 not in si

    def test_point_and_from_range(self):
        assert list(StridedInterval.point(9)) == [9]
        assert list(StridedInterval.from_range(range(2, 11, 3))) == [2, 5, 8]
        assert StridedInterval.from_range(range(0)).is_empty

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            StridedInterval(0, 10, 0)
        with pytest.raises(ValueError):
            StridedInterval.from_range(range(10, 0, -1))

    def test_shift_scale_clip(self):
        si = StridedInterval(0, 9, 3)
        assert list(si.shift(2)) == [2, 5, 8, 11]
        assert list(si.scale(2)) == [0, 6, 12, 18]
        assert list(si.clip(2, 7)) == [3, 6]
        assert si.clip(10, 20).is_empty


# --------------------------------------------------------------------- #
# intersection / difference, property-checked against set semantics
# --------------------------------------------------------------------- #
intervals = st.builds(
    StridedInterval,
    lo=st.integers(-30, 30),
    hi=st.integers(-30, 60),
    step=st.integers(1, 7),
)


class TestIntervalAlgebra:
    def test_intersect_contiguous(self):
        a = StridedInterval(0, 10)
        b = StridedInterval(5, 20)
        assert list(a.intersect(b)) == [5, 6, 7, 8, 9, 10]

    def test_intersect_disjoint(self):
        assert StridedInterval(0, 4).intersect(StridedInterval(5, 9)).is_empty

    def test_intersect_strides_crt(self):
        # {0,3,6,9,12} ∩ {0,4,8,12} = {0, 12}
        a = StridedInterval(0, 12, 3)
        b = StridedInterval(0, 12, 4)
        assert list(a.intersect(b)) == [0, 12]

    def test_intersect_incompatible_congruence(self):
        # evens vs odds
        a = StridedInterval(0, 20, 2)
        b = StridedInterval(1, 21, 2)
        assert a.intersect(b).is_empty

    def test_difference_middle_cut(self):
        a = StridedInterval(0, 9)
        pieces = a.difference(StridedInterval(3, 5))
        assert [list(p) for p in pieces] == [[0, 1, 2], [6, 7, 8, 9]]

    def test_difference_no_overlap(self):
        a = StridedInterval(0, 5)
        assert a.difference(StridedInterval(10, 20)) == [a]

    def test_difference_total(self):
        a = StridedInterval(0, 5)
        assert a.difference(StridedInterval(0, 5)) == []

    def test_difference_strided_congruent(self):
        a = StridedInterval(0, 20, 4)   # 0 4 8 12 16 20
        b = StridedInterval(8, 12, 4)
        pieces = a.difference(b)
        assert [list(p) for p in pieces] == [[0, 4], [16, 20]]

    def test_difference_mixed_strides(self):
        a = StridedInterval(0, 10)       # 0..10
        b = StridedInterval(0, 10, 2)    # evens
        got = sorted(v for p in a.difference(b) for v in p)
        assert got == [1, 3, 5, 7, 9]

    @given(a=intervals, b=intervals)
    @settings(max_examples=300)
    def test_intersect_matches_set_semantics(self, a, b):
        assert set(a.intersect(b)) == set(a) & set(b)

    @given(a=intervals, b=intervals)
    @settings(max_examples=300)
    def test_difference_matches_set_semantics(self, a, b):
        got = [v for p in a.difference(b) for v in p]
        assert sorted(got) == sorted(set(a) - set(b))
        assert len(got) == len(set(got))  # no duplicates across pieces

    @given(a=intervals, lo=st.integers(-40, 40), hi=st.integers(-40, 40))
    @settings(max_examples=200)
    def test_clip_matches_set_semantics(self, a, lo, hi):
        assert set(a.clip(lo, hi)) == {v for v in a if lo <= v <= hi}


class TestCoalescePoints:
    def test_empty(self):
        assert coalesce_points([]) == []

    def test_single_run(self):
        assert coalesce_points([1, 2, 3]) == [StridedInterval(1, 3)]

    def test_strided_run(self):
        assert coalesce_points([0, 5, 10]) == [StridedInterval(0, 10, 5)]

    def test_break_in_stride(self):
        got = coalesce_points([0, 1, 2, 10])
        assert [list(p) for p in got] == [[0, 1, 2], [10]]

    @given(st.lists(st.integers(0, 60), unique=True, min_size=0, max_size=25).map(sorted))
    @settings(max_examples=200)
    def test_roundtrip(self, points):
        got = [v for p in coalesce_points(points) for v in p]
        assert got == points


# --------------------------------------------------------------------- #
# Section
# --------------------------------------------------------------------- #
class TestSection:
    def test_count_and_rank(self):
        s = Section.of([(0, 9)], StridedInterval(0, 4))
        assert s.rank == 2 and s.count() == 50 and s.inner_count() == 10

    def test_empty_inner_dim_empties_section(self):
        s = Section.of([(5, 4)], StridedInterval(0, 4))
        assert s.is_empty and s.count() == 0

    def test_intersect(self):
        a = Section.of([(0, 9)], StridedInterval(0, 9))
        b = Section.of([(5, 15)], StridedInterval(5, 20))
        got = a.intersect(b)
        assert got.inner == ((5, 9),)
        assert list(got.last) == [5, 6, 7, 8, 9]

    def test_intersect_rank_mismatch(self):
        with pytest.raises(ValueError):
            Section.of([], StridedInterval(0, 4)).intersect(
                Section.of([(0, 1)], StridedInterval(0, 4))
            )

    def test_difference_last_keeps_inner(self):
        s = Section.of([(1, 8)], StridedInterval(0, 9))
        pieces = s.difference_last(StridedInterval(4, 6))
        assert all(p.inner == ((1, 8),) for p in pieces)
        cols = sorted(v for p in pieces for v in p.last)
        assert cols == [0, 1, 2, 3, 7, 8, 9]

    def test_covers(self):
        big = Section.of([(0, 9)], StridedInterval(0, 9))
        small = Section.of([(2, 5)], StridedInterval(3, 7))
        assert big.covers(small) and not small.covers(big)
        assert big.covers(Section.empty(2))

    def test_covers_respects_stride(self):
        evens = Section.of([], StridedInterval(0, 10, 2))
        assert not evens.covers(Section.of([], StridedInterval(0, 3)))
        assert evens.covers(Section.of([], StridedInterval(2, 6, 4)))
        assert evens.covers(Section.of([], StridedInterval(4, 4)))

    def test_columns(self):
        s = Section.of([(0, 1)], StridedInterval(2, 8, 3))
        assert list(s.columns()) == [2, 5, 8]


class TestSymSection:
    def test_instantiate(self):
        N = Sym("N")
        k = Sym("k")
        s = SymSection.of([(k + 1, N - 1)], last_lo=k + 1, last_hi=N - 1)
        got = s.instantiate({"N": 10, "k": 2})
        assert got.inner == ((3, 9),)
        assert list(got.last) == [3, 4, 5, 6, 7, 8, 9]

    def test_instantiate_empty_when_bounds_cross(self):
        N = Sym("N")
        s = SymSection.of([], last_lo=N, last_hi=5)
        assert s.instantiate({"N": 9}).is_empty

    def test_symbols(self):
        N, k = Sym("N"), Sym("k")
        s = SymSection.of([(0, N)], last_lo=k, last_hi=N - 1)
        assert s.symbols() == {"N", "k"}

    def test_strided_instantiation(self):
        P = Sym("P")
        s = SymSection.of([], last_lo=1, last_hi=P * 3, last_step=4)
        got = s.instantiate({"P": 4})
        assert list(got.last) == [1, 5, 9]
