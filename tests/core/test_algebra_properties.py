"""Algebraic property tests: Lin expressions and the section lattice."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sections import Section, StridedInterval
from repro.core.symbolic import Lin, Sym, as_lin

names = st.sampled_from(["N", "k", "p", "t"])
envs = st.fixed_dictionaries(
    {"N": st.integers(-50, 50), "k": st.integers(-50, 50),
     "p": st.integers(-50, 50), "t": st.integers(-50, 50)}
)


@st.composite
def lins(draw):
    e = Lin(draw(st.integers(-20, 20)))
    for _ in range(draw(st.integers(0, 3))):
        coeff = draw(st.integers(-5, 5))
        e = e + coeff * as_lin(Sym(draw(names)))
    return e


class TestLinLaws:
    @given(a=lins(), b=lins(), env=envs)
    @settings(max_examples=200)
    def test_addition_is_pointwise(self, a, b, env):
        assert (a + b).eval(env) == a.eval(env) + b.eval(env)

    @given(a=lins(), b=lins(), env=envs)
    @settings(max_examples=200)
    def test_subtraction_is_pointwise(self, a, b, env):
        assert (a - b).eval(env) == a.eval(env) - b.eval(env)

    @given(a=lins(), k=st.integers(-10, 10), env=envs)
    @settings(max_examples=200)
    def test_scaling_is_pointwise(self, a, k, env):
        assert (a * k).eval(env) == a.eval(env) * k

    @given(a=lins(), b=lins())
    @settings(max_examples=200)
    def test_addition_commutative_structurally(self, a, b):
        assert a + b == b + a
        assert hash(a + b) == hash(b + a)

    @given(a=lins(), b=lins(), c=lins())
    @settings(max_examples=200)
    def test_addition_associative_structurally(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(a=lins())
    @settings(max_examples=100)
    def test_additive_inverse(self, a):
        assert (a - a) == 0
        assert (a + (-a)).is_const

    @given(a=lins(), env=envs)
    @settings(max_examples=100)
    def test_substitute_total_equals_eval(self, a, env):
        assert a.substitute(env).const == a.eval(env)
        assert a.substitute(env).is_const


intervals = st.builds(
    StridedInterval,
    lo=st.integers(-20, 20),
    hi=st.integers(-20, 40),
    step=st.integers(1, 5),
)


class TestIntervalLattice:
    @given(a=intervals, b=intervals)
    @settings(max_examples=200)
    def test_intersection_commutative(self, a, b):
        assert set(a.intersect(b)) == set(b.intersect(a))

    @given(a=intervals, b=intervals, c=intervals)
    @settings(max_examples=200)
    def test_intersection_associative(self, a, b, c):
        lhs = a.intersect(b).intersect(c)
        rhs = a.intersect(b.intersect(c))
        assert set(lhs) == set(rhs)

    @given(a=intervals)
    @settings(max_examples=100)
    def test_intersection_idempotent(self, a):
        assert set(a.intersect(a)) == set(a)

    @given(a=intervals, b=intervals)
    @settings(max_examples=200)
    def test_difference_then_intersect_empty(self, a, b):
        for piece in a.difference(b):
            assert piece.intersect(b).is_empty

    @given(a=intervals, b=intervals)
    @settings(max_examples=200)
    def test_partition_property(self, a, b):
        kept = {v for piece in a.difference(b) for v in piece}
        cut = set(a.intersect(b))
        assert kept | cut == set(a)
        assert kept & cut == set()


sections = st.builds(
    lambda rlo, rhi, last: Section.of([(rlo, rhi)], last),
    rlo=st.integers(0, 10),
    rhi=st.integers(0, 15),
    last=intervals,
)


class TestSectionLattice:
    @given(a=sections, b=sections)
    @settings(max_examples=200)
    def test_intersect_commutative_on_counts(self, a, b):
        assert a.intersect(b).count() == b.intersect(a).count()

    @given(a=sections, b=sections)
    @settings(max_examples=200)
    def test_intersection_contained_in_both(self, a, b):
        got = a.intersect(b)
        assert a.covers(got) and b.covers(got)

    @given(a=sections)
    @settings(max_examples=100)
    def test_covers_reflexive(self, a):
        assert a.covers(a)

    @given(a=sections, b=intervals)
    @settings(max_examples=200)
    def test_difference_last_disjoint_from_cut(self, a, b):
        for piece in a.difference_last(b):
            assert piece.last.intersect(b).is_empty
