"""Shared fixtures for the serve-layer test suite."""

import pytest

from repro.serve import RunRequest
from repro.tempest.config import small_config


@pytest.fixture
def cfg():
    """Small 4-node geometry; keeps every cell sub-second."""
    return small_config()


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "cache")


def jacobi_request(config, **overrides):
    """The suite's workhorse cell: tiny registry-spec jacobi."""
    kwargs = dict(app="jacobi", params={"n": 32, "iters": 2}, config=config)
    kwargs.update(overrides)
    return RunRequest(**kwargs)
