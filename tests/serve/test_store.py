"""Crash-safety tests for the on-disk store.

The store's one inviolable property: a poisoned cache can cost time but
never correctness.  Every corruption mode — truncation (kill mid-write of
a non-atomic copy), bit rot, wrong magic, trailing garbage, a frame whose
digest checks but whose payload won't unpickle — must be detected on
read, quarantined, and answered with ``None`` so the caller recomputes.
"""

import pickle

import pytest

from repro.serve import ResultStore, ServeSession, results_equal
from repro.serve.store import _DIGEST_BYTES, _HEADER, _MAGIC
from repro.tempest.config import small_config

from tests.serve.conftest import jacobi_request


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


KEY = "ab" * 32
OTHER = "cd" * 32


class TestRoundtrip:
    def test_put_get(self, store):
        obj = {"stats": [1, 2, 3], "label": "x"}
        store.put(ResultStore.RESULTS, KEY, obj)
        assert store.get(ResultStore.RESULTS, KEY) == obj
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_missing_is_miss(self, store):
        assert store.get(ResultStore.RESULTS, KEY) is None
        assert store.stats.misses == 1 and store.stats.corrupt == 0

    def test_kinds_are_separate_namespaces(self, store):
        store.put(ResultStore.RESULTS, KEY, "result")
        store.put(ResultStore.PLANS, KEY, "plan")
        assert store.get(ResultStore.RESULTS, KEY) == "result"
        assert store.get(ResultStore.PLANS, KEY) == "plan"

    def test_put_overwrites(self, store):
        store.put(ResultStore.RESULTS, KEY, "old")
        store.put(ResultStore.RESULTS, KEY, "new")
        assert store.get(ResultStore.RESULTS, KEY) == "new"

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed"):
            store.get(ResultStore.RESULTS, "../../etc/passwd")
        with pytest.raises(ValueError):
            store.put(ResultStore.RESULTS, "", "x")

    def test_no_tmp_files_left_behind(self, store):
        store.put(ResultStore.RESULTS, KEY, list(range(1000)))
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file() and p.suffix != ".bin"
        ]
        assert leftovers == []


class TestCorruption:
    def _entry(self, store, obj="payload"):
        path = store.put(ResultStore.RESULTS, KEY, obj)
        return path, path.read_bytes()

    @pytest.mark.parametrize("cut", [0, 5, _HEADER - 1, _HEADER + 3, -1])
    def test_truncated_entry_quarantined_and_recomputable(self, store, cut):
        path, data = self._entry(store)
        path.write_bytes(data[:cut] if cut >= 0 else data[:-1])
        assert store.get(ResultStore.RESULTS, KEY) is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        assert len(store.quarantined()) == 1
        # Recompute-and-republish works over the quarantined slot.
        store.put(ResultStore.RESULTS, KEY, "fresh")
        assert store.get(ResultStore.RESULTS, KEY) == "fresh"

    def test_bit_flip_in_payload_detected(self, store):
        path, data = self._entry(store)
        flipped = bytearray(data)
        flipped[_HEADER + 2] ^= 0x40
        path.write_bytes(bytes(flipped))
        assert store.get(ResultStore.RESULTS, KEY) is None
        assert store.stats.corrupt == 1

    def test_bad_magic_detected(self, store):
        path, data = self._entry(store)
        path.write_bytes(b"NOTAMAGICXX\n" + data[len(_MAGIC):])
        assert store.get(ResultStore.RESULTS, KEY) is None

    def test_trailing_garbage_detected(self, store):
        path, data = self._entry(store)
        path.write_bytes(data + b"junk")
        assert store.get(ResultStore.RESULTS, KEY) is None

    def test_torn_concurrent_copy_detected(self, store):
        # Two interleaved half-frames — what a non-atomic concurrent write
        # would produce (the real writer can't, thanks to os.replace).
        path, data = self._entry(store)
        other = store.put(ResultStore.RESULTS, OTHER, "zzz").read_bytes()
        path.write_bytes(data[: len(data) // 2] + other[len(other) // 2 :])
        assert store.get(ResultStore.RESULTS, KEY) is None
        assert store.stats.corrupt == 1

    def test_valid_frame_bad_pickle_quarantined(self, store):
        import hashlib

        payload = b"this is not a pickle"
        frame = (
            _MAGIC
            + len(payload).to_bytes(8, "big")
            + payload
            + hashlib.sha256(payload).digest()
        )
        path = store._path(ResultStore.RESULTS, KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(frame)
        assert store.get(ResultStore.RESULTS, KEY) is None
        assert store.stats.corrupt == 1
        assert any("bad-pickle" in q.name for q in store.quarantined())

    def test_empty_file_detected(self, store):
        path, _ = self._entry(store)
        path.write_bytes(b"")
        assert store.get(ResultStore.RESULTS, KEY) is None


class TestPoisonedCacheEndToEnd:
    def test_corrupt_entry_recomputed_with_identical_result(self, store_dir):
        """The satellite's headline property: poisoning the cache never
        alters output — the entry is quarantined and recomputed to an
        exactly-equal RunResult."""
        req = jacobi_request(small_config())
        with ServeSession(cache_dir=store_dir) as sess:
            first = sess.run(req)
            [entry] = sess.store.entries(ResultStore.RESULTS)
        # Kill-mid-write: chop the published entry in half.
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        with ServeSession(cache_dir=store_dir) as sess2:
            second = sess2.run(req)
            assert second.source == "computed"  # not served from cache
            assert sess2.store.stats.corrupt == 1
            assert len(sess2.store.quarantined()) == 1
            # ...and the store healed: a third session gets a cache hit.
            with ServeSession(cache_dir=store_dir) as sess3:
                third = sess3.run(req)
        assert results_equal(first.result, second.result)
        assert results_equal(first.result, third.result)
        assert third.source == "cache"

    def test_corrupt_plan_entry_recomputed(self, store_dir):
        req = jacobi_request(small_config(), optimize=True)
        with ServeSession(cache_dir=store_dir) as sess:
            first = sess.run(req)
            [plan_entry] = sess.store.entries(ResultStore.PLANS)
        plan_entry.write_bytes(b"\x00" * 10)
        # Nuke the result entry too, so the run must rebuild the plan.
        for e in ServeSession(cache_dir=store_dir).store.entries(
            ResultStore.RESULTS
        ):
            e.unlink()
        with ServeSession(cache_dir=store_dir) as sess2:
            second = sess2.run(req)
            assert sess2.plans.built == 1
            assert sess2.store.stats.corrupt == 1
        assert results_equal(first.result, second.result)
