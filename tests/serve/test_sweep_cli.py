"""``repro sweep`` CLI: table/JSON output, exit codes, cache assertions.

Each sweep here is tiny (one app, 4 nodes, 1-2 cells) so the whole file
stays in the tier-1 budget; the CLI's exit-code contract is the subject:
0 ok, 2 usage, 3 hit rate below --min-hit-rate, 4 degraded cells,
5 --check-serial mismatch.
"""

import json

import pytest

import repro.serve.cli as sweep_cli
from repro.serve.cli import sweep_main
from repro.serve.request import RunRequest
from repro.tempest.config import ClusterConfig
from repro.tempest.faults import FaultConfig, PartitionScenario

_US = 1_000


def _sweep(*extra):
    """A 2-cell jacobi sweep (optimize off/on) on a 4-node cluster."""
    return ["jacobi", "--nodes", "4", "--axis", "optimize=off,on", *extra]


class TestUsageErrors:
    def test_unknown_axis_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            sweep_main(["jacobi", "--axis", "bogus=1,2"])
        assert e.value.code == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_axis_without_values_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            sweep_main(["jacobi", "--axis", "combine="])
        assert e.value.code == 2
        assert "needs =v1,v2" in capsys.readouterr().err

    def test_unknown_app_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            sweep_main(["hpl"])
        assert e.value.code == 2


class TestHappyPath:
    def test_table_json_and_summary(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = sweep_main(_sweep("--json", str(out)))
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 cells" in text
        assert "unopt n=4" in text and "opt n=4" in text
        assert "served 2 requests" in text
        payload = json.loads(out.read_text())
        assert len(payload["cells"]) == 2
        assert payload["stats"]["requests"] == 2
        assert payload["mismatches"] == 0
        assert all(c["completed"] for c in payload["cells"])
        assert all(len(c["key"]) == 64 for c in payload["cells"])

    def test_check_serial_clean(self, capsys):
        rc = sweep_main(_sweep("--check-serial"))
        assert rc == 0
        assert "check-serial: all 2 cells exactly equal" in capsys.readouterr().out


class TestCacheAssertions:
    def test_cold_run_below_min_hit_rate_exits_3(self, capsys):
        rc = sweep_main(_sweep("--min-hit-rate", "0.9"))
        assert rc == 3
        assert "below required" in capsys.readouterr().err

    def test_warm_rerun_meets_min_hit_rate(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert sweep_main(_sweep("--cache-dir", cache)) == 0
        rc = sweep_main(_sweep("--cache-dir", cache, "--min-hit-rate", "1.0"))
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 cached, 0 computed" in text
        assert "hit rate 100%" in text

    def test_no_cache_ignores_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert sweep_main(_sweep("--cache-dir", cache)) == 0
        rc = sweep_main(
            _sweep("--cache-dir", cache, "--no-cache", "--min-hit-rate", "0.5")
        )
        assert rc == 3  # everything recomputed: the cache was bypassed


class TestFailureExitCodes:
    def test_degraded_cell_exits_4(self, monkeypatch, capsys):
        # The axes cannot spell a partition, so substitute the expansion:
        # one never-healing cut, which parks degraded deterministically.
        cut = ClusterConfig(n_nodes=4).scaled(
            faults=FaultConfig(
                partitions=(
                    PartitionScenario(
                        "cut", frozenset({1}), t_start_ns=200 * _US,
                        duration_ns=None,
                    ),
                ),
                max_retries=3,
            )
        )
        req = RunRequest(app="jacobi", params={"n": 32, "iters": 2}, config=cut)
        monkeypatch.setattr(
            sweep_cli, "expand_matrix", lambda *a, **kw: [req]
        )
        rc = sweep_main(["jacobi"])
        assert rc == 4
        assert "DEGRADED" in capsys.readouterr().out

    def test_check_serial_mismatch_exits_5(self, monkeypatch, capsys):
        monkeypatch.setattr(sweep_cli, "results_equal", lambda a, b: False)
        rc = sweep_main(_sweep("--check-serial"))
        assert rc == 5
        assert "MISMATCH" in capsys.readouterr().err


class TestProgressLine:
    def test_progress_line_tracks_completion(self, capsys):
        rc = sweep_main(_sweep())
        assert rc == 0
        err = capsys.readouterr().err
        # The line rewrites in place; the final state shows all cells done.
        assert "\r" in err
        assert "2/2 done, 0 in flight" in err
        assert "2 computed" in err and "0 degraded" in err

    def test_quiet_suppresses_progress(self, capsys):
        rc = sweep_main(_sweep("--quiet"))
        assert rc == 0
        captured = capsys.readouterr()
        assert "done," not in captured.err
        assert "served 2 requests" in captured.out
