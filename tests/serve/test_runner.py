"""Behavioral tests of ServeSession: caching, dedup, pool, async, plans."""

import asyncio
import dataclasses

import pytest

from repro.apps import get_app
from repro.runtime.shmem import run_shmem
from repro.serve import (
    RunRequest,
    ServeSession,
    execute_request,
    results_equal,
)
from repro.tempest.config import small_config

from tests.serve.conftest import jacobi_request


class TestRequestValidation:
    def test_needs_exactly_one_program_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            RunRequest()
        with pytest.raises(ValueError, match="exactly one"):
            RunRequest(
                app="jacobi", program=get_app("jacobi").program(n=32, iters=2)
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunRequest(app="jacobi", backend="quantum")

    def test_params_accept_dict_or_tuple(self):
        a = RunRequest(app="jacobi", params={"n": 32, "iters": 2})
        b = RunRequest(app="jacobi", params=(("iters", 2), ("n", 32)))
        assert a.params == b.params == (("iters", 2), ("n", 32))


class TestInlineServing:
    def test_equal_to_direct_run(self, cfg):
        req = jacobi_request(cfg, optimize=True)
        direct = run_shmem(req.build_program(), cfg, optimize=True)
        with ServeSession() as sess:
            served = sess.run(req)
        assert served.source == "computed" and served.where == "inline"
        assert results_equal(direct, served.result)

    def test_no_cache_dir_always_computes(self, cfg):
        req = jacobi_request(cfg)
        with ServeSession() as sess:
            a, b = sess.run(req), sess.run(req)
        assert a.source == b.source == "computed"
        assert results_equal(a.result, b.result)

    def test_warm_cache_hit(self, cfg, store_dir):
        req = jacobi_request(cfg)
        with ServeSession(cache_dir=store_dir) as sess:
            cold = sess.run(req)
            warm = sess.run(req)
            assert sess.stats()["hit_rate"] == 0.5
        assert cold.source == "computed" and warm.source == "cache"
        assert results_equal(cold.result, warm.result)

    def test_cache_persists_across_sessions(self, cfg, store_dir):
        req = jacobi_request(cfg)
        with ServeSession(cache_dir=store_dir) as sess:
            cold = sess.run(req)
        with ServeSession(cache_dir=store_dir) as sess2:
            warm = sess2.run(req)
        assert warm.source == "cache"
        assert results_equal(cold.result, warm.result)

    def test_provenance_never_pollutes_run_result(self, cfg, store_dir):
        """Cache metadata lives on ServeResult; RunResult must stay
        dataclass-equal to a direct run even after a round trip."""
        req = jacobi_request(cfg)
        with ServeSession(cache_dir=store_dir) as sess:
            sess.run(req)
            warm = sess.run(req)
        direct = run_shmem(req.build_program(), cfg)
        assert results_equal(direct, warm.result)
        assert "cache" not in warm.result.extra
        assert warm.key and warm.source == "cache"


class TestPlanMemoization:
    def test_wire_variants_share_one_plan(self, cfg):
        from repro.tempest.faults import FaultConfig

        reqs = [
            jacobi_request(cfg, optimize=True),
            jacobi_request(
                cfg.scaled(faults=FaultConfig(drop_prob=0.05, seed=1)),
                optimize=True,
            ),
            jacobi_request(
                cfg.scaled(faults=FaultConfig(drop_prob=0.05, seed=2)),
                optimize=True,
            ),
        ]
        with ServeSession() as sess:
            sess.run_batch(reqs)
            stats = sess.stats()
        assert stats["plans_built"] == 1
        assert stats["plan_memo_hits"] == 2

    def test_plan_disk_cache_across_sessions(self, cfg, store_dir):
        req = jacobi_request(cfg, optimize=True)
        with ServeSession(cache_dir=store_dir) as sess:
            sess.run(req)
            assert sess.plans.built == 1
        # New session, result entries wiped: the plan comes from disk.
        with ServeSession(cache_dir=store_dir) as sess2:
            for e in sess2.store.entries(sess2.store.RESULTS):
                e.unlink()
            sess2.run(req)
            assert sess2.plans.built == 0
            assert sess2.plans.disk_hits == 1

    def test_memo_lru_eviction(self, cfg):
        sizes = [16, 24, 32, 40, 48]
        reqs = [
            RunRequest(app="jacobi", params={"n": n, "iters": 1}, config=cfg)
            for n in sizes
        ]
        with ServeSession(plan_memo_size=2) as sess:
            sess.run_batch(reqs)
            assert len(sess.plans._memo) == 2
            # Re-running the oldest rebuilds (it was evicted)...
            sess.run(reqs[0])
            assert sess.plans.built == len(sizes) + 1
            # ...while the newest is still memoized.
            sess.run(reqs[0])
            assert sess.plans.memo_hits == 1


class TestPool:
    def test_pool_results_equal_inline(self, cfg):
        reqs = [
            jacobi_request(cfg),
            jacobi_request(cfg, optimize=True),
        ]
        with ServeSession() as inline_sess:
            inline = inline_sess.run_batch(reqs)
        with ServeSession(jobs=2) as pool_sess:
            pooled = pool_sess.run_batch(reqs)
        assert all(p.where == "pool" for p in pooled)
        for i, p in zip(inline, pooled):
            assert results_equal(i.result, p.result)

    def test_inflight_dedup_on_pool(self, cfg):
        req = jacobi_request(cfg)
        with ServeSession(jobs=2) as sess:
            futures = [sess.submit(req) for _ in range(3)]
            served = [f.result() for f in futures]
            stats = sess.stats()
        assert stats["computed"] == 1 and stats["deduped"] == 2
        sources = sorted(s.source for s in served)
        assert sources == ["computed", "deduped", "deduped"]
        assert results_equal(served[0].result, served[1].result)
        assert results_equal(served[0].result, served[2].result)

    def test_inline_program_falls_back_in_process(self, cfg):
        prog = get_app("jacobi").program(n=32, iters=2)
        req = RunRequest(program=prog, config=cfg)
        assert not req.picklable
        with ServeSession(jobs=2) as sess:
            served = sess.run(req)
        assert served.where == "inline"
        direct = run_shmem(prog, cfg)
        assert results_equal(direct, served.result)

    def test_workers_publish_to_shared_store(self, cfg, store_dir):
        req = jacobi_request(cfg)
        with ServeSession(jobs=2, cache_dir=store_dir) as sess:
            sess.run(req)
        # A fresh serial session reads what the worker wrote.
        with ServeSession(cache_dir=store_dir) as sess2:
            warm = sess2.run(req)
        assert warm.source == "cache"


class TestBatchAndAsync:
    def test_run_batch_preserves_order_and_mixes_backends(self, cfg):
        reqs = [
            jacobi_request(cfg, backend="uniproc"),
            jacobi_request(cfg),
            jacobi_request(cfg, backend="msgpass"),
        ]
        with ServeSession() as sess:
            served = sess.run_batch(reqs)
        assert [s.result.backend for s in served] == [
            "uniproc", "shmem", "msgpass",
        ]
        for req, s in zip(reqs, served):
            assert results_equal(execute_request(req), s.result)

    def test_async_gather(self, cfg, store_dir):
        reqs = [jacobi_request(cfg), jacobi_request(cfg, optimize=True)]
        with ServeSession(jobs=2, cache_dir=store_dir) as sess:
            cold = asyncio.run(sess.gather(reqs))
            warm = asyncio.run(sess.gather(reqs))
        assert [s.source for s in cold] == ["computed", "computed"]
        assert [s.source for s in warm] == ["cache", "cache"]
        for c, w in zip(cold, warm):
            assert results_equal(c.result, w.result)

    def test_submit_propagates_compute_errors(self, cfg):
        req = dataclasses.replace(
            jacobi_request(cfg), optimize=True, protocol="update"
        )
        with ServeSession() as sess:
            with pytest.raises(ValueError, match="invalidate"):
                sess.submit(req).result()
        # The failed key is not stuck in the in-flight table.
        assert sess._inflight == {}
