"""``repro diff`` CLI: cross-run regression attribution over served cells.

Contract under test: a self-diff is all-zero; a real diff names the cost
classes accounting for the delta with class deltas summing exactly to
the elapsed delta; pointing ``--cache-dir`` at a ``profile=on`` sweep's
cache serves both cells warm (the CI recipe).
"""

import json

import pytest

from repro.serve.cli import diff_main, sweep_main


def _diff(cell_a, cell_b, *extra):
    return ["jacobi", cell_a, cell_b, "--nodes", "4", *extra]


class TestUsageErrors:
    def test_unknown_axis_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            diff_main(_diff("bogus=1", "-"))
        assert e.value.code == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_multi_valued_axis_exits_2(self, capsys):
        # Commas separate settings in a cell spec, so a sweep-style
        # multi-value axis parses as a second (unknown) setting.
        with pytest.raises(SystemExit) as e:
            diff_main(_diff("optimize=off,on", "-"))
        assert e.value.code == 2
        assert "unknown axis" in capsys.readouterr().err


class TestSelfDiff:
    def test_self_diff_is_all_zero(self, tmp_path, capsys):
        out = tmp_path / "diff.json"
        rc = diff_main(_diff("-", "-", "--json", str(out)))
        assert rc == 0
        text = capsys.readouterr().out
        assert "delta=+0.000 ms" in text
        assert "runs are identical" in text
        payload = json.loads(out.read_text())
        d = payload["diff"]
        assert d["elapsed_ns"]["delta"] == 0
        assert all(v["delta"] == 0 for v in d["classes"].values())
        assert all(p["delta"] == 0 for p in d["phases"])
        # Identical cellspecs share one key: the second serve deduped it.
        assert payload["a"]["key"] == payload["b"]["key"]


class TestRealDiff:
    def test_attributes_delta_to_cost_classes(self, tmp_path, capsys):
        out = tmp_path / "diff.json"
        rc = diff_main(
            _diff("drop=0", "drop=0.05,seed=3", "--json", str(out))
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "attribution:" in text
        assert "critical-path cost classes" in text
        d = json.loads(out.read_text())["diff"]
        delta = d["elapsed_ns"]["delta"]
        assert delta != 0
        assert sum(v["delta"] for v in d["classes"].values()) == delta
        assert sum(n["delta"] for n in d["nodes"]) == delta

    def test_warm_hits_a_profiled_sweep_cache(self, tmp_path, capsys):
        """The CI recipe: sweep with profile=on, then diff the same cells."""
        cache = str(tmp_path / "cache")
        rc = sweep_main([
            "jacobi", "--nodes", "4", "--axis", "optimize=off,on",
            "--axis", "profile=on", "--cache-dir", cache, "--quiet",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = diff_main(
            _diff("optimize=off", "optimize=on", "--cache-dir", cache)
        )
        assert rc == 0
        text = capsys.readouterr().out
        # Both cells came from the sweep's cache, not recomputation.
        assert text.count("(cache)") == 2
