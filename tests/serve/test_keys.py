"""Property-based and example tests of the cache-key contract.

The contract (docs/serve.md): keys are deterministic across processes;
invariant under spelling differences that cannot change the result (field
order, default-vs-explicit values, overlay tuple order, app-name vs
inline program); and *distinct* for any input difference that can change
the result (any config field, program content, initializer data, the
code-version salt).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.serve import RunRequest, canonical, fingerprint, plan_key, request_key
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig, small_config
from repro.tempest.faults import (
    CrashScenario,
    FaultConfig,
    LinkFaultConfig,
    PartitionScenario,
)

from tests.serve.conftest import jacobi_request


# --------------------------------------------------------------------- #
# determinism and spelling-invariance
# --------------------------------------------------------------------- #
class TestInvariance:
    def test_key_deterministic_across_calls(self):
        cfg = small_config()
        a = request_key(jacobi_request(cfg))
        b = request_key(jacobi_request(cfg))
        assert a == b and len(a) == 64

    def test_default_vs_explicit_config_values(self):
        base = ClusterConfig()
        explicit = ClusterConfig(
            n_nodes=base.n_nodes,
            faults=FaultConfig(drop_prob=0.0, seed=0),
            combine=CombineConfig(enabled=False),
            switch=SwitchConfig(enabled=False),
        )
        assert request_key(jacobi_request(base)) == request_key(
            jacobi_request(explicit)
        )

    def test_param_order_invariance(self):
        cfg = small_config()
        a = RunRequest(app="jacobi", params={"n": 32, "iters": 2}, config=cfg)
        b = RunRequest(app="jacobi", params={"iters": 2, "n": 32}, config=cfg)
        assert request_key(a) == request_key(b)

    def test_app_name_vs_inline_program_share_key(self):
        cfg = small_config()
        by_name = jacobi_request(cfg)
        inline = RunRequest(
            program=get_app("jacobi").program(n=32, iters=2), config=cfg
        )
        assert request_key(by_name) == request_key(inline)

    def test_link_fault_overlay_order_invariance(self):
        cfg = small_config()
        lf1 = LinkFaultConfig(0, 1, drop_prob=0.2)
        lf2 = LinkFaultConfig(2, 3, drop_prob=0.4)
        a = cfg.scaled(faults=FaultConfig(drop_prob=0.01, link_faults=(lf1, lf2)))
        b = cfg.scaled(faults=FaultConfig(drop_prob=0.01, link_faults=(lf2, lf1)))
        assert request_key(jacobi_request(a)) == request_key(jacobi_request(b))

    def test_partition_order_invariance(self):
        cfg = small_config()
        p1 = PartitionScenario("a", frozenset({1}), t_start_ns=100, duration_ns=500)
        p2 = PartitionScenario("b", frozenset({2}), t_start_ns=900, duration_ns=500)
        a = cfg.scaled(faults=FaultConfig(partitions=(p1, p2)))
        b = cfg.scaled(faults=FaultConfig(partitions=(p2, p1)))
        assert request_key(jacobi_request(a)) == request_key(jacobi_request(b))

    @given(st.permutations(["n", "iters"]))
    @settings(max_examples=10, deadline=None)
    def test_canonical_dict_insertion_order(self, order):
        values = {"n": 32, "iters": 2}
        shuffled = {k: values[k] for k in order}
        assert fingerprint(shuffled) == fingerprint({"n": 32, "iters": 2})


# --------------------------------------------------------------------- #
# distinctness: anything that can change the result changes the key
# --------------------------------------------------------------------- #
class TestDistinctness:
    def test_salt_changes_key(self):
        req = jacobi_request(small_config())
        assert request_key(req, salt="repro-serve/1") != request_key(
            req, salt="repro-serve/2"
        )

    @pytest.mark.parametrize(
        "faults",
        [
            FaultConfig(drop_prob=0.05, seed=1),
            FaultConfig(drop_prob=0.05, seed=2),
            FaultConfig(dup_prob=0.05),
            FaultConfig(jitter_ns=1000),
            FaultConfig(drop_prob=0.05, adaptive_rto=True),
            FaultConfig(link_faults=(LinkFaultConfig(0, 1, drop_prob=0.3),)),
            FaultConfig(link_faults=(LinkFaultConfig(0, 1, drop_prob=0.31),)),
            FaultConfig(link_faults=(LinkFaultConfig(1, 0, drop_prob=0.3),)),
            FaultConfig(partitions=(PartitionScenario("p", frozenset({1})),)),
            FaultConfig(
                partitions=(
                    PartitionScenario(
                        "p", frozenset({1}), t_start_ns=100, duration_ns=500
                    ),
                )
            ),
            FaultConfig(
                partitions=(
                    PartitionScenario(
                        "p", frozenset({1}), t_start_ns=100, duration_ns=501
                    ),
                )
            ),
            FaultConfig(crashes=(CrashScenario(1, 1000),)),
            FaultConfig(crashes=(CrashScenario(1, 1000, 500),), checkpoint_every=1),
        ],
    )
    def test_distinct_fault_configs_never_collide(self, faults):
        cfg = small_config()
        base_key = request_key(jacobi_request(cfg))
        faulty_key = request_key(jacobi_request(cfg.scaled(faults=faults)))
        assert faulty_key != base_key

    def test_all_fault_variants_mutually_distinct(self):
        cfg = small_config()
        variants = [
            FaultConfig(),
            FaultConfig(drop_prob=0.05, seed=1),
            FaultConfig(drop_prob=0.05, seed=2),
            FaultConfig(link_faults=(LinkFaultConfig(0, 1, drop_prob=0.3),)),
            FaultConfig(link_faults=(LinkFaultConfig(1, 0, drop_prob=0.3),)),
            FaultConfig(partitions=(PartitionScenario("p", frozenset({1})),)),
            FaultConfig(
                partitions=(
                    PartitionScenario(
                        "p", frozenset({1}), t_start_ns=0, duration_ns=500
                    ),
                )
            ),
        ]
        keys = [
            request_key(jacobi_request(cfg.scaled(faults=f))) for f in variants
        ]
        assert len(set(keys)) == len(keys)

    @given(
        st.sampled_from(
            ["n_nodes", "block_size", "page_size", "compute_ns_per_unit"]
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_geometry_field_perturbation_changes_key(self, field):
        cfg = small_config()
        bumped = cfg.scaled(**{field: getattr(cfg, field) * 2})
        assert request_key(jacobi_request(cfg)) != request_key(
            jacobi_request(bumped)
        )

    @pytest.mark.parametrize(
        "override",
        [
            dict(optimize=True),
            dict(optimize=True, bulk=False),
            dict(optimize=True, rt_elim=True),
            dict(protocol="update"),
            dict(backend="uniproc"),
            dict(backend="msgpass"),
        ],
    )
    def test_run_options_change_key(self, override):
        cfg = small_config()
        assert request_key(jacobi_request(cfg)) != request_key(
            jacobi_request(cfg, **override)
        )

    def test_program_param_changes_key(self):
        cfg = small_config()
        a = jacobi_request(cfg)
        b = RunRequest(app="jacobi", params={"n": 48, "iters": 2}, config=cfg)
        assert request_key(a) != request_key(b)

    def test_initializer_data_changes_key(self):
        def build(value):
            b = ProgramBuilder("initprog")
            arr = b.array("a", (16, 16), init=lambda shape: np.full(shape, value))
            b.forall(0, 15, arr[S(0, 15), I], arr[S(0, 15), I] + 1.0)
            return b.build()

        cfg = small_config()
        a = RunRequest(program=build(1.0), config=cfg)
        b = RunRequest(program=build(2.0), config=cfg)
        assert request_key(a) != request_key(b)


# --------------------------------------------------------------------- #
# plan keys: coarse over the wire, fine over the geometry
# --------------------------------------------------------------------- #
class TestPlanKey:
    def test_invariant_under_wire_config(self):
        cfg = small_config()
        base = plan_key(jacobi_request(cfg))
        faulty = plan_key(
            jacobi_request(cfg.scaled(faults=FaultConfig(drop_prob=0.1, seed=3)))
        )
        combined = plan_key(
            jacobi_request(
                cfg.scaled(combine=dataclasses.replace(CombineConfig(), enabled=True))
            )
        )
        switched = plan_key(
            jacobi_request(
                cfg.scaled(switch=dataclasses.replace(SwitchConfig(), enabled=True))
            )
        )
        assert base == faulty == combined == switched

    def test_changes_with_build_options_and_geometry(self):
        cfg = small_config()
        base = plan_key(jacobi_request(cfg))
        assert base != plan_key(jacobi_request(cfg, optimize=True))
        assert base != plan_key(jacobi_request(cfg.scaled(n_nodes=8)))


# --------------------------------------------------------------------- #
# canonicalizer edge cases
# --------------------------------------------------------------------- #
class TestCanonical:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical(object())

    def test_ndarray_content_addressed(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.T.copy())
        b = a.copy()
        b[0, 0] += 1e-12
        assert fingerprint(a) != fingerprint(b)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=50, deadline=None)
    def test_float_roundtrip_exact(self, x):
        assert fingerprint(x) == fingerprint(float(repr(x)))


# --------------------------------------------------------------------- #
# code-version salt rollover
# --------------------------------------------------------------------- #
class TestSaltRollover:
    """The engine rewrite (PR 9) bumped CODE_VERSION: entries cached under
    the previous salt must be unreachable under the current one."""

    OLD_SALT = "repro-serve/1"

    def test_salt_was_bumped(self):
        from repro.serve.keys import CODE_VERSION

        assert CODE_VERSION != self.OLD_SALT

    def test_old_salt_store_yields_zero_hits(self, tmp_path):
        from repro.serve.keys import CODE_VERSION
        from repro.serve.store import ResultStore

        store = ResultStore(tmp_path / "store")
        cfg = small_config()
        requests = [
            jacobi_request(cfg),
            jacobi_request(ClusterConfig(n_nodes=4)),
        ]
        # Populate the store exactly as a pre-bump build would have.
        for req in requests:
            store.put(
                ResultStore.RESULTS,
                request_key(req, salt=self.OLD_SALT),
                {"stale": True},
            )
        # Every current-salt lookup must miss: stale engine results are
        # never served, no cache deletion required.
        for req in requests:
            assert store.get(ResultStore.RESULTS, request_key(req)) is None
        assert store.stats.hits == 0
        assert store.stats.misses == len(requests)
        # The old entries are still present on disk (the rollover is an
        # invalidation by unreachability, not a purge)...
        for req in requests:
            assert store.contains(
                ResultStore.RESULTS, request_key(req, salt=self.OLD_SALT)
            )
        # ...and explicitly keying with the current salt round-trips.
        assert request_key(requests[0]) == request_key(
            requests[0], salt=CODE_VERSION
        )
