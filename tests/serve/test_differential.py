"""Differential golden-equality harness: serve == direct, always.

Every cell of a faults x combine x switch x crash sample matrix is run
three ways — direct in-process ``run_shmem``, serve cold, serve warm
(cache round trip) — and must be exactly dataclass-equal, including the
degraded (``completed=False``) cells.  A final pool test runs the whole
matrix through worker processes and compares again.
"""

import dataclasses
import os

import pytest

from repro.runtime.msgpass import run_msgpass
from repro.runtime.shmem import run_shmem
from repro.runtime.uniproc import run_uniproc
from repro.serve import (
    RunRequest,
    ServeSession,
    assert_results_equal,
    results_equal,
)
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.faults import (
    CrashScenario,
    FaultConfig,
    PartitionScenario,
    _US,
)

CFG = ClusterConfig(n_nodes=4)


def _faults(**kw):
    return CFG.scaled(faults=FaultConfig(**kw))


def _cut(dur_us, **kw):
    return CFG.scaled(
        faults=FaultConfig(
            partitions=(
                PartitionScenario(
                    "cut",
                    frozenset({1}),
                    t_start_ns=200 * _US,
                    duration_ns=None if dur_us is None else dur_us * _US,
                ),
            ),
            **kw,
        )
    )


def _crash(restart_us=None, **kw):
    restart = None if restart_us is None else restart_us * _US
    return CFG.scaled(
        faults=FaultConfig(
            crashes=(CrashScenario(2, 3_000 * _US, restart),), **kw
        )
    )


#: (id, config, request overrides, expect_completed)
MATRIX = [
    ("clean-unopt", CFG, {}, True),
    ("clean-opt-bulk", CFG, dict(optimize=True), True),
    ("clean-opt-rtelim", CFG, dict(optimize=True, rt_elim=True), True),
    ("update-protocol", CFG, dict(protocol="update"), True),
    (
        "combine",
        CFG.scaled(combine=dataclasses.replace(CombineConfig(), enabled=True)),
        dict(optimize=True),
        True,
    ),
    (
        "switch",
        CFG.scaled(switch=dataclasses.replace(SwitchConfig(), enabled=True)),
        dict(optimize=True),
        True,
    ),
    ("fault-storm", _faults(drop_prob=0.08, dup_prob=0.02, seed=11), {}, True),
    (
        "fault-storm-adaptive",
        _faults(drop_prob=0.08, seed=11, adaptive_rto=True),
        dict(optimize=True),
        True,
    ),
    (
        "faults-combine-switch",
        _faults(drop_prob=0.05, seed=3)
        .scaled(combine=dataclasses.replace(CombineConfig(), enabled=True))
        .scaled(switch=dataclasses.replace(SwitchConfig(), enabled=True)),
        dict(optimize=True),
        True,
    ),
    ("healed-partition", _cut(2_500, max_retries=6), {}, True),
    ("never-heal-degraded", _cut(None, max_retries=3), {}, False),
    (
        "crash-checkpoint-restart",
        _crash(restart_us=500, checkpoint_every=1),
        dict(optimize=True),
        True,
    ),
    ("crash-never-degraded", _crash(), dict(optimize=True), False),
]

IDS = [m[0] for m in MATRIX]


def _request(config, overrides):
    return RunRequest(
        app="jacobi", params={"n": 32, "iters": 2}, config=config, **overrides
    )


def _direct(req: RunRequest):
    prog = req.build_program()
    if req.backend == "uniproc":
        return run_uniproc(prog, req.config)
    if req.backend == "msgpass":
        return run_msgpass(prog, req.config)
    return run_shmem(
        prog,
        req.config,
        optimize=req.optimize,
        bulk=req.bulk,
        rt_elim=req.rt_elim,
        pre=req.pre,
        advisory=req.advisory,
        protocol=req.protocol,
    )


@pytest.mark.parametrize("case_id,config,overrides,completed", MATRIX, ids=IDS)
def test_serve_matches_direct_cold_and_warm(
    case_id, config, overrides, completed, tmp_path
):
    req = _request(config, overrides)
    direct = _direct(req)
    assert direct.completed is completed
    with ServeSession(cache_dir=str(tmp_path / "c")) as sess:
        cold = sess.run(req)
        warm = sess.run(req)
    assert cold.source == "computed" and warm.source == "cache"
    assert_results_equal(direct, cold.result, f"{case_id} cold")
    assert_results_equal(direct, warm.result, f"{case_id} warm")


def test_degraded_runs_are_cached_not_retried(tmp_path):
    """A never-healing partition is a deterministic outcome of its key —
    the cache serves it rather than re-suffering the timeout."""
    req = _request(_cut(None, max_retries=3), {})
    with ServeSession(cache_dir=str(tmp_path / "c")) as sess:
        cold = sess.run(req)
        warm = sess.run(req)
    assert cold.result.completed is False
    assert warm.source == "cache"
    assert results_equal(cold.result, warm.result)
    assert warm.result.extra["failure"]["unreachable_nodes"] == [1]


@pytest.mark.parametrize("backend", ["uniproc", "msgpass"])
def test_other_backends_match_direct(backend, tmp_path):
    req = _request(CFG, dict(backend=backend))
    direct = _direct(req)
    with ServeSession(cache_dir=str(tmp_path / "c")) as sess:
        cold = sess.run(req)
        warm = sess.run(req)
    assert_results_equal(direct, cold.result, f"{backend} cold")
    assert_results_equal(direct, warm.result, f"{backend} warm")


def test_full_matrix_through_pool_matches_serial():
    """The acceptance-criteria property at test scale: the whole sample
    matrix fanned across worker processes equals serial in-process runs,
    cell for cell — degraded cells included."""
    jobs = min(4, max(2, os.cpu_count() or 1))
    reqs = [_request(config, overrides) for _, config, overrides, _ in MATRIX]
    with ServeSession(jobs=jobs) as sess:
        pooled = sess.run_batch(reqs)
    for (case_id, _, _, completed), served in zip(MATRIX, pooled):
        assert served.result.completed is completed, case_id
        assert_results_equal(_direct(served.request), served.result, case_id)
