"""Tests for subroutines and inlining (the paper's interprocedural gap)."""

import numpy as np
import pytest

from repro.hpf.ast import ParallelAssign, SeqLoop
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.hpf.procedures import CallStmt, SubroutineDef, SubroutineError, inline_calls
from repro.runtime import run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig


def sweep_builder(n=64):
    b = ProgramBuilder("p")
    u = b.array("u", (n, n), init=lambda s: np.ones(s))
    w = b.array("w", (n, n))
    with b.subroutine("sweep", src=(n, n), dst=(n, n)) as (s_, d_):
        b.forall(
            1, n - 2,
            d_[S(1, n - 2), I],
            (s_[S(1, n - 2), I - 1] + s_[S(1, n - 2), I + 1]) * 0.5,
            label="body",
        )
    return b, u, w


class TestInlining:
    def test_call_expands_with_substituted_names(self):
        b, u, w = sweep_builder()
        b.call("sweep", "u", "w")
        prog = b.build()
        stmt = prog.body[0]
        assert isinstance(stmt, ParallelAssign)
        assert stmt.lhs.array == "w"
        assert all(r.array == "u" for r in stmt.rhs.refs())
        assert stmt.label == "sweep(u,w).body"

    def test_calls_inside_seq_loops_expand(self):
        b, u, w = sweep_builder()
        with b.timesteps(3):
            b.call("sweep", "u", "w")
            b.call("sweep", "w", "u")
        prog = b.build()
        loop = prog.body[0]
        assert isinstance(loop, SeqLoop)
        assert [s.lhs.array for s in loop.body] == ["w", "u"]

    def test_handles_accepted_as_actuals(self):
        b, u, w = sweep_builder()
        b.call("sweep", u, w)
        prog = b.build()
        assert prog.body[0].lhs.array == "w"

    def test_nested_subroutine_calls(self):
        n = 32
        b = ProgramBuilder("p")
        u = b.array("u", (n, n))
        w = b.array("w", (n, n))
        with b.subroutine("copy", src=(n, n), dst=(n, n)) as (s_, d_):
            b.forall(0, n - 1, d_[S(0, n - 1), I], s_[S(0, n - 1), I])
        with b.subroutine("double_copy", a=(n, n), bb=(n, n)) as (x, y):
            b.call("copy", "a", "bb")
            b.call("copy", "bb", "a")
        b.call("double_copy", "u", "w")
        prog = b.build()
        assert [s.lhs.array for s in prog.body] == ["w", "u"]

    def test_interprocedural_analysis_just_works(self):
        # The paper's gap: after inlining, PRE sees across call boundaries.
        from repro.core.pre_static import analyze_redundancy

        n = 64
        b = ProgramBuilder("p")
        coeff = b.array("coeff", (n, n))
        x = b.array("x", (n, n))
        b.forall(0, n - 1, coeff[S(0, n - 1), I], 2.0, label="init")
        with b.subroutine("apply", c=(n, n), v=(n, n)) as (c_, v_):
            b.forall(
                1, n - 1,
                v_[S(0, n - 1), I],
                v_[S(0, n - 1), I] + c_[S(0, n - 1), I - 1],
                label="apply",
            )
        with b.timesteps(3):
            b.call("apply", "coeff", "x")
        prog = b.build()
        info = analyze_redundancy(prog, 4)
        # coeff's halo, read inside the subroutine, is steady-state
        # redundant — visible because the call was inlined.
        assert any("coeff" in arrays for arrays in info.redundant.values())

    def test_numerics_match_hand_inlined_version(self):
        cfg = ClusterConfig(n_nodes=4)
        b, u, w = sweep_builder()
        with b.timesteps(2):
            b.call("sweep", "u", "w")
            b.call("sweep", "w", "u")
        with_subs = b.build()

        n = 64
        b2 = ProgramBuilder("p")
        u2 = b2.array("u", (n, n), init=lambda s: np.ones(s))
        w2 = b2.array("w", (n, n))
        with b2.timesteps(2):
            b2.forall(1, n - 2, w2[S(1, n - 2), I],
                      (u2[S(1, n - 2), I - 1] + u2[S(1, n - 2), I + 1]) * 0.5)
            b2.forall(1, n - 2, u2[S(1, n - 2), I],
                      (w2[S(1, n - 2), I - 1] + w2[S(1, n - 2), I + 1]) * 0.5)
        by_hand = b2.build()

        r1 = run_shmem(with_subs, cfg, optimize=True)
        r2 = run_uniproc(by_hand, cfg)
        np.testing.assert_allclose(r1.arrays["u"], r2.arrays["u"])
        np.testing.assert_allclose(r1.arrays["w"], r2.arrays["w"])


class TestValidation:
    def test_undefined_subroutine(self):
        b, u, w = sweep_builder()
        b.call("smoothe", "u", "w")  # typo
        with pytest.raises(SubroutineError, match="undefined"):
            b.build()

    def test_arity_mismatch(self):
        b, u, w = sweep_builder()
        b.call("sweep", "u")
        with pytest.raises(SubroutineError, match="expects 2"):
            b.build()

    def test_aliasing_rejected(self):
        b, u, w = sweep_builder()
        b.call("sweep", "u", "u")
        with pytest.raises(SubroutineError, match="aliased"):
            b.build()

    def test_undeclared_actual(self):
        b, u, w = sweep_builder()
        b.call("sweep", "u", "ghost")
        with pytest.raises(SubroutineError, match="not a declared array"):
            b.build()

    def test_shape_conformance_enforced(self):
        b, u, w = sweep_builder(n=64)
        small = b.array("small", (32, 32))
        b.call("sweep", "u", "small")
        with pytest.raises(SubroutineError, match="conform"):
            b.build()

    def test_distribution_conformance_enforced(self):
        n = 64
        b = ProgramBuilder("p")
        u = b.array("u", (n, n))
        c = b.array("c", (n, n), dist="cyclic")
        with b.subroutine("f", a=((n, n), "block")) as (a_,):
            b.forall(0, n - 1, a_[S(0, n - 1), I], 1.0)
        b.call("f", "c")
        with pytest.raises(SubroutineError, match="conform"):
            b.build()

    def test_formal_shadowing_declared_array_rejected(self):
        b = ProgramBuilder("p")
        b.array("u", (8, 8))
        with pytest.raises(SubroutineError, match="shadows"):
            with b.subroutine("f", u=(8, 8)):
                pass

    def test_duplicate_subroutine_rejected(self):
        b, u, w = sweep_builder()
        with pytest.raises(SubroutineError, match="already defined"):
            with b.subroutine("sweep", a=(8, 8)):
                pass

    def test_recursion_detected(self):
        defs = {
            "a": SubroutineDef("a", ("x",), (CallStmt("b", ("x",)),)),
            "b": SubroutineDef("b", ("x",), (CallStmt("a", ("x",)),)),
        }
        with pytest.raises(SubroutineError, match="recursion"):
            inline_calls([CallStmt("a", ("u",))], defs, ["u"])

    def test_duplicate_params_rejected(self):
        with pytest.raises(SubroutineError, match="duplicate"):
            SubroutineDef("f", ("x", "x"), ())
