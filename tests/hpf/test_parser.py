"""Tests for the textual mini-HPF parser."""

import numpy as np
import pytest

from repro.core.symbolic import Sym
from repro.hpf.ast import (
    At,
    Bin,
    LoopIdx,
    ParallelAssign,
    Reduce,
    ScalarAssign,
    SeqLoop,
    Slice,
    Un,
)
from repro.hpf.parser import ParseError, parse_program
from repro.runtime import run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig

JACOBI_SRC = """
! 2-D Jacobi relaxation, columns BLOCK-distributed.
PROGRAM jacobi
REAL a(64, 64) DISTRIBUTE (*, BLOCK)
REAL new(64, 64) DISTRIBUTE (*, BLOCK)
FORALL j = 0, 63 : a(0:63, j) = 1.0
DO t = 0, 2
  FORALL j = 1, 62 : new(1:62, j) = (a(0:61, j) + a(2:63, j) + a(1:62, j-1) + a(1:62, j+1)) * 0.25
  FORALL j = 1, 62 : a(1:62, j) = new(1:62, j)
END DO
REDUCE total = SUM(j = 0, 63 : a(0:63, j) * a(0:63, j))
LET half = total / 2.0
END
"""


class TestParsing:
    def test_jacobi_structure(self):
        prog = parse_program(JACOBI_SRC)
        assert prog.name == "jacobi"
        assert set(prog.arrays) == {"a", "new"}
        assert prog.arrays["a"].dist == "block"
        kinds = [type(s).__name__ for s in prog.body]
        assert kinds == ["ParallelAssign", "SeqLoop", "Reduce", "ScalarAssign"]
        seq = prog.body[1]
        assert isinstance(seq, SeqLoop) and len(seq.body) == 2

    def test_subscript_kinds(self):
        prog = parse_program(JACOBI_SRC)
        sweep = prog.body[1].body[0]
        assert isinstance(sweep.lhs.subs[0], Slice)
        assert isinstance(sweep.lhs.subs[1], LoopIdx)
        refs = list(sweep.rhs.refs())
        offsets = sorted(
            r.subs[1].offset.const for r in refs if isinstance(r.subs[1], LoopIdx)
        )
        assert offsets == [-1, 0, 0, 1]

    def test_case_insensitive_keywords(self):
        prog = parse_program(
            "program p\nreal a(8)\nforall j = 0, 7 : a(j) = 1.0\nend"
        )
        assert prog.name == "p"
        assert isinstance(prog.body[0], ParallelAssign)

    def test_cyclic_and_replicated_distributions(self):
        prog = parse_program(
            "PROGRAM p\n"
            "REAL a(8, 16) DISTRIBUTE (*, CYCLIC)\n"
            "REAL c(8, 16) DISTRIBUTE (*, *)\n"
            "FORALL j = 0, 15 : a(0:7, j) = 1.0\n"
            "END"
        )
        assert prog.arrays["a"].dist == "cyclic"
        assert prog.arrays["c"].dist == "replicated"

    def test_seq_var_in_bounds_and_subscripts(self):
        prog = parse_program(
            "PROGRAM lu\n"
            "REAL a(16, 16) DISTRIBUTE (*, CYCLIC)\n"
            "DO k = 0, 14\n"
            "  FORALL j = k+1, 15 : a(0:15, j) = a(0:15, j) - a(0:15, k) * 0.5\n"
            "END DO\n"
            "END"
        )
        loop = prog.body[0].body[0]
        assert loop.loop.lo.eval({"k": 3}) == 4
        point_refs = [
            r for r in loop.rhs.refs() if isinstance(r.subs[1], At)
        ]
        assert point_refs and point_refs[0].subs[1].index == Sym("k")

    def test_on_home_directive(self):
        prog = parse_program(
            "PROGRAM p\n"
            "REAL a(16)\nREAL w(16)\n"
            "FORALL j = 1, 14 ON HOME a(j) : w(j+1) = a(j)\n"
            "END"
        )
        stmt = prog.body[0]
        assert stmt.on_home is not None and stmt.on_home.array == "a"

    def test_assign_single_owner(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(16, 8)\nASSIGN a(0:15, 3) = a(0:15, 0) * 2.0\nEND"
        )
        stmt = prog.body[0]
        assert stmt.loop is None and isinstance(stmt.lhs.last, At)

    def test_unary_and_functions(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j) = SQRT(a(j)) + ABS(-a(j))\nEND"
        )
        rhs = prog.body[0].rhs
        assert isinstance(rhs, Bin)
        assert isinstance(rhs.lhs, Un) and rhs.lhs.op == "sqrt"

    def test_scalar_declarations_and_let(self):
        prog = parse_program(
            "PROGRAM p\nSCALAR alpha = 2.5\nREAL a(8)\n"
            "FORALL j = 0, 7 : a(j) = alpha\n"
            "LET beta = alpha * 2.0\nEND"
        )
        assert prog.scalars["alpha"] == 2.5
        assert isinstance(prog.body[1], ScalarAssign)

    def test_reduce_ops(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(8)\nREDUCE m = MAX(j = 0, 7 : a(j))\nEND"
        )
        stmt = prog.body[0]
        assert isinstance(stmt, Reduce) and stmt.op == "max"

    def test_comments_and_blank_lines(self):
        prog = parse_program(
            "\n! header\nPROGRAM p  ! trailing\n\nREAL a(8)\n"
            "FORALL j = 0, 7 : a(j) = 1.0  ! body comment\nEND\n"
        )
        assert len(prog.body) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "src,match",
        [
            ("", "empty program"),
            ("REAL a(8)\nEND", "PROGRAM"),
            ("PROGRAM p\nREAL a(8)\n", "missing 'END'"),
            ("PROGRAM p\nWHAT a(8)\nEND", "unrecognized"),
            ("PROGRAM p\nREAL a(x)\nEND", "integer literals"),
            ("PROGRAM p\nREAL a(8)\nREAL a(8)\nEND", "already declared"),
            ("PROGRAM p\nREAL a(8,8) DISTRIBUTE (BLOCK, *)\nEND", "last dimension"),
            ("PROGRAM p\nREAL a(8) DISTRIBUTE (DIAG)\nEND", "unknown distribution"),
            ("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j) = b(j)\nEND", "unknown name"),
            ("PROGRAM p\nREAL a(8,8)\nFORALL j = 0, 7 : a(j) = 1.0\nEND", "rank"),
            ("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j) + 1.0\nEND", "expected '='"),
            ("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j) = a(j @ 2)\nEND", "tokenize"),
            ("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j*j) = 1.0\nEND", "integer scaling"),
            ("PROGRAM p\nREAL a(8)\nDO k = 0, 3\nEND", "missing 'END DO'"),
            ("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j:j) = 1.0\nEND", "loop index"),
            ("PROGRAM p\nREAL a(8)\nLET a(0) = 1.0\nEND", "scalar name"),
        ],
    )
    def test_error_cases(self, src, match):
        with pytest.raises(ParseError, match=match):
            parse_program(src)

    def test_error_carries_line_number(self):
        try:
            parse_program("PROGRAM p\nREAL a(8)\nFORALL j = 0, 7 : a(j) = zz\nEND")
        except ParseError as e:
            assert e.line_no == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestParsedProgramsExecute:
    def test_parsed_jacobi_matches_dsl_jacobi(self):
        from repro.apps.jacobi import build

        cfg = ClusterConfig(n_nodes=4)
        parsed = parse_program(JACOBI_SRC)
        uni = run_uniproc(parsed, cfg)
        opt = run_shmem(parsed, cfg, optimize=True)
        opt.assert_same_numerics(uni)
        # Interior values match the DSL-built jacobi (same stencil, same
        # boundary handling modulo the init pattern).
        assert np.isfinite(opt.arrays["a"]).all()
        assert uni.scalars["half"] == pytest.approx(uni.scalars["total"] / 2)

    def test_parsed_triangular_program(self):
        src = (
            "PROGRAM tri\n"
            "REAL a(32, 32) DISTRIBUTE (*, CYCLIC)\n"
            "FORALL j = 0, 31 : a(0:31, j) = 1.0\n"
            "DO k = 0, 30\n"
            "  FORALL j = k+1, 31 : a(0:31, j) = a(0:31, j) - a(0:31, k) * 0.01\n"
            "END DO\n"
            "END"
        )
        cfg = ClusterConfig(n_nodes=4)
        prog = parse_program(src)
        run_shmem(prog, cfg, optimize=True).assert_same_numerics(run_uniproc(prog, cfg))


class TestParsedSubroutines:
    SRC = """
PROGRAM subtest
REAL u(32, 32)
REAL w(32, 32)
SUB sweep(src(32, 32), dst(32, 32))
  FORALL j = 1, 30 : dst(1:30, j) = (src(1:30, j-1) + src(1:30, j+1)) * 0.5
END SUB
FORALL j = 0, 31 : u(0:31, j) = 1.0
DO t = 0, 2
  CALL sweep(u, w)
  CALL sweep(w, u)
END DO
END
"""

    def test_sub_and_call_inline(self):
        prog = parse_program(self.SRC)
        loop = prog.body[1]
        assert isinstance(loop, SeqLoop)
        assert [s.lhs.array for s in loop.body] == ["w", "u"]
        assert loop.body[0].label.startswith("sweep(u,w).")

    def test_parsed_subroutines_execute(self):
        cfg = ClusterConfig(n_nodes=4)
        prog = parse_program(self.SRC)
        run_shmem(prog, cfg, optimize=True).assert_same_numerics(
            run_uniproc(prog, cfg)
        )

    def test_formals_scoped_to_sub(self):
        with pytest.raises(ParseError, match="unknown name"):
            parse_program(
                "PROGRAM p\nREAL u(8)\n"
                "SUB f(x(8))\n  FORALL j = 0, 7 : x(j) = 1.0\nEND SUB\n"
                "FORALL j = 0, 7 : u(j) = x(j)\nEND"
            )

    def test_formal_shadowing_rejected(self):
        with pytest.raises(ParseError, match="shadows"):
            parse_program(
                "PROGRAM p\nREAL u(8)\nSUB f(u(8))\nEND SUB\nEND"
            )

    def test_call_shape_conformance(self):
        with pytest.raises(ParseError, match="conform"):
            parse_program(
                "PROGRAM p\nREAL u(8)\nREAL v(16)\n"
                "SUB f(x(8))\n  FORALL j = 0, 7 : x(j) = 1.0\nEND SUB\n"
                "CALL f(v)\nEND"
            )

    def test_nested_sub_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse_program(
                "PROGRAM p\nSUB f(x(8))\nSUB g(y(8))\nEND SUB\nEND SUB\nEND"
            )

    def test_missing_end_sub(self):
        with pytest.raises(ParseError, match="END SUB"):
            parse_program("PROGRAM p\nSUB f(x(8))\nEND")


class TestParsedStridedForall:
    def test_step_parsed(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(8, 16)\n"
            "FORALL j = 1, 14, 2 : a(0:7, j) = 1.0\nEND"
        )
        assert prog.body[0].loop.step == 2

    def test_zero_step_rejected(self):
        with pytest.raises(ParseError, match="positive"):
            parse_program(
                "PROGRAM p\nREAL a(8, 16)\n"
                "FORALL j = 1, 14, 0 : a(0:7, j) = 1.0\nEND"
            )

    def test_step_with_on_home(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(16)\nREAL w(16)\n"
            "FORALL j = 1, 14, 2 ON HOME a(j) : w(j) = a(j)\nEND"
        )
        stmt = prog.body[0]
        assert stmt.loop.step == 2 and stmt.on_home.array == "a"

    def test_default_step_is_one(self):
        prog = parse_program(
            "PROGRAM p\nREAL a(16)\nFORALL j = 0, 15 : a(j) = 1.0\nEND"
        )
        assert prog.body[0].loop.step == 1
