"""Property tests: the expression evaluator versus direct NumPy.

Hypothesis builds random expression trees over two arrays and a scalar,
together with an equivalent plain-NumPy lambda, and checks that
``eval_expr`` produces identical values over random loop ranges — the
evaluator is the foundation every backend's numerics stand on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf.ast import Bin, Lit, Ref, ScalarRef, Un
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.hpf.eval import eval_expr

ROWS, COLS = 8, 24
MAX_OFF = 2


@st.composite
def expr_and_reference(draw, depth=0, rows=None):
    """Returns (Expr, fn(a, b, alpha, lo, hi) -> ndarray).

    All refs in one tree share a row range (the language requires
    conforming sections within an expression).
    """
    if rows is None:
        rlo = draw(st.integers(0, ROWS - 4))
        rhi = draw(st.integers(rlo, ROWS - 1))
        rows = (rlo, rhi)
    choices = ["ref_a", "ref_b", "lit", "scalar"]
    if depth < 3:
        choices += ["add", "sub", "mul", "neg", "abs"] * 2
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        v = draw(st.floats(-4, 4, allow_nan=False, width=32))
        return Lit(float(v)), lambda a, b, al, lo, hi: float(v)
    if kind == "scalar":
        return ScalarRef("alpha"), lambda a, b, al, lo, hi: al
    if kind in ("ref_a", "ref_b"):
        name = "a" if kind == "ref_a" else "b"
        off = draw(st.integers(-MAX_OFF, MAX_OFF))
        rlo, rhi = rows
        from repro.hpf.ast import LoopIdx, Slice

        ref = Ref(name, (Slice(rlo, rhi), LoopIdx(off)))

        def fn(a, b, al, lo, hi, name=name, off=off, rlo=rlo, rhi=rhi):
            src = a if name == "a" else b
            return src[rlo : rhi + 1, lo + off : hi + off + 1]

        return ref, fn
    left, lfn = draw(expr_and_reference(depth=depth + 1, rows=rows))
    right, rfn = draw(expr_and_reference(depth=depth + 1, rows=rows))
    if kind == "add":
        return Bin("+", left, right), lambda *a: lfn(*a) + rfn(*a)
    if kind == "sub":
        return Bin("-", left, right), lambda *a: lfn(*a) - rfn(*a)
    if kind == "mul":
        return Bin("*", left, right), lambda *a: lfn(*a) * rfn(*a)
    if kind == "neg":
        return Un("neg", left), lambda *a: -lfn(*a)
    return Un("abs", left), lambda *a: np.abs(lfn(*a))


@given(
    pair=expr_and_reference(),
    lo=st.integers(MAX_OFF, COLS // 2),
    width=st.integers(0, COLS // 2 - MAX_OFF - 1),
    alpha=st.floats(-3, 3, allow_nan=False, width=32),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=300, deadline=None)
def test_eval_expr_matches_numpy(pair, lo, width, alpha, seed):
    expr, fn = pair
    rng = np.random.default_rng(seed)
    a = np.asfortranarray(rng.standard_normal((ROWS, COLS)))
    b = np.asfortranarray(rng.standard_normal((ROWS, COLS)))
    hi = lo + width
    got = eval_expr(expr, {"a": a, "b": b}, {"alpha": float(alpha)}, {}, lo, hi)
    expect = fn(a, b, float(alpha), lo, hi)
    np.testing.assert_allclose(np.broadcast_arrays(got, expect)[0],
                               np.broadcast_arrays(got, expect)[1],
                               rtol=1e-12, atol=1e-12)


@given(
    step=st.sampled_from([2, 3]),
    lo=st.integers(MAX_OFF, 6),
    width=st.integers(0, 12),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_strided_ref_matches_numpy(step, lo, width, seed):
    from repro.hpf.ast import LoopIdx, Slice

    rng = np.random.default_rng(seed)
    a = np.asfortranarray(rng.standard_normal((ROWS, COLS)))
    hi = min(lo + width, COLS - 1 - MAX_OFF)
    ref = Ref("a", (Slice(1, 6), LoopIdx(-1)))
    got = eval_expr(ref, {"a": a}, {}, {}, lo, hi, step)
    # Iterations lo..hi step; the -1 offset shifts the columns left by one.
    np.testing.assert_array_equal(got, a[1:7, lo - 1 : hi : step])
