"""Tests for the Dot contraction node and array initializers."""

import numpy as np
import pytest

from repro.hpf.ast import Dot, Ref, LoopIdx, Slice
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.hpf.eval import EvalError, eval_parallel_assign
from repro.runtime import run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig


class TestDotNode:
    def test_of_derives_depth_from_inner_slice(self):
        b = ProgramBuilder("p")
        m = b.array("m", (10, 6))
        v = b.array("v", (10,))
        d = Dot.of(m[S(0, 9), I], v[S(0, 9)])
        assert d.depth == 10
        assert d.op_count() == 20

    def test_refs_yields_both_operands(self):
        b = ProgramBuilder("p")
        m = b.array("m", (10, 6))
        v = b.array("v", (10,))
        d = Dot.of(m[S(0, 9), I], v[S(0, 9)])
        assert [r.array for r in d.refs()] == ["m", "v"]

    def test_rank_validation(self):
        b = ProgramBuilder("p")
        m = b.array("m", (10, 6))
        v = b.array("v", (10,))
        with pytest.raises(ValueError, match="rank-1"):
            Dot(m[S(0, 9), I], m[S(0, 9), I])
        with pytest.raises(ValueError, match="rank-2"):
            Dot(v[I], v[S(0, 9)])

    def test_matvec_evaluation(self):
        b = ProgramBuilder("p")
        m = b.array("m", (8, 6))
        v = b.array("v", (8,))
        q = b.array("q", (6,))
        stmt = b.forall(0, 5, q[I], Dot.of(m[S(0, 7), I], v[S(0, 7)]))
        rng = np.random.default_rng(3)
        M = np.asfortranarray(rng.random((8, 6)))
        V = rng.random(8)
        Q = np.zeros(6)
        eval_parallel_assign(stmt, {"m": M, "v": V, "q": Q}, {}, {})
        np.testing.assert_allclose(Q, V @ M)

    def test_shape_mismatch_detected(self):
        b = ProgramBuilder("p")
        m = b.array("m", (8, 6))
        v = b.array("v", (5,))
        stmt = b.forall(0, 5, b.array("q", (6,))[I], Dot.of(m[S(0, 7), I], v[S(0, 4)]))
        arrays = {
            "m": np.zeros((8, 6), order="F"),
            "v": np.zeros(5),
            "q": np.zeros(6),
        }
        with pytest.raises(EvalError, match="mismatch"):
            eval_parallel_assign(stmt, arrays, {}, {})

    def test_matvec_through_full_pipeline(self):
        # Dot's broadcast reads must be planned and simulated correctly.
        b = ProgramBuilder("mv")
        m = b.array("m", (64, 64), init=lambda s: np.eye(64) * 2.0)
        v = b.array("v", (64,), init=lambda s: np.arange(64.0))
        q = b.array("q", (64,))
        b.forall(0, 63, q[I], Dot.of(m[S(0, 63), I], v[S(0, 63)]))
        prog = b.build()
        cfg = ClusterConfig(n_nodes=4)
        opt = run_shmem(prog, cfg, optimize=True)
        opt.assert_same_numerics(run_uniproc(prog, cfg))
        np.testing.assert_allclose(opt.arrays["q"], np.arange(64.0) * 2.0)


class TestInitializers:
    def test_applied_identically_across_backends(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16, 16), init=lambda s: np.arange(256.0).reshape(s))
        out = b.array("out", (16, 16))
        b.forall(0, 15, out[S(0, 15), I], a[S(0, 15), I] * 3.0)
        prog = b.build()
        cfg = ClusterConfig(n_nodes=4)
        uni = run_uniproc(prog, cfg)
        run_shmem(prog, cfg).assert_same_numerics(uni)
        np.testing.assert_allclose(
            uni.arrays["out"], np.arange(256.0).reshape(16, 16) * 3.0
        )

    def test_shape_mismatch_rejected(self):
        b = ProgramBuilder("p")
        b.array("a", (16,), init=lambda s: np.zeros(8))
        prog = b.build()
        with pytest.raises(ValueError, match="shape"):
            run_uniproc(prog, ClusterConfig(n_nodes=2))

    def test_initializer_for_undeclared_array_rejected(self):
        from repro.hpf.ast import Program

        with pytest.raises(ValueError, match="undeclared"):
            Program("p", {}, (), {}, {"ghost": lambda s: None})

    def test_replicated_arrays_initialized_too(self):
        b = ProgramBuilder("p")
        c = b.array("c", (8,), dist="replicated", init=lambda s: np.full(s, 7.0))
        a = b.array("a", (8,))
        b.forall(0, 7, a[I], c[I] * 2.0)
        prog = b.build()
        r = run_shmem(prog, ClusterConfig(n_nodes=4))
        np.testing.assert_allclose(r.arrays["a"], 14.0)
