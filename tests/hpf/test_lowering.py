"""Owner-computes lowering tests."""

import pytest

from repro.core.sections import StridedInterval
from repro.core.symbolic import Sym
from repro.hpf.dsl import I, ProgramBuilder, S
from repro.hpf.lowering import distribution_of, iteration_spec, owner_of_at


def build_stencil(n=16, procs=4, dist="block", offset=0):
    b = ProgramBuilder("p")
    a = b.array("a", (n,), dist=dist)
    out = b.array("out", (n,), dist=dist)
    lhs = out[I + offset] if offset else out[I]
    stmt = b.forall(1, n - 2, lhs, a[I])
    prog = b.build()
    return stmt, prog.arrays["out"], procs


class TestIterationSpec:
    def test_block_partitions_iterations(self):
        stmt, decl, procs = build_stencil()
        spec = iteration_spec(stmt, decl, procs)
        its = [spec.iterations(p, {}) for p in range(procs)]
        # 16 cols over 4 procs = 4 each; loop bounds clip to 1..14.
        assert list(its[0]) == [1, 2, 3]
        assert list(its[1]) == [4, 5, 6, 7]
        assert list(its[3]) == [12, 13, 14]

    def test_iterations_cover_loop_exactly_once(self):
        for dist in ("block", "cyclic"):
            stmt, decl, procs = build_stencil(dist=dist)
            spec = iteration_spec(stmt, decl, procs)
            seen = []
            for p in range(procs):
                seen.extend(spec.iterations(p, {}))
            assert sorted(seen) == list(range(1, 15))

    def test_lhs_offset_shifts_iterations(self):
        # LHS out[j+1]: proc p executes j with owner(j+1) == p.
        stmt, decl, procs = build_stencil(offset=1)
        spec = iteration_spec(stmt, decl, procs)
        assert list(spec.iterations(0, {})) == [1, 2]      # writes 2,3
        assert list(spec.iterations(1, {})) == [3, 4, 5, 6]  # writes 4..7

    def test_cyclic_iterations_strided(self):
        stmt, decl, procs = build_stencil(dist="cyclic")
        spec = iteration_spec(stmt, decl, procs)
        assert list(spec.iterations(2, {})) == [2, 6, 10, 14]

    def test_symbolic_bounds(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16,))
        k = Sym("k")
        stmt = b.forall(k + 1, 14, a[I], 0.0)
        prog = b.build()
        spec = iteration_spec(stmt, prog.arrays["a"], 4)
        assert list(spec.iterations(0, {"k": 2})) == [3]
        assert list(spec.iterations(0, {"k": 9})) == []
        assert list(spec.iterations(3, {"k": 9})) == [12, 13, 14]

    def test_replicated_lhs_everyone_runs_everything(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16,), dist="replicated")
        stmt = b.forall(0, 15, a[I], 1.0)
        prog = b.build()
        spec = iteration_spec(stmt, prog.arrays["a"], 4)
        for p in range(4):
            assert list(spec.iterations(p, {})) == list(range(16))

    def test_on_home_redistributes(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16,))
        w = b.array("w", (16,))
        stmt = b.forall(1, 14, w[I + 1], a[I], on_home=a[I])
        prog = b.build()
        # Iterations follow a's ownership, not w's shifted ownership.
        spec = iteration_spec(stmt, prog.arrays[stmt.home_ref.array], 4)
        assert list(spec.iterations(0, {})) == [1, 2, 3]

    def test_single_owner_rejected(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16, 16))
        stmt = b.assign_at(a[S(0, 15), 3], 0.0)
        prog = b.build()
        with pytest.raises(ValueError, match="single-owner"):
            iteration_spec(stmt, prog.arrays["a"], 4)


class TestOwnerOfAt:
    def test_block_owner(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16, 16))
        stmt = b.assign_at(a[S(0, 15), Sym("k")], 0.0)
        prog = b.build()
        assert owner_of_at(stmt, prog.arrays["a"], 4, {"k": 0}) == 0
        assert owner_of_at(stmt, prog.arrays["a"], 4, {"k": 15}) == 3

    def test_cyclic_owner(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16, 16), dist="cyclic")
        stmt = b.assign_at(a[S(0, 15), Sym("k")], 0.0)
        prog = b.build()
        assert owner_of_at(stmt, prog.arrays["a"], 4, {"k": 6}) == 2

    def test_requires_at_lhs(self):
        stmt, decl, _ = build_stencil()
        with pytest.raises(ValueError, match="At"):
            owner_of_at(stmt, decl, 4, {})


def test_distribution_of_mapping():
    assert distribution_of(
        __import__("repro.hpf.ast", fromlist=["ArrayDecl"]).ArrayDecl("a", (8,), "cyclic"), 4
    ).kind.value == "cyclic"
