"""Numeric evaluation tests: the DSL must compute what NumPy computes."""

import numpy as np
import pytest

from repro.core.symbolic import Sym
from repro.hpf.dsl import I, ProgramBuilder, S, sqrt
from repro.hpf.eval import (
    EvalError,
    eval_expr,
    eval_parallel_assign,
    eval_reduce,
    eval_scalar_assign,
)


def farray(*shape):
    rng = np.random.default_rng(42 + len(shape))
    return np.asfortranarray(rng.random(shape))


class TestEvalParallelAssign:
    def test_1d_stencil(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16,))
        out = b.array("out", (16,))
        stmt = b.forall(1, 14, out[I], (a[I - 1] + a[I + 1]) * 0.5)
        arrays = {"a": farray(16), "out": np.zeros(16, order="F")}
        eval_parallel_assign(stmt, arrays, {}, {})
        expect = (arrays["a"][0:14] + arrays["a"][2:16]) * 0.5
        np.testing.assert_allclose(arrays["out"][1:15], expect)
        assert arrays["out"][0] == 0 and arrays["out"][15] == 0

    def test_2d_five_point_stencil(self):
        b = ProgramBuilder("p")
        u = b.array("u", (8, 8))
        v = b.array("v", (8, 8))
        stmt = b.forall(
            1,
            6,
            v[S(1, 6), I],
            (u[S(0, 5), I] + u[S(2, 7), I] + u[S(1, 6), I - 1] + u[S(1, 6), I + 1]) * 0.25,
        )
        U = farray(8, 8)
        V = np.zeros((8, 8), order="F")
        eval_parallel_assign(stmt, {"u": U, "v": V}, {}, {})
        expect = (U[0:6, 1:7] + U[2:8, 1:7] + U[1:7, 0:6] + U[1:7, 2:8]) * 0.25
        np.testing.assert_allclose(V[1:7, 1:7], expect)

    def test_broadcast_outer_product(self):
        # LU-style rank-1 update: a[i, j] -= a[i, k] * a[k, j]
        b = ProgramBuilder("p")
        a = b.array("a", (6, 6))
        k = Sym("k")
        n = 6
        stmt = b.forall(
            k + 1,
            n - 1,
            a[S(k + 1, n - 1), I],
            a[S(k + 1, n - 1), I] - a[S(k + 1, n - 1), k] * a[k, I],
        )
        A = farray(6, 6)
        ref = A.copy()
        eval_parallel_assign(stmt, {"a": A}, {}, {"k": 1})
        ref[2:, 2:] -= np.outer(ref[2:, 1], ref[1, 2:])
        np.testing.assert_allclose(A, ref)

    def test_single_owner_column_statement(self):
        b = ProgramBuilder("p")
        a = b.array("a", (6, 6))
        k = Sym("k")
        stmt = b.assign_at(a[S(2, 5), k], a[S(2, 5), k] / a[1, k])
        A = farray(6, 6)
        ref = A.copy()
        eval_parallel_assign(stmt, {"a": A}, {}, {"k": 1})
        ref[2:, 1] /= ref[1, 1]
        np.testing.assert_allclose(A, ref)

    def test_scalar_in_expression(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        out = b.array("out", (8,))
        from repro.hpf.ast import ScalarRef

        stmt = b.forall(0, 7, out[I], a[I] * ScalarRef("alpha"))
        A = farray(8)
        OUT = np.zeros(8, order="F")
        eval_parallel_assign(stmt, {"a": A, "out": OUT}, {"alpha": 2.5}, {})
        np.testing.assert_allclose(OUT, A * 2.5)

    def test_empty_loop_is_noop(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        k = Sym("k")
        stmt = b.forall(k + 1, 7, a[I], 99.0)
        A = np.zeros(8, order="F")
        eval_parallel_assign(stmt, {"a": A}, {}, {"k": 7})
        assert (A == 0).all()

    def test_out_of_bounds_detected(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        stmt = b.forall(0, 7, a[I], Sym  # placeholder, replaced below
                        if False else a[I + 1])
        with pytest.raises(EvalError, match="outside"):
            eval_parallel_assign(stmt, {"a": np.zeros(8, order="F")}, {}, {})

    def test_undefined_scalar_raises(self):
        from repro.hpf.ast import ScalarRef

        with pytest.raises(EvalError, match="undefined scalar"):
            eval_expr(ScalarRef("nope"), {}, {}, {}, 0, 0)

    def test_unary_functions(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        out = b.array("out", (8,))
        stmt = b.forall(0, 7, out[I], sqrt(a[I]))
        A = farray(8)
        OUT = np.zeros(8, order="F")
        eval_parallel_assign(stmt, {"a": A, "out": OUT}, {}, {})
        np.testing.assert_allclose(OUT, np.sqrt(A))


class TestEvalReduce:
    def test_sum_over_section(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 8))
        stmt = b.reduce("total", 0, 7, a[S(0, 7), I])
        A = farray(8, 8)
        scalars = {"total": 0.0}
        got = eval_reduce(stmt, {"a": A}, scalars, {})
        assert got == pytest.approx(A.sum())
        assert scalars["total"] == got

    def test_sum_of_squares(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        stmt = b.reduce("ss", 0, 7, a[I] * a[I])
        A = farray(8)
        assert eval_reduce(stmt, {"a": A}, {}, {}) == pytest.approx((A * A).sum())

    def test_max_reduction(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        stmt = b.reduce("m", 0, 7, a[I], op="max")
        A = farray(8)
        assert eval_reduce(stmt, {"a": A}, {}, {}) == pytest.approx(A.max())

    def test_empty_reduce_is_zero(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        k = Sym("k")
        stmt = b.reduce("s", k, 0, a[I])
        assert eval_reduce(stmt, {"a": farray(8)}, {}, {"k": 5}) == 0.0


class TestEvalScalar:
    def test_scalar_arithmetic(self):
        from repro.hpf.ast import ScalarRef

        b = ProgramBuilder("p")
        stmt = b.scalar("beta", ScalarRef("rho") / ScalarRef("rho_old"))
        scalars = {"rho": 6.0, "rho_old": 2.0, "beta": 0.0}
        assert eval_scalar_assign(stmt, scalars) == 3.0
        assert scalars["beta"] == 3.0
