"""Unit tests for the mini-HPF AST and builder."""

import pytest

from repro.core.symbolic import Sym
from repro.hpf import (
    ArrayDecl,
    At,
    LoopIdx,
    ParallelAssign,
    Program,
    ProgramBuilder,
    Reduce,
    Ref,
    ScalarAssign,
    SeqLoop,
    Slice,
)
from repro.hpf.ast import Bin, Lit, ScalarRef, Un, as_expr, walk_statements
from repro.hpf.dsl import ABS, I, S, sqrt


class TestSubscripts:
    def test_loopidx_offsets(self):
        assert LoopIdx(0).offset == 0
        assert LoopIdx(Sym("k") + 1).offset.eval({"k": 3}) == 4

    def test_slice_bounds(self):
        s = Slice(1, Sym("N") - 2)
        assert s.lo == 1 and s.hi.eval({"N": 10}) == 8

    def test_at(self):
        assert At(Sym("k")).index.eval({"k": 5}) == 5


class TestExpressions:
    def test_operator_sugar_builds_tree(self):
        a = Ref("a", (LoopIdx(0),))
        e = (a + 1.0) * 2.0 - a / 3.0
        assert isinstance(e, Bin)
        assert e.op == "-"

    def test_reverse_ops(self):
        a = Ref("a", (LoopIdx(0),))
        assert isinstance(1.0 + a, Bin)
        assert isinstance(2.0 / a, Bin)
        assert isinstance(3.0 - a, Bin)
        assert isinstance(0.5 * a, Bin)

    def test_neg_and_functions(self):
        a = Ref("a", (LoopIdx(0),))
        assert isinstance(-a, Un)
        assert sqrt(a).op == "sqrt"
        assert ABS(a).op == "abs"

    def test_refs_iteration(self):
        a = Ref("a", (LoopIdx(0),))
        b = Ref("b", (LoopIdx(1),))
        e = a + (b * a)
        assert [r.array for r in e.refs()] == ["a", "b", "a"]

    def test_op_count(self):
        a = Ref("a", (LoopIdx(0),))
        assert (a + a).op_count() == 1
        assert ((a + a) * a - 1.0).op_count() == 3
        assert sqrt(a).op_count() == 1
        assert Lit(3.0).op_count() == 0

    def test_as_expr_coercion(self):
        assert isinstance(as_expr(3), Lit)
        with pytest.raises(TypeError):
            as_expr("x")

    def test_bad_ops_rejected(self):
        a = Ref("a", (LoopIdx(0),))
        with pytest.raises(ValueError):
            Bin("%", a, a)
        with pytest.raises(ValueError):
            Un("log", a)


class TestStatementValidation:
    def test_parallel_assign_requires_loop_for_loopidx(self):
        lhs = Ref("a", (LoopIdx(0),))
        with pytest.raises(ValueError, match="LoopSpec"):
            ParallelAssign(lhs, Lit(0.0), None)

    def test_loopidx_in_inner_dim_rejected(self):
        lhs = Ref("a", (LoopIdx(0), LoopIdx(0)))
        from repro.hpf.ast import LoopSpec

        with pytest.raises(ValueError, match="last dimension"):
            ParallelAssign(lhs, Lit(0.0), LoopSpec("j", 0, 9))

    def test_slice_lhs_rejected(self):
        lhs = Ref("a", (Slice(0, 9),))
        with pytest.raises(ValueError, match="LoopIdx"):
            ParallelAssign(lhs, Lit(0.0), None)

    def test_on_home_must_use_loop_index(self):
        from repro.hpf.ast import LoopSpec

        lhs = Ref("a", (LoopIdx(0),))
        bad_home = Ref("b", (At(3),))
        with pytest.raises(ValueError, match="ON HOME"):
            ParallelAssign(lhs, Lit(0.0), LoopSpec("j", 0, 9), on_home=bad_home)

    def test_scalar_assign_rejects_array_refs(self):
        with pytest.raises(ValueError):
            ScalarAssign("x", Ref("a", (LoopIdx(0),)))

    def test_reduce_op_validation(self):
        from repro.hpf.ast import LoopSpec

        with pytest.raises(ValueError):
            Reduce("s", Lit(1.0), LoopSpec("j", 0, 9), op="prod")

    def test_array_decl_validation(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", (4,), "diagonal")
        with pytest.raises(ValueError):
            ArrayDecl("a", ())


class TestProgramValidation:
    def test_undeclared_array_caught(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        b.forall(0, 7, a[I], Ref("ghost", (LoopIdx(0),)))
        with pytest.raises(ValueError, match="ghost"):
            b.build()

    def test_rank_mismatch_caught(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 8))
        with pytest.raises(IndexError):
            a[I]  # rank-2 array, one subscript

    def test_rank_mismatch_in_raw_ref(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 8))
        b.forall(0, 7, a[S(0, 7), I], Ref("a", (LoopIdx(0),)))
        with pytest.raises(ValueError, match="rank"):
            b.build()


class TestBuilder:
    def test_quickstart_shape(self):
        b = ProgramBuilder("jacobi1d")
        a = b.array("a", (64,))
        new = b.array("new", (64,))
        with b.timesteps(3):
            b.forall(1, 62, new[I], (a[I - 1] + a[I + 1]) * 0.5)
            b.forall(1, 62, a[I], new[I])
        prog = b.build()
        assert isinstance(prog, Program)
        assert len(prog.body) == 1
        loop = prog.body[0]
        assert isinstance(loop, SeqLoop)
        assert len(loop.body) == 2
        assert prog.total_bytes() == 2 * 64 * 8

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("p")
        b.array("a", (8,))
        with pytest.raises(ValueError):
            b.array("a", (8,))

    def test_subscript_sugar(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 8))
        r = a[S(1, 6), I + 1]
        assert isinstance(r.subs[0], Slice)
        assert isinstance(r.subs[1], LoopIdx)
        assert r.subs[1].offset == 1
        r2 = a[3, Sym("k")]
        assert isinstance(r2.subs[0], At) and isinstance(r2.subs[1], At)

    def test_full_helper(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 4))
        r = a.full()
        assert isinstance(r.subs[0], Slice) and r.subs[0].hi == 7
        assert isinstance(r.subs[1], LoopIdx)

    def test_seq_nesting_and_symbols(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8, 8))
        with b.seq("k", 0, 6) as k:
            b.forall(k + 1, 7, a[S(0, 7), I], a[S(0, 7), k])
        prog = b.build()
        seq = prog.body[0]
        assert isinstance(seq, SeqLoop)
        inner = seq.body[0]
        assert inner.loop.lo.eval({"k": 2}) == 3

    def test_unclosed_seq_caught(self):
        b = ProgramBuilder("p")
        b._stack.append([])  # simulate a broken context
        with pytest.raises(RuntimeError):
            b.build()

    def test_scalars_registered(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        b.reduce("total", 0, 7, a[I])
        b.scalar("x", ScalarRef("total") * 2.0)
        prog = b.build()
        assert set(prog.scalars) == {"total", "x"}

    def test_walk_statements_descends(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,))
        with b.timesteps(2):
            b.forall(0, 7, a[I], 1.0)
            with b.seq("k", 0, 3):
                b.forall(0, 7, a[I], 2.0)
        prog = b.build()
        kinds = [type(s).__name__ for s in walk_statements(prog.body)]
        assert kinds == ["SeqLoop", "ParallelAssign", "SeqLoop", "ParallelAssign"]
