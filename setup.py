"""Setup shim.

This environment is offline and has no ``wheel`` package, so PEP 660
editable installs (which require ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works with plain setuptools.
"""

from setuptools import setup

setup()
