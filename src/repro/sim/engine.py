"""Event loop for the discrete-event simulator.

The engine keeps pending events ordered by ``(time, seq)``.  Time is an
integer count of nanoseconds; ``seq`` is a monotonically increasing tie
breaker so that simultaneous events fire in schedule order, which makes every
simulation run bit-for-bit deterministic.

Two interchangeable schedulers implement that total order:

* ``scheduler="calendar"`` (the default) — a slotted calendar queue.  Events
  are bucketed by ``when >> _BUCKET_SHIFT``; only the *current* bucket is
  kept as a binary heap, future buckets are plain append-only lists that are
  heapified once, when they become current.  Events scheduled for the
  current instant (``when == now``) bypass the heap entirely and go to a
  FIFO ``deque`` — correct because every such event necessarily carries a
  larger ``seq`` than any same-time event still in the heap, and FIFO
  order *is* seq order.  This turns the dominant scheduling pattern
  (near-future inserts + resolve-at-now hops) into O(1) appends instead of
  O(log n) sifts over one big heap.
* ``scheduler="heap"`` — the original single binary heap, kept as a
  debug/differential-testing mode: it must produce bit-identical simulated
  results to the calendar queue (asserted across the fuzz matrix by
  ``tests/test_engine_differential.py``).

Processes (see :mod:`repro.sim.process`) are generators driven by the engine.
A process yields either

* a :class:`Delay` (or a bare non-negative ``int``), meaning *resume me after
  this many nanoseconds*, or
* a :class:`Future`, meaning *resume me when this future resolves* (the
  resolved value is sent back into the generator), or
* a :class:`Serve` command (from :meth:`repro.sim.resource.Resource.use`),
  meaning *occupy that resource and resume me when my turn finishes* —
  the fused one-event equivalent of ``yield resource.serve(ns)``.

This tiny vocabulary is sufficient to express CPUs, protocol handlers,
network messages and barriers, and keeps the hot loop small — important
because protocol-heavy runs schedule hundreds of thousands of events.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable

__all__ = ["Delay", "Engine", "Future", "Serve", "SimulationError"]

#: Calendar-queue bucket width is ``1 << _BUCKET_SHIFT`` ns (16.384 µs).
#: Protocol latencies are a few µs, so the vast majority of inserts land in
#: the current or an adjacent bucket; ms-scale timers (retransmits, crash
#: scenarios, flush timers) land in genuinely future buckets and are not
#: touched until the clock reaches them.
_BUCKET_SHIFT = 14

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (bad yields, time travel, ...)."""


@dataclass(frozen=True, slots=True)
class Delay:
    """Command: suspend the yielding process for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise SimulationError(f"negative delay: {self.ns}")


class Serve:
    """Command: occupy a :class:`~repro.sim.resource.Resource`, resume after.

    Yielded by processes via :meth:`Resource.use`.  The engine interprets it
    inline inside :meth:`Engine._step`: it advances the resource's FIFO
    occupancy and schedules exactly one wake-up event at the finish time —
    versus the classic ``serve()`` path's Future allocation plus two events
    (resolve + wake-up hop).  Each resource keeps one mutable ``Serve``
    singleton; that is safe because the command is consumed synchronously
    within the very ``gen.send`` round that yielded it.
    """

    __slots__ = ("resource", "ns")

    def __init__(self, resource: Any = None, ns: int = 0) -> None:
        self.resource = resource
        self.ns = ns


class Future:
    """A one-shot synchronization cell.

    A future starts *pending*; a single call to :meth:`resolve` transitions
    it to *resolved* and wakes every process waiting on it.  Waiting on an
    already-resolved future resumes the waiter immediately (at the current
    simulated instant), so there is no ordering hazard between resolution
    and waiting.
    """

    __slots__ = ("_engine", "_resolved", "_value", "_waiters", "_cancelled",
                 "_gen", "label")

    def __init__(self, engine: "Engine", label: str = "") -> None:
        self._engine = engine
        self._resolved = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self._cancelled = False
        self._gen = None  # owning process generator, for guard futures
        self.label = label

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark a *process guard* future cancelled (node fail-stop).

        The owning generator is closed eagerly (deterministically, rather
        than at garbage-collection time, where finalizing a suspended
        ``yield from`` chain in arbitrary order can raise); the future
        never resolves and its waiters never fire.  Only meaningful for
        futures returned by :meth:`Engine.spawn`.
        """
        if not self._resolved:
            self._cancelled = True
            self._engine._close_process(self)

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError(f"future {self.label!r} not yet resolved")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future, waking all waiters at the current time."""
        if self._resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._resolved = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        engine = self._engine
        for cb in waiters:
            if cb.__class__ is tuple:
                # Process waiter stored structurally by _step: wake the
                # generator directly, no per-wait closure in between.
                engine.call_now(engine._step, cb[0], value, cb[1])
            else:
                engine.call_now(cb, value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Invoke ``cb(value)`` when resolved (immediately if already done)."""
        if self._resolved:
            self._engine.call_now(cb, self._value)
        else:
            self._waiters.append(cb)


class Engine:
    """The discrete-event loop.

    Parameters
    ----------
    scheduler:
        ``"calendar"`` (default) or ``"heap"``.  Both produce bit-identical
        simulated results; ``"heap"`` is the original binary-heap scheduler
        kept for differential testing.  The default can be overridden with
        the ``REPRO_ENGINE`` environment variable.
    fused:
        Enable fused fast paths (``Resource.use`` / one-event handler
        dispatch) throughout the Tempest model.  Defaults to ``True`` under
        the calendar scheduler and ``False`` under the heap scheduler, so
        ``scheduler="heap"`` reproduces the seed engine's exact event
        sequence as well as its results.

    Example
    -------
    >>> eng = Engine()
    >>> log = []
    >>> def proc():
    ...     yield Delay(100)
    ...     log.append(eng.now)
    >>> _ = eng.spawn(proc())
    >>> eng.run()
    >>> log
    [100]
    """

    __slots__ = (
        # shared
        "_seq",
        "now",
        "_live_processes",
        "events_dispatched",
        "max_queue_depth",
        "_npending",
        "scheduler",
        "fused",
        # calendar-queue scheduler
        "_nowq",
        "_cur",
        "_cur_key",
        "_buckets",
        "_bucket_keys",
        # heap scheduler (debug / differential mode)
        "_heap",
    )

    #: shared empty args tuple: no per-event allocation for argless events
    _NO_ARGS: tuple = ()

    def __init__(self, scheduler: str | None = None,
                 fused: bool | None = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_ENGINE", "calendar")
        if scheduler not in ("calendar", "heap"):
            raise SimulationError(f"unknown scheduler {scheduler!r}")
        self.scheduler = scheduler
        self.fused = (scheduler != "heap") if fused is None else fused
        self._seq = 0
        self.now = 0
        self._live_processes = 0
        self.events_dispatched = 0
        # High-water mark of the pending-event count (identical to the seed
        # engine's heap-length high-water): a cheap storm detector
        # (retransmit storms, broadcast bursts) visible in ClusterStats
        # summaries without needing a trace.
        self.max_queue_depth = 0
        self._npending = 0
        # Event entries everywhere are (when, seq, fn, args) tuples; args
        # are unpacked at dispatch.  seq is unique, so fn/args never
        # participate in heap comparisons, and no closure is allocated per
        # event — the engine's hottest allocation site in protocol-heavy
        # runs.
        if scheduler == "heap":
            self._heap: list[tuple[int, int, Callable[..., None], tuple]] = []
            self.__class__ = _HeapEngine
        else:
            #: events at ``when == now``, FIFO (FIFO order == seq order)
            self._nowq: deque = deque()
            #: the current bucket, a real heap; also absorbs stragglers
            #: scheduled into already-passed bucket regions (key <= cur_key)
            self._cur: list[tuple[int, int, Callable[..., None], tuple]] = []
            self._cur_key = 0
            #: future buckets: key -> unsorted event list (heapified on pull)
            self._buckets: dict[int, list] = {}
            #: min-heap of the keys present in _buckets
            self._bucket_keys: list[int] = []

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        now = self.now
        if when < now:
            raise SimulationError(f"cannot schedule at {when} < now {now}")
        seq = self._seq + 1
        self._seq = seq
        npending = self._npending + 1
        self._npending = npending
        if npending > self.max_queue_depth:
            self.max_queue_depth = npending
        if when == now:
            # Same-instant events: every (time, seq) predecessor at this
            # time sits in _cur (it was scheduled before the clock reached
            # ``now``, hence with a smaller seq), so a FIFO append preserves
            # the global dispatch order — see ``run``.  FIFO order *is* seq
            # order, so the entry carries neither field.
            self._nowq.append((fn, args))
            return
        key = when >> _BUCKET_SHIFT
        if key <= self._cur_key:
            # Current bucket region — or a straggler scheduled behind the
            # calendar cursor (possible after run(until=...) pre-pulled a
            # future bucket).  _cur is a true heap, so mixed keys order
            # correctly; the one thing that must never happen is an event
            # sitting in _buckets with a key at or before the cursor.
            heappush(self._cur, (when, seq, fn, args))
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [(when, seq, fn, args)]
            heappush(self._bucket_keys, key)
        else:
            bucket.append((when, seq, fn, args))

    def call_now(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current instant.

        Semantically ``call_at(self.now, ...)``, minus the time checks and
        bucket math that cannot apply to a same-instant event.  This is the
        single hottest scheduling call (future resolution, process spawns
        and every same-instant hop in the fused fast paths).
        """
        self._seq += 1
        npending = self._npending + 1
        self._npending = npending
        if npending > self.max_queue_depth:
            self.max_queue_depth = npending
        self._nowq.append((fn, args))

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        self.call_at(self.now + delay, fn, *args)

    def future(self, label: str = "") -> Future:
        return Future(self, label)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #
    def spawn(
        self, gen: Generator[Any, Any, Any], label: str = ""
    ) -> "Future":
        """Start a generator as a simulated process.

        Returns a :class:`Future` resolved with the generator's return value
        when it finishes.  The first step of the process runs at the current
        simulated time (not synchronously inside :meth:`spawn`).
        """
        done = self.future(label or getattr(gen, "__name__", "process"))
        done._gen = gen
        self._live_processes += 1
        self.call_now(self._step, gen, None, done)
        return done

    def _serve_hop(self, gen: Generator[Any, Any, Any], done: Future) -> None:
        """Completion event of a fused ``Serve``: re-queue the process wake-up.

        Mirrors ``Future.resolve``'s wake-at-now hop so the fused path
        occupies exactly the same two (time, seq) slots as the classic
        ``serve()`` chain — the process resumes at the same position in the
        global dispatch order either way.
        """
        self.call_now(self._step, gen, None, done)

    def _close_process(self, done: Future) -> None:
        """Close a cancelled guard's generator exactly once."""
        gen = done._gen
        if gen is not None:
            done._gen = None
            gen.close()
            self._live_processes -= 1

    def _step(self, gen: Generator[Any, Any, Any], send: Any, done: Future) -> None:
        """Advance ``gen`` by one yield, interpreting its command."""
        if done._cancelled:
            # The process was fail-stopped between suspensions: the
            # generator was already closed by cancel(); a stale wake-up
            # (timer or late-resolving future) is simply dropped.  ``done``
            # stays unresolved forever, so nothing downstream of the dead
            # process runs.
            self._close_process(done)
            return
        while True:
            try:
                cmd = gen.send(send)
            except StopIteration as stop:
                self._live_processes -= 1
                done._gen = None
                done.resolve(stop.value)
                return
            if cmd is None:
                send = None
                continue  # a bare ``yield`` is a no-op scheduling point
            cls = cmd.__class__
            if cls is int:
                # Bare-int delay, interpreted without boxing into Delay —
                # the single hottest yield in protocol code.
                if cmd == 0:
                    send = None
                    continue
                if cmd < 0:
                    raise SimulationError(f"negative delay: {cmd}")
                self.call_at(self.now + cmd, self._step, gen, None, done)
                return
            if cls is Serve:
                # Fused resource occupancy: bump the resource's FIFO tail
                # and wake the process through the same two-event chain the
                # classic path uses (completion event, then a same-instant
                # hop) — but with no Future, no label, no closure.  Keeping
                # the event chain shape keeps every (time, seq) interleaving
                # byte-identical to the unfused engine.  (The command object
                # is a per-resource singleton; it is fully consumed right
                # here, before anyone else can touch it.)
                self.call_at(
                    cmd.resource.occupy_end(cmd.ns), self._serve_hop, gen, done
                )
                return
            if isinstance(cmd, int):
                cmd = Delay(int(cmd))
            if isinstance(cmd, Delay):
                if cmd.ns == 0:
                    send = None
                    continue
                self.call_at(self.now + cmd.ns, self._step, gen, None, done)
                return
            if isinstance(cmd, Future):
                if cmd._resolved:
                    send = cmd._value
                    continue
                # Structural waiter entry — resolve() turns it into the
                # exact _step(gen, value, done) event a closure would have
                # scheduled, minus the closure.
                cmd._waiters.append((gen, done))
                return
            raise SimulationError(
                f"process yielded unsupported command {cmd!r}; "
                "expected Delay, int, Future, Serve or None"
            )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Dispatch events until the queues drain (or limits are hit).

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
        max_events:
            Safety valve for tests; raise *before* dispatching event
            ``max_events + 1``, so exactly ``max_events`` events run.

        Dispatch order: at each instant the remaining ``_cur`` heap entries
        for that time fire first (they were scheduled before the clock
        arrived, hence with seqs smaller than anything scheduled *at* the
        instant), then the now-queue drains in FIFO order (== seq order).
        Time never advances while the now-queue is non-empty, so this
        reproduces the heap scheduler's global (time, seq) order exactly.
        """
        if until is not None and until < self.now:
            return  # nothing can fire: every pending event is at >= now
        until_ = _INF if until is None else until
        nowq = self._nowq
        dispatched = 0
        while True:
            # Select the next event (peek before popping so hitting the
            # max_events limit never loses an undispatched event).
            cur = self._cur
            if nowq:
                from_cur = bool(cur) and cur[0][0] == self.now
            else:
                if not cur:
                    keys = self._bucket_keys
                    if not keys:
                        break
                    key = heappop(keys)
                    cur = self._buckets.pop(key)
                    heapify(cur)
                    self._cur = cur
                    self._cur_key = key
                if cur[0][0] > until_:
                    break
                from_cur = True
            if max_events is not None and dispatched >= max_events:
                self.events_dispatched += dispatched
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
            if from_cur:
                when, _seq, fn, args = heappop(cur)
                self.now = when
            else:
                fn, args = nowq.popleft()
            self._npending -= 1
            fn(*args)
            dispatched += 1
        self.events_dispatched += dispatched
        if until is not None and self.now < until:
            self.now = until

    def run_until_quiescent(self, guard_processes: Iterable[Future] = ()) -> None:
        """Run to completion and verify the given processes finished.

        Deadlock detection: if the event queues drain while a guarded
        process is still pending (e.g. a node stuck at a barrier no one
        else reached), this raises with the stuck labels — far friendlier
        than a silent hang-at-time-T result.
        """
        self.run()
        stuck = [f.label for f in guard_processes if not f.resolved]
        if stuck:
            raise SimulationError(f"deadlock: processes never finished: {stuck}")


class _HeapEngine(Engine):
    """The seed binary-heap scheduler, selected via ``Engine(scheduler="heap")``.

    Bit-identical simulated results to the calendar queue; kept as the
    reference implementation for differential tests and as a debug fallback.
    """

    __slots__ = ()

    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        heappush(self._heap, (when, self._seq, fn, args or self._NO_ARGS))
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)

    def call_now(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current instant (heap-ordered)."""
        self._seq += 1
        heappush(self._heap, (self.now, self._seq, fn, args or self._NO_ARGS))
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Dispatch events until the heap drains (or limits are hit)."""
        heap = self._heap
        dispatched = 0
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            if max_events is not None and dispatched >= max_events:
                self.events_dispatched += dispatched
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
            _when, _seq, fn, args = heappop(heap)
            self.now = when
            fn(*args)
            dispatched += 1
        self.events_dispatched += dispatched
        if until is not None and self.now < until:
            self.now = until
