"""Event loop for the discrete-event simulator.

The engine keeps a binary heap of ``(time, seq, callback)`` entries.  Time is
an integer count of nanoseconds; ``seq`` is a monotonically increasing tie
breaker so that simultaneous events fire in schedule order, which makes every
simulation run bit-for-bit deterministic.

Processes (see :mod:`repro.sim.process`) are generators driven by the engine.
A process yields either

* a :class:`Delay` (or a bare non-negative ``int``), meaning *resume me after
  this many nanoseconds*, or
* a :class:`Future`, meaning *resume me when this future resolves* (the
  resolved value is sent back into the generator).

This tiny vocabulary is sufficient to express CPUs, protocol handlers,
network messages and barriers, and keeps the hot loop small — important
because protocol-heavy runs schedule hundreds of thousands of events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

__all__ = ["Delay", "Engine", "Future", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (bad yields, time travel, ...)."""


@dataclass(frozen=True, slots=True)
class Delay:
    """Command: suspend the yielding process for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise SimulationError(f"negative delay: {self.ns}")


class Future:
    """A one-shot synchronization cell.

    A future starts *pending*; a single call to :meth:`resolve` transitions
    it to *resolved* and wakes every process waiting on it.  Waiting on an
    already-resolved future resumes the waiter immediately (at the current
    simulated instant), so there is no ordering hazard between resolution
    and waiting.
    """

    __slots__ = ("_engine", "_resolved", "_value", "_waiters", "_cancelled",
                 "_gen", "label")

    def __init__(self, engine: "Engine", label: str = "") -> None:
        self._engine = engine
        self._resolved = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self._cancelled = False
        self._gen = None  # owning process generator, for guard futures
        self.label = label

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark a *process guard* future cancelled (node fail-stop).

        The owning generator is closed eagerly (deterministically, rather
        than at garbage-collection time, where finalizing a suspended
        ``yield from`` chain in arbitrary order can raise); the future
        never resolves and its waiters never fire.  Only meaningful for
        futures returned by :meth:`Engine.spawn`.
        """
        if not self._resolved:
            self._cancelled = True
            self._engine._close_process(self)

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError(f"future {self.label!r} not yet resolved")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future, waking all waiters at the current time."""
        if self._resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._resolved = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self._engine.call_at(self._engine.now, cb, value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Invoke ``cb(value)`` when resolved (immediately if already done)."""
        if self._resolved:
            self._engine.call_at(self._engine.now, cb, self._value)
        else:
            self._waiters.append(cb)


class Engine:
    """The discrete-event loop.

    Example
    -------
    >>> eng = Engine()
    >>> log = []
    >>> def proc():
    ...     yield Delay(100)
    ...     log.append(eng.now)
    >>> _ = eng.spawn(proc())
    >>> eng.run()
    >>> log
    [100]
    """

    __slots__ = (
        "_heap",
        "_seq",
        "now",
        "_live_processes",
        "events_dispatched",
        "max_queue_depth",
    )

    #: shared empty args tuple: no per-event allocation for argless events
    _NO_ARGS: tuple = ()

    def __init__(self) -> None:
        # Heap entries are (when, seq, fn, args) tuples; args are unpacked
        # at dispatch.  seq is unique, so fn/args never participate in the
        # heap comparison, and no closure is allocated per event — the
        # engine's hottest allocation site in protocol-heavy runs.
        self._heap: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self.now = 0
        self._live_processes = 0
        self.events_dispatched = 0
        self.max_queue_depth = 0

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, args or self._NO_ARGS))
        # High-water mark of the pending-event heap: a cheap storm
        # detector (retransmit storms, broadcast bursts) visible in
        # ClusterStats summaries without needing a trace.
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        self.call_at(self.now + delay, fn, *args)

    def future(self, label: str = "") -> Future:
        return Future(self, label)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #
    def spawn(
        self, gen: Generator[Any, Any, Any], label: str = ""
    ) -> "Future":
        """Start a generator as a simulated process.

        Returns a :class:`Future` resolved with the generator's return value
        when it finishes.  The first step of the process runs at the current
        simulated time (not synchronously inside :meth:`spawn`).
        """
        done = self.future(label or getattr(gen, "__name__", "process"))
        done._gen = gen
        self._live_processes += 1
        self.call_at(self.now, self._step, gen, None, done)
        return done

    def _close_process(self, done: Future) -> None:
        """Close a cancelled guard's generator exactly once."""
        gen = done._gen
        if gen is not None:
            done._gen = None
            gen.close()
            self._live_processes -= 1

    def _step(self, gen: Generator[Any, Any, Any], send: Any, done: Future) -> None:
        """Advance ``gen`` by one yield, interpreting its command."""
        if done._cancelled:
            # The process was fail-stopped between suspensions: the
            # generator was already closed by cancel(); a stale wake-up
            # (timer or late-resolving future) is simply dropped.  ``done``
            # stays unresolved forever, so nothing downstream of the dead
            # process runs.
            self._close_process(done)
            return
        while True:
            try:
                cmd = gen.send(send)
            except StopIteration as stop:
                self._live_processes -= 1
                done._gen = None
                done.resolve(stop.value)
                return
            if cmd is None:
                send = None
                continue  # a bare ``yield`` is a no-op scheduling point
            if isinstance(cmd, int):
                cmd = Delay(cmd)
            if isinstance(cmd, Delay):
                if cmd.ns == 0:
                    send = None
                    continue
                self.call_at(self.now + cmd.ns, self._step, gen, None, done)
                return
            if isinstance(cmd, Future):
                if cmd.resolved:
                    send = cmd.value
                    continue
                cmd.add_callback(
                    lambda value, g=gen, d=done: self._step(g, value, d)
                )
                return
            raise SimulationError(
                f"process yielded unsupported command {cmd!r}; "
                "expected Delay, int, Future or None"
            )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Dispatch events until the heap drains (or limits are hit).

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
        max_events:
            Safety valve for tests; raise if exceeded.
        """
        heap = self._heap
        dispatched = 0
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            _when, _seq, fn, args = heapq.heappop(heap)
            self.now = when
            fn(*args)
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
        self.events_dispatched += dispatched
        if until is not None and self.now < until:
            self.now = until

    def run_until_quiescent(self, guard_processes: Iterable[Future] = ()) -> None:
        """Run to completion and verify the given processes finished.

        Deadlock detection: if the heap drains while a guarded process is
        still pending (e.g. a node stuck at a barrier no one else reached),
        this raises with the stuck labels — far friendlier than a silent
        hang-at-time-T result.
        """
        self.run()
        stuck = [f.label for f in guard_processes if not f.resolved]
        if stuck:
            raise SimulationError(f"deadlock: processes never finished: {stuck}")
