"""Discrete-event simulation engine.

This subpackage is the foundation of the reproduction: a small,
deterministic, coroutine-based discrete-event simulator in the style of
classic architecture simulators.  Virtual time is integral nanoseconds.

Public API
----------
:class:`Engine`
    The event loop: a priority queue of timestamped events and a registry
    of live processes.
:class:`Process`
    A simulated thread of control, written as a Python generator that
    yields :class:`Delay` and :class:`Future` commands.
:class:`Future`
    One-shot synchronization cell; processes wait on it, anyone resolves it.
:class:`Resource`
    Non-preemptive FIFO single server (models a CPU or a DMA engine).
:class:`PortedResource`
    Bank of parallel FIFO servers with future release times (models the
    output ports of a shared switch fabric).
:class:`CountingSemaphore`
    Counter with waiters, used e.g. for ``ready_to_recv`` block arrival.
"""

from repro.sim.engine import Delay, Engine, Future, SimulationError
from repro.sim.process import Process
from repro.sim.resource import CountingSemaphore, PortedResource, Resource

__all__ = [
    "CountingSemaphore",
    "Delay",
    "Engine",
    "Future",
    "PortedResource",
    "Process",
    "Resource",
    "SimulationError",
]
