"""FIFO resources and counting semaphores.

:class:`Resource` models a non-preemptive single server — a compute CPU, a
protocol processor, or a network interface.  Because service is FIFO and the
service time of each job is known when it is submitted, the completion time
of a job is simply ``max(now, free_at) + duration``; no explicit queue needs
to be simulated, which keeps the hot path O(log n) (one heap push).

:class:`PortedResource` generalizes this to a bank of parallel FIFO servers
(the output ports of a switch fabric): each job names its port and may carry
a *release time* in the future — the instant the job becomes eligible for
service, e.g. a frame's arrival at the switch after upstream serialization.
Service still starts at ``max(port_free_at, release)``, so the whole bank
stays O(1) arithmetic per job, and the wait ``start - release`` is the
job's contention delay, reported back to the caller exactly.

:class:`CountingSemaphore` supports the paper's ``ready_to_recv`` call: a
receiver "holds down a counting semaphore until all the blocks have arrived".
"""

from __future__ import annotations

from repro.sim.engine import Engine, Future, Serve, SimulationError

__all__ = ["CountingSemaphore", "PortedResource", "Resource"]


class Resource:
    """Non-preemptive FIFO single server with utilization accounting."""

    __slots__ = ("_engine", "_free_at", "busy_ns", "jobs", "label",
                 "_serve_label", "_cmd")

    def __init__(self, engine: Engine, label: str = "resource") -> None:
        self._engine = engine
        self._free_at = 0
        self.busy_ns = 0
        self.jobs = 0
        self.label = label
        self._serve_label = label + ".serve"
        # Reusable Serve command for the fused yield path; safe to share
        # because the engine consumes it synchronously (see Serve docs).
        self._cmd = Serve(self)

    @property
    def free_at(self) -> int:
        """Earliest time a newly submitted job could start service."""
        return max(self._free_at, self._engine.now)

    def serve(self, duration: int, tag: object = None) -> Future:
        """Submit a job of ``duration`` ns; returns a future resolved at its
        completion time.  Jobs are served in submission order."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        start = max(self._free_at, self._engine.now)
        finish = start + duration
        self._free_at = finish
        self.busy_ns += duration
        self.jobs += 1
        done = self._engine.future(self._serve_label)
        self._engine.call_at(finish, done.resolve, tag)
        return done

    def use(self, duration: int) -> object:
        """Yieldable command equivalent to ``yield resource.serve(duration)``.

        Under a fused engine the scheduler interprets the returned
        :class:`~repro.sim.engine.Serve` command inline — one wake-up event,
        no Future — with identical timing and FIFO semantics.  Under an
        unfused (heap/debug) engine this transparently falls back to the
        classic future-based path, so call sites never need to branch.
        """
        if self._engine.fused:
            cmd = self._cmd
            cmd.ns = duration
            return cmd
        return self.serve(duration)

    def occupy_end(self, duration: int) -> int:
        """Charge the resource for ``duration`` ns; return the finish time.

        Same accounting as :meth:`serve` with no event and no future — the
        caller schedules (or skips) the completion itself.
        """
        if duration < 0:
            raise SimulationError(f"negative occupancy {duration}")
        start = self._free_at
        now = self._engine.now
        if start < now:
            start = now
        finish = start + duration
        self._free_at = finish
        self.busy_ns += duration
        self.jobs += 1
        return finish

    def occupy(self, duration: int) -> None:
        """Charge the resource for ``duration`` ns without a completion event.

        Used for fire-and-forget occupancy (e.g. a protocol handler whose
        completion no process waits on).
        """
        self.occupy_end(duration)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this resource spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)


class PortedResource:
    """A bank of parallel non-preemptive FIFO servers (e.g. switch ports).

    Jobs are submitted with :meth:`serve_at`, naming a port and a release
    time (``now`` or later).  Per port, jobs are served in submission
    order; a job submitted after another never overtakes it even if its
    release time is earlier — the deterministic arbitration order is the
    engine's event order, which is exactly what makes runs replayable.
    """

    __slots__ = ("_engine", "_free_at", "busy_ns", "wait_ns", "jobs", "label")

    def __init__(self, engine: Engine, n_ports: int, label: str = "ports") -> None:
        if n_ports < 1:
            raise SimulationError(f"need at least one port; got {n_ports}")
        self._engine = engine
        self._free_at = [0] * n_ports
        self.busy_ns = [0] * n_ports
        self.wait_ns = [0] * n_ports
        self.jobs = [0] * n_ports
        self.label = label

    @property
    def n_ports(self) -> int:
        return len(self._free_at)

    def free_at(self, port: int) -> int:
        """Earliest time a newly submitted job on ``port`` could start."""
        return max(self._free_at[port], self._engine.now)

    def serve_at(
        self, port: int, release_ns: int, duration: int, tag: object = None
    ) -> tuple[int, int, Future]:
        """Submit a job eligible at ``release_ns`` taking ``duration`` ns.

        Returns ``(start, finish, future)``: service runs [start, finish)
        with ``start = max(port_free_at, release_ns, now)``, and the future
        resolves at ``finish``.  ``start - release_ns`` is the job's
        queueing (contention) delay, accumulated in ``wait_ns[port]``.
        """
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        if release_ns < self._engine.now:
            raise SimulationError(
                f"release time {release_ns} is in the past (now {self._engine.now})"
            )
        start = max(self._free_at[port], release_ns)
        finish = start + duration
        self._free_at[port] = finish
        self.busy_ns[port] += duration
        self.wait_ns[port] += start - release_ns
        self.jobs[port] += 1
        done = self._engine.future(f"{self.label}.serve")
        self._engine.call_at(finish, done.resolve, tag)
        return start, finish, done

    def serve_at_end(
        self, port: int, release_ns: int, duration: int
    ) -> tuple[int, int]:
        """:meth:`serve_at` without the completion future: ``(start, finish)``.

        Same accounting and FIFO semantics; the caller schedules the
        completion itself (the fused switch path).
        """
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        if release_ns < self._engine.now:
            raise SimulationError(
                f"release time {release_ns} is in the past (now {self._engine.now})"
            )
        start = max(self._free_at[port], release_ns)
        finish = start + duration
        self._free_at[port] = finish
        self.busy_ns[port] += duration
        self.wait_ns[port] += start - release_ns
        self.jobs[port] += 1
        return start, finish


class CountingSemaphore:
    """A counter with a single waiter-on-threshold.

    ``post(n)`` adds to the count; :meth:`wait_for` returns a future resolved
    once the count reaches the requested threshold.  The count is *consumed*
    when the wait is satisfied, so the semaphore can be reused phase after
    phase (the usage pattern of ``ready_to_recv``).
    """

    __slots__ = ("_engine", "count", "_threshold", "_waiter", "label")

    def __init__(self, engine: Engine, label: str = "sema") -> None:
        self._engine = engine
        self.count = 0
        self._threshold: int | None = None
        self._waiter: Future | None = None
        self.label = label

    def post(self, n: int = 1) -> None:
        if n < 0:
            raise SimulationError("cannot post a negative count")
        self.count += n
        self._maybe_release()

    def wait_for(self, threshold: int) -> Future:
        """Future resolved when at least ``threshold`` posts have occurred."""
        if self._waiter is not None:
            raise SimulationError(f"semaphore {self.label!r} already has a waiter")
        if threshold < 0:
            raise SimulationError("negative semaphore threshold")
        fut = self._engine.future(f"{self.label}.wait")
        self._threshold = threshold
        self._waiter = fut
        self._maybe_release()
        return fut

    def _maybe_release(self) -> None:
        if self._waiter is not None and self.count >= (self._threshold or 0):
            fut, self._waiter = self._waiter, None
            self.count -= self._threshold or 0
            self._threshold = None
            fut.resolve(None)
