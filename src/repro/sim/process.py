"""Helpers for writing simulated processes.

A *process* is any generator accepted by :meth:`repro.sim.engine.Engine.spawn`.
This module provides small composable helpers used throughout the Tempest
model — joining futures, spawning-and-waiting, and a thin :class:`Process`
handle that carries a label for diagnostics.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.sim.engine import Engine, Future

__all__ = ["Process", "all_of", "join"]


class Process:
    """Handle to a spawned process: its completion future plus a label.

    Purely a convenience for code that wants to keep track of many node
    processes and report *which one* deadlocked.
    """

    __slots__ = ("done", "label")

    def __init__(self, engine: Engine, gen: Generator[Any, Any, Any], label: str):
        self.label = label
        self.done = engine.spawn(gen, label)

    @property
    def finished(self) -> bool:
        return self.done.resolved

    @property
    def result(self) -> Any:
        return self.done.value


def all_of(engine: Engine, futures: Iterable[Future], label: str = "all_of") -> Future:
    """Return a future resolved when every input future has resolved.

    The combined future resolves with a list of the individual values, in
    input order.
    """
    futures = list(futures)
    combined = engine.future(label)
    remaining = len(futures)
    values: list[Any] = [None] * remaining
    if remaining == 0:
        combined.resolve([])
        return combined

    def arm(index: int, fut: Future) -> None:
        def on_done(value: Any) -> None:
            nonlocal remaining
            values[index] = value
            remaining -= 1
            if remaining == 0:
                combined.resolve(values)

        fut.add_callback(on_done)

    for i, fut in enumerate(futures):
        arm(i, fut)
    return combined


def join(futures: Iterable[Future]) -> Generator[Any, Any, list[Any]]:
    """Process fragment: wait for each future in turn, return their values.

    Usage inside a process body::

        values = yield from join([f1, f2, f3])

    Waiting serially is correct (and as fast) in virtual time because the
    futures resolve independently of the order in which we observe them.
    """
    values = []
    for fut in futures:
        value = yield fut
        values.append(value)
    return values
