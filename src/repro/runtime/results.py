"""Run results: timing, stats, and final numerics for cross-checking."""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro.tempest.stats import ClusterStats

__all__ = ["RunResult"]


def _value_equal(a, b) -> bool:
    """Bitwise value equality, recursing through containers and ndarrays
    (``==`` on an ndarray yields an elementwise array, so dataclass
    equality cannot be used directly on a RunResult)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and np.array_equal(a, b, equal_nan=True)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_value_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_value_equal(x, y) for x, y in zip(a, b))
        )
    return bool(a == b)


@dataclass
class RunResult:
    """Outcome of one backend run of one program."""

    program: str
    backend: str               # 'shmem' | 'shmem-opt' | 'msgpass' | 'uniproc'
    elapsed_ns: int
    stats: ClusterStats | None
    arrays: dict[str, np.ndarray]
    scalars: dict[str, float]
    extra: dict = field(default_factory=dict)
    #: False for a *degraded* run: the interconnect partitioned, the
    #: transport gave up and parked instead of aborting, and stats/arrays
    #: reflect the state at the give-up point (see ``stats.failure``).
    completed: bool = True
    #: per-phase time-breakdown (see repro.obs.PhaseProfiler.breakdown);
    #: None unless the run was profiled (``run_shmem(profile_phases=True)``)
    phase_breakdown: dict | None = None
    #: exact critical-path decomposition + what-if bounds (see
    #: repro.obs.CriticalPathAnalyzer.result); None unless the run was
    #: analyzed (``run_shmem(critical_path=True)``) and completed
    critical_path: dict | None = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / 1e6

    @property
    def total_misses(self) -> int:
        return self.stats.total_misses if self.stats is not None else 0

    @property
    def misses_per_node(self) -> float:
        if self.stats is None:
            return 0.0
        return self.stats.avg_misses_per_node

    @property
    def comm_ms(self) -> float:
        """Average per-node communication time (paper's Table 3 metric)."""
        if self.stats is None:
            return 0.0
        return self.stats.avg_comm_ns / 1e6

    @property
    def compute_ms(self) -> float:
        if self.stats is None:
            return self.elapsed_ms
        return self.stats.avg_compute_ns / 1e6

    def speedup_over(self, uniproc: "RunResult") -> float:
        return uniproc.elapsed_ns / self.elapsed_ns

    @property
    def reliability(self) -> dict:
        """Reliable-transport repair counters; empty on a perfect wire."""
        if self.stats is None:
            return {}
        rel = self.stats.reliability_summary()
        return rel if any(rel.values()) else {}

    def exact_equal(self, other: "RunResult") -> bool:
        """True iff every field is exactly equal, ndarrays bit-for-bit.

        This is the serve layer's correctness yardstick: a result served
        from the content-addressed cache or computed in a worker process
        must be ``exact_equal`` to a direct in-process run — no
        tolerances, because the simulator is deterministic.
        """
        return all(
            _value_equal(getattr(self, f.name), getattr(other, f.name))
            for f in dataclass_fields(RunResult)
        )

    def checksums(self) -> dict[str, float]:
        """Stable per-array checksums for cross-backend comparison."""
        return {name: float(np.sum(arr)) for name, arr in sorted(self.arrays.items())}

    def assert_same_numerics(self, other: "RunResult", rtol: float = 1e-10) -> None:
        """Raise if two runs' final arrays/scalars diverge."""
        if set(self.arrays) != set(other.arrays):
            raise AssertionError(
                f"array sets differ: {sorted(self.arrays)} vs {sorted(other.arrays)}"
            )
        for name in self.arrays:
            np.testing.assert_allclose(
                self.arrays[name],
                other.arrays[name],
                rtol=rtol,
                err_msg=f"array {name!r}: {self.backend} vs {other.backend}",
            )
        for name in self.scalars:
            a, b = self.scalars[name], other.scalars.get(name)
            if b is None or abs(a - b) > rtol * max(1.0, abs(a)):
                raise AssertionError(f"scalar {name!r}: {a} vs {b}")

    def summary(self) -> dict:
        out = {
            "program": self.program,
            "backend": self.backend,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "compute_ms": round(self.compute_ms, 3),
            "comm_ms": round(self.comm_ms, 3),
            "misses_per_node": round(self.misses_per_node, 1),
        }
        if not self.completed:
            out["completed"] = False
        out.update(self.reliability)
        out.update(self.extra)
        return out
