"""SPMD runtimes that execute mini-HPF programs on the simulated cluster.

Four backends, matching the paper's evaluation matrix:

``run_shmem(optimize=False)``  transparent shared memory — every remote
    access goes through the default coherence protocol (the *unoptimized*
    bars of Figure 3);
``run_shmem(optimize=True)``   compiler-orchestrated incoherence — the
    planner's call schedules bypass the protocol for analyzed sections,
    with the ``bulk`` / ``rt_elim`` / ``pre`` knobs of Sections 4.2-4.3;
``run_msgpass``                owner-computes message passing (the
    ``pghpf``-MP comparator): exact sections move as point-to-point
    messages, no coherence at all;
``run_uniproc``                single-workstation reference run — the
    speedup denominator.

Execution is two-pass: a *functional* pass walks the program in order,
computing real numerics (vectorized NumPy against the single backing
store) while emitting per-node access traces; a *timing* pass replays
those traces as node processes against the discrete-event cluster, where
the protocol state machines, version validators and contract checks run
for real.  All backends must produce identical numerics — the integration
suite asserts it.
"""

from repro.runtime.results import RunResult
from repro.runtime.shmem import run_shmem
from repro.runtime.msgpass import run_msgpass
from repro.runtime.uniproc import run_uniproc

__all__ = ["RunResult", "run_msgpass", "run_shmem", "run_uniproc"]
