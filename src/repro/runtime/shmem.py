"""The shared-memory executor: unoptimized and compiler-optimized runs.

Unoptimized: each parallel loop becomes, per node, *read accesses* to every
block its read sections touch (misses serviced by the default protocol),
*write accesses* to its write-section blocks (eager faults), compute time,
and the loop-end barrier.

Optimized: the planner's Figure 2 call schedule wraps the loop — senders
``mk_writable`` + push, receivers ``implicit_writable`` + ``ready_to_recv``
+ post-loop ``implicit_invalidate`` — with barriers between stages.  The
loop body then *hits* on every compiler-controlled block; only boundary
(block-straddling) data still misses, exactly the residue the paper
reports.  Options map to the paper's Sections 4.2-4.3: ``bulk`` payload
coalescing, ``rt_elim`` run-time overhead elimination, and ``pre``
availability-based redundant-communication elimination.

Two-phase structure
-------------------
Execution is split into an explicit *build* phase and an *execute* phase:

``build_shmem_plan``
    the functional pass — allocates the shared segment, evaluates the
    program's numerics, runs the compiler analysis and planner, and
    reduces everything to a :class:`ShmemPlan`: per-node op traces plus
    the final arrays/scalars.  The plan depends only on the program and
    the *geometry* half of the config (node count, block/page sizes,
    compute-cost model) — never on the fault, combining or switch
    configuration — and is a plain picklable value, so ``repro.serve``
    memoizes it on disk and reuses it across every cell of an ablation
    matrix that varies only the wire.

``execute_shmem_plan``
    the timing pass — replays the plan's traces against a freshly built
    cluster under the *full* config (faults, combining, switch, crash
    recovery).  Array contents are irrelevant to timing (the simulator
    moves block ids, not data), so the segment is re-allocated without
    re-running initializers.

``run_shmem`` composes the two and is byte-identical to the historical
single-pass implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

import numpy as np

from repro.core.blocks import section_blocks
from repro.core.calls import (
    FlushBlocks,
    ImplicitInvalidate,
    ImplicitWritable,
    MkWritable,
    Prefetch,
    ReadyToRecv,
    SelfInvalidate,
    SendBlocks,
)
from repro.core.contract import check_plan
from repro.core.planner import CommPlan, plan_loop
from repro.core.pre import AvailabilityTracker
from repro.hpf.ast import ArrayDecl, ParallelAssign, Program, Reduce, ScalarAssign
from repro.runtime.phases import PhaseRecord, ProgramAnalysis, apply_initializers, walk_phases
from repro.runtime.results import RunResult
from repro.runtime.traces import NodeTrace, replay
from repro.tempest.cluster import Cluster
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.faults import FaultConfig
from repro.tempest.memory import Distribution, HomePolicy, SharedMemory

__all__ = [
    "ShmemPlan",
    "build_shmem_plan",
    "execute_shmem_plan",
    "run_shmem",
    "trace_geometry",
]

#: ClusterConfig fields that can NOT affect the functional pass: they
#: describe the wire and the failure model, which the timing pass alone
#: consumes.  Everything else is *geometry* — it pins the block layout,
#: the planner's decisions and the per-op compute costs baked into traces.
_NON_GEOMETRY_FIELDS = frozenset({"faults", "combine", "switch"})


def trace_geometry(config: ClusterConfig) -> dict:
    """The config fields a :class:`ShmemPlan` depends on, by name.

    Two configs with equal geometry produce identical plans for the same
    program; the fault/combining/switch layers are excluded, which is what
    lets one cached plan serve a whole wire-ablation matrix.
    """
    return {
        f.name: getattr(config, f.name)
        for f in dataclass_fields(ClusterConfig)
        if f.name not in _NON_GEOMETRY_FIELDS
    }


def _allocate(program: Program, config: ClusterConfig, home_policy: HomePolicy):
    """Build the shared segment plus plain storage for replicated arrays."""
    mem = SharedMemory(config, home_policy=home_policy)
    arrays: dict[str, np.ndarray] = {}
    for decl in program.arrays.values():
        if decl.dist == "replicated":
            arrays[decl.name] = np.zeros(decl.shape, order="F")
        else:
            dist = (
                Distribution.block(config.n_nodes)
                if decl.dist == "block"
                else Distribution.cyclic(config.n_nodes)
            )
            arrays[decl.name] = mem.alloc(decl.name, decl.shape, dist).data
    return mem, arrays


def _phase_blocks(mem: SharedMemory, sections) -> np.ndarray:
    """Union of block ids touched by a tuple of (array, Section) pairs.

    Memoized by object identity on the SharedMemory instance (its lifetime
    matches the run): loop instances are cached per environment, so a
    time-step loop presents the *same* section tuples every iteration —
    caching here turns paper-scale trace building from minutes into
    seconds.  The cached entry pins the key object so its id cannot be
    recycled.
    """
    cache = getattr(mem, "_phase_block_cache", None)
    if cache is None:
        cache = mem._phase_block_cache = {}
    hit = cache.get(id(sections))
    if hit is not None:
        return hit[1]
    pieces = [
        section_blocks(mem.arrays[a], sec) for a, sec in sections if a in mem.arrays
    ]
    pieces = [p for p in pieces if len(p)]
    if not pieces:
        out = np.empty(0, dtype=np.int64)
    elif len(pieces) == 1:
        out = pieces[0]
    else:
        out = np.unique(np.concatenate(pieces))
    cache[id(sections)] = (sections, out)
    return out


def _emit_loop_body(
    rec: PhaseRecord,
    mem: SharedMemory,
    traces: list[NodeTrace],
    config: ClusterConfig,
) -> None:
    """Reads, writes and compute of the loop itself (both modes)."""
    assert rec.inst is not None
    stmt = rec.stmt
    label = getattr(stmt, "label", "")
    for p, t in enumerate(traces):
        t.read(_phase_blocks(mem, rec.inst.reads[p]), rec.index, label)
        t.write(_phase_blocks(mem, rec.inst.writes[p]), rec.index)
        units = rec.compute_units(p)
        if units or not rec.inst.iterations[p].is_empty:
            t.compute(units * config.compute_ns_per_unit + config.loop_overhead_ns)


def _effective_plan(plan: CommPlan, tracker: AvailabilityTracker | None) -> CommPlan:
    """Apply PRE filtering: drop redundant sends, retain receiver copies."""
    if tracker is None:
        return plan
    new_pre = []
    for stage in plan.pre:
        ns = []
        recv_counts: dict[int, int] = {}
        for op in stage:
            if isinstance(op, SendBlocks) and op.purpose == "read":
                fresh = tracker.filter_send(op.dst, np.asarray(op.blocks))
                if len(fresh):
                    ns.append(SendBlocks(op.node, tuple(fresh.tolist()), op.dst, op.bulk))
                    recv_counts[op.dst] = recv_counts.get(op.dst, 0) + len(fresh)
            elif isinstance(op, SendBlocks):  # write preload: never elided
                ns.append(op)
                recv_counts[op.dst] = recv_counts.get(op.dst, 0) + len(op.blocks)
            elif isinstance(op, ReadyToRecv):
                pass  # rebuilt from the filtered sends
            else:
                ns.append(op)
        for dst, count in sorted(recv_counts.items()):
            ns.append(ReadyToRecv(dst, count))
        new_pre.append(ns)
    new_post = [
        [op for op in stage if not isinstance(op, ImplicitInvalidate)]
        for stage in plan.post
    ]
    return CommPlan(new_pre, new_post, plan.controlled, plan.boundary, plan.rt_elim, plan.bulk)


def _emit_call_op(op, traces: list[NodeTrace]) -> None:
    t = traces[op.node]
    if isinstance(op, MkWritable):
        t.mkw(op.blocks)
    elif isinstance(op, ImplicitWritable):
        t.iw(op.blocks, op.memo_key)
    elif isinstance(op, SendBlocks):
        t.send(op.blocks, op.dst, op.bulk)
    elif isinstance(op, ReadyToRecv):
        t.recv(op.count)
    elif isinstance(op, ImplicitInvalidate):
        t.inv(op.blocks)
    elif isinstance(op, FlushBlocks):
        t.flush(op.blocks, op.owner, op.bulk)
    elif isinstance(op, Prefetch):
        t.prefetch(op.blocks)
    elif isinstance(op, SelfInvalidate):
        t.selfinv(op.blocks)
    else:  # pragma: no cover
        raise TypeError(f"unknown call op {op!r}")


@dataclass
class ShmemPlan:
    """The cacheable product of the functional pass for one shmem run.

    A plan is a pure value: per-node op traces (plain tuples and ndarrays),
    the program's final numerics, the planner's counters, and the build
    inputs needed to validate reuse.  It contains no engine, cluster or
    generator state, so it pickles cleanly — ``repro.serve`` content-
    addresses plans on disk and replays one plan under many wire configs.
    """

    program_name: str
    #: declarations in allocation order — replaying them against a fresh
    #: ``SharedMemory`` reproduces the exact block numbering of the build
    array_decls: tuple[ArrayDecl, ...]
    #: per-node op lists (see repro.runtime.traces for the vocabulary)
    traces: list[list[tuple]]
    #: final array values from the functional pass (the simulation never
    #: touches data, so these ARE the run's numerics)
    arrays: dict[str, np.ndarray]
    scalars: dict[str, float]
    #: geometry fields (see :func:`trace_geometry`) the plan was built under
    geometry: dict
    # build options
    optimize: bool = False
    bulk: bool = True
    rt_elim: bool = False
    pre: bool = False
    advisory: str | bool = False
    home_policy: HomePolicy = HomePolicy.ALIGNED
    # planner counters, reported verbatim in RunResult.extra
    plans_built: int = 0
    controlled_blocks: int = 0
    tracker_stats: dict | None = None


def _check_optimizer_options(
    optimize: bool, rt_elim: bool, pre: bool, advisory: str | bool, protocol: str
) -> None:
    if (rt_elim or pre or advisory) and not optimize:
        raise ValueError("rt_elim/pre/advisory are optimizer options; pass optimize=True")
    if optimize and protocol != "invalidate":
        raise ValueError(
            "the compiler-control extensions assume invalidation semantics; "
            "optimize=True requires protocol='invalidate'"
        )


def build_shmem_plan(
    program: Program,
    config: ClusterConfig | None = None,
    optimize: bool = False,
    bulk: bool = True,
    rt_elim: bool = False,
    pre: bool = False,
    advisory: str | bool = False,
    home_policy: HomePolicy = HomePolicy.ALIGNED,
    check_contracts: bool = True,
) -> ShmemPlan:
    """The functional pass: evaluate numerics and emit per-node traces.

    Deterministic in its arguments: the same program and geometry produce
    an equivalent plan (op-for-op identical traces, identical numerics),
    which is what makes plans safe to memoize.  Only the geometry half of
    ``config`` matters — see :func:`trace_geometry`.
    """
    config = config or ClusterConfig()
    _check_optimizer_options(optimize, rt_elim, pre, advisory, "invalidate")
    mem, arrays = _allocate(program, config, home_policy)
    apply_initializers(program, arrays)
    scalars = dict(program.scalars)
    analysis = ProgramAnalysis(program, config.n_nodes)
    traces = [NodeTrace(n) for n in range(config.n_nodes)]
    tracker = AvailabilityTracker(config.n_nodes) if pre else None
    # Blocks each node retains implicitly writable across loops (rt-elim).
    retained_rt: list[set[int]] = [set() for _ in range(config.n_nodes)]
    plan_cache: dict[tuple[int, int], CommPlan] = {}
    plans_built = 0
    controlled_blocks = 0

    last_index = 0
    for rec in walk_phases(program, analysis, arrays, scalars):
        # Phase markers carry no simulated cost; plain replay skips them,
        # instrumented replay turns them into ``phase`` instants.
        label = getattr(rec.stmt, "label", "") or rec.kind
        for t in traces:
            t.phase(rec.index, label)
        last_index = rec.index
        if isinstance(rec.stmt, ScalarAssign):
            for t in traces:
                t.compute(rec.compute_units(t.node) * config.compute_ns_per_unit)
            continue
        if isinstance(rec.stmt, Reduce):
            assert rec.inst is not None
            for p, t in enumerate(traces):
                t.read(_phase_blocks(mem, rec.inst.reads[p]), rec.index, rec.stmt.label)
                t.compute(rec.compute_units(p) * config.compute_ns_per_unit)
                t.reduce(1)
            continue

        assert isinstance(rec.stmt, ParallelAssign) and rec.inst is not None
        if not optimize:
            _emit_loop_body(rec, mem, traces, config)
            for t in traces:
                t.barrier()
            continue

        # ---------------- optimized path ---------------- #
        key = (id(rec.stmt), id(rec.inst))
        plan = plan_cache.get(key)
        if plan is None:
            plan = plan_loop(rec.inst, mem, bulk=bulk, rt_elim=rt_elim, advisory=advisory)
            plan_cache[key] = plan
            plans_built += 1
        eff = _effective_plan(plan, tracker)
        # Note: captured after PRE filtering, so freshly pushed blocks count
        # as retained for the restore-consistency rule (their invalidation
        # is deferred to the region-end cleanup).
        retained = (
            {n: tracker.retained(n) for n in range(config.n_nodes)} if tracker else None
        )
        if check_contracts and not eff.is_empty:
            check_plan(eff, retained)
        controlled_blocks += eff.total_controlled_blocks()

        for i, stage in enumerate(eff.pre):
            for op in stage:
                _emit_call_op(op, traces)
            if i < len(eff.pre) - 1:
                for t in traces:
                    t.barrier()

        # Retained-copy vs demand-read conflict resolution (rt-elim / PRE):
        # a block kept implicitly writable across loops may also be a
        # *boundary* block of some other loop, whose demand read would hit
        # the retained copy after the owner silently rewrote it — the
        # paper's "extra work required for dealing with overlapping
        # ranges".  Invalidate such blocks locally before the loop's reads
        # so they take a fresh demand miss.
        if rt_elim or tracker is not None:
            # retained_rt tracks *tags* still implicitly writable (their
            # invalidate was suppressed) — a superset of PRE's availability,
            # which forgets killed data while the tag lives on.
            for dst, edge in plan.boundary.items():
                if not len(edge):
                    continue
                conflict = retained_rt[dst].intersection(edge.tolist())
                if conflict:
                    traces[dst].inv(sorted(conflict))
                    retained_rt[dst] -= conflict
                    if tracker is not None:
                        tracker.drop(dst, sorted(conflict))
            for dst, blocks in plan.controlled.items():
                retained_rt[dst].update(blocks.tolist())
        _emit_loop_body(rec, mem, traces, config)
        if tracker is not None:
            for p in range(config.n_nodes):
                wb = _phase_blocks(mem, rec.inst.writes[p])
                if len(wb):
                    tracker.note_writes(p, wb)
        for stage in eff.post:
            for op in stage:
                _emit_call_op(op, traces)
        for t in traces:
            t.barrier()

    # PRE cleanup: restore consistency on all retained copies at region end.
    if tracker is not None:
        for p, t in enumerate(traces):
            t.phase(last_index + 1, "pre-cleanup")
            leftovers = tracker.drain(p)
            t.inv(leftovers.tolist())
            t.barrier()

    return ShmemPlan(
        program_name=program.name,
        array_decls=tuple(program.arrays.values()),
        traces=[t.ops for t in traces],
        arrays=arrays,
        scalars=scalars,
        geometry=trace_geometry(config),
        optimize=optimize,
        bulk=bulk,
        rt_elim=rt_elim,
        pre=pre,
        advisory=advisory,
        home_policy=home_policy,
        plans_built=plans_built,
        controlled_blocks=controlled_blocks,
        tracker_stats=tracker.stats() if tracker is not None else None,
    )


def _reallocate_segment(plan: ShmemPlan, config: ClusterConfig) -> SharedMemory:
    """Rebuild the shared segment a plan's traces were numbered against.

    Allocation order reproduces the build's block numbering exactly; the
    data is left zeroed because the timing pass moves block ids, never
    values (the run's numerics live in ``plan.arrays``).
    """
    mem = SharedMemory(config, home_policy=plan.home_policy)
    for decl in plan.array_decls:
        if decl.dist == "replicated":
            continue
        dist = (
            Distribution.block(config.n_nodes)
            if decl.dist == "block"
            else Distribution.cyclic(config.n_nodes)
        )
        mem.alloc(decl.name, decl.shape, dist)
    return mem


def execute_shmem_plan(
    plan: ShmemPlan,
    config: ClusterConfig | None = None,
    protocol: str = "invalidate",
    audit: bool = True,
    audit_each_barrier: bool = False,
    audit_sample_prob: float = 1.0,
    obs=None,
    profile_phases: bool = False,
    critical_path: bool = False,
) -> RunResult:
    """The timing pass: replay a plan's traces under the full config.

    ``config`` must agree with the plan on every geometry field (see
    :func:`trace_geometry`); the fault/combining/switch layers are free to
    differ from whatever the plan was built under — that is the point.
    """
    config = config or ClusterConfig()
    _check_optimizer_options(
        plan.optimize, plan.rt_elim, plan.pre, plan.advisory, protocol
    )
    geometry = trace_geometry(config)
    if geometry != plan.geometry:
        changed = sorted(
            k for k in geometry if geometry.get(k) != plan.geometry.get(k)
        )
        raise ValueError(
            f"plan for {plan.program_name!r} was built under different "
            f"cluster geometry (differing fields: {changed})"
        )
    mem = _reallocate_segment(plan, config)
    profiler = None
    analyzer = None
    if profile_phases or critical_path:
        from repro.obs import CriticalPathAnalyzer, EventBus, PhaseProfiler

        if obs is None:
            obs = EventBus()
        if profile_phases:
            profiler = PhaseProfiler(obs, config.n_nodes)
        if critical_path:
            analyzer = CriticalPathAnalyzer(obs, config.n_nodes)
    cluster = Cluster(config, mem, protocol=protocol, obs=obs)
    traces = plan.traces
    program_factory = None
    if config.faults.crashes or config.faults.checkpoint_every:
        # Crash/checkpoint runs track per-node replay cursors so a barrier
        # checkpoint can record where each node is, and rollback can respawn
        # replays mid-trace from the recorded cursor.
        cluster.replay_cursor = [0] * config.n_nodes

        def program_factory(n: int, start: int):
            return replay(cluster, n, traces[n], start)

    stats = cluster.run(
        {n: replay(cluster, n, traces[n]) for n in range(config.n_nodes)},
        audit=audit,
        audit_each_barrier=audit_each_barrier,
        audit_sample_prob=audit_sample_prob,
        program_factory=program_factory,
    )

    backend = "shmem-opt" if plan.optimize else "shmem"
    extra = {
        "dual_cpu": config.dual_cpu,
        "barriers": cluster.barrier_net.barriers_completed,
        "protocol": protocol,
    }
    if config.faults.enabled:
        extra["faults"] = {
            "drop_prob": config.faults.drop_prob,
            "dup_prob": config.faults.dup_prob,
            "jitter_ns": config.faults.jitter_ns,
            "seed": config.faults.seed,
            **stats.reliability_summary(),
        }
        if config.faults.link_faults:
            extra["faults"]["link_profiles"] = len(config.faults.link_faults)
        if config.faults.partitions:
            extra["faults"]["partitions"] = [
                s.name for s in config.faults.partitions
            ]
        if config.faults.crashes:
            extra["faults"]["crashes"] = [
                {
                    "node": c.node,
                    "t_ns": c.t_ns,
                    "restart_delay_ns": c.restart_delay_ns,
                }
                for c in config.faults.crashes
            ]
    if stats.crash_events or stats.recovery_checkpoints:
        extra["recovery"] = stats.recovery_summary()
    if stats.partition_events:
        extra["partition_events"] = list(stats.partition_events)
    if not stats.completed:
        extra["failure"] = stats.failure
    if config.combine.enabled:
        extra["combining"] = {
            "max_msgs": config.combine.max_msgs,
            "slot_bytes": config.combine.slot_bytes,
            "max_wait_ns": config.combine.max_wait_ns,
            **stats.combining_summary(),
        }
    if config.switch.enabled:
        extra["switch"] = {
            "ports": config.switch_ports,
            **stats.switch_summary(),
        }
    if plan.optimize:
        extra.update(
            plans_built=plan.plans_built,
            controlled_blocks=plan.controlled_blocks,
            bulk=plan.bulk,
            rt_elim=plan.rt_elim,
            pre=plan.pre,
            advisory=plan.advisory,
        )
        if plan.tracker_stats is not None:
            extra.update(plan.tracker_stats)
    return RunResult(
        plan.program_name,
        backend,
        stats.elapsed_ns,
        stats,
        {name: arr.copy() for name, arr in plan.arrays.items()},
        dict(plan.scalars),
        extra,
        completed=stats.completed,
        phase_breakdown=profiler.breakdown() if profiler is not None else None,
        critical_path=(
            analyzer.result(stats.elapsed_ns)
            if analyzer is not None and stats.completed
            else None
        ),
    )


def run_shmem(
    program: Program,
    config: ClusterConfig | None = None,
    optimize: bool = False,
    bulk: bool = True,
    rt_elim: bool = False,
    pre: bool = False,
    advisory: str | bool = False,
    home_policy: HomePolicy = HomePolicy.ALIGNED,
    check_contracts: bool = True,
    protocol: str = "invalidate",
    faults: FaultConfig | None = None,
    combine: CombineConfig | None = None,
    switch: SwitchConfig | None = None,
    audit: bool = True,
    audit_each_barrier: bool = False,
    audit_sample_prob: float = 1.0,
    obs=None,
    profile_phases: bool = False,
    critical_path: bool = False,
    plan: ShmemPlan | None = None,
) -> RunResult:
    """Run a program on simulated fine-grain DSM; returns timing + numerics.

    ``faults`` injects interconnect faults (see
    :class:`~repro.tempest.faults.FaultConfig`), engaging the reliable
    transport.  ``combine`` enables control-message combining (see
    :class:`~repro.tempest.config.CombineConfig`); ``switch`` enables the
    shared-switch contention model (see
    :class:`~repro.tempest.config.SwitchConfig`).  ``audit`` (default on)
    runs the coherence auditor at the end of the run — every directory
    entry cross-checked against access tags and block versions;
    ``audit_sample_prob`` makes per-barrier audits sampled.

    Partition survival: a ``FaultConfig`` with per-link profiles or
    partition scenarios may make some channels give up.  If a healing
    scenario drains them the run completes normally (and the end audit
    re-proves coherence post-heal); otherwise the run returns a *degraded*
    ``RunResult`` — ``completed=False``, stats up to the give-up point,
    and ``extra["failure"]`` describing the stuck programs, partitioned
    channels and residual violations — instead of raising.

    Fail-stop survival: ``faults.crashes`` kills nodes mid-run; with
    ``faults.checkpoint_every`` barrier checkpoints and restarting crash
    scenarios the run rolls back and re-executes to completion (final
    numerics identical to a crash-free run; costs under
    ``extra["recovery"]``), otherwise it degrades as above with the dead
    node reported.

    ``obs`` attaches an observability bus (:class:`repro.obs.EventBus`) to
    the cluster: every component publishes typed events to it, and replay
    adds per-op spans and phase markers.  ``profile_phases`` additionally
    subscribes a :class:`repro.obs.PhaseProfiler` (creating a bus if none
    was passed) and fills ``RunResult.phase_breakdown`` with the per-phase
    compute / miss / barrier / protocol / recovery decomposition.
    ``critical_path`` subscribes a
    :class:`repro.obs.CriticalPathAnalyzer` the same way and fills
    ``RunResult.critical_path`` with the exact causal critical-path
    decomposition and what-if bounds (completed runs only).  None of
    these perturb the simulation — schedules, stats and numerics stay
    identical.

    ``plan`` short-circuits the functional pass with a previously built
    :class:`ShmemPlan` (it must match this call's program and geometry);
    ``repro.serve`` uses this to replay one memoized compiler analysis
    across every wire configuration of a sweep.
    """
    config = config or ClusterConfig()
    if faults is not None:
        config = config.scaled(faults=faults)
    if combine is not None:
        config = config.scaled(combine=combine)
    if switch is not None:
        config = config.scaled(switch=switch)
    _check_optimizer_options(optimize, rt_elim, pre, advisory, protocol)
    if plan is None:
        plan = build_shmem_plan(
            program,
            config,
            optimize=optimize,
            bulk=bulk,
            rt_elim=rt_elim,
            pre=pre,
            advisory=advisory,
            home_policy=home_policy,
            check_contracts=check_contracts,
        )
    return execute_shmem_plan(
        plan,
        config,
        protocol=protocol,
        audit=audit,
        audit_each_barrier=audit_each_barrier,
        audit_sample_prob=audit_sample_prob,
        obs=obs,
        profile_phases=profile_phases,
        critical_path=critical_path,
    )
