"""The functional pass: walk a program, run numerics, yield phase records.

A *phase* is one dynamic execution of a parallel statement (a parallel
loop instance, a reduction, or a replicated scalar update).  Sequential
loops unroll here; their variables feed the environment against which
symbolic bounds and access sets instantiate.  Numerics are evaluated
eagerly in program order against the supplied arrays, so by the time a
phase record is yielded its values are already in the backing store —
exactly the semantics the barrier-separated SPMD schedule guarantees on
the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.access import LoopAccess, LoopInstance, analyze_loop
from repro.hpf.ast import (
    ParallelAssign,
    Program,
    Reduce,
    ScalarAssign,
    SeqLoop,
    Stmt,
)
from repro.hpf.eval import eval_parallel_assign, eval_reduce, eval_scalar_assign

__all__ = ["PhaseRecord", "ProgramAnalysis", "apply_initializers", "walk_phases"]

#: compute-model weight of a replicated scalar statement (work units)
SCALAR_UNITS = 20


def apply_initializers(program: Program, arrays: dict[str, np.ndarray]) -> None:
    """Fill arrays from the program's initializers (untimed input loading)."""
    for name, fn in program.initializers.items():
        data = np.asarray(fn(program.arrays[name].shape), dtype=np.float64)
        if data.shape != program.arrays[name].shape:
            raise ValueError(
                f"initializer for {name!r} produced shape {data.shape}, "
                f"expected {program.arrays[name].shape}"
            )
        arrays[name][...] = data


@dataclass
class PhaseRecord:
    """One dynamic phase, ready for trace generation."""

    index: int                      # 1-based phase number (the version clock)
    stmt: Stmt
    env: dict[str, int]
    inst: LoopInstance | None       # None for ScalarAssign

    @property
    def kind(self) -> str:
        if isinstance(self.stmt, ParallelAssign):
            return "loop"
        if isinstance(self.stmt, Reduce):
            return "reduce"
        return "scalar"

    def compute_units(self, proc: int, default_inner: int = 1) -> int:
        """Work units this processor contributes to the phase."""
        if isinstance(self.stmt, ScalarAssign):
            return SCALAR_UNITS
        assert self.inst is not None
        weight = self.stmt.rhs.op_count() + 1
        if isinstance(self.stmt, ParallelAssign):
            elements = sum(sec.count() for _a, sec in self.inst.writes[proc])
        else:  # Reduce: dominated by the largest section it scans
            secs = [sec.count() for _a, sec in self.inst.reads[proc]]
            elements = max(secs) if secs else 0
        return elements * weight


class ProgramAnalysis:
    """Per-statement :class:`LoopAccess` cache for one program."""

    def __init__(self, program: Program, n_procs: int) -> None:
        self.program = program
        self.n_procs = n_procs
        self._access: dict[int, LoopAccess] = {}

    def access(self, stmt: ParallelAssign | Reduce) -> LoopAccess:
        key = id(stmt)
        hit = self._access.get(key)
        if hit is None:
            hit = analyze_loop(stmt, self.program, self.n_procs)
            self._access[key] = hit
        return hit


def walk_phases(
    program: Program,
    analysis: ProgramAnalysis,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, float],
) -> Iterator[PhaseRecord]:
    """Execute the program functionally, yielding one record per phase."""
    counter = [0]

    def visit(body, env: dict[str, int]) -> Iterator[PhaseRecord]:
        for stmt in body:
            if isinstance(stmt, SeqLoop):
                lo = stmt.lo.eval(env)
                hi = stmt.hi.eval(env)
                for v in range(lo, hi + 1):
                    env[stmt.var] = v
                    yield from visit(stmt.body, env)
                env.pop(stmt.var, None)
            elif isinstance(stmt, ParallelAssign):
                counter[0] += 1
                eval_parallel_assign(stmt, arrays, scalars, env)
                inst = analysis.access(stmt).instantiate(env)
                yield PhaseRecord(counter[0], stmt, dict(env), inst)
            elif isinstance(stmt, Reduce):
                counter[0] += 1
                eval_reduce(stmt, arrays, scalars, env)
                inst = analysis.access(stmt).instantiate(env)
                yield PhaseRecord(counter[0], stmt, dict(env), inst)
            elif isinstance(stmt, ScalarAssign):
                counter[0] += 1
                eval_scalar_assign(stmt, scalars)
                yield PhaseRecord(counter[0], stmt, dict(env), None)
            else:  # pragma: no cover
                raise TypeError(f"unknown statement {stmt!r}")

    yield from visit(program.body, {})
