"""Per-node access traces and their replay on the cluster.

The functional pass reduces each phase to a short list of per-node *ops*
(plain tuples, chosen for replay speed — protocol-heavy runs replay
hundreds of thousands of them).  The replay generator interprets ops as
cluster process fragments; all timing, protocol state and contract
enforcement happens there.

Op vocabulary::

    ('phase',   index, label)          # zero-cost marker, observability only
    ('compute', ns)
    ('read',    blocks_ndarray, phase_no, context)
    ('write',   blocks_ndarray, phase_no)
    ('barrier',)
    ('reduce',  n_values)
    ('mkw',     blocks_tuple)
    ('iw',      blocks_tuple, memo_key_or_None)
    ('send',    blocks_tuple, dst, bulk)
    ('recv',    count)
    ('inv',     blocks_tuple)
    ('flush',   blocks_tuple, owner, bulk)
    ('mp_send', dst, nbytes)
    ('mp_recv', count)
    ('prefetch', blocks_tuple)
    ('selfinv', blocks_tuple)
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.tempest.cluster import Cluster

__all__ = ["NodeTrace", "replay"]


class NodeTrace:
    """Accumulates one node's ops."""

    __slots__ = ("node", "ops")

    def __init__(self, node: int) -> None:
        self.node = node
        self.ops: list[tuple] = []

    # Convenience emitters keep trace-building code terse and typo-proof.
    def phase(self, index: int, label: str) -> None:
        """Mark the start of dynamic phase ``index`` (no simulated cost)."""
        self.ops.append(("phase", index, label))

    def compute(self, ns: int) -> None:
        if ns > 0:
            self.ops.append(("compute", int(ns)))

    def read(self, blocks, phase: int, context: str = "") -> None:
        if len(blocks):
            self.ops.append(("read", blocks, phase, context))

    def write(self, blocks, phase: int) -> None:
        if len(blocks):
            self.ops.append(("write", blocks, phase))

    def barrier(self) -> None:
        self.ops.append(("barrier",))

    def reduce(self, n_values: int = 1) -> None:
        self.ops.append(("reduce", n_values))

    def mkw(self, blocks: Sequence[int]) -> None:
        if blocks:
            self.ops.append(("mkw", tuple(blocks)))

    def iw(self, blocks: Sequence[int], memo_key=None) -> None:
        if blocks:
            self.ops.append(("iw", tuple(blocks), memo_key))

    def send(self, blocks: Sequence[int], dst: int, bulk: bool) -> None:
        if blocks:
            self.ops.append(("send", tuple(blocks), dst, bulk))

    def recv(self, count: int) -> None:
        if count:
            self.ops.append(("recv", count))

    def inv(self, blocks: Sequence[int]) -> None:
        if blocks:
            self.ops.append(("inv", tuple(blocks)))

    def flush(self, blocks: Sequence[int], owner: int, bulk: bool) -> None:
        if blocks:
            self.ops.append(("flush", tuple(blocks), owner, bulk))

    def prefetch(self, blocks) -> None:
        if len(blocks):
            self.ops.append(("prefetch", tuple(blocks)))

    def selfinv(self, blocks) -> None:
        if len(blocks):
            self.ops.append(("selfinv", tuple(blocks)))

    def mp_send(self, dst: int, nbytes: int) -> None:
        if nbytes:
            self.ops.append(("mp_send", dst, nbytes))

    def mp_recv(self, count: int) -> None:
        if count:
            self.ops.append(("mp_recv", count))

    def __len__(self) -> int:
        return len(self.ops)


def replay(
    cluster: Cluster, node: int, ops: list[tuple], start: int = 0
) -> Generator[Any, Any, None]:
    """Interpret a node's trace as a simulated process.

    With an observability bus attached to the cluster, each op additionally
    publishes an ``op`` span and ``phase`` markers publish ``phase``
    instants; neither schedules engine events nor consumes simulated time,
    so instrumented runs stay schedule-identical to plain ones.

    When ``cluster.replay_cursor`` is a list (crash/checkpoint runs), the
    generator records the index of the op it is executing there — the
    RecoveryManager snapshots those cursors at barrier checkpoints and
    resumes a rolled-back node via ``start``.  Cursor maintenance is plain
    list assignment (no engine events), so tracked runs stay
    schedule-identical too; ``op`` spans then carry an ``idx`` field so
    re-executed work is attributable in traces and profiles.
    """
    obs = cluster.obs
    cursor = cluster.replay_cursor
    if cursor is None:
        # Fast paths: the overwhelmingly common crash-free case keeps the
        # original tight loops (hundreds of thousands of ops per run).
        if obs is None:
            # The four dominant op kinds dispatch straight to their cluster
            # fragments — one generator frame (and one delegation level per
            # resume) cheaper than going through _run_op.
            read_blocks = cluster.read_blocks
            write_blocks = cluster.write_blocks
            compute = cluster.compute
            enter_barrier = cluster.barrier_net.enter
            for op in ops:
                kind = op[0]
                if kind == "read":
                    yield from read_blocks(node, op[1], context=op[3], phase=op[2])
                elif kind == "compute":
                    yield from compute(node, op[1])
                elif kind == "write":
                    yield from write_blocks(node, op[1], op[2])
                elif kind == "barrier":
                    yield from enter_barrier(node)
                elif kind != "phase":
                    yield from _run_op(cluster, node, op)
            return
        engine = cluster.engine
        for op in ops:
            kind = op[0]
            if kind == "phase":
                obs.emit("phase", engine.now, node=node, index=op[1], label=op[2])
                continue
            t0 = engine.now
            yield from _run_op(cluster, node, op)
            dur = engine.now - t0
            if dur:
                obs.emit("op", t0, dur, node=node, op=kind)
        return
    engine = cluster.engine
    for i in range(start, len(ops)):
        op = ops[i]
        cursor[node] = i
        kind = op[0]
        if kind == "phase":
            if obs is not None:
                obs.emit("phase", engine.now, node=node, index=op[1], label=op[2])
            continue
        t0 = engine.now
        yield from _run_op(cluster, node, op)
        if obs is not None:
            dur = engine.now - t0
            if dur:
                obs.emit("op", t0, dur, node=node, op=kind, idx=i)


def _run_op(cluster: Cluster, node: int, op: tuple) -> Generator[Any, Any, None]:
    """One trace op as a cluster process fragment."""
    kind = op[0]
    if kind == "compute":
        yield from cluster.compute(node, op[1])
    elif kind == "read":
        yield from cluster.read_blocks(node, op[1], context=op[3], phase=op[2])
    elif kind == "write":
        yield from cluster.write_blocks(node, op[1], op[2])
    elif kind == "barrier":
        yield from cluster.barrier(node)
    elif kind == "reduce":
        yield from cluster.reduce(node, op[1])
    elif kind == "mkw":
        yield from cluster.ext.mk_writable(node, op[1])
    elif kind == "iw":
        yield from cluster.ext.implicit_writable(node, op[1], memo_key=op[2])
    elif kind == "send":
        yield from cluster.ext.send_blocks(node, op[1], op[2], bulk=op[3])
    elif kind == "recv":
        yield from cluster.ext.ready_to_recv(node, op[1])
    elif kind == "inv":
        yield from cluster.ext.implicit_invalidate(node, op[1])
    elif kind == "flush":
        yield from cluster.ext.flush_and_invalidate(node, op[1], op[2], bulk=op[3])
    elif kind == "prefetch":
        yield from cluster.ext.prefetch(node, op[1])
    elif kind == "selfinv":
        yield from cluster.ext.self_invalidate(node, op[1])
    elif kind == "mp_send":
        yield from cluster.collectives.mp_send(node, op[1], op[2])
    elif kind == "mp_recv":
        yield from cluster.collectives.mp_recv(node, op[1])
    else:  # pragma: no cover
        raise ValueError(f"unknown trace op {op!r}")
