"""Uniprocessor reference run — the speedup denominator.

Runs the program's numerics on a single logical processor and charges the
full compute-model cost with zero communication, matching the paper's
"speedups are calculated relative to a uniprocessor run".  (The paper's
uniprocessor baselines are *not* cache-blocked, which is where its
superlinear speedups come from; our compute model is cache-less, so
speedup ceilings equal the node count — see DESIGN.md.)
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program
from repro.runtime.phases import ProgramAnalysis, apply_initializers, walk_phases
from repro.runtime.results import RunResult
from repro.tempest.config import ClusterConfig

__all__ = ["run_uniproc"]


def run_uniproc(program: Program, config: ClusterConfig | None = None) -> RunResult:
    config = config or ClusterConfig()
    arrays = {
        decl.name: np.zeros(decl.shape, order="F") for decl in program.arrays.values()
    }
    apply_initializers(program, arrays)
    scalars = dict(program.scalars)
    analysis = ProgramAnalysis(program, n_procs=1)
    total_ns = 0
    phases = 0
    for rec in walk_phases(program, analysis, arrays, scalars):
        phases += 1
        total_ns += rec.compute_units(0) * config.compute_ns_per_unit
        if rec.kind != "scalar":
            total_ns += config.loop_overhead_ns
    return RunResult(
        program.name,
        "uniproc",
        total_ns,
        None,
        {name: arr.copy() for name, arr in arrays.items()},
        dict(scalars),
        {"phases": phases},
    )
