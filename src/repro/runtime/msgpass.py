"""The message-passing comparator backend (pghpf-MP over Tempest messages).

The same access analysis drives a classic owner-computes message-passing
schedule: before each loop, owners send the exact non-owner sections
(element-precise, no block rounding) as point-to-point messages; receivers
block until their expected messages arrive.  No coherence protocol, no
access control, no barriers — exactly the paper's "directly porting the
PGI's message-passing run-time to use Tempest messages" comparator.

Non-owner writes invert: the writer computes privately and returns the
written section to its owner after the loop.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import ParallelAssign, Program, Reduce, ScalarAssign
from repro.runtime.phases import ProgramAnalysis, apply_initializers, walk_phases
from repro.runtime.results import RunResult
from repro.runtime.traces import NodeTrace, replay
from repro.tempest.cluster import Cluster
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import Distribution, HomePolicy, SharedMemory

__all__ = ["run_msgpass"]


def run_msgpass(program: Program, config: ClusterConfig | None = None) -> RunResult:
    config = config or ClusterConfig()
    # A shared segment is still allocated (the nodes' memories), but no
    # coherence traffic ever touches it — data moves by explicit messages.
    mem = SharedMemory(config, home_policy=HomePolicy.ALIGNED)
    arrays: dict[str, np.ndarray] = {}
    for decl in program.arrays.values():
        if decl.dist == "replicated":
            arrays[decl.name] = np.zeros(decl.shape, order="F")
        else:
            dist = (
                Distribution.block(config.n_nodes)
                if decl.dist == "block"
                else Distribution.cyclic(config.n_nodes)
            )
            arrays[decl.name] = mem.alloc(decl.name, decl.shape, dist).data
    apply_initializers(program, arrays)
    scalars = dict(program.scalars)
    analysis = ProgramAnalysis(program, config.n_nodes)
    traces = [NodeTrace(n) for n in range(config.n_nodes)]
    itemsize = 8
    total_msgs = 0
    total_bytes = 0

    for rec in walk_phases(program, analysis, arrays, scalars):
        if isinstance(rec.stmt, ScalarAssign):
            for t in traces:
                t.compute(rec.compute_units(t.node) * config.compute_ns_per_unit)
            continue
        if isinstance(rec.stmt, Reduce):
            for p, t in enumerate(traces):
                t.compute(rec.compute_units(p) * config.compute_ns_per_unit)
                t.reduce(1)
            continue

        assert isinstance(rec.stmt, ParallelAssign) and rec.inst is not None
        # Merge transfers per (src, dst); one packed message per pair.
        pre_bytes: dict[tuple[int, int], int] = {}
        post_bytes: dict[tuple[int, int], int] = {}
        for t in rec.inst.transfers:
            nbytes = t.section.count() * itemsize
            if t.kind == "read":
                key = (t.src, t.dst)
                pre_bytes[key] = pre_bytes.get(key, 0) + nbytes
            else:
                # Non-owner write: result returns writer -> owner post-loop.
                key = (t.dst, t.src)
                post_bytes[key] = post_bytes.get(key, 0) + nbytes

        pre_expected: dict[int, tuple[int, int]] = {}
        for (src, dst), nbytes in sorted(pre_bytes.items()):
            # Section gather into the pack buffer, then the send.
            traces[src].compute(nbytes * config.mp_pack_ns_per_byte)
            traces[src].mp_send(dst, nbytes)
            count, rbytes = pre_expected.get(dst, (0, 0))
            pre_expected[dst] = (count + 1, rbytes + nbytes)
            total_msgs += 1
            total_bytes += nbytes
        for dst, (count, rbytes) in sorted(pre_expected.items()):
            traces[dst].mp_recv(count)
            traces[dst].compute(rbytes * config.mp_pack_ns_per_byte)  # scatter

        for p, t in enumerate(traces):
            units = rec.compute_units(p)
            if units or not rec.inst.iterations[p].is_empty:
                t.compute(units * config.compute_ns_per_unit + config.loop_overhead_ns)

        post_expected: dict[int, tuple[int, int]] = {}
        for (src, dst), nbytes in sorted(post_bytes.items()):
            traces[src].compute(nbytes * config.mp_pack_ns_per_byte)
            traces[src].mp_send(dst, nbytes)
            count, rbytes = post_expected.get(dst, (0, 0))
            post_expected[dst] = (count + 1, rbytes + nbytes)
            total_msgs += 1
            total_bytes += nbytes
        for dst, (count, rbytes) in sorted(post_expected.items()):
            traces[dst].mp_recv(count)
            traces[dst].compute(rbytes * config.mp_pack_ns_per_byte)

    cluster = Cluster(config, mem)
    stats = cluster.run({n: replay(cluster, n, traces[n].ops) for n in range(config.n_nodes)})
    return RunResult(
        program.name,
        "msgpass",
        stats.elapsed_ns,
        stats,
        {name: arr.copy() for name, arr in arrays.items()},
        dict(scalars),
        {"mp_messages": total_msgs, "mp_bytes": total_bytes, "dual_cpu": config.dual_cpu},
    )
