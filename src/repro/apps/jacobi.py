"""jacobi — 2-D 4-point Jacobi relaxation (the authors' own kernel).

Paper scale: 2048x2048 doubles, 100 iterations.  The canonical stencil
benchmark: each sweep reads the four neighbours of every interior point
into a fresh array, then copies back.  With BLOCK column distribution the
only communication is one halo column per neighbour pair per sweep — the
ideal case for the paper's optimization ("regular stencil based
computations with relatively large columns shared between processors in a
producer-consumer relationship"), which is why it shows the paper's best
miss reduction (96.7%).
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(n: int = 256, iters: int = 10) -> Program:
    """4-point Jacobi on an ``n`` x ``n`` grid for ``iters`` sweeps."""
    if n < 8:
        raise ValueError("grid too small to have an interior")
    b = ProgramBuilder("jacobi")

    def hot_boundary(shape):
        data = np.zeros(shape)
        data[0, :] = 1.0
        data[-1, :] = 1.0
        data[:, 0] = 1.0
        data[:, -1] = 1.0
        return data

    a = b.array("a", (n, n), init=hot_boundary)
    new = b.array("new", (n, n))

    interior = S(1, n - 2)
    with b.timesteps(iters):
        b.forall(
            1,
            n - 2,
            new[interior, I],
            (
                a[S(0, n - 3), I]
                + a[S(2, n - 1), I]
                + a[interior, I - 1]
                + a[interior, I + 1]
            )
            * 0.25,
            label="sweep",
        )
        b.forall(1, n - 2, a[interior, I], new[interior, I], label="copy")
    return b.build()
