"""shallow — the NCAR shallow-water benchmark (Sadourny's scheme).

Paper scale: 1025x513 grid, 100 time steps, 28 MB (13 single-precision
arrays; ours are float64).  Each step computes mass fluxes, potential
vorticity and height (``cu``, ``cv``, ``z``, ``h``) from the prognostic
fields, advances ``u``, ``v``, ``p`` with a leapfrog step, applies periodic
boundary copies in the distributed direction, and time-smooths the old
fields.  Nine parallel loops per step, six of which read ±1 halo columns —
the many-loops-per-iteration structure that makes shallow the paper's
second-best miss-reduction case (85.7%) and a prime candidate for
redundant-communication elimination.

The finite-difference coefficients below follow the classic SPEC/NCAR
code's structure; physical constants are folded into plain numbers since
the evaluation cares about data movement, not geophysics.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(rows: int = 129, cols: int = 65, iters: int = 10) -> Program:
    """Shallow-water on a ``rows`` x ``cols`` grid for ``iters`` steps."""
    if rows < 8 or cols < 8:
        raise ValueError("grid too small")
    b = ProgramBuilder("shallow")
    m = rows - 1  # interior row bound
    nl = cols - 1

    def psi_init(shape):
        r, c = shape
        yy, xx = np.meshgrid(np.arange(c), np.arange(r))
        return 0.1 * np.sin(2 * np.pi * xx / r) * np.sin(2 * np.pi * yy / c)

    def p_init(shape):
        r, c = shape
        yy, xx = np.meshgrid(np.arange(c), np.arange(r))
        return 50.0 + 5.0 * np.cos(2 * np.pi * xx / r) * np.cos(2 * np.pi * yy / c)

    u = b.array("u", (rows, cols), init=psi_init)
    v = b.array("v", (rows, cols), init=lambda s: -psi_init(s))
    p = b.array("p", (rows, cols), init=p_init)
    unew = b.array("unew", (rows, cols))
    vnew = b.array("vnew", (rows, cols))
    pnew = b.array("pnew", (rows, cols))
    uold = b.array("uold", (rows, cols), init=psi_init)
    vold = b.array("vold", (rows, cols), init=lambda s: -psi_init(s))
    pold = b.array("pold", (rows, cols), init=p_init)
    cu = b.array("cu", (rows, cols))
    cv = b.array("cv", (rows, cols))
    z = b.array("z", (rows, cols))
    h = b.array("h", (rows, cols))

    # Time-step coefficients scaled conservatively so the (toy-physics)
    # fields stay bounded over the paper's 100 steps at 1025x513.
    fsdx = 4.0 / rows
    fsdy = 4.0 / cols
    tdts8 = 0.002
    tdtsdx = 0.004
    tdtsdy = 0.004
    alpha = 0.001

    ri = S(1, m)       # interior rows
    rl = S(0, m - 1)   # rows shifted down
    with b.timesteps(iters):
        # --- fluxes and vorticity ------------------------------------- #
        b.forall(
            0, nl,
            cu[ri, I],
            (p[ri, I] + p[rl, I]) * 0.5 * u[ri, I],
            label="cu",
        )
        b.forall(
            1, nl,
            cv[ri, I],
            (p[ri, I] + p[ri, I - 1]) * 0.5 * v[ri, I],
            label="cv",
        )
        b.forall(
            1, nl,
            z[ri, I],
            (
                (v[ri, I] - v[rl, I]) * fsdx
                - (u[ri, I] - u[ri, I - 1]) * fsdy
            )
            / (p[rl, I - 1] + p[ri, I - 1] + p[ri, I] + p[rl, I]),
            label="z",
        )
        b.forall(
            0, nl - 1,
            h[rl, I],
            p[rl, I]
            + 0.25 * (u[ri, I] * u[ri, I] + u[rl, I] * u[rl, I])
            + 0.25 * (v[rl, I + 1] * v[rl, I + 1] + v[rl, I] * v[rl, I]),
            label="h",
        )
        # --- leapfrog updates ------------------------------------------ #
        b.forall(
            0, nl - 1,
            unew[ri, I],
            uold[ri, I]
            + tdts8 * (z[ri, I + 1] + z[ri, I]) * (cv[ri, I + 1] + cv[ri, I] + cv[rl, I] + cv[rl, I + 1])
            - tdtsdx * (h[ri, I] - h[rl, I]),
            label="unew",
        )
        b.forall(
            1, nl,
            vnew[rl, I],
            vold[rl, I]
            - tdts8 * (z[ri, I] + z[rl, I]) * (cu[ri, I] + cu[rl, I] + cu[rl, I - 1] + cu[ri, I - 1])
            - tdtsdy * (h[rl, I] - h[rl, I - 1]),
            label="vnew",
        )
        b.forall(
            0, nl - 1,
            pnew[rl, I],
            pold[rl, I]
            - tdtsdx * (cu[ri, I] - cu[rl, I])
            - tdtsdy * (cv[rl, I + 1] - cv[rl, I]),
            label="pnew",
        )
        # --- periodic boundary in the distributed direction ------------ #
        b.assign_at(unew[ri, nl], unew[ri, 0], label="u_bc")
        b.assign_at(vnew[rl, 0], vnew[rl, nl], label="v_bc")
        b.assign_at(pnew[rl, nl], pnew[rl, 0], label="p_bc")
        # --- time smoothing + rotation --------------------------------- #
        b.forall(
            0, nl,
            uold[S(0, m), I],
            u[S(0, m), I]
            + alpha * (unew[S(0, m), I] - 2.0 * u[S(0, m), I] + uold[S(0, m), I]),
            label="usmooth",
        )
        b.forall(
            0, nl,
            vold[S(0, m), I],
            v[S(0, m), I]
            + alpha * (vnew[S(0, m), I] - 2.0 * v[S(0, m), I] + vold[S(0, m), I]),
            label="vsmooth",
        )
        b.forall(
            0, nl,
            pold[S(0, m), I],
            p[S(0, m), I]
            + alpha * (pnew[S(0, m), I] - 2.0 * p[S(0, m), I] + pold[S(0, m), I]),
            label="psmooth",
        )
        b.forall(0, nl, u[S(0, m), I], unew[S(0, m), I], label="ucopy")
        b.forall(0, nl, v[S(0, m), I], vnew[S(0, m), I], label="vcopy")
        b.forall(0, nl, p[S(0, m), I], pnew[S(0, m), I], label="pcopy")
    return b.build()
