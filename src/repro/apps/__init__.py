"""The paper's application suite (Table 2), rebuilt against the mini-HPF DSL.

============ ===================================== =============================
app          paper problem size                     communication character
============ ===================================== =============================
``pde``      grid 128, 40 iters (RELAX only)        3-D plane halos
``shallow``  1025x513, 100 iters                    2-D column halos, many loops
``grav``     grid 129, 5 iters                      small extents + SUM reductions
``lu``       1024x1024 (cyclic columns)             shrinking pivot-column bcast
``cg``       180x360, 630 iters                     vector broadcasts + dot products
``jacobi``   2048x2048, 100 iters                   2-D column halos
============ ===================================== =============================

Each module exposes ``build(**params) -> Program``; the registry wraps them
in :class:`AppSpec` with default (seconds-scale simulation) and paper-scale
parameter sets.  The paper's sources were Fortran with 4-byte reals; our
arrays are float64, so paper-scale memory is ~2x the paper's Table 2 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hpf.ast import Program

from repro.apps import cg, grav, jacobi, lu, pde, shallow

__all__ = ["APPS", "AppSpec", "get_app"]


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application with its parameter sets."""

    name: str
    description: str
    build: Callable[..., Program]
    default_params: dict
    paper_params: dict
    #: the paper's reported numbers, used by EXPERIMENTS.md and the benches
    paper: dict = field(default_factory=dict)

    def program(self, scale: str = "default", **overrides) -> Program:
        """Instantiate at 'default' (fast) or 'paper' scale."""
        if scale == "default":
            params = dict(self.default_params)
        elif scale == "paper":
            params = dict(self.paper_params)
        else:
            raise ValueError(f"unknown scale {scale!r}; use 'default' or 'paper'")
        params.update(overrides)
        return self.build(**params)


APPS: dict[str, AppSpec] = {
    "pde": AppSpec(
        "pde",
        "Genesis PDE1 3-D Poisson relaxation (RELAX routine)",
        pde.build,
        default_params=dict(n=64, iters=4),
        paper_params=dict(n=128, iters=40),
        paper=dict(
            problem="grid size 128, 40 iters",
            memory_mb=56,
            compute_s=33.6,
            comm_s_dual=26.1,
            comm_reduction_dual=58.6,
            comm_s_single=56.5,
            comm_reduction_single=61.9,
            miss_count_k=293.8,
            miss_reduction=74.6,
        ),
    ),
    "shallow": AppSpec(
        "shallow",
        "NCAR shallow-water benchmark (Sadourny scheme)",
        shallow.build,
        default_params=dict(rows=129, cols=65, iters=10),
        paper_params=dict(rows=1025, cols=513, iters=100),
        paper=dict(
            problem="1025x513 grid, 100 iters",
            memory_mb=28,
            compute_s=35.2,
            comm_s_dual=10.9,
            comm_reduction_dual=45.9,
            comm_s_single=21.5,
            comm_reduction_single=50.2,
            miss_count_k=55.8,
            miss_reduction=85.7,
        ),
    ),
    "grav": AppSpec(
        "grav",
        "gravitational potential with many SUM reductions (Syracuse)",
        grav.build,
        default_params=dict(n=33, iters=2),
        paper_params=dict(n=129, iters=5),
        paper=dict(
            problem="grid size 128, 5 iters",
            memory_mb=17,
            compute_s=12.0,
            comm_s_dual=11.6,
            comm_reduction_dual=5.5,
            comm_s_single=17.8,
            comm_reduction_single=9.0,
            miss_count_k=42.5,
            miss_reduction=38.2,
        ),
    ),
    "lu": AppSpec(
        "lu",
        "dense LU decomposition, cyclic columns, pivot-column broadcast",
        lu.build,
        default_params=dict(n=128),
        paper_params=dict(n=1024),
        paper=dict(
            problem="1024x1024 matrix (5 runs)",
            memory_mb=4,
            compute_s=51.1,
            comm_s_dual=27.0,
            comm_reduction_dual=53.0,
            comm_s_single=32.9,
            comm_reduction_single=47.4,
            miss_count_k=85.8,
            miss_reduction=85.0,
        ),
    ),
    "cg": AppSpec(
        "cg",
        "conjugate gradient on the normal equations (CGNR), MIT",
        cg.build,
        default_params=dict(rows=90, cols=180, iters=25),
        paper_params=dict(rows=180, cols=360, iters=630),
        paper=dict(
            problem="180x360 matrix, converges in 630 iters",
            memory_mb=4.6,
            compute_s=13.6,
            comm_s_dual=9.8,
            comm_reduction_dual=24.4,
            comm_s_single=18.4,
            comm_reduction_single=27.7,
            miss_count_k=57.9,
            miss_reduction=68.7,
        ),
    ),
    "jacobi": AppSpec(
        "jacobi",
        "2-D 4-point Jacobi relaxation (authors' kernel)",
        jacobi.build,
        default_params=dict(n=256, iters=10),
        paper_params=dict(n=2048, iters=100),
        paper=dict(
            problem="2048x2048 matrix, 100 iters",
            memory_mb=32,
            compute_s=31.0,
            comm_s_dual=4.3,
            comm_reduction_dual=33.0,
            comm_s_single=9.5,
            comm_reduction_single=30.5,
            miss_count_k=22.5,
            miss_reduction=96.7,
        ),
    ),
}


def get_app(name: str) -> AppSpec:
    try:
        return APPS[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; choose from {sorted(APPS)}") from None
