"""pde — Genesis PDE1: 3-D Poisson relaxation (the RELAX routine).

Paper scale: grid 128 (128^3 points), 40 relaxation iterations, 56 MB.
A 6-point 3-D Jacobi relaxation of Poisson's equation ∇²u = f: each sweep
averages the six face neighbours minus the source term.  The last (plane)
dimension is BLOCK-distributed, so communication is whole boundary *planes*
— large, perfectly block-aligned sections, which is why pde shows both the
paper's largest absolute communication time and a large (74.6%) miss
reduction when those plane transfers move under compiler control.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(n: int = 32, iters: int = 4, ordering: str = "jacobi") -> Program:
    """Poisson relaxation on an ``n``^3 grid for ``iters`` sweeps.

    ``ordering``:

    * ``"jacobi"`` — two-array sweep + copy-back (the shipped default; its
      memory footprint matches the paper's Table 2 row);
    * ``"redblack"`` — the Genesis PDE1 original's in-place red-black
      ordering over the distributed plane index (two strided FORALLs per
      sweep, no copy array) — converges faster, halves the array memory,
      and exchanges each halo plane twice per iteration.
    """
    if n < 8:
        raise ValueError("grid too small to have an interior")
    if ordering not in ("jacobi", "redblack"):
        raise ValueError(f"unknown ordering {ordering!r}")
    b = ProgramBuilder("pde" if ordering == "jacobi" else "pde-rb")

    def charge(shape):
        rng = np.random.default_rng(1997)
        return rng.standard_normal(shape) * 0.01

    u = b.array("u", (n, n, n))
    if ordering == "jacobi":
        unew = b.array("unew", (n, n, n))
    f = b.array("f", (n, n, n), init=charge)

    inner = S(1, n - 2)
    lo = S(0, n - 3)
    hi = S(2, n - 1)
    sixth = 1.0 / 6.0
    h2 = (1.0 / (n - 1)) ** 2

    def stencil(target):
        return (
            u[lo, inner, I]
            + u[hi, inner, I]
            + u[inner, lo, I]
            + u[inner, hi, I]
            + u[inner, inner, I - 1]
            + u[inner, inner, I + 1]
            - f[inner, inner, I] * h2
        ) * sixth

    with b.timesteps(iters):
        if ordering == "jacobi":
            b.forall(1, n - 2, unew[inner, inner, I], stencil(unew), label="relax")
            b.forall(1, n - 2, u[inner, inner, I], unew[inner, inner, I], label="copy")
        else:
            # Red planes (odd k) read black neighbours; then vice versa.
            b.forall(1, n - 2, u[inner, inner, I], stencil(u), step=2, label="red")
            b.forall(2, n - 2, u[inner, inner, I], stencil(u), step=2, label="black")
    return b.build()
