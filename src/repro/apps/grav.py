"""grav — gravitational potential with many SUM reductions (Syracuse).

Paper scale: 129^3 grid, 5 iterations, 17 MB (single precision; float64
here).  The paper's description drives the reconstruction (the original
Syracuse HPF source is not available): "the array extents in grav are
rather small (129x129 reals and 129x129x129 reals), and thus the edge
effects are pronounced at 128-byte blocksize.  Grav executes a large
number of SUM reductions, which ... ultimately limit speedups."

Each iteration therefore performs one potential-relaxation sweep over the
3-D grid (its 129-element columns are just 4-8 blocks at 128 B — heavy
edge effects, matching the paper's weak 38.2% miss reduction), a 2-D
surface update, and a battery of eight global SUM reductions (total mass,
three dipole moments against precomputed weight planes, potential energy,
kinetic proxy, and two convergence norms).
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program, ScalarRef
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(n: int = 33, iters: int = 2) -> Program:
    """Potential solver on an ``n``^3 grid for ``iters`` iterations."""
    if n < 8:
        raise ValueError("grid too small")
    b = ProgramBuilder("grav")

    def blob(shape):
        rng = np.random.default_rng(42)
        return np.abs(rng.standard_normal(shape)) * 0.1

    def ramp(shape):
        r, c = shape
        return np.add.outer(np.arange(r), np.arange(c)) / (r + c)

    rho = b.array("rho", (n, n, n), init=blob)
    phi = b.array("phi", (n, n, n))
    surface = b.array("surface", (n, n), init=ramp)
    weight = b.array("weight", (n, n), init=ramp)

    inner = S(1, n - 2)
    lo = S(0, n - 3)
    hi = S(2, n - 1)
    sixth = 1.0 / 6.0

    with b.timesteps(iters):
        # One relaxation sweep of the potential.
        b.forall(
            1, n - 2,
            phi[inner, inner, I],
            (
                phi[lo, inner, I]
                + phi[hi, inner, I]
                + phi[inner, lo, I]
                + phi[inner, hi, I]
                + phi[inner, inner, I - 1]
                + phi[inner, inner, I + 1]
                + rho[inner, inner, I]
            )
            * sixth,
            label="relax",
        )
        # Surface potential update (small 2-D array: pronounced edges).
        b.forall(
            1, n - 2,
            surface[inner, I],
            (surface[inner, I - 1] + surface[inner, I + 1]) * 0.5
            + weight[inner, I] * 0.01,
            label="surface",
        )
        # The battery of global SUM reductions.
        full = S(0, n - 1)
        b.reduce("mass", 0, n - 1, rho[full, full, I], label="mass")
        b.reduce("dipole_x", 0, n - 1, rho[full, full, I] * phi[full, full, I], label="dx")
        b.reduce("dipole_y", 0, n - 1, rho[inner, full, I] * phi[inner, full, I], label="dy")
        b.reduce("dipole_z", 1, n - 2, rho[full, full, I] * phi[full, full, I], label="dz")
        b.reduce("energy", 0, n - 1, phi[full, full, I] * phi[full, full, I], label="energy")
        b.reduce("surf_sum", 0, n - 1, surface[full, I] * weight[full, I], label="surf")
        b.reduce("norm1", 0, n - 1, phi[full, full, I] * rho[full, full, I], label="norm1")
        b.reduce("norm2", 0, n - 1, surface[full, I] * surface[full, I], label="norm2")
        # Rescale the density by the mass estimate (replicated scalar use).
        b.scalar("scale", ScalarRef("mass") * 1e-6)
        b.forall(
            0, n - 1,
            rho[full, full, I],
            rho[full, full, I] * (1.0 - 1e-9) + phi[full, full, I] * 1e-9,
            label="rescale",
        )
    return b.build()
