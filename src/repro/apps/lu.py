"""lu — dense LU decomposition with cyclic columns (Stanford kernel).

Paper scale: 1024x1024 (4 MB single precision).  Right-looking LU without
pivoting on a diagonally dominant matrix; columns are CYCLIC-distributed
for load balance over the shrinking trailing submatrix.

"During each iteration a pivotal column is broadcast to all processors.
Since it is a triangular loop, the size of this column decreases with
successive iterations, and in the later columns the edge effects limit the
efficacy of our optimizations."  Both effects fall out of the structure
below: the rank-1 update reads ``a(k+1:n-1, k)`` — a single remote column
shrinking with ``k``, whose block-aligned core disappears once fewer than
a block's worth of rows remain.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Program
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(n: int = 128) -> Program:
    """LU-decompose a diagonally dominant ``n`` x ``n`` matrix in place."""
    if n < 8:
        raise ValueError("matrix too small")
    b = ProgramBuilder("lu")

    def dominant(shape):
        rng = np.random.default_rng(7)
        data = rng.standard_normal(shape) * 0.1
        np.fill_diagonal(data, float(shape[0]))
        return data

    a = b.array("a", (n, n), dist="cyclic", init=dominant)

    with b.seq("k", 0, n - 2) as k:
        # Normalize the pivot column below the diagonal (its owner only).
        b.assign_at(
            a[S(k + 1, n - 1), k],
            a[S(k + 1, n - 1), k] / a[k, k],
            label="scale_col",
        )
        # Rank-1 update of the trailing submatrix; reads the freshly
        # normalized pivot column (broadcast) and the local pivot row.
        b.forall(
            k + 1,
            n - 1,
            a[S(k + 1, n - 1), I],
            a[S(k + 1, n - 1), I] - a[S(k + 1, n - 1), k] * a[k, I],
            label="update",
        )
    return b.build()


def check_factorization(result_a: np.ndarray, original: np.ndarray, rtol=1e-8) -> bool:
    """Verify L*U reconstructs the original matrix (test helper)."""
    n = original.shape[0]
    lower = np.tril(result_a, -1) + np.eye(n)
    upper = np.triu(result_a)
    return np.allclose(lower @ upper, original, rtol=rtol, atol=1e-8)
