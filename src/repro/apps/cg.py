"""cg — conjugate gradient on the normal equations (CGNR), MIT's code.

Paper scale: a 180x360 matrix, converging in 630 iterations.  CGNR solves
``min ||A x - b||`` for rectangular A by running CG on ``AᵀA x = Aᵀ b``;
each iteration needs one matvec with A and one with Aᵀ.  In HPF style the
matrix is stored twice so each matvec contracts over the *local* dimension:
``a_rows(:, i)`` holds row ``i`` of A, ``a_cols(:, j)`` holds column ``j``
— both last-dim BLOCK-distributed, so a matvec reads the entire operand
vector (a broadcast-style non-owner read) but only local matrix columns.

Per iteration: two vector broadcasts (p into the row space, the residual
back into the column space), two scalar SUM reductions (the dots), and
three local vector updates — matching the paper's cg profile of moderate
(24%) communication reduction: the broadcasts optimize well, the
reductions don't go away.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.ast import Dot, Program, ScalarRef
from repro.hpf.dsl import I, ProgramBuilder, S

__all__ = ["build"]


def build(rows: int = 60, cols: int = 120, iters: int = 25) -> Program:
    """CGNR on a ``rows`` x ``cols`` system for a fixed ``iters`` sweeps."""
    if rows < 8 or cols < 8:
        raise ValueError("system too small")
    b = ProgramBuilder("cg")
    rng = np.random.default_rng(1993)
    a_data = rng.standard_normal((rows, cols)) / np.sqrt(cols)
    b_data = rng.standard_normal(rows)

    # a_rows(:, i) = row i of A  (shape cols x rows, row index distributed)
    a_rows = b.array("a_rows", (cols, rows), init=lambda s: a_data.T)
    # a_cols(:, j) = column j of A (shape rows x cols)
    a_cols = b.array("a_cols", (rows, cols), init=lambda s: a_data)
    resid = b.array("resid", (rows,), init=lambda s: b_data)   # r = b - A*0
    x = b.array("x", (cols,))
    p = b.array("p", (cols,))
    s = b.array("s", (cols,))
    q = b.array("q", (rows,))

    all_rows = S(0, rows - 1)
    all_cols = S(0, cols - 1)

    # s0 = Aᵀ r ; p = s ; rho = sᵀs
    b.forall(0, cols - 1, s[I], Dot.of(a_cols[all_rows, I], resid[all_rows]), label="s0")
    b.forall(0, cols - 1, p[I], s[I], label="p0")
    b.reduce("rho", 0, cols - 1, s[I] * s[I], label="rho0")

    with b.timesteps(iters):
        # q = A p  — p broadcast into the row space.
        b.forall(0, rows - 1, q[I], Dot.of(a_rows[all_cols, I], p[all_cols]), label="matvec")
        b.reduce("qq", 0, rows - 1, q[I] * q[I], label="dot_qq")
        b.scalar("alpha", ScalarRef("rho") / ScalarRef("qq"))
        b.forall(0, cols - 1, x[I], x[I] + ScalarRef("alpha") * p[I], label="xup")
        b.forall(0, rows - 1, resid[I], resid[I] - ScalarRef("alpha") * q[I], label="rup")
        # s = Aᵀ r — the residual broadcast back into the column space.
        b.forall(0, cols - 1, s[I], Dot.of(a_cols[all_rows, I], resid[all_rows]), label="matvec_t")
        b.reduce("rho_new", 0, cols - 1, s[I] * s[I], label="dot_ss")
        b.scalar("beta", ScalarRef("rho_new") / ScalarRef("rho"))
        b.scalar("rho", ScalarRef("rho_new"))
        b.forall(0, cols - 1, p[I], s[I] + ScalarRef("beta") * p[I], label="pup")
    return b.build()
