"""repro — compiler-directed coherence optimization for HPF on fine-grain DSM.

A full-system reproduction of Chandra & Larus, *Optimizing Communication in
HPF Programs for Fine-Grain Distributed Shared Memory* (PPoPP 1997).

Public API
----------
Programs::

    from repro import ProgramBuilder, I, S, parse_program

Execution::

    from repro import ClusterConfig, run_shmem, run_msgpass, run_uniproc

The application suite::

    from repro import APPS
    result = run_shmem(APPS["jacobi"].program(), optimize=True)

Lower layers (`repro.tempest`, `repro.core`, `repro.sim`) are importable
directly for protocol-level work; see the package docstrings.
"""

from repro.apps import APPS, AppSpec, get_app
from repro.hpf.dsl import ABS, I, ProgramBuilder, S, sqrt
from repro.hpf.parser import ParseError, parse_program
from repro.runtime import RunResult, run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig

__version__ = "1.0.0"

__all__ = [
    "ABS",
    "APPS",
    "AppSpec",
    "ClusterConfig",
    "I",
    "ParseError",
    "ProgramBuilder",
    "RunResult",
    "S",
    "get_app",
    "parse_program",
    "run_msgpass",
    "run_shmem",
    "run_uniproc",
    "sqrt",
]
