"""Builder API for mini-HPF programs.

Example — a 1-D Jacobi sweep::

    from repro.hpf.dsl import ProgramBuilder, I, S

    b = ProgramBuilder("jacobi1d")
    a = b.array("a", (1024,), dist="block")
    new = b.array("new", (1024,), dist="block")
    with b.timesteps(100):
        b.forall(1, 1022, new[I], (a[I - 1] + a[I + 1]) * 0.5)
        b.forall(1, 1022, a[I], new[I])
    prog = b.build()

``I`` is the parallel loop index (``I + k`` shifts it); ``S(lo, hi)`` is an
absolute inclusive slice; a bare int / Sym / Lin subscript means a single
index (``At``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from repro.core.symbolic import Lin, LinLike, Sym, as_lin
from repro.hpf.ast import (
    ArrayDecl,
    At,
    Expr,
    ExprLike,
    LoopIdx,
    LoopSpec,
    ParallelAssign,
    Program,
    Reduce,
    Ref,
    ScalarAssign,
    ScalarRef,
    SeqLoop,
    Slice,
    Stmt,
    Subscript,
    Un,
    as_expr,
)

__all__ = ["I", "IdxExpr", "ProgramBuilder", "S", "sqrt", "ABS"]


@dataclass(frozen=True)
class IdxExpr:
    """The parallel loop index with an affine offset (builder-side)."""

    offset: Lin = Lin(0)

    def __add__(self, k: LinLike) -> "IdxExpr":
        return IdxExpr(self.offset + as_lin(k))

    def __sub__(self, k: LinLike) -> "IdxExpr":
        return IdxExpr(self.offset - as_lin(k))


#: The canonical parallel loop index.
I = IdxExpr()


def S(lo: LinLike, hi: LinLike) -> Slice:
    """An absolute inclusive slice ``lo:hi``."""
    return Slice(lo, hi)


def sqrt(x: ExprLike) -> Un:
    return Un("sqrt", as_expr(x))


def ABS(x: ExprLike) -> Un:
    return Un("abs", as_expr(x))


SubscriptLike = Union[IdxExpr, Slice, int, Sym, Lin]


def _as_subscript(sub: SubscriptLike) -> Subscript:
    if isinstance(sub, IdxExpr):
        return LoopIdx(sub.offset)
    if isinstance(sub, Slice):
        return sub
    if isinstance(sub, (int, Sym, Lin)):
        return At(as_lin(sub))
    raise TypeError(f"bad subscript {sub!r}")


class ArrayHandle:
    """Builder-side handle; indexing yields a :class:`Ref`."""

    def __init__(self, decl: ArrayDecl) -> None:
        self.decl = decl

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.decl.shape

    def __getitem__(self, subs: SubscriptLike | tuple[SubscriptLike, ...]) -> Ref:
        if not isinstance(subs, tuple):
            subs = (subs,)
        if len(subs) != self.decl.rank:
            raise IndexError(
                f"{self.name}: {len(subs)} subscripts for rank {self.decl.rank}"
            )
        return Ref(self.name, tuple(_as_subscript(s) for s in subs))

    def full(self) -> Ref:
        """A reference to the entire array (Slice over every dim, LoopIdx last)."""
        subs: list[Subscript] = [Slice(0, n - 1) for n in self.decl.shape[:-1]]
        subs.append(LoopIdx(0))
        return Ref(self.name, tuple(subs))


class ProgramBuilder:
    """Accumulates declarations and statements into a :class:`Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._arrays: dict[str, ArrayDecl] = {}
        self._scalars: dict[str, float] = {}
        self._initializers: dict[str, object] = {}
        self._subroutines: dict[str, object] = {}
        self._body: list[Stmt] = []
        self._stack: list[list[Stmt]] = [self._body]
        self._labels = 0

    # ------------------------------------------------------------------ #
    # declarations
    # ------------------------------------------------------------------ #
    def array(
        self,
        name: str,
        shape: Sequence[int],
        dist: str = "block",
        init=None,
    ) -> ArrayHandle:
        """Declare a distributed array; ``init`` is an optional
        ``fn(shape) -> ndarray`` applied at allocation (untimed input)."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already declared")
        decl = ArrayDecl(name, tuple(shape), dist)
        self._arrays[name] = decl
        if init is not None:
            self._initializers[name] = init
        return ArrayHandle(decl)

    def scalar_decl(self, name: str, init: float = 0.0) -> ScalarRef:
        self._scalars[name] = float(init)
        return ScalarRef(name)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _auto_label(self, prefix: str) -> str:
        self._labels += 1
        return f"{prefix}{self._labels}"

    def forall(
        self,
        lo: LinLike,
        hi: LinLike,
        lhs: Ref,
        rhs: ExprLike,
        label: str = "",
        on_home: Ref | None = None,
        step: int = 1,
    ) -> ParallelAssign:
        """An INDEPENDENT parallel loop over the distributed dimension.

        ``on_home`` applies the HPF ON HOME directive: iterations are
        partitioned by that reference's owner instead of the LHS owner.
        ``step`` strides the iteration space (red-black orderings).
        """
        stmt = ParallelAssign(
            lhs,
            as_expr(rhs),
            LoopSpec("j", lo, hi, step),
            label or self._auto_label("L"),
            on_home,
        )
        self._stack[-1].append(stmt)
        return stmt

    def assign_at(self, lhs: Ref, rhs: ExprLike, label: str = "") -> ParallelAssign:
        """A single-owner statement: LHS last subscript must be ``At``."""
        stmt = ParallelAssign(lhs, as_expr(rhs), None, label or self._auto_label("A"))
        self._stack[-1].append(stmt)
        return stmt

    def reduce(
        self,
        target: str,
        lo: LinLike,
        hi: LinLike,
        rhs: ExprLike,
        op: str = "sum",
        label: str = "",
    ) -> Reduce:
        if target not in self._scalars:
            self._scalars[target] = 0.0
        stmt = Reduce(
            target, as_expr(rhs), LoopSpec("j", lo, hi), op, label or self._auto_label("R")
        )
        self._stack[-1].append(stmt)
        return stmt

    def scalar(self, target: str, rhs: ExprLike, label: str = "") -> ScalarAssign:
        if target not in self._scalars:
            self._scalars[target] = 0.0
        stmt = ScalarAssign(target, as_expr(rhs), label or self._auto_label("S"))
        self._stack[-1].append(stmt)
        return stmt

    # ------------------------------------------------------------------ #
    # sequential loops
    # ------------------------------------------------------------------ #
    @contextmanager
    def seq(self, var: str, lo: LinLike, hi: LinLike) -> Iterator[Sym]:
        """Sequential loop; yields the loop variable as a Sym."""
        body: list[Stmt] = []
        self._stack.append(body)
        try:
            yield Sym(var)
        finally:
            self._stack.pop()
            self._stack[-1].append(SeqLoop(var, lo, hi, body))

    @contextmanager
    def timesteps(self, n: int, var: str = "t") -> Iterator[Sym]:
        """Sugar for the ubiquitous time-step loop ``0 .. n-1``."""
        with self.seq(var, 0, n - 1) as sym:
            yield sym

    # ------------------------------------------------------------------ #
    # subroutines (resolved by full inlining at build())
    # ------------------------------------------------------------------ #
    @contextmanager
    def subroutine(self, name: str, **params) -> Iterator[tuple[ArrayHandle, ...]]:
        """Define a subroutine over formal array parameters.

        Each keyword gives a formal's shape (and optionally distribution)::

            with b.subroutine("smooth", src=(64, 64), dst=(64, 64)) as (s, d):
                b.forall(1, 62, d[S(1, 62), I],
                         (s[S(1, 62), I - 1] + s[S(1, 62), I + 1]) * 0.5)
            b.call("smooth", "u", "unew")

        A value may be ``shape_tuple`` or ``(shape_tuple, dist_str)``.
        Calls are expanded inline at :meth:`build`; actuals must conform to
        the formals' shapes and distributions.
        """
        from repro.hpf.procedures import SubroutineDef, SubroutineError

        if name in self._subroutines:
            raise SubroutineError(f"subroutine {name!r} already defined")
        decls = []
        handles = []
        for pname, spec in params.items():
            if pname in self._arrays:
                raise SubroutineError(
                    f"formal {pname!r} shadows a declared array"
                )
            if (
                isinstance(spec, tuple)
                and len(spec) == 2
                and isinstance(spec[0], tuple)
            ):
                shape, dist = spec
            else:
                shape, dist = spec, "block"
            decl = ArrayDecl(pname, tuple(shape), dist)
            decls.append(decl)
            handles.append(ArrayHandle(decl))
        body: list[Stmt] = []
        self._stack.append(body)
        try:
            yield tuple(handles)
        finally:
            self._stack.pop()
        self._subroutines[name] = SubroutineDef(
            name, tuple(params), tuple(body), tuple(decls)
        )

    def call(self, name: str, *args: str | ArrayHandle) -> None:
        """Emit a subroutine call (inlined at build())."""
        from repro.hpf.procedures import CallStmt

        names = tuple(a.name if isinstance(a, ArrayHandle) else a for a in args)
        self._stack[-1].append(CallStmt(name, names))

    # ------------------------------------------------------------------ #
    def build(self) -> Program:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed sequential loop")
        body = tuple(self._body)
        if self._subroutines:
            from repro.hpf.procedures import inline_calls

            body = inline_calls(
                body, self._subroutines, list(self._arrays), dict(self._arrays)
            )
        return Program(
            self.name,
            dict(self._arrays),
            body,
            dict(self._scalars),
            dict(self._initializers),
        )
