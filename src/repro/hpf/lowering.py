"""Owner-computes lowering: who executes which iterations.

"Work distribution is determined at compile-time, typically following the
owner-computes rule" (paper Section 2).  For a parallel loop whose LHS last
subscript is ``j + off``, processor ``p`` executes exactly the iterations
``j`` with ``owner(j + off) == p`` — i.e. the owned columns shifted by
``-off``, clipped to the loop bounds.  Bounds and offsets may be symbolic
in enclosing sequential variables; the owned set itself is static, so the
iteration spec is a *parametric* object instantiated per environment (the
same deferred-evaluation trick the paper plays with Omega-generated code).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sections import StridedInterval
from repro.core.symbolic import Env, Lin
from repro.hpf.ast import ArrayDecl, At, LoopIdx, ParallelAssign, Reduce
from repro.tempest.memory import Distribution

__all__ = ["IterSpec", "distribution_of", "iteration_spec", "owner_of_at"]


def distribution_of(decl: ArrayDecl, n_procs: int) -> Distribution:
    return {
        "block": Distribution.block,
        "cyclic": Distribution.cyclic,
        "replicated": Distribution.replicated,
    }[decl.dist](n_procs)


@dataclass(frozen=True)
class IterSpec:
    """Parametric per-processor iteration sets of one parallel loop.

    ``owned[p]`` is processor p's owned last-dimension index set (static);
    the iterations p executes are ``owned[p].shift(-offset) ∩ [lo, hi]``,
    with ``offset``, ``lo``, ``hi`` evaluated against the environment.
    For a replicated LHS every processor executes the full range.
    """

    owned: tuple[StridedInterval, ...] | None  # None => replicated
    offset: Lin
    lo: Lin
    hi: Lin
    step: int = 1

    def iterations(self, proc: int, env: Env) -> StridedInterval:
        lo = self.lo.eval(env)
        hi = self.hi.eval(env)
        base = StridedInterval(lo, hi, self.step)
        if self.owned is None:
            return base
        off = self.offset.eval(env)
        return self.owned[proc].shift(-off).intersect(base)

    def n_procs(self) -> int:
        return len(self.owned) if self.owned is not None else 1


def iteration_spec(
    stmt: ParallelAssign | Reduce, decl: ArrayDecl, n_procs: int
) -> IterSpec:
    """Build the iteration spec for a parallel statement.

    For :class:`Reduce` the ``decl`` is the (first) referenced array — each
    processor reduces over its owned iterations of that array, the usual
    HPF lowering for reduction intrinsics.
    """
    if isinstance(stmt, ParallelAssign):
        last = stmt.home_ref.last
        if isinstance(last, At):
            raise ValueError(
                "single-owner statements have no iteration spec; "
                "use owner_of_at() instead"
            )
        assert isinstance(last, LoopIdx)
        offset = last.offset
        loop = stmt.loop
    else:
        offset = Lin(0)
        loop = stmt.loop
    assert loop is not None

    dist = distribution_of(decl, n_procs)
    extent = decl.extent
    if decl.dist == "replicated":
        owned = None
    else:
        owned = tuple(
            StridedInterval.from_range(dist.owned_indices(p, extent))
            for p in range(n_procs)
        )
    return IterSpec(owned, offset, loop.lo, loop.hi, loop.step)


def owner_of_at(
    stmt: ParallelAssign, decl: ArrayDecl, n_procs: int, env: Env
) -> int:
    """Executing processor of a single-owner statement (LHS last = At)."""
    last = stmt.lhs.last
    if not isinstance(last, At):
        raise ValueError("owner_of_at needs an At LHS")
    dist = distribution_of(decl, n_procs)
    return dist.owner(last.index.eval(env), decl.extent)
