"""AST of the mini-HPF language.

Structure
---------
A :class:`Program` declares distributed arrays and a statement list.
Statements:

:class:`ParallelAssign`
    ``FORALL j = lo, hi : lhs[..., f(j)] = expr`` — an INDEPENDENT parallel
    loop over the distributed (last) dimension, work split owner-computes
    by the LHS.  When the LHS last subscript is :class:`At` (a single
    column) the statement runs on that column's owner alone.
:class:`Reduce`
    ``scalar = SUM(expr over loop)`` — local partials + a message-based
    all-reduce.
:class:`ScalarAssign`
    Replicated scalar computation (every node computes it identically).
:class:`SeqLoop`
    A sequential loop (time steps, LU's pivot index); its variable may
    appear in subscripts and bounds of inner statements as a
    :class:`repro.core.symbolic.Sym`.

Subscripts (one per array dimension):

:class:`LoopIdx`  ``j + offset`` — the parallel loop variable plus an
    affine offset (offset may be symbolic in sequential variables).
:class:`Slice`    absolute inclusive bounds ``lo:hi`` (LinLike).
:class:`At`       a single absolute index (LinLike).

Expressions are tiny: literals, scalar refs, array refs, binary ops
(``+ - * /``) and a few unary functions.  Python operators are overloaded
on :class:`Expr` so application code reads naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from repro.core.symbolic import Lin, LinLike, Sym, as_lin

__all__ = [
    "ArrayDecl",
    "At",
    "Bin",
    "Expr",
    "Lit",
    "LoopIdx",
    "LoopSpec",
    "ParallelAssign",
    "Program",
    "Reduce",
    "Ref",
    "ScalarAssign",
    "ScalarRef",
    "SeqLoop",
    "Slice",
    "Stmt",
    "Un",
    "walk_statements",
]


# ===================================================================== #
# subscripts
# ===================================================================== #
@dataclass(frozen=True)
class LoopIdx:
    """The parallel loop variable plus an offset: ``j + offset``."""

    offset: Lin = Lin(0)

    def __init__(self, offset: LinLike = 0) -> None:
        object.__setattr__(self, "offset", as_lin(offset))


@dataclass(frozen=True)
class Slice:
    """Absolute inclusive bounds ``lo:hi`` in one dimension."""

    lo: Lin
    hi: Lin

    def __init__(self, lo: LinLike, hi: LinLike) -> None:
        object.__setattr__(self, "lo", as_lin(lo))
        object.__setattr__(self, "hi", as_lin(hi))


@dataclass(frozen=True)
class At:
    """A single absolute index."""

    index: Lin

    def __init__(self, index: LinLike) -> None:
        object.__setattr__(self, "index", as_lin(index))


Subscript = Union[LoopIdx, Slice, At]


# ===================================================================== #
# expressions
# ===================================================================== #
class Expr:
    """Base expression with operator sugar."""

    def __add__(self, other: "ExprLike") -> "Bin":
        return Bin("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Bin":
        return Bin("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", as_expr(other), self)

    def __neg__(self) -> "Un":
        return Un("neg", self)

    # ------------------------------------------------------------------ #
    def refs(self) -> Iterator["Ref"]:
        """All array references in this expression (pre-order)."""
        if isinstance(self, Ref):
            yield self
        elif isinstance(self, Bin):
            yield from self.lhs.refs()
            yield from self.rhs.refs()
        elif isinstance(self, Un):
            yield from self.operand.refs()
        elif isinstance(self, Dot):
            yield self.mat
            yield self.vec

    def op_count(self) -> int:
        """Arithmetic operations per element — the compute-cost weight."""
        if isinstance(self, Bin):
            return 1 + self.lhs.op_count() + self.rhs.op_count()
        if isinstance(self, Un):
            return 1 + self.operand.op_count()
        if isinstance(self, Dot):
            return 2 * self.depth  # one multiply + one add per contraction step
        return 0


@dataclass(frozen=True)
class Lit(Expr):
    value: float


@dataclass(frozen=True)
class ScalarRef(Expr):
    name: str


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference ``name[sub0, sub1, ...]`` (Fortran dim order)."""

    array: str
    subs: tuple[Subscript, ...]

    def __init__(self, array: str, subs: Sequence[Subscript]) -> None:
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "subs", tuple(subs))

    @property
    def last(self) -> Subscript:
        return self.subs[-1]

    @property
    def inner(self) -> tuple[Subscript, ...]:
        return self.subs[:-1]


@dataclass(frozen=True)
class Bin(Expr):
    op: str  # '+', '-', '*', '/'
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown binary op {self.op!r}")


@dataclass(frozen=True)
class Un(Expr):
    op: str  # 'neg', 'abs', 'sqrt', 'exp'
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("neg", "abs", "sqrt", "exp"):
            raise ValueError(f"unknown unary op {self.op!r}")


@dataclass(frozen=True)
class Dot(Expr):
    """Contraction of a rank-2 matrix section with a rank-1 vector section:
    ``result[j] = Σ_i mat[i, j] * vec[i]`` — the dense-matvec primitive HPF
    codes spell ``MATMUL``.  The matrix's last subscript carries the loop
    index; the vector is read in full (a broadcast-style non-owner read).

    ``depth`` is the contraction length (for the compute-cost model); it is
    derived from the matrix's inner slice when constant.
    """

    mat: Ref
    vec: Ref
    depth: int = 1

    def __post_init__(self) -> None:
        if len(self.vec.subs) != 1:
            raise ValueError("Dot vector operand must be rank-1")
        if len(self.mat.subs) != 2:
            raise ValueError("Dot matrix operand must be rank-2")

    @staticmethod
    def of(mat: Ref, vec: Ref) -> "Dot":
        inner = mat.subs[0]
        depth = 1
        if isinstance(inner, Slice) and inner.lo.is_const and inner.hi.is_const:
            depth = max(1, inner.hi.const - inner.lo.const + 1)
        return Dot(mat, vec, depth)


ExprLike = Union[Expr, float, int]


def as_expr(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Lit(float(value))
    raise TypeError(f"cannot interpret {value!r} as an expression")


# ===================================================================== #
# statements
# ===================================================================== #
@dataclass(frozen=True)
class LoopSpec:
    """Bounds of a parallel loop over the distributed dimension.

    ``step`` > 1 gives a strided iteration space (red-black orderings);
    the section algebra handles the resulting strided access sets exactly.
    """

    var: str
    lo: Lin
    hi: Lin
    step: int = 1

    def __init__(self, var: str, lo: LinLike, hi: LinLike, step: int = 1) -> None:
        if not isinstance(step, int) or step < 1:
            raise ValueError(f"loop step must be a positive int, got {step!r}")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "lo", as_lin(lo))
        object.__setattr__(self, "hi", as_lin(hi))
        object.__setattr__(self, "step", step)


class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class ParallelAssign(Stmt):
    """A parallel assignment.

    ``on_home``: optional HPF ``ON HOME`` directive — partition the
    iterations by the owner of *this* reference instead of the LHS.  With
    it, the LHS may be written by non-owners, exercising the paper's
    non-owner-write path (Section 4.2 last paragraph).
    """

    lhs: Ref
    rhs: Expr
    loop: LoopSpec | None = None   # None: single-owner statement (LHS uses At)
    label: str = ""
    on_home: Ref | None = None

    def __post_init__(self) -> None:
        last = self.lhs.last
        if isinstance(last, LoopIdx):
            if self.loop is None:
                raise ValueError("a LoopIdx LHS needs a LoopSpec")
        elif isinstance(last, At):
            pass  # single-owner statement; loop may describe inner extent
        else:
            raise ValueError(
                "LHS last subscript must be LoopIdx (parallel) or At (single-owner)"
            )
        for sub in self.lhs.inner:
            if isinstance(sub, LoopIdx):
                raise ValueError("the parallel loop variable may only index the last dimension")
        if self.on_home is not None and not isinstance(self.on_home.last, LoopIdx):
            raise ValueError("ON HOME reference must use the loop index in its last dimension")

    @property
    def home_ref(self) -> Ref:
        """The reference whose ownership distributes the iterations."""
        return self.on_home if self.on_home is not None else self.lhs


@dataclass(frozen=True)
class Reduce(Stmt):
    """``target = REDUCE(op, expr)`` over a parallel loop."""

    target: str
    rhs: Expr
    loop: LoopSpec
    op: str = "sum"
    label: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("sum", "max", "min"):
            raise ValueError(f"unknown reduction {self.op!r}")


@dataclass(frozen=True)
class ScalarAssign(Stmt):
    """Replicated scalar computation (no array refs allowed)."""

    target: str
    rhs: Expr
    label: str = ""

    def __post_init__(self) -> None:
        if any(True for _ in self.rhs.refs()):
            raise ValueError("ScalarAssign must not reference arrays")


@dataclass(frozen=True)
class SeqLoop(Stmt):
    """Sequential loop; ``var`` is available as a Sym inside ``body``."""

    var: str
    lo: Lin
    hi: Lin
    body: tuple[Stmt, ...]

    def __init__(self, var: str, lo: LinLike, hi: LinLike, body: Sequence[Stmt]) -> None:
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "lo", as_lin(lo))
        object.__setattr__(self, "hi", as_lin(hi))
        object.__setattr__(self, "body", tuple(body))

    @property
    def sym(self) -> Sym:
        return Sym(self.var)


# ===================================================================== #
# declarations and programs
# ===================================================================== #
@dataclass(frozen=True)
class ArrayDecl:
    """A distributed array declaration.

    ``dist`` is ``"block"``, ``"cyclic"`` or ``"replicated"`` over the last
    dimension, per the paper's restriction.
    """

    name: str
    shape: tuple[int, ...]
    dist: str = "block"

    def __post_init__(self) -> None:
        if self.dist not in ("block", "cyclic", "replicated"):
            raise ValueError(f"unknown distribution {self.dist!r}")
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"bad shape {self.shape!r}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def extent(self) -> int:
        return self.shape[-1]


@dataclass(frozen=True)
class Program:
    """A complete mini-HPF program.

    ``initializers`` maps array names to ``fn(shape) -> ndarray`` callables
    applied by every backend right after allocation — the stand-in for
    reading input files, outside the timed phases.
    """

    name: str
    arrays: dict[str, ArrayDecl]
    body: tuple[Stmt, ...]
    scalars: dict[str, float] = field(default_factory=dict)
    initializers: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Static sanity: refs resolve, ranks match, subscripts legal."""
        for name in self.initializers:
            if name not in self.arrays:
                raise ValueError(f"initializer for undeclared array {name!r}")
        for stmt in walk_statements(self.body):
            if isinstance(stmt, ParallelAssign):
                self._check_ref(stmt.lhs)
                for ref in stmt.rhs.refs():
                    self._check_ref(ref)
            elif isinstance(stmt, Reduce):
                for ref in stmt.rhs.refs():
                    self._check_ref(ref)

    def _check_ref(self, ref: Ref) -> None:
        decl = self.arrays.get(ref.array)
        if decl is None:
            raise ValueError(f"reference to undeclared array {ref.array!r}")
        if len(ref.subs) != decl.rank:
            raise ValueError(
                f"{ref.array}: rank {decl.rank} but {len(ref.subs)} subscripts"
            )

    def total_bytes(self) -> int:
        return sum(8 * _prod(a.shape) for a in self.arrays.values())


def _prod(xs: Sequence[int]) -> int:
    out = 1
    for x in xs:
        out *= x
    return out


def walk_statements(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement, descending into sequential loops."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, SeqLoop):
            yield from walk_statements(stmt.body)
