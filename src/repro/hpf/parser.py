"""A textual front end for mini-HPF programs.

The grammar is a compact HPF-flavoured notation::

    PROGRAM jacobi
    REAL a(128, 256) DISTRIBUTE (*, BLOCK)
    REAL new(128, 256) DISTRIBUTE (*, BLOCK)
    DO t = 0, 9
      FORALL j = 1, 254 : new(0:127, j) = (a(0:127, j-1) + a(0:127, j+1)) * 0.5
      FORALL j = 1, 254 : a(0:127, j) = new(0:127, j)
    END DO
    REDUCE total = SUM(j = 0, 255 : a(0:127, j) * a(0:127, j))
    LET norm = total / 2.0
    END

Statement forms
---------------
``REAL name(d0, ..., dk) [DISTRIBUTE (*, ..., BLOCK|CYCLIC)]``
    Array declaration; the distribution directive names the last dimension
    (every other position must be ``*``, the paper's restriction).
``SCALAR name [= value]``
    Scalar declaration.
``DO var = lo, hi`` ... ``END DO``
    Sequential loop; ``var`` is available in subscripts/bounds inside.
``FORALL j = lo, hi[, step] [ON HOME ref] : lhs = expr``
    INDEPENDENT parallel loop over the distributed dimension; an optional
    integer step strides the iteration space (red-black orderings).
``ASSIGN lhs = expr``
    Single-owner statement (the LHS last subscript must be an index).
``REDUCE target = SUM|MAX|MIN(j = lo, hi : expr)``
    Global reduction.
``LET target = expr``
    Replicated scalar computation (scalars and literals only).
``SUB name(p0(d...), p1(d...) [DISTRIBUTE ...])`` ... ``END SUB``
    Subroutine over formal arrays; resolved by full inlining.
``CALL name(actual0, actual1, ...)``
    Call site (expanded at build).

Subscripts: ``lo:hi`` (absolute inclusive slice), ``j±c`` (the FORALL
index), or any affine expression in sequential variables and integers.
Expressions support ``+ - * /``, parentheses, ``SQRT(x)``, ``ABS(x)``,
numeric literals, scalar names and array references.  Comments start with
``!``.  Keywords are case-insensitive; names are case-sensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.symbolic import Lin, Sym, as_lin
from repro.hpf.procedures import CallStmt, SubroutineDef, inline_calls
from repro.hpf.ast import (
    ArrayDecl,
    At,
    Bin,
    Expr,
    Lit,
    LoopIdx,
    LoopSpec,
    ParallelAssign,
    Program,
    Reduce,
    Ref,
    ScalarAssign,
    ScalarRef,
    SeqLoop,
    Slice,
    Stmt,
    Subscript,
    Un,
)

__all__ = ["ParseError", "parse_program"]


class ParseError(ValueError):
    """Syntax or semantic error in mini-HPF source, with line info."""

    def __init__(self, message: str, line_no: int, line: str = "") -> None:
        super().__init__(f"line {line_no}: {message}" + (f"\n    {line}" if line else ""))
        self.line_no = line_no


TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[()+\-*/:,=])"
    r")"
)


def tokenize(text: str, line_no: int) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ParseError(f"cannot tokenize {text[pos:].strip()!r}", line_no, text)
            break
        pos = m.end()
        if m.group("num") is not None:
            tokens.append(("num", m.group("num")))
        elif m.group("name") is not None:
            tokens.append(("name", m.group("name")))
        else:
            tokens.append(("op", m.group("op")))
    return tokens


@dataclass
class _Ctx:
    """Parsing context: declarations and visible sequential variables."""

    arrays: dict[str, ArrayDecl]
    scalars: dict[str, float]
    seq_vars: list[str]
    loop_var: str | None  # the active FORALL/REDUCE index, if any


class _ExprParser:
    """Recursive-descent parser for one expression token stream."""

    def __init__(self, tokens: list[tuple[str, str]], ctx: _Ctx, line_no: int, line: str):
        self.tokens = tokens
        self.pos = 0
        self.ctx = ctx
        self.line_no = line_no
        self.line = line

    # ------------------------------------------------------------------ #
    def error(self, message: str) -> ParseError:
        return ParseError(message, self.line_no, self.line)

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise self.error("unexpected end of expression")
        self.pos += 1
        return tok

    def expect_op(self, op: str) -> None:
        tok = self.next()
        if tok != ("op", op):
            raise self.error(f"expected {op!r}, got {tok[1]!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while (tok := self.peek()) and tok[0] == "op" and tok[1] in "+-":
            self.next()
            rhs = self.parse_term()
            node = Bin(tok[1], node, rhs)
        return node

    def parse_term(self) -> Expr:
        node = self.parse_factor()
        while (tok := self.peek()) and tok[0] == "op" and tok[1] in "*/":
            self.next()
            rhs = self.parse_factor()
            node = Bin(tok[1], node, rhs)
        return node

    def parse_factor(self) -> Expr:
        tok = self.next()
        kind, value = tok
        if kind == "op" and value == "-":
            return Un("neg", self.parse_factor())
        if kind == "op" and value == "+":
            return self.parse_factor()
        if kind == "op" and value == "(":
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if kind == "num":
            return Lit(float(value))
        if kind == "name":
            upper = value.upper()
            if upper in ("SQRT", "ABS"):
                self.expect_op("(")
                inner = self.parse_expr()
                self.expect_op(")")
                return Un("sqrt" if upper == "SQRT" else "abs", inner)
            if value in self.ctx.arrays:
                return self.parse_ref(value)
            if value in self.ctx.scalars:
                return ScalarRef(value)
            if value == self.ctx.loop_var or value in self.ctx.seq_vars:
                raise self.error(
                    f"loop variable {value!r} cannot stand alone in an "
                    "expression (only in subscripts)"
                )
            raise self.error(f"unknown name {value!r}")
        raise self.error(f"unexpected token {value!r}")

    # ------------------------------------------------------------------ #
    # references and subscripts
    # ------------------------------------------------------------------ #
    def parse_ref(self, array: str) -> Ref:
        decl = self.ctx.arrays[array]
        self.expect_op("(")
        subs: list[Subscript] = []
        while True:
            subs.append(self.parse_subscript())
            tok = self.next()
            if tok == ("op", ")"):
                break
            if tok != ("op", ","):
                raise self.error(f"expected ',' or ')' in subscripts, got {tok[1]!r}")
        if len(subs) != decl.rank:
            raise self.error(
                f"{array}: {len(subs)} subscripts for rank {decl.rank}"
            )
        return Ref(array, tuple(subs))

    def parse_subscript(self) -> Subscript:
        lo = self.parse_index_expr()
        tok = self.peek()
        if tok == ("op", ":"):
            self.next()
            hi = self.parse_index_expr()
            if isinstance(lo, tuple) or isinstance(hi, tuple):
                raise self.error("the loop index cannot appear in a slice bound")
            return Slice(lo, hi)
        if isinstance(lo, str):  # bare/offset loop index marker resolved below
            raise self.error("internal: unresolved loop index")  # pragma: no cover
        if isinstance(lo, tuple):  # (loop marker, offset)
            return LoopIdx(lo[1])
        return At(lo)

    def parse_index_expr(self):
        """An affine index expression: ints, seq vars, the loop var, +/-/*.

        Returns a :class:`Lin` for absolute indices, or the tuple
        ``("loop", offset)`` when the FORALL index participates.
        """
        total = Lin(0)
        loop_uses = 0
        sign = 1
        expect_operand = True
        while True:
            tok = self.peek()
            if tok is None:
                break
            kind, value = tok
            if expect_operand:
                if kind == "num":
                    self.next()
                    if "." in value or "e" in value or "E" in value:
                        raise self.error("subscripts must be integers")
                    term = Lin(int(value))
                elif kind == "name":
                    self.next()
                    if value == self.ctx.loop_var:
                        loop_uses += 1
                        term = Lin(0)
                    elif value in self.ctx.seq_vars:
                        term = as_lin(Sym(value))
                    else:
                        raise self.error(f"unknown index name {value!r}")
                elif kind == "op" and value == "-":
                    self.next()
                    sign = -sign
                    continue
                elif kind == "op" and value == "+":
                    self.next()
                    continue
                else:
                    raise self.error(f"unexpected {value!r} in subscript")
                # Optional integer scaling: <name> * <int> or <int> * <name>
                nxt = self.peek()
                if nxt == ("op", "*"):
                    self.next()
                    k_tok = self.next()
                    if k_tok[0] != "num" or "." in k_tok[1]:
                        raise self.error("only integer scaling in subscripts")
                    term = term * int(k_tok[1])
                total = total + term * sign
                sign = 1
                expect_operand = False
            else:
                if kind == "op" and value in "+-":
                    self.next()
                    sign = 1 if value == "+" else -1
                    expect_operand = True
                else:
                    break
        if loop_uses > 1:
            raise self.error("the loop index may appear at most once per subscript")
        if loop_uses:
            return ("loop", total)
        return total


class _ProgramParser:
    """Line-oriented statement parser."""

    def __init__(self, source: str) -> None:
        self.lines = source.splitlines()
        self.idx = 0
        self.arrays: dict[str, ArrayDecl] = {}
        self.scalars: dict[str, float] = {}
        self.name = ""
        self.seq_vars: list[str] = []
        self._forall_counter = 0
        self.subroutines: dict[str, SubroutineDef] = {}
        self._formal_decls: dict[str, ArrayDecl] = {}  # while inside a SUB

    # ------------------------------------------------------------------ #
    def next_line(self) -> tuple[int, str] | None:
        while self.idx < len(self.lines):
            self.idx += 1
            raw = self.lines[self.idx - 1]
            line = raw.split("!", 1)[0].strip()
            if line:
                return self.idx, line
        return None

    def parse(self) -> Program:
        entry = self.next_line()
        if entry is None:
            raise ParseError("empty program", 0)
        line_no, line = entry
        m = re.fullmatch(r"(?i:PROGRAM)\s+([A-Za-z_]\w*)", line)
        if not m:
            raise ParseError("expected 'PROGRAM <name>'", line_no, line)
        self.name = m.group(1)
        body = self.parse_block(closing="END")
        from repro.hpf.procedures import SubroutineError

        try:
            flattened = inline_calls(
                body, self.subroutines, list(self.arrays), dict(self.arrays)
            )
        except SubroutineError as e:
            raise ParseError(str(e), 0) from None
        return Program(self.name, self.arrays, flattened, dict(self.scalars))

    def parse_block(self, closing: str) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            entry = self.next_line()
            if entry is None:
                raise ParseError(f"missing {closing!r}", len(self.lines))
            line_no, line = entry
            upper = line.upper()
            if upper == closing:
                return body
            if upper == "END" and closing != "END":
                raise ParseError(f"missing {closing!r} before END", line_no, line)
            stmt = self.parse_statement(line_no, line)
            if stmt is not None:
                body.append(stmt)

    # ------------------------------------------------------------------ #
    def parse_statement(self, line_no: int, line: str) -> Stmt | None:
        upper = line.upper()
        if upper.startswith("REAL "):
            self.parse_decl(line_no, line)
            return None
        if upper.startswith("SCALAR "):
            self.parse_scalar_decl(line_no, line)
            return None
        if upper.startswith("DO "):
            return self.parse_do(line_no, line)
        if upper.startswith("FORALL "):
            return self.parse_forall(line_no, line)
        if upper.startswith("ASSIGN "):
            return self.parse_assign(line_no, line)
        if upper.startswith("REDUCE "):
            return self.parse_reduce(line_no, line)
        if upper.startswith("LET "):
            return self.parse_let(line_no, line)
        if upper.startswith("SUB "):
            self.parse_sub(line_no, line)
            return None
        if upper.startswith("CALL "):
            return self.parse_call(line_no, line)
        raise ParseError(f"unrecognized statement", line_no, line)

    def parse_decl(self, line_no: int, line: str) -> None:
        m = re.fullmatch(
            r"(?i:REAL)\s+([A-Za-z_]\w*)\s*\(([^)]*)\)"
            r"(?:\s+(?i:DISTRIBUTE)\s*\(([^)]*)\))?",
            line,
        )
        if not m:
            raise ParseError("malformed REAL declaration", line_no, line)
        name, dims_text, dist_text = m.group(1), m.group(2), m.group(3)
        if name in self.arrays:
            raise ParseError(f"array {name!r} already declared", line_no, line)
        try:
            shape = tuple(int(d.strip()) for d in dims_text.split(","))
        except ValueError:
            raise ParseError("array extents must be integer literals", line_no, line)
        dist = "block"
        if dist_text is not None:
            parts = [p.strip().upper() for p in dist_text.split(",")]
            if len(parts) != len(shape):
                raise ParseError("DISTRIBUTE rank mismatch", line_no, line)
            if any(p != "*" for p in parts[:-1]):
                raise ParseError(
                    "only the last dimension may be distributed (use '*' elsewhere)",
                    line_no,
                    line,
                )
            if parts[-1] not in ("BLOCK", "CYCLIC", "*"):
                raise ParseError(f"unknown distribution {parts[-1]!r}", line_no, line)
            dist = {"BLOCK": "block", "CYCLIC": "cyclic", "*": "replicated"}[parts[-1]]
        self.arrays[name] = ArrayDecl(name, shape, dist)

    def parse_scalar_decl(self, line_no: int, line: str) -> None:
        m = re.fullmatch(r"(?i:SCALAR)\s+([A-Za-z_]\w*)(?:\s*=\s*([-+.\dEe]+))?", line)
        if not m:
            raise ParseError("malformed SCALAR declaration", line_no, line)
        self.scalars[m.group(1)] = float(m.group(2)) if m.group(2) else 0.0

    # ------------------------------------------------------------------ #
    def ctx(self, loop_var: str | None) -> _Ctx:
        return _Ctx(self.arrays, self.scalars, list(self.seq_vars), loop_var)

    def _bound(self, text: str, line_no: int, line: str) -> Lin:
        parser = _ExprParser(tokenize(text, line_no), self.ctx(None), line_no, line)
        result = parser.parse_index_expr()
        if isinstance(result, tuple) or not parser.at_end():
            raise ParseError(f"bad loop bound {text!r}", line_no, line)
        return result

    def parse_do(self, line_no: int, line: str) -> SeqLoop:
        m = re.fullmatch(r"(?i:DO)\s+([A-Za-z_]\w*)\s*=\s*(.+?)\s*,\s*(.+)", line)
        if not m:
            raise ParseError("malformed DO", line_no, line)
        var = m.group(1)
        lo = self._bound(m.group(2), line_no, line)
        hi = self._bound(m.group(3), line_no, line)
        self.seq_vars.append(var)
        try:
            body = self.parse_block(closing="END DO")
        finally:
            self.seq_vars.pop()
        return SeqLoop(var, lo, hi, body)

    def parse_forall(self, line_no: int, line: str) -> ParallelAssign:
        m = re.fullmatch(
            r"(?i:FORALL)\s+([A-Za-z_]\w*)\s*=\s*(.+?)\s*,\s*(.+?)"
            r"(?:\s*,\s*(\d+))?"
            r"(?:\s+(?i:ON\s+HOME)\s+(.+?))?\s*:\s*(.+)",
            line,
        )
        if not m:
            raise ParseError("malformed FORALL", line_no, line)
        var, lo_text, hi_text, step_text, home_text, body = m.groups()
        lo = self._bound(lo_text, line_no, line)
        hi = self._bound(hi_text, line_no, line)
        step = int(step_text) if step_text else 1
        if step < 1:
            raise ParseError("FORALL step must be positive", line_no, line)
        lhs, rhs = self._split_assign(body, line_no, line)
        ctx = self.ctx(var)
        lhs_ref = self._parse_full_ref(lhs, ctx, line_no, line)
        rhs_expr = self._parse_full_expr(rhs, ctx, line_no, line)
        on_home = None
        if home_text:
            on_home = self._parse_full_ref(home_text, ctx, line_no, line)
        self._forall_counter += 1
        return ParallelAssign(
            lhs_ref, rhs_expr, LoopSpec(var, lo, hi, step),
            f"forall@{line_no}", on_home,
        )

    def parse_assign(self, line_no: int, line: str) -> ParallelAssign:
        body = line[len("ASSIGN "):]
        lhs, rhs = self._split_assign(body, line_no, line)
        ctx = self.ctx(None)
        lhs_ref = self._parse_full_ref(lhs, ctx, line_no, line)
        rhs_expr = self._parse_full_expr(rhs, ctx, line_no, line)
        return ParallelAssign(lhs_ref, rhs_expr, None, f"assign@{line_no}")

    def parse_reduce(self, line_no: int, line: str) -> Reduce:
        m = re.fullmatch(
            r"(?i:REDUCE)\s+([A-Za-z_]\w*)\s*=\s*(?i:(SUM|MAX|MIN))\s*\("
            r"\s*([A-Za-z_]\w*)\s*=\s*(.+?)\s*,\s*(.+?)\s*:\s*(.+)\)\s*",
            line,
        )
        if not m:
            raise ParseError("malformed REDUCE", line_no, line)
        target, op, var, lo_text, hi_text, expr_text = m.groups()
        if target not in self.scalars:
            self.scalars[target] = 0.0
        lo = self._bound(lo_text, line_no, line)
        hi = self._bound(hi_text, line_no, line)
        rhs = self._parse_full_expr(expr_text, self.ctx(var), line_no, line)
        return Reduce(target, rhs, LoopSpec(var, lo, hi), op.lower(), f"reduce@{line_no}")

    def parse_let(self, line_no: int, line: str) -> ScalarAssign:
        body = line[len("LET "):]
        lhs, rhs = self._split_assign(body, line_no, line)
        target = lhs.strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", target):
            raise ParseError("LET target must be a scalar name", line_no, line)
        if target not in self.scalars:
            self.scalars[target] = 0.0
        rhs_expr = self._parse_full_expr(rhs, self.ctx(None), line_no, line)
        return ScalarAssign(target, rhs_expr, f"let@{line_no}")

    def parse_sub(self, line_no: int, line: str) -> None:
        from repro.hpf.procedures import SubroutineError

        m = re.fullmatch(r"(?i:SUB)\s+([A-Za-z_]\w*)\s*\((.*)\)", line)
        if not m:
            raise ParseError("malformed SUB", line_no, line)
        name, params_text = m.group(1), m.group(2)
        if name in self.subroutines:
            raise ParseError(f"subroutine {name!r} already defined", line_no, line)
        if self._formal_decls:
            raise ParseError("nested SUB definitions are not allowed", line_no, line)
        # Formals look like declarations: p(16, 16) [DISTRIBUTE (*, CYCLIC)]
        decls: list[ArrayDecl] = []
        for piece in re.split(r",(?![^()]*\))", params_text):
            piece = piece.strip()
            pm = re.fullmatch(
                r"([A-Za-z_]\w*)\s*\(([^)]*)\)"
                r"(?:\s+(?i:DISTRIBUTE)\s*\(([^)]*)\))?",
                piece,
            )
            if not pm:
                raise ParseError(f"malformed formal {piece!r}", line_no, line)
            pname, dims_text, dist_text = pm.group(1), pm.group(2), pm.group(3)
            if pname in self.arrays:
                raise ParseError(
                    f"formal {pname!r} shadows a declared array", line_no, line
                )
            try:
                shape = tuple(int(d.strip()) for d in dims_text.split(","))
            except ValueError:
                raise ParseError("formal extents must be integers", line_no, line)
            dist = "block"
            if dist_text is not None:
                parts = [q.strip().upper() for q in dist_text.split(",")]
                dist = {"BLOCK": "block", "CYCLIC": "cyclic", "*": "replicated"}.get(
                    parts[-1], None
                )
                if dist is None:
                    raise ParseError(
                        f"unknown distribution {parts[-1]!r}", line_no, line
                    )
            decls.append(ArrayDecl(pname, shape, dist))
        self._formal_decls = {d.name: d for d in decls}
        self.arrays.update(self._formal_decls)  # visible while parsing the body
        try:
            body = self.parse_block(closing="END SUB")
        finally:
            for d in decls:
                self.arrays.pop(d.name, None)
            self._formal_decls = {}
        try:
            self.subroutines[name] = SubroutineDef(
                name, tuple(d.name for d in decls), tuple(body), tuple(decls)
            )
        except SubroutineError as e:
            raise ParseError(str(e), line_no, line) from None

    def parse_call(self, line_no: int, line: str) -> CallStmt:
        m = re.fullmatch(r"(?i:CALL)\s+([A-Za-z_]\w*)\s*\(([^)]*)\)", line)
        if not m:
            raise ParseError("malformed CALL", line_no, line)
        args = tuple(a.strip() for a in m.group(2).split(",") if a.strip())
        return CallStmt(m.group(1), args)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _split_assign(text: str, line_no: int, line: str) -> tuple[str, str]:
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "=" and depth == 0:
                return text[:i].strip(), text[i + 1 :].strip()
        raise ParseError("expected '=' in assignment", line_no, line)

    def _parse_full_expr(self, text: str, ctx: _Ctx, line_no: int, line: str) -> Expr:
        parser = _ExprParser(tokenize(text, line_no), ctx, line_no, line)
        expr = parser.parse_expr()
        if not parser.at_end():
            raise ParseError(
                f"trailing input after expression: {parser.peek()[1]!r}", line_no, line
            )
        return expr

    def _parse_full_ref(self, text: str, ctx: _Ctx, line_no: int, line: str) -> Ref:
        parser = _ExprParser(tokenize(text, line_no), ctx, line_no, line)
        tok = parser.next()
        if tok[0] != "name" or tok[1] not in ctx.arrays:
            raise ParseError(f"expected an array reference, got {text!r}", line_no, line)
        ref = parser.parse_ref(tok[1])
        if not parser.at_end():
            raise ParseError("trailing input after reference", line_no, line)
        return ref


def parse_program(source: str) -> Program:
    """Parse mini-HPF source text into a validated :class:`Program`."""
    return _ProgramParser(source).parse()
