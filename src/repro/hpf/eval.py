"""Numeric evaluation of mini-HPF statements (vectorized NumPy).

Evaluation is *global* and functional: a parallel loop's full iteration
space is computed in one vectorized step against the single backing store,
independent of the processor partitioning.  This matches INDEPENDENT-loop
semantics (no cross-iteration dependences), because NumPy fully
materializes the right-hand side before the assignment lands.

Every subscript keeps its axis (``At`` becomes a length-1 slice), so mixed
subscripts broadcast naturally — e.g. the LU rank-1 update
``a[i, j] -= a[i, k] * a[k, j]`` evaluates as a (rows, 1) × (1, cols)
outer product without special cases.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.symbolic import Env
from repro.hpf.ast import (
    At,
    Bin,
    Dot,
    Expr,
    Lit,
    LoopIdx,
    ParallelAssign,
    Reduce,
    Ref,
    ScalarAssign,
    ScalarRef,
    Un,
)

__all__ = ["eval_expr", "eval_parallel_assign", "eval_reduce", "eval_scalar_assign"]

Arrays = Mapping[str, np.ndarray]
Scalars = dict[str, float]


class EvalError(RuntimeError):
    """Out-of-bounds subscript or malformed statement at evaluation time."""


def _ref_key(
    ref: Ref, arrays: Arrays, env: Env, loop_lo: int, loop_hi: int, loop_step: int = 1
):
    """NumPy index tuple for a reference; every axis kept (len-1 for At).

    ``loop_step`` strides the loop-indexed axis (red-black orderings).
    """
    data = arrays[ref.array]
    key = []
    for axis, sub in enumerate(ref.subs):
        n = data.shape[axis]
        step = 1
        if isinstance(sub, LoopIdx):
            lo = loop_lo + sub.offset.eval(env)
            hi = loop_hi + sub.offset.eval(env)
            step = loop_step
        elif isinstance(sub, At):
            lo = hi = sub.index.eval(env)
        else:  # Slice
            lo = sub.lo.eval(env)
            hi = sub.hi.eval(env)
        if lo < 0 or hi >= n:
            raise EvalError(
                f"{ref.array} axis {axis}: [{lo}, {hi}] outside [0, {n})"
            )
        key.append(slice(lo, hi + 1, step))
    return tuple(key)


def eval_expr(
    expr: Expr,
    arrays: Arrays,
    scalars: Scalars,
    env: Env,
    loop_lo: int,
    loop_hi: int,
    loop_step: int = 1,
):
    """Evaluate an expression over a concrete parallel-loop range."""
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, ScalarRef):
        try:
            return scalars[expr.name]
        except KeyError:
            raise EvalError(f"undefined scalar {expr.name!r}") from None
    if isinstance(expr, Ref):
        return arrays[expr.array][
            _ref_key(expr, arrays, env, loop_lo, loop_hi, loop_step)
        ]
    if isinstance(expr, Bin):
        lhs = eval_expr(expr.lhs, arrays, scalars, env, loop_lo, loop_hi, loop_step)
        rhs = eval_expr(expr.rhs, arrays, scalars, env, loop_lo, loop_hi, loop_step)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        return lhs / rhs
    if isinstance(expr, Dot):
        mat = arrays[expr.mat.array][
            _ref_key(expr.mat, arrays, env, loop_lo, loop_hi, loop_step)
        ]
        vec = arrays[expr.vec.array][
            _ref_key(expr.vec, arrays, env, loop_lo, loop_hi, loop_step)
        ]
        if mat.ndim != 2 or vec.ndim != 1 or mat.shape[0] != vec.shape[0]:
            raise EvalError(
                f"Dot shape mismatch: mat {mat.shape} vs vec {vec.shape}"
            )
        return vec @ mat
    if isinstance(expr, Un):
        val = eval_expr(expr.operand, arrays, scalars, env, loop_lo, loop_hi, loop_step)
        if expr.op == "neg":
            return -val
        if expr.op == "abs":
            return np.abs(val)
        if expr.op == "sqrt":
            return np.sqrt(val)
        return np.exp(val)
    raise EvalError(f"cannot evaluate {expr!r}")


def loop_bounds(stmt: ParallelAssign | Reduce, env: Env) -> tuple[int, int, int]:
    """Concrete inclusive loop bounds + step; hi < lo when empty."""
    if stmt.loop is None:
        # Single-owner statement: the "loop" is the single LHS column.
        assert isinstance(stmt, ParallelAssign)
        col = stmt.lhs.last.index.eval(env)  # type: ignore[union-attr]
        return col, col, 1
    lo = stmt.loop.lo.eval(env)
    hi = stmt.loop.hi.eval(env)
    step = stmt.loop.step
    if hi >= lo:
        hi = lo + (hi - lo) // step * step  # snap to the last iteration
    return lo, hi, step


def eval_parallel_assign(
    stmt: ParallelAssign, arrays: Arrays, scalars: Scalars, env: Env
) -> None:
    """Execute the full loop (all processors' work) in one step."""
    lo, hi, step = loop_bounds(stmt, env)
    if hi < lo:
        return
    value = eval_expr(stmt.rhs, arrays, scalars, env, lo, hi, step)
    key = _ref_key(stmt.lhs, arrays, env, lo, hi, step)
    arrays[stmt.lhs.array][key] = value


def eval_reduce(stmt: Reduce, arrays: Arrays, scalars: Scalars, env: Env) -> float:
    """Evaluate a global reduction; returns (and stores) the scalar."""
    lo, hi, step = loop_bounds(stmt, env)
    if hi < lo:
        value = 0.0
    else:
        data = eval_expr(stmt.rhs, arrays, scalars, env, lo, hi, step)
        if stmt.op == "sum":
            value = float(np.sum(data))
        elif stmt.op == "max":
            value = float(np.max(data))
        else:
            value = float(np.min(data))
    scalars[stmt.target] = value
    return value


def eval_scalar_assign(stmt: ScalarAssign, scalars: Scalars) -> float:
    value = eval_expr(stmt.rhs, {}, scalars, {}, 0, 0)
    scalars[stmt.target] = float(value)
    return scalars[stmt.target]
