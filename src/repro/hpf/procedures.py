"""Subroutines, resolved by full inlining.

The paper (Section 4.3): "we require interprocedural analysis to draw full
benefit from this framework, as most of the codes are (justifiably) written
in terms of subroutines."  This module supplies the subroutine abstraction
and resolves it the way many HPF compilers did — **full inlining** at
program-build time — after which every intraprocedural analysis in
:mod:`repro.core` (access sets, planning, PRE) is effectively
interprocedural for free.

A :class:`SubroutineDef` holds a statement template over formal array
names; a :class:`CallStmt` names the actuals.  :func:`inline_calls`
substitutes actual array names for formals throughout the cloned body
(expressions are immutable trees, so substitution builds new nodes only
along changed paths).  Fortran rules apply: actuals must be declared
arrays, arity must match, and aliasing (the same actual twice) is
rejected — inlined code could otherwise change meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hpf.ast import (
    Bin,
    Dot,
    Expr,
    Lit,
    ParallelAssign,
    Reduce,
    Ref,
    ScalarAssign,
    ScalarRef,
    SeqLoop,
    Stmt,
    Un,
)

__all__ = ["CallStmt", "SubroutineDef", "SubroutineError", "inline_calls"]


class SubroutineError(ValueError):
    """Bad subroutine definition or call."""


@dataclass(frozen=True)
class SubroutineDef:
    """A statement template over formal array parameter names.

    ``param_decls`` carries each formal's declared shape/distribution; an
    actual must match both (our arrays carry their distribution, so shape
    conformance is the HPF explicit-interface rule).
    """

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    param_decls: tuple = ()

    def __post_init__(self) -> None:
        if len(set(self.params)) != len(self.params):
            raise SubroutineError(f"duplicate parameter in {self.name!r}")


@dataclass(frozen=True)
class CallStmt(Stmt):
    """``CALL name(actual_arrays...)`` — replaced by the inlined body."""

    name: str
    args: tuple[str, ...]


# --------------------------------------------------------------------- #
# substitution over immutable trees
# --------------------------------------------------------------------- #
def _sub_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    if isinstance(expr, Ref):
        new = mapping.get(expr.array)
        return Ref(new, expr.subs) if new else expr
    if isinstance(expr, Bin):
        return Bin(expr.op, _sub_expr(expr.lhs, mapping), _sub_expr(expr.rhs, mapping))
    if isinstance(expr, Un):
        return Un(expr.op, _sub_expr(expr.operand, mapping))
    if isinstance(expr, Dot):
        return Dot(
            _sub_expr(expr.mat, mapping),  # type: ignore[arg-type]
            _sub_expr(expr.vec, mapping),  # type: ignore[arg-type]
            expr.depth,
        )
    if isinstance(expr, (Lit, ScalarRef)):
        return expr
    raise SubroutineError(f"cannot substitute into {expr!r}")  # pragma: no cover


def _sub_stmt(stmt: Stmt, mapping: dict[str, str], prefix: str) -> Stmt:
    if isinstance(stmt, ParallelAssign):
        return ParallelAssign(
            _sub_expr(stmt.lhs, mapping),  # type: ignore[arg-type]
            _sub_expr(stmt.rhs, mapping),
            stmt.loop,
            f"{prefix}{stmt.label}",
            _sub_expr(stmt.on_home, mapping) if stmt.on_home is not None else None,  # type: ignore[arg-type]
        )
    if isinstance(stmt, Reduce):
        return Reduce(
            stmt.target, _sub_expr(stmt.rhs, mapping), stmt.loop, stmt.op,
            f"{prefix}{stmt.label}",
        )
    if isinstance(stmt, ScalarAssign):
        return ScalarAssign(stmt.target, stmt.rhs, f"{prefix}{stmt.label}")
    if isinstance(stmt, SeqLoop):
        return SeqLoop(
            stmt.var, stmt.lo, stmt.hi,
            tuple(_sub_stmt(s, mapping, prefix) for s in stmt.body),
        )
    if isinstance(stmt, CallStmt):
        # A nested call's actuals may themselves be formals: map them.
        return CallStmt(stmt.name, tuple(mapping.get(a, a) for a in stmt.args))
    raise SubroutineError(f"cannot inline statement {stmt!r}")  # pragma: no cover


# --------------------------------------------------------------------- #
def inline_calls(
    body: Sequence[Stmt],
    subroutines: dict[str, SubroutineDef],
    declared_arrays: Sequence[str],
    array_decls: dict | None = None,
    _depth: int = 0,
) -> tuple[Stmt, ...]:
    """Replace every :class:`CallStmt` with its substituted body.

    Nested calls (subroutines calling subroutines) resolve recursively;
    recursion between subroutines is rejected (HPF forbids it too).
    """
    if _depth > 32:
        raise SubroutineError("subroutine recursion detected (depth > 32)")
    declared = set(declared_arrays)
    out: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, CallStmt):
            sub = subroutines.get(stmt.name)
            if sub is None:
                raise SubroutineError(f"call to undefined subroutine {stmt.name!r}")
            if len(stmt.args) != len(sub.params):
                raise SubroutineError(
                    f"{stmt.name!r} expects {len(sub.params)} arguments, "
                    f"got {len(stmt.args)}"
                )
            if len(set(stmt.args)) != len(stmt.args):
                raise SubroutineError(
                    f"aliased actuals in call to {stmt.name!r}: {stmt.args}"
                )
            for arg in stmt.args:
                if arg not in declared:
                    raise SubroutineError(
                        f"call to {stmt.name!r}: {arg!r} is not a declared array"
                    )
            if sub.param_decls and array_decls is not None:
                for formal, actual in zip(sub.param_decls, stmt.args):
                    decl = array_decls[actual]
                    if decl.shape != formal.shape or decl.dist != formal.dist:
                        raise SubroutineError(
                            f"call to {stmt.name!r}: {actual!r} "
                            f"({decl.shape}, {decl.dist}) does not conform to "
                            f"formal {formal.name!r} ({formal.shape}, {formal.dist})"
                        )
            mapping = dict(zip(sub.params, stmt.args))
            prefix = f"{stmt.name}({','.join(stmt.args)})."
            expanded = [_sub_stmt(s, mapping, prefix) for s in sub.body]
            out.extend(
                inline_calls(
                    expanded, subroutines, declared_arrays, array_decls, _depth + 1
                )
            )
        elif isinstance(stmt, SeqLoop):
            out.append(
                SeqLoop(
                    stmt.var, stmt.lo, stmt.hi,
                    inline_calls(
                        stmt.body, subroutines, declared_arrays, array_decls, _depth
                    ),
                )
            )
        else:
            out.append(stmt)
    return tuple(out)
