"""Mini-HPF frontend.

A small data-parallel language sufficient to express the paper's six
benchmark codes: distributed arrays (BLOCK / CYCLIC over the last
dimension, per the paper's simplifying assumption), INDEPENDENT parallel
loops with affine subscripts, single-owner statements, SUM reductions,
replicated scalar updates and sequential (time-step / pivot) loops.

Programs are built either with the :mod:`repro.hpf.dsl` builder API or
parsed from a compact textual form (:mod:`repro.hpf.parser`).  The same AST
drives three things:

* numeric evaluation (vectorized NumPy, :mod:`repro.hpf.eval`),
* owner-computes lowering (:mod:`repro.hpf.lowering`), and
* the communication analysis in :mod:`repro.core.access`.
"""

from repro.hpf.ast import (
    ArrayDecl,
    At,
    Bin,
    Expr,
    Lit,
    LoopIdx,
    LoopSpec,
    ParallelAssign,
    Program,
    Reduce,
    Ref,
    ScalarAssign,
    ScalarRef,
    SeqLoop,
    Slice,
    Stmt,
    Un,
)
from repro.hpf.dsl import ProgramBuilder
from repro.hpf.parser import ParseError, parse_program

__all__ = [
    "ArrayDecl",
    "At",
    "Bin",
    "Expr",
    "Lit",
    "LoopIdx",
    "ParseError",
    "parse_program",
    "LoopSpec",
    "ParallelAssign",
    "Program",
    "ProgramBuilder",
    "Reduce",
    "Ref",
    "ScalarAssign",
    "ScalarRef",
    "SeqLoop",
    "Slice",
    "Stmt",
    "Un",
]
