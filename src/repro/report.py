"""Full-evaluation report generator.

``python -m repro.report [-o results.md] [--scale paper] [--apps pde,cg]``
runs the complete evaluation matrix (uniprocessor reference, shared memory
single/dual CPU × unoptimized/optimized, message passing) for each
application and renders a markdown report with the paper's Table 3 and
Figures 3-4 alongside the paper's published numbers.

The benchmarks under ``benchmarks/`` assert the claims; this module is for
humans who want the document.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Sequence

from repro.apps import APPS
from repro.obs import BUCKETS, COST_CLASSES, breakdown_totals
from repro.runtime import RunResult, run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import US, ClusterConfig, CombineConfig
from repro.tempest.faults import FaultConfig

__all__ = [
    "AppEvaluation",
    "BENCH_ARTIFACTS",
    "evaluate_app",
    "evaluate_combining",
    "evaluate_faults",
    "load_bench_artifact",
    "render_bench_appendix",
    "render_report",
    "main",
]

#: Matrix artifacts the ablation benches leave behind (see
#: ``benchmarks/bench_ablation_combining.py``, ``..._switch.py``,
#: ``..._partition.py``, ``bench_serve.py``, ...).
BENCH_ARTIFACTS = (
    "BENCH_combining.json",
    "BENCH_switch.json",
    "BENCH_partition.json",
    "BENCH_recovery.json",
    "BENCH_obs.json",
    "BENCH_engine.json",
    "BENCH_serve.json",
)


@dataclass
class AppEvaluation:
    """The evaluation matrix for one application."""

    app: str
    scale: str
    uni: RunResult
    unopt_dual: RunResult
    opt_dual: RunResult
    unopt_single: RunResult
    opt_single: RunResult
    msgpass: RunResult
    opt_base: RunResult       # sender-initiated only (no bulk, no rt-elim)
    opt_bulk: RunResult       # + bulk transfer
    wall_s: float

    # ------------------------------ derived --------------------------- #
    @property
    def miss_reduction(self) -> float:
        return 100 * (1 - self.opt_dual.total_misses / max(self.unopt_dual.total_misses, 1))

    @property
    def comm_reduction_dual(self) -> float:
        return 100 * (1 - self.opt_dual.comm_ms / max(self.unopt_dual.comm_ms, 1e-12))

    @property
    def comm_reduction_single(self) -> float:
        return 100 * (1 - self.opt_single.comm_ms / max(self.unopt_single.comm_ms, 1e-12))

    def speedup(self, result: RunResult) -> float:
        return self.uni.elapsed_ns / result.elapsed_ns

    def time_reduction(self, variant: RunResult) -> float:
        return 100 * (1 - variant.elapsed_ns / self.unopt_dual.elapsed_ns)


def evaluate_app(
    name: str, scale: str = "default", n_nodes: int = 8, **overrides
) -> AppEvaluation:
    """Run the full matrix for one application (numerics cross-checked)."""
    spec = APPS[name]
    prog = spec.program(scale, **overrides)
    dual = ClusterConfig(n_nodes=n_nodes, dual_cpu=True)
    single = ClusterConfig(n_nodes=n_nodes, dual_cpu=False)
    rte = name != "cg"  # see bench_table3_reduction

    # perf_counter, not time.time(): the wall clock can step backwards
    # (NTP adjustments) and would record a negative evaluation duration.
    t0 = time.perf_counter()
    uni = run_uniproc(prog, dual)
    # The two headline runs carry the per-phase profiler and the
    # critical-path analyzer: the report's decomposition section reads
    # their ``phase_breakdown`` and ``critical_path`` (attaching either
    # never perturbs timing or numerics).
    unopt_dual = run_shmem(prog, dual, profile_phases=True, critical_path=True)
    opt_dual = run_shmem(
        prog, dual, optimize=True, rt_elim=rte,
        profile_phases=True, critical_path=True,
    )
    unopt_single = run_shmem(prog, single)
    opt_single = run_shmem(prog, single, optimize=True, rt_elim=rte)
    msgpass = run_msgpass(prog, dual)
    opt_base = run_shmem(prog, dual, optimize=True, bulk=False)
    opt_bulk = run_shmem(prog, dual, optimize=True, bulk=True)
    for r in (unopt_dual, opt_dual, msgpass):
        r.assert_same_numerics(uni)
    return AppEvaluation(
        name, scale, uni, unopt_dual, opt_dual, unopt_single, opt_single,
        msgpass, opt_base, opt_bulk, time.perf_counter() - t0,
    )


def evaluate_combining(e: AppEvaluation, n_nodes: int) -> RunResult:
    """Re-run the unoptimized dual-CPU configuration with combining on."""
    prog = APPS[e.app].program(e.scale)
    dual = ClusterConfig(
        n_nodes=n_nodes, dual_cpu=True, combine=CombineConfig(enabled=True)
    )
    result = run_shmem(prog, dual)
    result.assert_same_numerics(e.uni)
    return result


def evaluate_faults(e: AppEvaluation, n_nodes: int, faults: FaultConfig) -> RunResult:
    """Re-run the optimized dual-CPU configuration over a lossy wire."""
    prog = APPS[e.app].program(e.scale)
    dual = ClusterConfig(n_nodes=n_nodes, dual_cpu=True, faults=faults)
    result = run_shmem(
        prog, dual, optimize=True, rt_elim=e.app != "cg", audit_each_barrier=True
    )
    result.assert_same_numerics(e.uni)
    return result


def load_bench_artifact(path: str) -> dict | None:
    """Load one bench-matrix artifact; ``None`` when absent or unusable.

    A report run must never fail just because an ablation has not been
    (re)run, so every failure mode — missing file, unreadable file,
    malformed JSON, wrong shape — degrades to ``None`` and the appendix
    says so instead of raising.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    # Matrix artifacts carry per-app cells; schema'd artifacts (the
    # engine-speed and serve benches) are self-describing.
    if not isinstance(data.get("apps"), dict) and not isinstance(
        data.get("schema"), str
    ):
        return None
    return data


def _render_serve_artifact(name: str, data: dict, out) -> None:
    """Serve-layer bench: wall times, speedup and cache provenance.

    Every number in the report is reproducible from cold compute, but a
    sweep may have *served* cells from the content-addressed cache or a
    worker pool — this section records that provenance (dataclass
    equality between the modes is asserted by the bench itself).
    """
    out(f"- `{name}` — serve layer: {data.get('n_cells', '?')} cells at"
        f" scale {data.get('scale', '?')}, jobs={data.get('jobs', '?')},"
        f" cpus={data.get('cpus', '?')}:\n")
    out("| mode | wall s | note |")
    out("|---|---|---|")
    out(f"| serial | {data.get('serial_s', 0):.2f} | baseline |")
    out(f"| parallel | {data.get('parallel_s', 0):.2f} |"
        f" {data.get('speedup', 0):.2f}x vs serial |")
    out(f"| warm cache | {data.get('warm_s', 0):.2f} |"
        f" {100 * data.get('warm_fraction', 0):.1f}% of cold,"
        f" hit rate {100 * data.get('warm_hit_rate', 0):.0f}% |")
    prov = data.get("provenance", {})
    if prov:
        bits = []
        for mode in ("serial", "parallel", "warm"):
            p = prov.get(mode)
            if p:
                bits.append(
                    f"{mode}: {p.get('computed', 0)} computed"
                    f" ({p.get('pool', 0)} pooled),"
                    f" {p.get('cache_hits', 0)} cached,"
                    f" {p.get('plans_built', 0)} plans built"
                )
        out("")
        out("  cache provenance — " + "; ".join(bits))
    out("")


def _render_engine_artifact(name: str, data: dict, out) -> None:
    """Engine-speed bench: host-wall speedups vs the recorded baseline."""
    out(f"- `{name}` — engine speed vs baseline"
        f" `{data.get('baseline_commit', '?')}`"
        f" (geomean {data.get('geomean_speedup', '?')}x,"
        f" {data.get('n_nodes', '?')} nodes,"
        f" {data.get('repeats', '?')} repeats):\n")
    apps = data.get("apps", {})
    scales = sorted({s for cells in apps.values() for s in cells})
    out("| app | " + " | ".join(f"{s} speedup" for s in scales) + " |")
    out("|---|" + "---|" * len(scales))
    for app in sorted(apps):
        cells = apps[app]
        row = [
            (f"{cells[s]['speedup']:.2f}x"
             if s in cells and "speedup" in cells[s] else "-")
            for s in scales
        ]
        out(f"| {app} | " + " | ".join(row) + " |")
    off = data.get("off_cells_speedup")
    if off:
        pairs = ", ".join(f"{a} {v:.2f}x" for a, v in sorted(off.items()))
        out(f"\n  Unoptimized off-cells (the CI perf-guard pair): {pairs}"
            " host-wall vs the same baseline.")
    out("")


def render_bench_appendix(artifacts: dict[str, dict | None]) -> str:
    """Markdown appendix over the ablation benches' JSON artifacts.

    Present artifacts get a per-app cell table (elapsed time per matrix
    cell); absent or unusable ones get a one-line pointer at the bench
    that regenerates them.
    """
    lines: list[str] = []
    out = lines.append
    out("## Appendix — ablation bench artifacts\n")
    for name in sorted(artifacts):
        data = artifacts[name]
        if data is None:
            out(f"- `{name}`: not found — run the matching bench under"
                " `benchmarks/` (`pytest benchmarks/ -s`) to regenerate.")
            continue
        schema = data.get("schema", "")
        if schema.startswith("serve/"):
            _render_serve_artifact(name, data, out)
            continue
        if schema.startswith("engine-speed/"):
            _render_engine_artifact(name, data, out)
            continue
        out(f"- `{name}` — scale {data.get('scale', '?')},"
            f" {data.get('n_nodes', '?')} nodes:\n")
        apps = data["apps"]
        cell_keys = sorted({k for cells in apps.values() for k in cells})
        out("| app | " + " | ".join(f"{k} ms" for k in cell_keys) + " |")
        out("|---|" + "---|" * len(cell_keys))
        for app in sorted(apps):
            cells = apps[app]
            row = [
                (f"{cells[k]['elapsed_ns'] / 1e6:.1f}"
                 if k in cells and "elapsed_ns" in cells[k] else "-")
                for k in cell_keys
            ]
            out(f"| {app} | " + " | ".join(row) + " |")
        out("")
    out("")
    return "\n".join(lines)


def render_report(
    evals: Sequence[AppEvaluation],
    n_nodes: int,
    fault_rows: Sequence[RunResult] | None = None,
    fault_cfg: FaultConfig | None = None,
    combine_rows: Sequence[RunResult] | None = None,
) -> str:
    """Markdown report over a list of app evaluations."""
    lines: list[str] = []
    out = lines.append
    scale = evals[0].scale if evals else "default"
    out(f"# Reproduction results — {scale} scale, {n_nodes} nodes\n")
    out("Regenerated by `python -m repro.report`. Paper values in"
        " parentheses where applicable.\n")

    out("## Table 3 — miss and communication-time reduction\n")
    out("| app | compute ms | comm dual ms | %red dual | comm 1cpu ms "
        "| %red 1cpu | misses/node | %miss red |")
    out("|---|---|---|---|---|---|---|---|")
    for e in evals:
        paper = APPS[e.app].paper
        out(
            f"| {e.app} | {e.unopt_dual.compute_ms:.1f} "
            f"| {e.unopt_dual.comm_ms:.1f} "
            f"| {e.comm_reduction_dual:.1f} ({paper['comm_reduction_dual']}) "
            f"| {e.unopt_single.comm_ms:.1f} "
            f"| {e.comm_reduction_single:.1f} ({paper['comm_reduction_single']}) "
            f"| {e.unopt_dual.misses_per_node:.0f} "
            f"| {e.miss_reduction:.1f} ({paper['miss_reduction']}) |"
        )
    out("")

    out("## Figure 3 — speedups\n")
    out("| app | sm-1cpu | sm-1cpu-opt | sm-2cpu | sm-2cpu-opt | msg-pass |")
    out("|---|---|---|---|---|---|")
    for e in evals:
        out(
            f"| {e.app} | {e.speedup(e.unopt_single):.2f} "
            f"| {e.speedup(e.opt_single):.2f} "
            f"| {e.speedup(e.unopt_dual):.2f} "
            f"| {e.speedup(e.opt_dual):.2f} "
            f"| {e.speedup(e.msgpass):.2f} |"
        )
    out("")

    out("## Figure 4 — optimization breakdown (dual CPU, % time reduction)\n")
    out("| app | base opt | +bulk | full stack |")
    out("|---|---|---|---|")
    for e in evals:
        out(
            f"| {e.app} | {e.time_reduction(e.opt_base):.1f} "
            f"| {e.time_reduction(e.opt_bulk):.1f} "
            f"| {e.time_reduction(e.opt_dual):.1f} |"
        )
    out("")

    out("## Time decomposition — where each run's time goes (dual CPU)\n")
    out("Per-phase profiler buckets summed over all nodes and phases, as a"
        " share of total node time; the optimizer's win shows up as the"
        " read-miss and barrier-wait shares moving into compute.\n")
    out("| app | mode | " + " | ".join(b.replace("_", " ") for b in BUCKETS) + " |")
    out("|---|---|" + "---|" * len(BUCKETS))
    for e in evals:
        for mode, r in (("unopt", e.unopt_dual), ("opt", e.opt_dual)):
            if r.phase_breakdown is None:
                continue
            totals = breakdown_totals(r.phase_breakdown)
            grand = sum(totals.values()) or 1
            cells = " | ".join(f"{100 * totals[b] / grand:.1f}%" for b in BUCKETS)
            out(f"| {e.app} | {mode} | {cells} |")
    out("")

    out("### Critical path — the one chain that sets elapsed time\n")
    out("Exact backward walk over the causal event DAG; each run's cost"
        " classes sum to its elapsed time to the nanosecond.  The what-if"
        " column is the perfect-overlap lower bound: elapsed time if every"
        " barrier-slack segment cost zero (`repro <app> --critical-path"
        " --whatif barrier` reproduces a row).\n")
    out("| app | mode | " + " | ".join(c.replace("_", " ") for c in COST_CLASSES)
        + " | elapsed ms | what-if barrier |")
    out("|---|---|" + "---|" * (len(COST_CLASSES) + 2))
    for e in evals:
        for mode, r in (("unopt", e.unopt_dual), ("opt", e.opt_dual)):
            if r.critical_path is None:
                continue
            cp = r.critical_path
            elapsed = cp["elapsed_ns"] or 1
            cells = " | ".join(
                f"{100 * cp['classes'][c] / elapsed:.1f}%" for c in COST_CLASSES
            )
            bound = cp["whatif"]["barrier"]
            out(
                f"| {e.app} | {mode} | {cells} | {elapsed / 1e6:.1f} "
                f"| >= {bound / 1e6:.1f} ms "
                f"(-{100 * (elapsed - bound) / elapsed:.1f}%) |"
            )
    out("")

    if combine_rows:
        out("## Message combining — unoptimized runs, control traffic"
            " coalesced\n")
        out("| app | baseline msgs | combined msgs | %fewer | absorbed "
            "| frames | baseline ms | combined ms | numerics |")
        out("|---|---|---|---|---|---|---|---|")
        for e, c in zip(evals, combine_rows):
            base_msgs = e.unopt_dual.stats.total_messages
            comb_msgs = c.stats.total_messages
            out(
                f"| {e.app} | {base_msgs} | {comb_msgs} "
                f"| {100 * (1 - comb_msgs / max(base_msgs, 1)):.1f} "
                f"| {c.stats.total_msgs_combined} "
                f"| {c.stats.total_combine_flushes} "
                f"| {e.unopt_dual.elapsed_ms:.1f} | {c.elapsed_ms:.1f} "
                f"| identical |"
            )
        out("")

    if fault_rows and fault_cfg is not None:
        out(f"## Robustness — optimized runs at {fault_cfg.drop_prob * 100:.0f}% drop"
            f" (dup {fault_cfg.dup_prob * 100:.0f}%,"
            f" jitter {fault_cfg.jitter_ns / 1000:.0f} µs,"
            f" seed {fault_cfg.seed})\n")
        out("| app | clean ms | faulted ms | slowdown | retransmits | drops "
            "| dups | numerics | audit |")
        out("|---|---|---|---|---|---|---|---|---|")
        for e, f in zip(evals, fault_rows):
            rel = f.reliability
            out(
                f"| {e.app} | {e.opt_dual.elapsed_ms:.1f} | {f.elapsed_ms:.1f} "
                f"| {f.elapsed_ns / e.opt_dual.elapsed_ns:.2f}x "
                f"| {rel.get('retransmits', 0)} | {rel.get('drops', 0)} "
                f"| {rel.get('dups', 0)} | identical | clean |"
            )
        out("")

    out("## Run costs\n")
    out("| app | wall seconds |")
    out("|---|---|")
    for e in evals:
        out(f"| {e.app} | {e.wall_s:.1f} |")
    out("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="repro.report", description=__doc__)
    p.add_argument("-o", "--output", default="-",
                   help="output file ('-' for stdout)")
    p.add_argument("--scale", choices=["default", "paper"], default="default")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--apps", default=",".join(APPS),
                   help="comma-separated subset of apps")
    p.add_argument("--fault-drop", type=float, default=0.0, metavar="P",
                   help="also evaluate robustness at this wire drop rate")
    p.add_argument("--fault-seed", type=int, default=1997)
    p.add_argument("--combine", action="store_true",
                   help="also evaluate control-message combining")
    p.add_argument("--bench-dir", default=None, metavar="DIR",
                   help="append an appendix over the ablation benches' "
                        "BENCH_*.json artifacts in DIR (missing artifacts "
                        "are noted, never an error)")
    args = p.parse_args(argv)
    names = [a.strip() for a in args.apps.split(",") if a.strip()]
    unknown = [a for a in names if a not in APPS]
    if unknown:
        print(f"unknown apps: {unknown}", file=sys.stderr)
        return 2

    evals = []
    for name in names:
        print(f"evaluating {name} ...", file=sys.stderr)
        evals.append(evaluate_app(name, args.scale, args.nodes))

    fault_rows, fault_cfg = None, None
    if args.fault_drop > 0.0:
        fault_cfg = FaultConfig(
            drop_prob=args.fault_drop,
            dup_prob=args.fault_drop / 2,
            jitter_ns=10 * US,
            seed=args.fault_seed,
        )
        fault_rows = []
        for e in evals:
            print(f"evaluating {e.app} at {args.fault_drop:.0%} drop ...",
                  file=sys.stderr)
            fault_rows.append(evaluate_faults(e, args.nodes, fault_cfg))
    combine_rows = None
    if args.combine:
        combine_rows = []
        for e in evals:
            print(f"evaluating {e.app} with combining ...", file=sys.stderr)
            combine_rows.append(evaluate_combining(e, args.nodes))
    report = render_report(evals, args.nodes, fault_rows, fault_cfg, combine_rows)
    if args.bench_dir is not None:
        artifacts = {
            name: load_bench_artifact(os.path.join(args.bench_dir, name))
            for name in BENCH_ARTIFACTS
        }
        report += "\n" + render_bench_appendix(artifacts)
    if args.output == "-":
        print(report)
    else:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
