"""Command-line interface: ``python -m repro <app> [options]``.

Runs one of the paper's applications on the simulated cluster and reports
the evaluation metrics.  ``examples/app_suite.py`` is a thin wrapper over
this module; see its docstring for usage examples.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps import APPS
from repro.runtime import run_msgpass, run_shmem, run_uniproc
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.faults import (
    CrashScenario,
    FaultConfig,
    LinkFaultConfig,
    PartitionScenario,
)
from repro.tempest.stats import COHERENCE_KINDS, MsgKind

__all__ = ["build_parser", "main"]

#: --fault-link KEY=VAL keys -> LinkFaultConfig fields (+ unit scaling)
_LINK_KEYS = {
    "drop": ("drop_prob", float),
    "dup": ("dup_prob", float),
    "jitter_us": ("jitter_ns", lambda v: int(float(v) * 1000)),
    "stall": ("stall_prob", float),
    "stall_us": ("stall_ns", lambda v: int(float(v) * 1000)),
}


def _parse_link_fault(spec: str) -> LinkFaultConfig:
    """``SRC:DST:KEY=VAL[,KEY=VAL...]`` -> LinkFaultConfig."""
    parts = spec.split(":", 2)
    if len(parts) != 3:
        raise ValueError("expected SRC:DST:KEY=VAL[,KEY=VAL...]")
    src, dst = int(parts[0]), int(parts[1])
    kwargs = {}
    for item in parts[2].split(","):
        key, sep, val = item.partition("=")
        if not sep:
            raise ValueError(f"bad override {item!r}; expected KEY=VAL")
        if key not in _LINK_KEYS:
            raise ValueError(
                f"unknown key {key!r}; choose from {sorted(_LINK_KEYS)}"
            )
        field, conv = _LINK_KEYS[key]
        kwargs[field] = conv(val)
    if not kwargs:
        raise ValueError("no overrides given")
    return LinkFaultConfig(src, dst, **kwargs)


def _parse_partition(spec: str, index: int) -> PartitionScenario:
    """``NODES:START_US:DUR_US`` (DUR_US may be ``never``) -> scenario."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError("expected NODES:START_US:DUR_US")
    nodes = frozenset(int(n) for n in parts[0].split(","))
    start_ns = int(float(parts[1]) * 1000)
    dur = parts[2].strip().lower()
    duration_ns = None if dur in ("never", "inf") else int(float(dur) * 1000)
    return PartitionScenario(
        name=f"cli-partition-{index}",
        nodes=nodes,
        t_start_ns=start_ns,
        duration_ns=duration_ns,
    )


def _parse_crash(spec: str) -> CrashScenario:
    """``NODE:T_US[:RESTART_DELAY_US|never]`` -> CrashScenario."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError("expected NODE:T_US[:RESTART_DELAY_US|never]")
    node = int(parts[0])
    t_ns = int(float(parts[1]) * 1000)
    restart_ns = None
    if len(parts) == 3:
        restart = parts[2].strip().lower()
        if restart not in ("never", "inf"):
            restart_ns = int(float(restart) * 1000)
    return CrashScenario(node=node, t_ns=t_ns, restart_delay_ns=restart_ns)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Run a paper-suite application on simulated fine-grain DSM.",
    )
    p.add_argument("app", choices=sorted(APPS), help="application to run")
    p.add_argument("--scale", choices=["default", "paper"], default="default")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--backend", choices=["shmem", "msgpass"], default="shmem")
    p.add_argument("--no-opt", action="store_true",
                   help="shmem: skip the compiler optimization")
    p.add_argument("--single-cpu", action="store_true",
                   help="interleave protocol handling with computation")
    p.add_argument("--no-bulk", action="store_true")
    p.add_argument("--rt-elim", action="store_true")
    p.add_argument("--pre", action="store_true",
                   help="PRE redundant-communication elimination")
    p.add_argument("--advisory", choices=["prefetch", "full"], default=None,
                   help="advisory primitives on boundary blocks")
    p.add_argument("--protocol", choices=["invalidate", "update"],
                   default="invalidate")
    p.add_argument("--param", action="append", default=[], metavar="KEY=VAL",
                   help="override an app parameter (repeatable)")
    c = p.add_argument_group("communication fast path")
    c.add_argument("--combine", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="coalesce header-only control messages per channel "
                        "(--no-combine restores the one-frame-per-message "
                        "wire model)")
    c.add_argument("--combine-max-msgs", type=int, default=None, metavar="N",
                   help="most sub-messages per combined frame (default 8)")
    c.add_argument("--combine-wait", type=float, default=None, metavar="US",
                   help="combine-buffer hold window in microseconds "
                        "(default 40)")
    c.add_argument("--rto-adaptive", action="store_true",
                   help="per-channel Jacobson RTT estimator for the reliable "
                        "transport's retransmit timer (needs fault injection)")
    c.add_argument("--rto-max-us", type=float, default=None, metavar="US",
                   help="ceiling for the retransmit timer in microseconds, "
                        "applied to both the exponential backoff and the "
                        "adaptive-RTO clamp (default 2000; raise it when "
                        "bulk bursts queue behind the wire for longer than "
                        "the cap, or every deep-queued frame retransmits "
                        "spuriously; needs fault injection)")
    s = p.add_argument_group("shared-switch contention model")
    s.add_argument("--switch", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="route every frame through a shared switch fabric: "
                        "frames to one destination queue on its output port "
                        "and backpressure their senders (--no-switch keeps "
                        "the independent-link wire model)")
    s.add_argument("--switch-ports", type=int, default=None, metavar="N",
                   help="output ports on the switch, destination = dst mod N "
                        "(default: one port per node)")
    s.add_argument("--switch-bw", type=float, default=None, metavar="MBPS",
                   help="aggregate switch forwarding bandwidth in MB/s, split "
                        "evenly across ports (default: every port forwards "
                        "at the link rate)")
    g = p.add_argument_group("fault injection (engages the reliable transport)")
    g.add_argument("--fault-drop", type=float, default=0.0, metavar="P",
                   help="per-message drop probability in [0, 1)")
    g.add_argument("--fault-dup", type=float, default=0.0, metavar="P",
                   help="per-message duplication probability in [0, 1)")
    g.add_argument("--fault-jitter", type=float, default=0.0, metavar="US",
                   help="max extra per-message latency jitter (microseconds)")
    g.add_argument("--fault-stall", type=float, default=0.0, metavar="P",
                   help="per-delivery protocol-CPU stall probability in "
                        "[0, 1); needs --fault-stall-us")
    g.add_argument("--fault-stall-us", type=float, default=0.0, metavar="US",
                   help="length of one protocol-CPU stall window "
                        "(microseconds)")
    g.add_argument("--fault-seed", type=int, default=0,
                   help="fault-injection PRNG seed (same seed => same run)")
    g.add_argument("--fault-retries", type=int, default=None, metavar="N",
                   help="retransmit budget per frame before the channel "
                        "gives up and parks its traffic (default 32)")
    g.add_argument("--fault-link", action="append", default=[],
                   metavar="SRC:DST:KEY=VAL[,KEY=VAL...]",
                   help="per-link fault profile overriding the uniform rates "
                        "for one directed link; keys: drop, dup, jitter_us, "
                        "stall, stall_us (repeatable, one per link)")
    g.add_argument("--fault-partition", action="append", default=[],
                   metavar="NODES:START_US:DUR_US",
                   help="partition scenario: comma-separated NODES become "
                        "unreachable at START_US for DUR_US microseconds "
                        "('never' = the partition never heals and the run "
                        "finishes degraded); repeatable")
    g.add_argument("--fault-crash", action="append", default=[],
                   metavar="NODE:T_US[:RESTART_US|never]",
                   help="fail-stop NODE at T_US; peers detect the death via "
                        "transport keepalives.  With a restart delay and "
                        "--checkpoint-every, the cluster rolls back to the "
                        "last barrier checkpoint and re-executes to "
                        "completion; with 'never' (the default) or no "
                        "checkpoint the run finishes degraded (exit 4); "
                        "repeatable, one crash per node")
    g.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="snapshot coherence state and replay cursors every "
                        "K global barriers (a barrier is a consistent cut); "
                        "enables rollback-recovery for restarting crashes; "
                        "needs --fault-crash")
    g.add_argument("--heartbeat-us", type=float, default=None, metavar="US",
                   help="keepalive probe interval for crash detection "
                        "(default 500); smaller detects faster but probes "
                        "more; needs --fault-crash")
    p.add_argument("--audit", action="store_true",
                   help="shmem: also audit coherence at every barrier "
                        "(the end-of-run audit always runs)")
    o = p.add_argument_group("observability (shmem backend)")
    o.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome trace-event JSON of the run (one "
                        "track per node plus transport/switch tracks); load "
                        "it in Perfetto or chrome://tracing")
    o.add_argument("--trace-kinds", default=None, metavar="PREFIXES",
                   help="comma-separated event-kind prefixes retained by "
                        "--trace-out (e.g. 'miss,barrier,frame'); "
                        "default: all kinds")
    o.add_argument("--trace-cap", type=int, default=1_000_000, metavar="N",
                   help="ring-buffer cap on retained trace events; the "
                        "oldest are dropped past it (default 1000000)")
    o.add_argument("--profile-phases", action="store_true",
                   help="attribute each node's time to compute / read-miss / "
                        "write-miss / barrier-wait / protocol-overhead / "
                        "transport-recovery buckets per parallel phase and "
                        "print the breakdown table")
    o.add_argument("--critical-path", action="store_true",
                   help="thread causal lineage through the run, walk the "
                        "event dependency DAG backward from the finish and "
                        "print the critical path decomposed into cost "
                        "classes (sums to elapsed time exactly)")
    o.add_argument("--whatif", choices=["barrier", "wire", "retransmit"],
                   default=None,
                   help="with the critical path: report the lower bound on "
                        "elapsed time if the named cost class cost zero "
                        "(barrier = perfect-overlap bound; implies "
                        "--critical-path)")
    o.add_argument("--trace-messages", nargs="?", const="all", default=None,
                   metavar="KINDS",
                   help="print a message-sequence chart after the run; "
                        "optional comma-separated message kinds to keep "
                        "(e.g. 'read_req,read_resp'); default: all")
    return p


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        # ``repro sweep`` — matrix runs through the caching/parallel serve
        # layer; see repro.serve.cli for the axis vocabulary.
        from repro.serve.cli import sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "diff":
        # ``repro diff A B`` — cross-run regression attribution over two
        # served cells; see repro.serve.cli for the cell-spec syntax.
        from repro.serve.cli import diff_main

        return diff_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    want_critical = args.critical_path or args.whatif is not None
    overrides = {}
    for item in args.param:
        key, sep, val = item.partition("=")
        if not sep:
            print(f"bad --param {item!r}; expected KEY=VAL", file=sys.stderr)
            return 2
        overrides[key] = int(val)
    spec = APPS[args.app]
    prog = spec.program(args.scale, **overrides)
    link_faults = []
    for lf_spec in args.fault_link:
        try:
            link_faults.append(_parse_link_fault(lf_spec))
        except ValueError as e:
            parser.error(f"--fault-link {lf_spec!r}: {e}")
    partitions = []
    for i, pt_spec in enumerate(args.fault_partition):
        try:
            partitions.append(_parse_partition(pt_spec, i))
        except ValueError as e:
            parser.error(f"--fault-partition {pt_spec!r}: {e}")
    for s in partitions:
        if any(n >= args.nodes for n in s.nodes):
            parser.error(
                f"--fault-partition names node(s) "
                f"{sorted(n for n in s.nodes if n >= args.nodes)} "
                f"outside the {args.nodes}-node cluster"
            )
    crashes = []
    for cr_spec in args.fault_crash:
        try:
            crashes.append(_parse_crash(cr_spec))
        except ValueError as e:
            parser.error(f"--fault-crash {cr_spec!r}: {e}")
    for c in crashes:
        if c.node >= args.nodes:
            parser.error(
                f"--fault-crash names node {c.node} outside the "
                f"{args.nodes}-node cluster"
            )
    if args.checkpoint_every and not crashes:
        parser.error(
            "--checkpoint-every takes barrier-consistent checkpoints for "
            "crash rollback-recovery; add --fault-crash NODE:T_US:RESTART_US"
        )
    if args.heartbeat_us is not None and not crashes:
        parser.error(
            "--heartbeat-us tunes the crash-detection keepalive interval; "
            "add --fault-crash"
        )
    fault_kwargs = {}
    if args.fault_retries is not None:
        fault_kwargs["max_retries"] = args.fault_retries
    if args.heartbeat_us is not None:
        fault_kwargs["heartbeat_interval_ns"] = int(args.heartbeat_us * 1000)
    if args.rto_max_us is not None:
        cap = int(args.rto_max_us * 1000)
        fault_kwargs["max_backoff_ns"] = cap
        fault_kwargs["rto_max_ns"] = cap
    try:
        faults = FaultConfig(
            drop_prob=args.fault_drop,
            dup_prob=args.fault_dup,
            jitter_ns=int(args.fault_jitter * 1000),
            stall_prob=args.fault_stall,
            stall_ns=int(args.fault_stall_us * 1000),
            seed=args.fault_seed,
            adaptive_rto=args.rto_adaptive,
            link_faults=tuple(link_faults),
            partitions=tuple(partitions),
            crashes=tuple(crashes),
            checkpoint_every=args.checkpoint_every,
            **fault_kwargs,
        )
    except ValueError as e:
        parser.error(str(e))
    if (args.rto_adaptive or args.rto_max_us is not None) and not faults.enabled:
        # Historically this was silently ignored (the transport is bypassed
        # on a perfect wire); fail fast instead.
        flag = "--rto-adaptive" if args.rto_adaptive else "--rto-max-us"
        parser.error(
            f"{flag} tunes the reliable transport's retransmit "
            "timer, which only runs under fault injection; add a --fault-* "
            "flag (e.g. --fault-drop)"
        )
    combine_kwargs = {}
    if args.combine_max_msgs is not None:
        combine_kwargs["max_msgs"] = args.combine_max_msgs
    if args.combine_wait is not None:
        combine_kwargs["max_wait_ns"] = int(args.combine_wait * 1000)
    combine = CombineConfig(enabled=args.combine, **combine_kwargs)
    switch = SwitchConfig(
        enabled=args.switch,
        ports=args.switch_ports,
        bandwidth_bytes_per_us=args.switch_bw,
    )
    cfg = ClusterConfig(
        n_nodes=args.nodes, dual_cpu=not args.single_cpu, faults=faults,
        combine=combine, switch=switch,
    )

    bus = exporter = tracer = None
    if args.trace_out or args.profile_phases or args.trace_messages or want_critical:
        if args.backend != "shmem":
            parser.error(
                "--trace-out/--profile-phases/--trace-messages/"
                "--critical-path instrument the shmem backend; they are "
                "not available with --backend msgpass"
            )
        from repro.obs import ChromeTraceExporter, EventBus

        bus = EventBus()
        if args.trace_out:
            kinds = None
            if args.trace_kinds:
                kinds = [k.strip() for k in args.trace_kinds.split(",") if k.strip()]
            exporter = ChromeTraceExporter(
                bus, kinds=kinds, max_events=args.trace_cap, n_nodes=args.nodes
            )
        if args.trace_messages:
            from repro.tempest.tracing import MessageTracer

            mkinds = None
            if args.trace_messages != "all":
                try:
                    mkinds = {
                        MsgKind(k.strip())
                        for k in args.trace_messages.split(",")
                        if k.strip()
                    }
                except ValueError as e:
                    parser.error(f"--trace-messages: {e}")
            tracer = MessageTracer.on_bus(bus, args.nodes, kinds=mkinds)

    print(f"{spec.name}: {spec.description}")
    print(f"paper problem: {spec.paper['problem']}")
    print(
        f"this run: scale={args.scale} {overrides or ''} nodes={args.nodes} "
        f"{'single' if args.single_cpu else 'dual'}-cpu "
        f"arrays={prog.total_bytes() / 1e6:.1f} MB\n"
    )

    uni = run_uniproc(prog, cfg)
    if args.backend == "msgpass":
        result = run_msgpass(prog, cfg)
    else:
        result = run_shmem(
            prog,
            cfg,
            optimize=not args.no_opt,
            bulk=not args.no_bulk,
            rt_elim=args.rt_elim,
            pre=args.pre,
            advisory=args.advisory or False,
            protocol=args.protocol,
            audit_each_barrier=args.audit,
            obs=bus,
            profile_phases=args.profile_phases,
            critical_path=want_critical,
        )
    if not result.completed:
        # Degraded run: the partition never healed.  Partial stats and a
        # failure report instead of a traceback; numerics are partial too,
        # so the uniproc cross-check is skipped.  The trace is still
        # written — it is exactly the artifact for dissecting the failure.
        _print_degraded(result, cfg)
        if exporter is not None:
            retained = exporter.write(args.trace_out)
            print(f"trace:            {args.trace_out} ({retained} events, "
                  "up to the give-up point)")
        return 4
    result.assert_same_numerics(uni)

    print(f"backend:          {result.backend}")
    print(
        f"simulated time:   {result.elapsed_ms:.1f} ms "
        f"(uniproc {uni.elapsed_ms:.1f} ms, "
        f"speedup {uni.elapsed_ns / result.elapsed_ns:.2f})"
    )
    print(f"compute time:     {result.compute_ms:.1f} ms/node")
    print(f"comm time:        {result.comm_ms:.1f} ms/node")
    print(f"misses:           {result.misses_per_node:.0f}/node")
    kinds = result.stats.messages_by_kind()
    coh = sum(v for k, v in kinds.items() if k in COHERENCE_KINDS)
    print(
        f"messages:         {result.stats.total_messages} total "
        f"({coh} coherence, {kinds.get(MsgKind.DATA, 0)} data pushes, "
        f"{kinds.get(MsgKind.MP_DATA, 0)} mp)"
    )
    print(f"bytes on wire:    {result.stats.total_bytes / 1e6:.2f} MB")
    if cfg.combine.enabled:
        comb = result.stats.combining_summary()
        print(
            f"combining:        {comb['msgs_combined']} messages rode "
            f"{comb['combine_flushes']} combined frames "
            f"(cap {cfg.combine.max_msgs}, wait {cfg.combine.max_wait_ns / 1000:.0f} us)"
        )
    if cfg.switch.enabled:
        sw = result.stats.switch_summary()
        agg = cfg.switch.bandwidth_bytes_per_us
        print(
            f"switch:           {sw['switch_frames']} frames through "
            f"{cfg.switch_ports} ports, {sw['switch_wait_ms']:.2f} ms queued "
            f"(max depth {sw['max_port_depth']}, "
            f"{'link-rate ports' if agg is None else f'{agg:.0f} MB/s aggregate'})"
        )
    if cfg.faults.enabled:
        rel = result.stats.reliability_summary()
        rto = "adaptive" if cfg.faults.adaptive_rto else "fixed"
        print(
            f"reliability:      {rel['drops']} drops, {rel['dups']} dups, "
            f"{rel['retransmits']} retransmits "
            f"({rel['spurious_retransmits']} spurious, {rto} RTO), "
            f"{rel['backoffs']} backoffs (seed {cfg.faults.seed})"
        )
        if cfg.faults.link_faults:
            keys = ", ".join(
                f"{lf.src}->{lf.dst}" for lf in cfg.faults.link_faults
            )
            print(f"link profiles:    {keys}")
        events = result.stats.partition_events
        if events:
            healed = sum(1 for e in events if e.get("healed"))
            print(
                f"partitions:       {len(events)} channel give-up(s), "
                f"{healed} healed and drained"
            )
        if result.stats.crash_events or result.stats.recovery_checkpoints:
            rec = result.stats.recovery_summary()
            crashed = ", ".join(
                f"node {e['node']}" for e in result.stats.crash_events
            )
            print(
                f"fail-stop:        {rec['crashes']} crash(es)"
                f"{f' ({crashed})' if crashed else ''}, "
                f"{rec['checkpoints']} checkpoint(s) "
                f"({rec['checkpoint_mbytes']:.2f} MB), "
                f"{rec['rollbacks']} rollback(s), "
                f"{rec['recovery_ms']:.2f} ms outage recovered"
            )
    if args.backend == "shmem":
        scope = "end of run + every barrier" if args.audit else "end of run"
        if result.stats.partition_events:
            scope = f"post-heal, {scope}"
        print(f"coherence audit:  clean ({scope})")
    if exporter is not None:
        retained = exporter.write(args.trace_out)
        dropped = f", {exporter.dropped} dropped past cap" if exporter.dropped else ""
        print(f"trace:            {args.trace_out} ({retained} events{dropped})")
    if result.phase_breakdown is not None:
        from repro.obs import render_breakdown

        print("\nper-phase time breakdown (per-node average):")
        print(render_breakdown(result.phase_breakdown))
    if result.critical_path is not None:
        from repro.obs import render_critical_path

        print()
        print(render_critical_path(result.critical_path, whatif=args.whatif))
    if tracer is not None:
        print(f"\nmessage trace:    {tracer.summary()}")
        print(tracer.sequence_chart())
    return 0


def _print_degraded(result, cfg) -> None:
    """The failure-report section for a run that finished degraded."""
    failure = result.extra.get("failure") or {}
    rel = result.stats.reliability_summary()
    print(f"backend:          {result.backend}")
    crashed = failure.get("crashed_nodes", [])
    if crashed:
        names = ", ".join(f"node {n}" for n in crashed)
        print(f"RUN DEGRADED:     {names} fail-stopped and never came back "
              "(no checkpoint to roll back to)")
    else:
        print("RUN DEGRADED:     the interconnect partitioned and never healed")
    print(
        f"simulated time:   {result.elapsed_ms:.1f} ms "
        "(up to the give-up point; no uniproc cross-check)"
    )
    print(f"stuck programs:   {', '.join(failure.get('stuck', [])) or 'none'}")
    chans = failure.get("partitioned_channels", [])
    chan_desc = ", ".join(
        f"{c['src']}->{c['dst']} ({c['parked']} parked)" for c in chans
    )
    print(f"dead channels:    {chan_desc or 'none'}")
    print(
        f"unreachable:      nodes "
        f"{failure.get('unreachable_nodes', []) or '[]'}"
    )
    print(
        f"reliability:      {rel['drops']} drops, "
        f"{rel['retransmits']} retransmits, {rel['gave_up']} give-ups "
        f"(seed {cfg.faults.seed})"
    )
    print(f"partial stats:    {result.stats.total_messages} messages, "
          f"{result.stats.total_misses} misses recorded before give-up")
    residual = failure.get("residual_violations", [])
    if residual:
        print(f"residual damage:  {len(residual)} coherence violation(s) "
              "among surviving nodes:")
        for line in residual[:6]:
            print(f"  - {line}")
        if len(residual) > 6:
            print(f"  ... and {len(residual) - 6} more")
    else:
        print("residual damage:  none among surviving nodes")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
