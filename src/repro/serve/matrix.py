"""Matrix specs → RunRequest lists (the ``repro sweep`` front end).

A sweep is the cross product of an app list and named *axes*.  Each axis
contributes one dimension; every combination becomes one
:class:`~repro.serve.request.RunRequest` cell:

    expand_matrix(["jacobi", "cg"],
                  axes={"optimize": ["off", "on"],
                        "drop": ["0", "0.05"]})
    # -> 2 apps x 2 x 2 = 8 requests

Axes (CLI spelling ``--axis name=v1,v2,...``):

=============== ======================================================
``optimize``    ``off``/``on`` — compiler-optimized communication
``bulk``        ``off``/``on`` — bulk payload coalescing
``rt_elim``     ``off``/``on`` — run-time overhead elimination
``pre``         ``off``/``on`` — redundant-communication elimination
``protocol``    coherence protocol name (``invalidate``/``update``)
``combine``     ``off``/``on`` — control-message combining
``switch``      ``off``/``on`` — shared-switch contention model
``drop``        frame drop probability (float)
``dup``         frame duplication probability (float)
``jitter_us``   extra latency bound in microseconds (float)
``seed``        fault-model RNG seed (int)
``nodes``       cluster size (int)
``scale``       app parameter scale (``default``/``paper``)
``profile``     ``off``/``on`` — per-phase breakdown + critical path
=============== ======================================================
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig

from repro.serve.request import RunRequest

__all__ = ["AXES", "expand_matrix", "parse_axis_specs"]

_BOOL = {"on": True, "off": False, "true": True, "false": False, "1": True, "0": False}


def _bool(axis: str, text: str) -> bool:
    try:
        return _BOOL[str(text).strip().lower()]
    except KeyError:
        raise ValueError(f"axis {axis!r}: expected on/off, got {text!r}") from None


#: axis name -> value parser (CLI passes strings; API may pass typed values)
AXES = {
    "optimize": lambda v: _bool("optimize", v) if isinstance(v, str) else bool(v),
    "bulk": lambda v: _bool("bulk", v) if isinstance(v, str) else bool(v),
    "rt_elim": lambda v: _bool("rt_elim", v) if isinstance(v, str) else bool(v),
    "pre": lambda v: _bool("pre", v) if isinstance(v, str) else bool(v),
    "protocol": str,
    "combine": lambda v: _bool("combine", v) if isinstance(v, str) else bool(v),
    "switch": lambda v: _bool("switch", v) if isinstance(v, str) else bool(v),
    "drop": float,
    "dup": float,
    "jitter_us": float,
    "seed": int,
    "nodes": int,
    "scale": str,
    "profile": lambda v: _bool("profile", v) if isinstance(v, str) else bool(v),
}


def parse_axis_specs(specs: list[str]) -> dict[str, list]:
    """Parse CLI ``name=v1,v2,...`` strings into typed axis values."""
    axes: dict[str, list] = {}
    for spec in specs:
        name, _, values = spec.partition("=")
        name = name.strip()
        if name not in AXES:
            raise ValueError(
                f"unknown axis {name!r}; choose from {sorted(AXES)}"
            )
        if not values:
            raise ValueError(f"axis {spec!r} needs =v1,v2,...")
        parse = AXES[name]
        axes[name] = [parse(v.strip()) for v in values.split(",")]
    return axes


def _cell_request(
    app: str,
    scale: str,
    cell: dict,
    base_config: ClusterConfig,
) -> RunRequest:
    config = base_config
    kwargs: dict = {}
    faults = config.faults
    for name, value in cell.items():
        if name in ("optimize", "bulk", "rt_elim", "pre", "protocol"):
            kwargs[name] = value
        elif name == "profile":
            kwargs["profile_phases"] = value
            kwargs["critical_path"] = value
        elif name == "combine":
            config = config.scaled(
                combine=dataclasses.replace(
                    config.combine if value else CombineConfig(), enabled=value
                )
            )
        elif name == "switch":
            config = config.scaled(
                switch=dataclasses.replace(
                    config.switch if value else SwitchConfig(), enabled=value
                )
            )
        elif name == "drop":
            faults = dataclasses.replace(faults, drop_prob=value)
        elif name == "dup":
            faults = dataclasses.replace(faults, dup_prob=value)
        elif name == "jitter_us":
            faults = dataclasses.replace(faults, jitter_ns=int(value * 1000))
        elif name == "seed":
            faults = dataclasses.replace(faults, seed=value)
        elif name == "nodes":
            config = config.scaled(n_nodes=value)
        elif name == "scale":
            scale = value
        else:  # pragma: no cover — parse_axis_specs already validated
            raise ValueError(f"unknown axis {name!r}")
    if faults is not config.faults:
        config = config.scaled(faults=faults)
    return RunRequest(app=app, scale=scale, config=config, **kwargs)


def expand_matrix(
    apps: list[str],
    axes: dict[str, list] | None = None,
    scale: str = "default",
    base_config: ClusterConfig | None = None,
) -> list[RunRequest]:
    """Cross apps with every axis combination; returns one request/cell."""
    axes = axes or {}
    base_config = base_config or ClusterConfig()
    names = sorted(axes)
    requests = []
    for app in apps:
        for combo in itertools.product(*(axes[n] for n in names)):
            cell = dict(zip(names, combo))
            requests.append(_cell_request(app, scale, cell, base_config))
    return requests


def cell_label(request: RunRequest) -> str:
    """Stable column describing one cell's axis settings for the table."""
    bits = []
    bits.append("opt" if request.optimize else "unopt")
    if request.config.combine.enabled:
        bits.append("combine")
    if request.config.switch.enabled:
        bits.append("switch")
    f = request.config.faults
    if f.drop_prob:
        bits.append(f"drop={f.drop_prob:g}")
    if f.dup_prob:
        bits.append(f"dup={f.dup_prob:g}")
    if f.jitter_ns:
        bits.append(f"jitter={f.jitter_ns / 1000:g}us")
    if f.seed:
        bits.append(f"seed={f.seed}")
    if request.critical_path or request.profile_phases:
        bits.append("profile")
    bits.append(f"n={request.config.n_nodes}")
    return " ".join(bits)
