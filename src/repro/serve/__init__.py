"""``repro.serve`` — content-addressed sweep orchestration.

The paper's evaluation is a matrix of (program, protocol, optimization
flags, scale) cells; production use multiplies that matrix by fault
profiles, seeds and topologies.  This package treats every cell as a
*request* with a deterministic content-addressed key and serves it the
cheapest way available:

1. from the on-disk result cache (a finished :class:`RunResult` for the
   same key — byte-identical to recomputing, because runs are
   deterministic),
2. by joining an identical request already in flight (dedup),
3. by computing it — in-process, or fanned across a process pool — with
   the compiler analysis (:class:`repro.runtime.shmem.ShmemPlan`)
   memoized in memory and on disk so wire-config ablations rebuild it
   once instead of per cell.

Public surface:

``RunRequest``       one cell: program spec + config + run options
``ServeSession``     submit/run_batch/gather front end with caching + pool
``ResultStore``      the crash-safe content-addressed on-disk store
``request_key``      the cache-key function (see docs/serve.md)
``results_equal``    exact RunResult equality (ndarray-aware)

See ``docs/serve.md`` for the cache-key contract and invalidation rules.
"""

from repro.serve.compare import assert_results_equal, results_equal
from repro.serve.keys import (
    CODE_VERSION,
    canonical,
    fingerprint,
    plan_key,
    program_fingerprint,
    request_key,
)
from repro.serve.request import RunRequest
from repro.serve.runner import ServeResult, ServeSession, execute_request
from repro.serve.store import ResultStore

__all__ = [
    "CODE_VERSION",
    "ResultStore",
    "RunRequest",
    "ServeResult",
    "ServeSession",
    "assert_results_equal",
    "canonical",
    "execute_request",
    "fingerprint",
    "plan_key",
    "program_fingerprint",
    "request_key",
    "results_equal",
]
