"""Request execution: plan memoization, process pool, dedup, caching.

The serving pipeline for one request:

1. result-cache lookup (``ResultStore``) — hit returns the stored
   RunResult, which is exactly what recomputing would produce;
2. in-flight dedup — an identical key already being computed is joined,
   not recomputed;
3. compute — on the process pool when the request is picklable and the
   session has workers, else inline — with the functional pass
   (:class:`~repro.runtime.shmem.ShmemPlan`) served from a small
   in-memory LRU backed by the on-disk plan cache, so a wire-ablation
   matrix builds each (program, geometry, flags) plan once.

Workers re-check the result store before computing (another worker may
have finished the same key between submit and execution) and publish
what they compute, so warm-cache hit rates hold across processes.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.runtime.msgpass import run_msgpass
from repro.runtime.results import RunResult
from repro.runtime.shmem import build_shmem_plan, execute_shmem_plan
from repro.runtime.uniproc import run_uniproc
from repro.serve.keys import CODE_VERSION, plan_key, request_key
from repro.serve.request import RunRequest
from repro.serve.store import ResultStore

__all__ = ["PlanCache", "ServeResult", "ServeSession", "execute_request"]


@dataclass
class ServeResult:
    """One served cell: the RunResult plus its provenance.

    Provenance lives *here*, never inside ``RunResult.extra`` — a cached
    result must stay dataclass-equal to a fresh in-process run.
    """

    key: str
    request: RunRequest
    result: RunResult
    source: str  # 'computed' | 'cache' | 'deduped'
    where: str   # 'pool' | 'inline'


class PlanCache:
    """Two-level ShmemPlan cache: small in-memory LRU over the disk store.

    Plans hold the program's full numerics, so the memory tier stays tiny
    (default 4 entries); the disk tier shares the result store's
    crash-safety (verified frames, quarantine on corruption).
    """

    def __init__(self, store: ResultStore | None, capacity: int = 4) -> None:
        self.store = store
        self.capacity = capacity
        self._memo: OrderedDict[str, object] = OrderedDict()
        self.memo_hits = 0
        self.disk_hits = 0
        self.built = 0

    def get_or_build(self, request: RunRequest, salt: str):
        pkey = plan_key(request, salt)
        plan = self._memo.get(pkey)
        if plan is not None:
            self._memo.move_to_end(pkey)
            self.memo_hits += 1
            return plan
        if self.store is not None:
            plan = self.store.get(ResultStore.PLANS, pkey)
            if plan is not None:
                self.disk_hits += 1
                self._remember(pkey, plan)
                return plan
        opts = request.build_options()
        plan = build_shmem_plan(request.build_program(), request.config, **opts)
        self.built += 1
        if self.store is not None:
            self.store.put(ResultStore.PLANS, pkey, plan)
        self._remember(pkey, plan)
        return plan

    def _remember(self, pkey: str, plan) -> None:
        self._memo[pkey] = plan
        self._memo.move_to_end(pkey)
        while len(self._memo) > self.capacity:
            self._memo.popitem(last=False)

    def stats(self) -> dict:
        return {
            "plan_memo_hits": self.memo_hits,
            "plan_disk_hits": self.disk_hits,
            "plans_built": self.built,
        }


def execute_request(
    request: RunRequest,
    plan_cache: PlanCache | None = None,
    salt: str = CODE_VERSION,
) -> RunResult:
    """Compute one request in this process (no result-cache involvement)."""
    program = request.build_program()
    if request.backend == "uniproc":
        return run_uniproc(program, request.config)
    if request.backend == "msgpass":
        return run_msgpass(program, request.config)
    if plan_cache is None:
        plan_cache = PlanCache(store=None)
    plan = plan_cache.get_or_build(request, salt)
    return execute_shmem_plan(
        plan,
        request.config,
        protocol=request.protocol,
        audit=request.audit,
        audit_each_barrier=request.audit_each_barrier,
        audit_sample_prob=request.audit_sample_prob,
        profile_phases=request.profile_phases,
        critical_path=request.critical_path,
    )


# --------------------------------------------------------------------- #
# pool worker (module-level: must pickle by reference under fork/spawn)
# --------------------------------------------------------------------- #
_worker_store: ResultStore | None = None
_worker_plans: PlanCache | None = None
_worker_cache_dir: str | None = None


def _pool_worker(request: RunRequest, cache_dir: str | None, salt: str):
    """Serve one request inside a worker process.

    Returns ``(result, from_cache)``.  The worker re-checks the result
    store (a sibling may have published the key since the parent's check)
    and publishes what it computes; its plan cache persists for the
    process's lifetime, so same-geometry cells arriving at the same
    worker skip the functional pass.
    """
    global _worker_store, _worker_plans, _worker_cache_dir
    if cache_dir != _worker_cache_dir or _worker_plans is None:
        _worker_store = ResultStore(cache_dir) if cache_dir else None
        _worker_plans = PlanCache(_worker_store)
        _worker_cache_dir = cache_dir
    key = request_key(request, salt)
    if _worker_store is not None:
        cached = _worker_store.get(ResultStore.RESULTS, key)
        if cached is not None:
            return cached, True
    result = execute_request(request, _worker_plans, salt)
    if _worker_store is not None:
        _worker_store.put(ResultStore.RESULTS, key, result)
    return result, False


# --------------------------------------------------------------------- #
# session
# --------------------------------------------------------------------- #
class ServeSession:
    """Front end: submit/run/run_batch/gather with caching, dedup, pool.

    ``jobs=1`` (default) computes inline; ``jobs>1`` fans picklable
    requests across a process pool.  ``cache_dir=None`` (default) keeps
    everything in-process — no disk is touched; pass a directory to get
    the persistent result + plan cache.  Degraded runs
    (``completed=False``) are cached like any other: they are
    deterministic outcomes of their (program, config, seed) key.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | None = None,
        salt: str = CODE_VERSION,
        plan_memo_size: int = 4,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.salt = salt
        self.store = ResultStore(self.cache_dir) if self.cache_dir else None
        self.plans = PlanCache(self.store, capacity=plan_memo_size)
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self.counters = {
            "requests": 0,
            "cache_hits": 0,
            "computed": 0,
            "deduped": 0,
            "pool": 0,
            "inline": 0,
        }

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def submit(self, request: RunRequest) -> Future:
        """Serve one request; returns a Future of :class:`ServeResult`.

        Cache hits resolve immediately; identical in-flight keys are
        joined (the duplicate's ServeResult says ``source='deduped'``).
        """
        self.counters["requests"] += 1
        key = request_key(request, self.salt)

        if self.store is not None:
            cached = self.store.get(ResultStore.RESULTS, key)
            if cached is not None:
                self.counters["cache_hits"] += 1
                fut: Future = Future()
                fut.set_result(
                    ServeResult(key, request, cached, "cache", "inline")
                )
                return fut

        base = self._inflight.get(key)
        if base is not None:
            self.counters["deduped"] += 1
            dup: Future = Future()

            def _copy(done: Future, dup=dup, request=request) -> None:
                exc = done.exception()
                if exc is not None:
                    dup.set_exception(exc)
                else:
                    dup.set_result(
                        replace(done.result(), request=request, source="deduped")
                    )

            base.add_done_callback(_copy)
            return dup

        self.counters["computed"] += 1
        if self.jobs > 1 and request.picklable:
            self.counters["pool"] += 1
            raw = self._ensure_pool().submit(
                _pool_worker, request, self.cache_dir, self.salt
            )
            fut = Future()

            def _wrap(done: Future, fut=fut, key=key, request=request) -> None:
                self._inflight.pop(key, None)
                exc = done.exception()
                if exc is not None:
                    fut.set_exception(exc)
                    return
                result, from_cache = done.result()
                fut.set_result(
                    ServeResult(
                        key,
                        request,
                        result,
                        "cache" if from_cache else "computed",
                        "pool",
                    )
                )

            self._inflight[key] = fut
            raw.add_done_callback(_wrap)
            return fut

        # Inline: compute synchronously (also the fallback for inline
        # Programs, whose initializer closures don't survive pickling).
        self.counters["inline"] += 1
        fut = Future()
        self._inflight[key] = fut
        try:
            result = execute_request(request, self.plans, self.salt)
            if self.store is not None:
                self.store.put(ResultStore.RESULTS, key, result)
        except BaseException as exc:
            self._inflight.pop(key, None)
            fut.set_exception(exc)
            return fut
        self._inflight.pop(key, None)
        fut.set_result(ServeResult(key, request, result, "computed", "inline"))
        return fut

    # ------------------------------------------------------------------ #
    def run(self, request: RunRequest) -> ServeResult:
        return self.submit(request).result()

    def run_batch(self, requests) -> list[ServeResult]:
        """Serve many requests; results come back in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    async def gather(self, requests) -> list[ServeResult]:
        """Async batch: submit everything, await all, preserve order."""
        futures = [
            asyncio.wrap_future(self.submit(r)) for r in requests
        ]
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        out = dict(self.counters)
        out.update(self.plans.stats())
        if self.store is not None:
            out["store"] = self.store.stats.as_dict()
        served = self.counters["requests"]
        out["hit_rate"] = (
            self.counters["cache_hits"] / served if served else 0.0
        )
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
