"""``repro sweep`` / ``repro diff`` — serve-layer front ends.

Sweep examples::

    # 2 apps x combine on/off, two workers, persistent cache
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --cache-dir .repro-cache

    # re-run warm and insist the cache actually served it
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --cache-dir .repro-cache --min-hit-rate 0.9

    # prove parallel+cached == serial in-process (CI smoke)
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --check-serial --json sweep.json

While a sweep runs, a single live progress line on stderr tracks
completed / in-flight / cache-hit / computed / degraded counts as
futures resolve (suppress with ``--quiet``).

Diff — the cross-run regression attributor — serves two cells of the
same app (with phase profiling and the critical-path analyzer forced
on, so cached sweep cells from a ``profile=on`` axis warm-hit) and
attributes the elapsed delta to named cost classes, nodes and phases::

    python -m repro diff jacobi combine=off combine=on \\
        --cache-dir .repro-cache

Exit codes (both commands): 0 ok; 2 bad usage; 3 hit rate below
``--min-hit-rate``; 4 some cell finished degraded (results still
printed/written; diff cannot attribute a degraded run); 5 a
``--check-serial`` cell differed from its serial rerun (serve bug —
should never happen).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Sequence

from repro.apps import APPS
from repro.tempest.config import ClusterConfig

from repro.serve.compare import diff_breakdowns, render_diff, results_equal
from repro.serve.matrix import AXES, cell_label, expand_matrix, parse_axis_specs
from repro.serve.runner import ServeSession, execute_request

__all__ = ["build_diff_parser", "build_sweep_parser", "diff_main", "sweep_main"]


def build_sweep_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a (apps x axes) config matrix with caching and "
        "parallel workers; every cell is bit-identical to a "
        "serial in-process run.",
    )
    p.add_argument("apps", nargs="+", choices=sorted(APPS),
                   help="applications to sweep")
    p.add_argument("--axis", action="append", default=[],
                   metavar="NAME=V1,V2,...",
                   help=f"one matrix axis (repeatable); axes: {sorted(AXES)}")
    p.add_argument("--scale", choices=["default", "paper"], default="default")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size for every cell (the 'nodes' axis "
                        "overrides this per cell)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1: serial in-process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result/plan cache directory "
                        "(default: no disk cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore --cache-dir: compute every cell")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the results table as JSON")
    p.add_argument("--check-serial", action="store_true",
                   help="re-run every cell serially in-process and require "
                        "exact RunResult equality (correctness harness; "
                        "doubles the work)")
    p.add_argument("--min-hit-rate", type=float, default=None, metavar="R",
                   help="exit 3 unless cache hits / requests >= R "
                        "(warm-cache assertion for CI)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the live progress line on stderr")
    return p


def _serve_with_progress(sess: ServeSession, requests, quiet: bool):
    """Submit every request, updating one stderr line as futures resolve.

    The line rewrites itself in place (``\\r``) with completed / in-flight
    / cache-hit / computed / degraded counts; callbacks may fire from pool
    wrapper threads, so the counters sit behind a lock.  Results come back
    in request order regardless of completion order.
    """
    total = len(requests)
    state = {"done": 0, "hits": 0, "computed": 0, "degraded": 0}
    lock = threading.Lock()

    def _line() -> str:
        return (
            f"sweep: {state['done']}/{total} done, "
            f"{total - state['done']} in flight, "
            f"{state['hits']} cache hits, {state['computed']} computed, "
            f"{state['degraded']} degraded"
        )

    def _note(fut) -> None:
        with lock:
            state["done"] += 1
            if fut.exception() is None:
                sr = fut.result()
                if sr.source == "cache":
                    state["hits"] += 1
                elif sr.source == "computed":
                    state["computed"] += 1
                if not sr.result.completed:
                    state["degraded"] += 1
            if not quiet:
                print(f"\r{_line():<78}", end="", file=sys.stderr, flush=True)

    futures = []
    for request in requests:
        fut = sess.submit(request)
        fut.add_done_callback(_note)
        futures.append(fut)
    served = [f.result() for f in futures]
    if not quiet:
        print(f"\r{_line():<78}", file=sys.stderr)
    return served


def _table(rows: list[dict]) -> str:
    cols = ["app", "cell", "elapsed_ms", "comm_ms", "misses/node", "source"]
    widths = {c: len(c) for c in cols}
    rendered = []
    for row in rows:
        r = {
            "app": row["app"],
            "cell": row["cell"],
            "elapsed_ms": f"{row['elapsed_ms']:.3f}",
            "comm_ms": f"{row['comm_ms']:.3f}",
            "misses/node": f"{row['misses_per_node']:.1f}",
            "source": row["source"] + ("" if row["completed"] else " DEGRADED"),
        }
        rendered.append(r)
        for c in cols:
            widths[c] = max(widths[c], len(r[c]))
    lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
    lines.append("  ".join("-" * widths[c] for c in cols))
    for r in rendered:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def sweep_main(argv: Sequence[str] | None = None) -> int:
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    try:
        axes = parse_axis_specs(args.axis)
    except ValueError as e:
        parser.error(str(e))
    base = ClusterConfig(n_nodes=args.nodes)
    requests = expand_matrix(args.apps, axes, scale=args.scale, base_config=base)
    cache_dir = None if args.no_cache else args.cache_dir
    print(
        f"sweep: {len(args.apps)} app(s) x {max(1, len(requests) // max(1, len(args.apps)))} "
        f"config(s) = {len(requests)} cells, jobs={args.jobs}, "
        f"cache={'off' if cache_dir is None else cache_dir}"
    )

    t0 = time.perf_counter()
    with ServeSession(jobs=args.jobs, cache_dir=cache_dir) as sess:
        served = _serve_with_progress(sess, requests, quiet=args.quiet)
        stats = sess.stats()
    wall_s = time.perf_counter() - t0

    mismatches = 0
    if args.check_serial:
        for sr in served:
            serial = execute_request(sr.request)
            if not results_equal(serial, sr.result):
                mismatches += 1
                print(
                    f"MISMATCH: {sr.request.label()} [{cell_label(sr.request)}] "
                    f"differs from its serial in-process rerun",
                    file=sys.stderr,
                )

    rows = []
    for sr in served:
        r = sr.result
        rows.append({
            "app": sr.request.app or r.program,
            "cell": cell_label(sr.request),
            "key": sr.key,
            "elapsed_ms": r.elapsed_ms,
            "comm_ms": r.comm_ms,
            "misses_per_node": r.misses_per_node,
            "completed": r.completed,
            "source": sr.source,
            "where": sr.where,
        })

    print()
    print(_table(rows))
    print()
    hit_rate = stats["hit_rate"]
    print(
        f"served {stats['requests']} requests in {wall_s:.2f}s wall: "
        f"{stats['cache_hits']} cached, {stats['computed']} computed "
        f"({stats['pool']} pooled), {stats['deduped']} deduped; "
        f"hit rate {hit_rate:.0%}"
    )
    if args.check_serial and not mismatches:
        print(f"check-serial: all {len(served)} cells exactly equal to "
              "serial in-process runs")

    if args.json:
        payload = {
            "cells": rows,
            "stats": stats,
            "wall_s": wall_s,
            "jobs": args.jobs,
            "cache_dir": cache_dir,
            "check_serial": bool(args.check_serial),
            "mismatches": mismatches,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")

    if mismatches:
        return 5
    if args.min_hit_rate is not None and hit_rate < args.min_hit_rate:
        print(
            f"hit rate {hit_rate:.0%} below required "
            f"{args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        return 3
    if any(not row["completed"] for row in rows):
        return 4
    return 0


# --------------------------------------------------------------------- #
# repro diff — cross-run regression attribution
# --------------------------------------------------------------------- #
def build_diff_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro diff",
        description="Serve two cells of one app with phase profiling and "
        "critical-path analysis, align their decompositions, "
        "and name the cost classes / nodes / phases that "
        "account for the elapsed-time delta.",
    )
    p.add_argument("app", choices=sorted(APPS), help="application to diff")
    p.add_argument("cell_a", metavar="CELL_A",
                   help="run A: comma-separated axis=value settings "
                        "(e.g. 'combine=off,drop=0'); '-' means all defaults")
    p.add_argument("cell_b", metavar="CELL_B",
                   help="run B, same syntax as CELL_A")
    p.add_argument("--scale", choices=["default", "paper"], default="default")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size for both cells (a 'nodes=' setting "
                        "in a cell spec overrides this)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1: serial in-process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result/plan cache directory — point at "
                        "a sweep's cache to diff cached cells without "
                        "recomputing")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore --cache-dir: compute both cells")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the structured diff as JSON")
    return p


def _diff_request(app: str, spec: str, scale: str, base: ClusterConfig):
    """One cell spec ('axis=value,axis=value' or '-') -> one RunRequest.

    Profiling + critical path are forced on (so the decompositions exist
    to diff) unless the spec sets ``profile`` itself; that keeps the keys
    identical to a ``profile=on`` sweep axis, so sweep caches warm-hit.
    """
    parts = [] if spec in ("-", "") else [s for s in spec.split(",") if s]
    axes = parse_axis_specs(parts)
    for name, values in axes.items():
        if len(values) != 1:
            raise ValueError(
                f"cell spec {spec!r}: axis {name!r} must have exactly one value"
            )
    axes.setdefault("profile", [True])
    (request,) = expand_matrix([app], axes, scale=scale, base_config=base)
    return request


def diff_main(argv: Sequence[str] | None = None) -> int:
    parser = build_diff_parser()
    args = parser.parse_args(argv)
    base = ClusterConfig(n_nodes=args.nodes)
    try:
        req_a = _diff_request(args.app, args.cell_a, args.scale, base)
        req_b = _diff_request(args.app, args.cell_b, args.scale, base)
    except ValueError as e:
        parser.error(str(e))
    cache_dir = None if args.no_cache else args.cache_dir

    with ServeSession(jobs=args.jobs, cache_dir=cache_dir) as sess:
        sa, sb = sess.run_batch([req_a, req_b])

    for name, sr in (("a", sa), ("b", sb)):
        print(
            f"{name}: {sr.request.label()} [{cell_label(sr.request)}] "
            f"({sr.source})"
        )
    if not (sa.result.completed and sb.result.completed):
        which = " and ".join(
            n for n, sr in (("a", sa), ("b", sb)) if not sr.result.completed
        )
        print(
            f"cannot attribute: run {which} finished degraded "
            "(no exact decomposition exists for an unfinished run)",
            file=sys.stderr,
        )
        return 4

    diff = diff_breakdowns(sa.result, sb.result)
    print(render_diff(diff))

    if args.json:
        payload = {
            "app": args.app,
            "a": {"cell": cell_label(sa.request), "key": sa.key,
                  "source": sa.source},
            "b": {"cell": cell_label(sb.request), "key": sb.key,
                  "source": sb.source},
            "diff": diff,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(sweep_main())
