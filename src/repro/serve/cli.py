"""``repro sweep`` — run a config matrix through the serve layer.

Examples::

    # 2 apps x combine on/off, two workers, persistent cache
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --cache-dir .repro-cache

    # re-run warm and insist the cache actually served it
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --cache-dir .repro-cache --min-hit-rate 0.9

    # prove parallel+cached == serial in-process (CI smoke)
    python -m repro sweep jacobi cg --axis combine=off,on \\
        --jobs 2 --check-serial --json sweep.json

Exit codes: 0 ok; 2 bad usage; 3 hit rate below ``--min-hit-rate``;
4 some cell finished degraded (results still printed/written); 5 a
``--check-serial`` cell differed from its serial rerun (serve bug —
should never happen).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.apps import APPS
from repro.tempest.config import ClusterConfig

from repro.serve.compare import results_equal
from repro.serve.matrix import AXES, cell_label, expand_matrix, parse_axis_specs
from repro.serve.runner import ServeSession, execute_request

__all__ = ["build_sweep_parser", "sweep_main"]


def build_sweep_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a (apps x axes) config matrix with caching and "
        "parallel workers; every cell is bit-identical to a "
        "serial in-process run.",
    )
    p.add_argument("apps", nargs="+", choices=sorted(APPS),
                   help="applications to sweep")
    p.add_argument("--axis", action="append", default=[],
                   metavar="NAME=V1,V2,...",
                   help=f"one matrix axis (repeatable); axes: {sorted(AXES)}")
    p.add_argument("--scale", choices=["default", "paper"], default="default")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size for every cell (the 'nodes' axis "
                        "overrides this per cell)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1: serial in-process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result/plan cache directory "
                        "(default: no disk cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore --cache-dir: compute every cell")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the results table as JSON")
    p.add_argument("--check-serial", action="store_true",
                   help="re-run every cell serially in-process and require "
                        "exact RunResult equality (correctness harness; "
                        "doubles the work)")
    p.add_argument("--min-hit-rate", type=float, default=None, metavar="R",
                   help="exit 3 unless cache hits / requests >= R "
                        "(warm-cache assertion for CI)")
    return p


def _table(rows: list[dict]) -> str:
    cols = ["app", "cell", "elapsed_ms", "comm_ms", "misses/node", "source"]
    widths = {c: len(c) for c in cols}
    rendered = []
    for row in rows:
        r = {
            "app": row["app"],
            "cell": row["cell"],
            "elapsed_ms": f"{row['elapsed_ms']:.3f}",
            "comm_ms": f"{row['comm_ms']:.3f}",
            "misses/node": f"{row['misses_per_node']:.1f}",
            "source": row["source"] + ("" if row["completed"] else " DEGRADED"),
        }
        rendered.append(r)
        for c in cols:
            widths[c] = max(widths[c], len(r[c]))
    lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
    lines.append("  ".join("-" * widths[c] for c in cols))
    for r in rendered:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def sweep_main(argv: Sequence[str] | None = None) -> int:
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    try:
        axes = parse_axis_specs(args.axis)
    except ValueError as e:
        parser.error(str(e))
    base = ClusterConfig(n_nodes=args.nodes)
    requests = expand_matrix(args.apps, axes, scale=args.scale, base_config=base)
    cache_dir = None if args.no_cache else args.cache_dir
    print(
        f"sweep: {len(args.apps)} app(s) x {max(1, len(requests) // max(1, len(args.apps)))} "
        f"config(s) = {len(requests)} cells, jobs={args.jobs}, "
        f"cache={'off' if cache_dir is None else cache_dir}"
    )

    t0 = time.perf_counter()
    with ServeSession(jobs=args.jobs, cache_dir=cache_dir) as sess:
        served = sess.run_batch(requests)
        stats = sess.stats()
    wall_s = time.perf_counter() - t0

    mismatches = 0
    if args.check_serial:
        for sr in served:
            serial = execute_request(sr.request)
            if not results_equal(serial, sr.result):
                mismatches += 1
                print(
                    f"MISMATCH: {sr.request.label()} [{cell_label(sr.request)}] "
                    f"differs from its serial in-process rerun",
                    file=sys.stderr,
                )

    rows = []
    for sr in served:
        r = sr.result
        rows.append({
            "app": sr.request.app or r.program,
            "cell": cell_label(sr.request),
            "key": sr.key,
            "elapsed_ms": r.elapsed_ms,
            "comm_ms": r.comm_ms,
            "misses_per_node": r.misses_per_node,
            "completed": r.completed,
            "source": sr.source,
            "where": sr.where,
        })

    print()
    print(_table(rows))
    print()
    hit_rate = stats["hit_rate"]
    print(
        f"served {stats['requests']} requests in {wall_s:.2f}s wall: "
        f"{stats['cache_hits']} cached, {stats['computed']} computed "
        f"({stats['pool']} pooled), {stats['deduped']} deduped; "
        f"hit rate {hit_rate:.0%}"
    )
    if args.check_serial and not mismatches:
        print(f"check-serial: all {len(served)} cells exactly equal to "
              "serial in-process runs")

    if args.json:
        payload = {
            "cells": rows,
            "stats": stats,
            "wall_s": wall_s,
            "jobs": args.jobs,
            "cache_dir": cache_dir,
            "check_serial": bool(args.check_serial),
            "mismatches": mismatches,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")

    if mismatches:
        return 5
    if args.min_hit_rate is not None and hit_rate < args.min_hit_rate:
        print(
            f"hit rate {hit_rate:.0%} below required "
            f"{args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        return 3
    if any(not row["completed"] for row in rows):
        return 4
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(sweep_main())
