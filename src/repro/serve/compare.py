"""Exact RunResult equality — the differential harness's yardstick.

``RunResult`` is a dataclass, but ``a == b`` raises on the ndarray dict
(numpy refuses truth-testing elementwise comparisons), so the differential
tests need an explicit predicate.  This is *bitwise* equality — no
tolerances: the simulator is deterministic, and the serve layer's whole
correctness contract is that caching and process pools change nothing.
"""

from __future__ import annotations

import dataclasses

from repro.runtime.results import RunResult, _value_equal

__all__ = ["assert_results_equal", "results_equal"]


def results_equal(a: RunResult, b: RunResult) -> bool:
    """True iff every field of two results is exactly equal (ndarray-aware)."""
    return a.exact_equal(b)


def assert_results_equal(a: RunResult, b: RunResult, context: str = "") -> None:
    """Raise ``AssertionError`` naming the first differing field."""
    prefix = f"{context}: " if context else ""
    for f in dataclasses.fields(RunResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if not _value_equal(va, vb):
            if f.name == "arrays":
                for name in sorted(set(va) | set(vb)):
                    xa, xb = va.get(name), vb.get(name)
                    if not _value_equal(xa, xb):
                        raise AssertionError(
                            f"{prefix}RunResult.arrays[{name!r}] differs"
                        )
            raise AssertionError(
                f"{prefix}RunResult.{f.name} differs:\n  a={va!r}\n  b={vb!r}"
            )
