"""Exact RunResult equality and cross-run regression attribution.

``RunResult`` is a dataclass, but ``a == b`` raises on the ndarray dict
(numpy refuses truth-testing elementwise comparisons), so the differential
tests need an explicit predicate.  This is *bitwise* equality — no
tolerances: the simulator is deterministic, and the serve layer's whole
correctness contract is that caching and process pools change nothing.

:func:`diff_breakdowns` goes beyond equality: given two *profiled* runs
(``profile_phases`` + ``critical_path``) it aligns their per-phase and
critical-path decompositions and attributes the elapsed-time delta to
named phases, nodes and cost classes — the ``repro diff`` backend.
"""

from __future__ import annotations

import dataclasses

from repro.runtime.results import RunResult, _value_equal

__all__ = [
    "assert_results_equal",
    "diff_breakdowns",
    "render_diff",
    "results_equal",
]


def results_equal(a: RunResult, b: RunResult) -> bool:
    """True iff every field of two results is exactly equal (ndarray-aware)."""
    return a.exact_equal(b)


def assert_results_equal(a: RunResult, b: RunResult, context: str = "") -> None:
    """Raise ``AssertionError`` naming the first differing field."""
    prefix = f"{context}: " if context else ""
    for f in dataclasses.fields(RunResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if not _value_equal(va, vb):
            if f.name == "arrays":
                for name in sorted(set(va) | set(vb)):
                    xa, xb = va.get(name), vb.get(name)
                    if not _value_equal(xa, xb):
                        raise AssertionError(
                            f"{prefix}RunResult.arrays[{name!r}] differs"
                        )
            raise AssertionError(
                f"{prefix}RunResult.{f.name} differs:\n  a={va!r}\n  b={vb!r}"
            )


# --------------------------------------------------------------------- #
# cross-run regression attribution (``repro diff``)
# --------------------------------------------------------------------- #
def _d3(a: int, b: int) -> dict:
    return {"a": a, "b": b, "delta": b - a}


def diff_breakdowns(a: RunResult, b: RunResult) -> dict:
    """Align two profiled runs and attribute the elapsed delta (B − A).

    Returns a structured diff with three aligned views, each decomposing
    the same ``elapsed_ns`` delta a different way:

    * ``classes`` — critical-path cost classes (compute/wire/...), whose
      deltas sum *exactly* to the elapsed delta (both decompositions sum
      to their run's elapsed time to the nanosecond);
    * ``nodes``   — critical-path time by the node it ran on (also exact);
    * ``phases``  — per-phase bucket totals from the phase profiler
      (summed over nodes, so overlapped work counts once per node —
      these deltas attribute *work*, not the single critical chain).

    Views missing from either run (not profiled) come back ``None``.
    A self-diff is all-zero by construction.
    """
    from repro.obs.critical import COST_CLASSES

    out: dict = {
        "elapsed_ns": _d3(a.elapsed_ns, b.elapsed_ns),
        "classes": None,
        "nodes": None,
        "phases": None,
    }
    ca, cb = a.critical_path, b.critical_path
    if ca is not None and cb is not None:
        out["classes"] = {
            cls: _d3(ca["classes"].get(cls, 0), cb["classes"].get(cls, 0))
            for cls in COST_CLASSES
        }
        na, nb = ca["classes_by_node"], cb["classes_by_node"]
        out["nodes"] = [
            {
                "node": i,
                **_d3(
                    sum(na[i].values()) if i < len(na) else 0,
                    sum(nb[i].values()) if i < len(nb) else 0,
                ),
            }
            for i in range(max(len(na), len(nb)))
        ]
    pa_bd, pb_bd = a.phase_breakdown, b.phase_breakdown
    if pa_bd is not None and pb_bd is not None:
        pa, pb = pa_bd["phases"], pb_bd["phases"]
        phases = []
        for i in range(max(len(pa), len(pb))):
            ea = pa[i] if i < len(pa) else None
            eb = pb[i] if i < len(pb) else None
            ta = sum(ea["total_ns"].values()) if ea else 0
            tb = sum(eb["total_ns"].values()) if eb else 0
            keys = list((eb or ea)["total_ns"])
            phases.append(
                {
                    "index": i,
                    "label": (eb or ea)["label"],
                    **_d3(ta, tb),
                    "buckets": {
                        k: _d3(
                            ea["total_ns"].get(k, 0) if ea else 0,
                            eb["total_ns"].get(k, 0) if eb else 0,
                        )
                        for k in keys
                    },
                }
            )
        out["phases"] = phases
    return out


def render_diff(diff: dict, max_rows: int = 8) -> str:
    """Terminal rendering of :func:`diff_breakdowns` with attribution."""
    e = diff["elapsed_ns"]
    ms = lambda ns: ns / 1e6  # noqa: E731 — local formatting shorthand
    lines = [
        f"elapsed: a={ms(e['a']):.3f} ms  b={ms(e['b']):.3f} ms  "
        f"delta={ms(e['delta']):+.3f} ms"
    ]
    movers: list[tuple[int, str]] = []
    if diff["classes"] is not None:
        lines.append("critical-path cost classes (delta = b - a, sums exactly):")
        for cls, d in diff["classes"].items():
            lines.append(
                f"  {cls:<18} a={ms(d['a']):10.3f}  b={ms(d['b']):10.3f}  "
                f"delta={ms(d['delta']):+10.3f} ms"
            )
            if d["delta"]:
                movers.append((abs(d["delta"]), f"cost class {cls!r} ({ms(d['delta']):+.3f} ms)"))
    if diff["nodes"] is not None:
        moved = [n for n in diff["nodes"] if n["delta"]]
        moved.sort(key=lambda n: -abs(n["delta"]))
        if moved:
            lines.append("critical-path time by node (nonzero movers):")
            for n in moved[:max_rows]:
                lines.append(
                    f"  node {n['node']:<3} a={ms(n['a']):10.3f}  "
                    f"b={ms(n['b']):10.3f}  delta={ms(n['delta']):+10.3f} ms"
                )
            top = moved[0]
            movers.append(
                (abs(top["delta"]), f"node {top['node']} ({ms(top['delta']):+.3f} ms)")
            )
    if diff["phases"] is not None:
        moved_p = [p for p in diff["phases"] if p["delta"]]
        moved_p.sort(key=lambda p: -abs(p["delta"]))
        if moved_p:
            lines.append("phase work deltas (summed over nodes, nonzero movers):")
            for p in moved_p[:max_rows]:
                bd = max(p["buckets"].items(), key=lambda kv: abs(kv[1]["delta"]))
                lines.append(
                    f"  phase {p['index']:>3} {p['label'][:20]:<20} "
                    f"delta={ms(p['delta']):+10.3f} ms "
                    f"(mostly {bd[0]}: {ms(bd[1]['delta']):+.3f} ms)"
                )
            top = moved_p[0]
            movers.append(
                (
                    abs(top["delta"]),
                    f"phase {top['index']} {top['label']!r} "
                    f"({ms(top['delta']):+.3f} ms)",
                )
            )
    if e["delta"] == 0 and not movers:
        lines.append("runs are identical: every aligned component is zero-delta")
    elif movers:
        movers.sort(key=lambda m: -m[0])
        lines.append(
            "attribution: " + "; ".join(m[1] for m in movers[:3])
        )
    return "\n".join(lines)
