"""RunRequest — one content-addressable simulation cell.

A request names a program either by registry spec (``app`` + ``scale`` +
``params``, picklable, rebuilt inside pool workers) or as an inline
:class:`~repro.hpf.ast.Program` (handy in tests; runs in-process because
initializer closures generally don't pickle).  Both spellings of the same
program produce the same cache key: the key hashes the *built* program's
content, never the registry name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps import get_app
from repro.hpf.ast import Program
from repro.tempest.config import ClusterConfig
from repro.tempest.memory import HomePolicy

__all__ = ["BACKENDS", "RunRequest"]

BACKENDS = ("shmem", "uniproc", "msgpass")


@dataclass(frozen=True)
class RunRequest:
    """Everything needed to (re)produce one RunResult, anywhere."""

    # -- program: registry spec or inline AST ------------------------- #
    app: str | None = None
    scale: str = "default"
    params: tuple[tuple[str, Any], ...] = ()
    program: Program | None = None

    # -- backend + config --------------------------------------------- #
    backend: str = "shmem"
    config: ClusterConfig = field(default_factory=ClusterConfig)

    # -- shmem run options (mirrors run_shmem's signature) ------------- #
    optimize: bool = False
    bulk: bool = True
    rt_elim: bool = False
    pre: bool = False
    advisory: str | bool = False
    home_policy: HomePolicy = HomePolicy.ALIGNED
    check_contracts: bool = True
    protocol: str = "invalidate"
    audit: bool = True
    audit_each_barrier: bool = False
    audit_sample_prob: float = 1.0
    profile_phases: bool = False
    critical_path: bool = False

    def __post_init__(self) -> None:
        if (self.app is None) == (self.program is None):
            raise ValueError("RunRequest needs exactly one of app= or program=")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if isinstance(self.params, dict):
            # Accept a dict at construction; store the hashable spelling.
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))
        else:
            object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------------ #
    def build_program(self) -> Program:
        """Instantiate the program this request names."""
        if self.program is not None:
            return self.program
        return get_app(self.app).program(self.scale, **dict(self.params))

    @property
    def picklable(self) -> bool:
        """Registry-spec requests travel to pool workers; inline ones
        carry initializer closures and must run in the parent process."""
        return self.program is None

    def resolved_fingerprint(self) -> str:
        """Content fingerprint of the *built* program (spec-independent)."""
        from repro.serve.keys import program_fingerprint

        return program_fingerprint(self.build_program())

    # ------------------------------------------------------------------ #
    def run_options(self) -> dict:
        """Every option that can influence the result (keyed)."""
        if self.backend != "shmem":
            # uniproc/msgpass take only (program, config).
            return {}
        return {
            "optimize": self.optimize,
            "bulk": self.bulk,
            "rt_elim": self.rt_elim,
            "pre": self.pre,
            "advisory": self.advisory,
            "home_policy": self.home_policy,
            "check_contracts": self.check_contracts,
            "protocol": self.protocol,
            "audit": self.audit,
            "audit_each_barrier": self.audit_each_barrier,
            "audit_sample_prob": self.audit_sample_prob,
            "profile_phases": self.profile_phases,
            "critical_path": self.critical_path,
        }

    def build_options(self) -> dict:
        """The subset of options the *functional pass* depends on — these
        key the memoized ShmemPlan (see :func:`repro.serve.keys.plan_key`)."""
        return {
            "optimize": self.optimize,
            "bulk": self.bulk,
            "rt_elim": self.rt_elim,
            "pre": self.pre,
            "advisory": self.advisory,
            "home_policy": self.home_policy,
            "check_contracts": self.check_contracts,
        }

    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """Short human-readable name for tables and logs."""
        name = self.app or (self.program.name if self.program else "?")
        bits = [name, self.backend]
        if self.optimize:
            bits.append("opt")
        return "/".join(bits)
