"""Crash-safe content-addressed on-disk store for results and plans.

Layout (under one root directory)::

    <root>/results/<k0k1>/<key>.bin     finished RunResults
    <root>/plans/<k0k1>/<key>.bin       memoized ShmemPlans
    <root>/quarantine/                  entries that failed verification

Entry format — a self-verifying frame around a pickle payload::

    MAGIC (12 bytes)  b"REPROSERVE1\\n"
    LENGTH (8 bytes)  big-endian payload byte count
    PAYLOAD           pickle.dumps(obj, protocol=4)
    DIGEST (32 bytes) sha256(PAYLOAD)

Durability discipline:

* **Atomic publication.**  ``put`` writes to a uniquely named ``*.tmp``
  file in the destination directory and ``os.replace``s it into place —
  readers see either no entry or a complete one, never a torn write.
  Concurrent writers of the same key are harmless: both frames encode the
  same deterministic object and the last rename wins.
* **Verified reads.**  ``get`` checks magic, length and digest before
  unpickling, and treats *any* failure — short file, bit rot, torn
  concurrent copy, unpicklable payload — as a cache miss: the offending
  file is moved to ``quarantine/`` (for post-mortems) and ``None`` is
  returned so the caller recomputes.  A poisoned cache can therefore slow
  a sweep down but can never change its output.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["ResultStore", "StoreStats"]

_MAGIC = b"REPROSERVE1\n"
_LEN_BYTES = 8
_DIGEST_BYTES = 32
_HEADER = len(_MAGIC) + _LEN_BYTES


class StoreStats:
    """Counters for one store handle (hits/misses/corruption)."""

    __slots__ = ("hits", "misses", "writes", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


class ResultStore:
    """Content-addressed store; safe under concurrent readers and writers."""

    RESULTS = "results"
    PLANS = "plans"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # ------------------------------------------------------------------ #
    def _path(self, kind: str, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self.root / kind / key[:2] / f"{key}.bin"

    def contains(self, kind: str, key: str) -> bool:
        return self._path(kind, key).exists()

    # ------------------------------------------------------------------ #
    def put(self, kind: str, key: str, obj: Any) -> Path:
        """Serialize ``obj`` under ``key``; atomic against readers."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(obj, protocol=4)
        frame = (
            _MAGIC
            + len(payload).to_bytes(_LEN_BYTES, "big")
            + payload
            + hashlib.sha256(payload).digest()
        )
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(frame)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def get(self, kind: str, key: str) -> Any | None:
        """Load and verify the entry for ``key``; ``None`` on any failure."""
        path = self._path(kind, key)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        payload = self._verify(data)
        if payload is None:
            self._quarantine(path, "bad-frame")
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            obj = pickle.loads(payload)
        except Exception:
            # Digest matched but the payload will not unpickle — written by
            # an incompatible code version, or pickled classes changed shape.
            self._quarantine(path, "bad-pickle")
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return obj

    # ------------------------------------------------------------------ #
    @staticmethod
    def _verify(data: bytes) -> bytes | None:
        """Return the payload when the frame is intact, else ``None``."""
        if len(data) < _HEADER + _DIGEST_BYTES:
            return None
        if data[: len(_MAGIC)] != _MAGIC:
            return None
        length = int.from_bytes(data[len(_MAGIC) : _HEADER], "big")
        if len(data) != _HEADER + length + _DIGEST_BYTES:
            return None
        payload = data[_HEADER : _HEADER + length]
        digest = data[_HEADER + length :]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside; never raises (recompute matters more)."""
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / f"{path.stem}.{reason}.{os.getpid()}"
            os.replace(path, dest)
        except OSError:
            # Lost a race with another process quarantining the same file,
            # or the filesystem is read-only; either way the caller still
            # just recomputes.
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def quarantined(self) -> list[Path]:
        qdir = self.root / "quarantine"
        if not qdir.is_dir():
            return []
        return sorted(p for p in qdir.iterdir() if p.is_file())

    def entries(self, kind: str) -> list[Path]:
        kdir = self.root / kind
        if not kdir.is_dir():
            return []
        return sorted(kdir.glob("*/*.bin"))
