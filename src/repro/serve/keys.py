"""Deterministic content-addressed cache keys for simulation requests.

The key contract (see docs/serve.md for the full rules):

* A key is the SHA-256 of a *canonical* JSON encoding of everything that
  can influence a run's result: the canonicalized program (structure AND
  initial array contents), the full :class:`ClusterConfig` (including the
  fault seed, per-link overlays, partition windows and crash scenarios),
  the run options (backend, optimize/bulk/rt_elim/pre/advisory, protocol,
  home policy, audit settings), and a *code-version salt*.
* Canonicalization is semantic, not syntactic: dict/field ordering,
  default-vs-explicit config values, and overlay tuple ordering all
  collapse to one encoding — requests that mean the same run share a key.
* Anything that does NOT influence the result — the app registry name,
  host, worker count, cache settings — is excluded, so two spellings of
  the same program (app name vs inline AST) also share a key.
* Bumping :data:`CODE_VERSION` invalidates every existing entry at once;
  do that whenever a change makes old cached results stale (cost model,
  protocol, planner, stats layout).

Nothing here uses Python's randomized ``hash()``; keys are stable across
processes, machines and interpreter restarts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

from repro.core.symbolic import Lin, Sym
from repro.hpf.ast import Program
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.faults import FaultConfig

__all__ = [
    "CODE_VERSION",
    "canonical",
    "config_canonical",
    "fingerprint",
    "plan_key",
    "program_fingerprint",
    "request_key",
]

#: The code-version salt.  Bump the integer whenever simulation results
#: change for identical inputs (cost-model retune, protocol fix, stats
#: schema change): every cached entry is invalidated in one stroke, no
#: cache deletion required.
CODE_VERSION = "repro-serve/3"  # /3: RunResult gains critical_path (PR 10)


# --------------------------------------------------------------------- #
# canonical encoding
# --------------------------------------------------------------------- #
def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Dataclasses become ``[class-name, {field: value}]`` with fields
    iterated in sorted order (so declaration order and construction order
    never matter); dicts sort by key; sets/frozensets sort their canonical
    elements; ndarrays hash their bytes.  Unknown object types raise
    ``TypeError`` — silently guessing would risk two different requests
    sharing a key, the one failure mode a content-addressed store must
    never have.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; json.dumps does too, but pin it.
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.name]
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return [
            "ndarray",
            str(arr.dtype),
            list(arr.shape),
            hashlib.sha256(arr.tobytes()).hexdigest(),
        ]
    if isinstance(obj, dict):
        items = [(str(k), canonical(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: kv[0])
        return ["dict", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        elems = [canonical(v) for v in obj]
        elems.sort(key=lambda e: json.dumps(e, sort_keys=True))
        return ["set", elems]
    if isinstance(obj, Lin):
        return ["lin", obj.const, sorted(obj.terms.items())]
    if isinstance(obj, Sym):
        return ["sym", obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = sorted(f.name for f in dataclasses.fields(obj))
        return [
            type(obj).__name__,
            {name: canonical(getattr(obj, name)) for name in fields},
        ]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache keying; "
        f"teach repro.serve.keys.canonical about it explicitly"
    )


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical encoding."""
    blob = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# configs
# --------------------------------------------------------------------- #
def config_canonical(config: ClusterConfig) -> Any:
    """Canonical form of a full cluster config.

    Overlay tuples whose order is semantically irrelevant — per-link
    profiles (keyed by ``(src, dst)``), partition windows (named) and
    crash scenarios (one per node) — are sorted before encoding, so two
    configs listing them in different orders share a key.  Two configs
    that *differ* in any effective field (a different drop probability on
    one link, a partition window one microsecond longer, a never-healing
    vs healing cut) canonicalize differently and therefore never collide.
    """
    faults = config.faults
    faults = dataclasses.replace(
        faults,
        link_faults=tuple(sorted(faults.link_faults, key=lambda lf: lf.key)),
        partitions=tuple(sorted(faults.partitions, key=lambda s: s.name)),
        crashes=tuple(sorted(faults.crashes, key=lambda c: c.node)),
    )
    return canonical(dataclasses.replace(config, faults=faults))


def geometry_canonical(config: ClusterConfig) -> Any:
    """Canonical form of the plan-relevant (wire-independent) geometry."""
    neutral = dataclasses.replace(
        config,
        faults=FaultConfig(),
        combine=CombineConfig(),
        switch=SwitchConfig(),
    )
    return canonical(neutral)


# --------------------------------------------------------------------- #
# programs
# --------------------------------------------------------------------- #
def program_fingerprint(program: Program) -> str:
    """Content-address a program: structure plus initial data.

    The AST canonicalizes recursively (declarations sorted by name, the
    statement list in order).  Initializers are callables, so their
    *identity* is meaningless across processes; what matters is the data
    they produce — each one is evaluated against a zeroed array of the
    declared shape and the resulting bytes are hashed.  Two programs that
    compute the same phases over the same initial data share a
    fingerprint no matter how they were spelled.
    """
    init_hashes = {}
    for name, fn in program.initializers.items():
        decl = program.arrays[name]
        arr = np.zeros(decl.shape, order="F")
        arr[...] = np.asarray(fn(decl.shape), dtype=np.float64)
        init_hashes[name] = hashlib.sha256(
            np.ascontiguousarray(arr).tobytes()
        ).hexdigest()
    payload = {
        "name": program.name,
        "arrays": {n: canonical(d) for n, d in sorted(program.arrays.items())},
        "body": canonical(program.body),
        "scalars": {n: canonical(v) for n, v in sorted(program.scalars.items())},
        "initializers": init_hashes,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# request / plan keys
# --------------------------------------------------------------------- #
def request_key(request, salt: str = CODE_VERSION) -> str:
    """The content-addressed key of one run request.

    Covers everything that pins the result: program content, the full
    config (fault seed included), backend and run options, and the salt.
    """
    payload = {
        "schema": "request/1",
        "salt": salt,
        "backend": request.backend,
        "program": request.resolved_fingerprint(),
        "config": config_canonical(request.config),
        "options": canonical(request.run_options()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def plan_key(request, salt: str = CODE_VERSION) -> str:
    """The key of the memoized compiler analysis for a request.

    Deliberately coarser than :func:`request_key`: the fault, combining
    and switch configs are replaced by their defaults, so every cell of a
    wire-ablation matrix maps to the same plan entry and the functional
    pass runs once per (program, geometry, optimizer flags).
    """
    payload = {
        "schema": "plan/1",
        "salt": salt,
        "program": request.resolved_fingerprint(),
        "geometry": geometry_canonical(request.config),
        "options": canonical(request.build_options()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
