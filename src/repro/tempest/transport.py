"""Reliable, exactly-once, in-order delivery over an unreliable wire.

The protocol stack (``protocol.py``, ``protocol_update.py``,
``extensions.py``, ``barrier.py``) was written against a perfect network:
every handler runs exactly once, and messages between one (src, dst) pair
never reorder — the FIFO link plus fixed latency guarantee it, and protocol
correctness leans on it (e.g. a read-response must not be overtaken by the
invalidation queued behind it).  When :class:`~repro.tempest.faults.
FaultConfig` makes the wire lossy, this module restores both guarantees:

* **sequence numbers** per (src, dst) channel, assigned at send time;
* **acks + timeout retransmit** with capped exponential backoff (timeouts
  are plain engine delays, so everything stays deterministic);
* **receiver-side dedup and reordering**: a frame older than the delivery
  cursor (or already buffered) is acked and discarded; out-of-order frames
  buffer until the gap fills, so handlers fire in send order.

Transport acks are header-only control frames below the protocol layer:
they occupy the ack sender's link (serialization is real) and can
themselves be dropped or jittered — a lost ack is repaired by the data
frame's retransmission and the receiver's dedup.  Acks never appear in the
per-kind message counters; reliability costs are tracked separately as
``net_drops`` / ``net_dups`` / ``net_retransmits`` / ``net_backoffs`` in
:class:`~repro.tempest.stats.NodeStats`.

The transport exists only while faults are enabled; fault-free clusters
never construct one, so their event schedules are untouched.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.tempest.faults import FaultConfig, TransportError
from repro.tempest.stats import MsgKind

__all__ = ["ReliableTransport"]


class _Frame:
    """One transport frame: a protocol message plus reliability state."""

    __slots__ = (
        "seq", "src", "dst", "kind", "size",
        "handler", "handler_cost_ns", "retries", "timeout_ns",
    )

    def __init__(
        self,
        seq: int,
        src: int,
        dst: int,
        kind: MsgKind,
        size: int,
        handler: Callable[[], None],
        handler_cost_ns: int,
        timeout_ns: int,
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.handler = handler
        self.handler_cost_ns = handler_cost_ns
        self.retries = 0
        self.timeout_ns = timeout_ns


class _Channel:
    """Per-(src, dst) reliability state."""

    __slots__ = ("next_send_seq", "unacked", "next_deliver_seq", "reorder")

    def __init__(self) -> None:
        self.next_send_seq = 0
        self.unacked: dict[int, _Frame] = {}
        self.next_deliver_seq = 0
        self.reorder: dict[int, _Frame] = {}


class ReliableTransport:
    """Sequence/ack/retransmit machinery for one cluster's network."""

    #: wire size of a transport ack (a bare header)
    ACK_BYTES = 16

    def __init__(self, network, faults: FaultConfig) -> None:
        self.network = network
        self.engine = network.engine
        self.config = network.config
        self.faults = faults
        self.rng = random.Random(faults.seed)
        self._channels: dict[tuple[int, int], _Channel] = {}

    # ------------------------------------------------------------------ #
    def _channel(self, src: int, dst: int) -> _Channel:
        ch = self._channels.get((src, dst))
        if ch is None:
            ch = self._channels[(src, dst)] = _Channel()
        return ch

    def _jitter_ns(self) -> int:
        j = self.faults.jitter_ns
        return self.rng.randrange(j + 1) if j else 0

    # ------------------------------------------------------------------ #
    # sender side
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        size: int,
    ) -> None:
        """Submit one protocol message for reliable delivery."""
        ch = self._channel(src, dst)
        frame = _Frame(
            ch.next_send_seq, src, dst, kind, size,
            handler, handler_cost_ns, self.faults.retransmit_timeout_ns,
        )
        ch.next_send_seq += 1
        ch.unacked[frame.seq] = frame
        self._transmit(frame)

    def _transmit(self, frame: _Frame) -> None:
        """Put one wire copy of ``frame`` on the sender's link and arm the
        retransmit timer."""
        net = self.network
        fc = self.faults

        def on_wire_done(_v: object) -> None:
            # Fault draws in a fixed order so runs replay exactly:
            # drop, duplicate, then per-copy jitter inside arrival.
            dropped = fc.drop_prob > 0 and self.rng.random() < fc.drop_prob
            duplicated = fc.dup_prob > 0 and self.rng.random() < fc.dup_prob
            if dropped:
                net.stats[frame.src].net_drops += 1
            else:
                self._schedule_arrival(frame)
            if duplicated:
                # An extra wire copy (it may still be deduplicated).
                self._schedule_arrival(frame)

        net.links[frame.src].serve(
            self.config.transfer_ns(frame.size)
        ).add_callback(on_wire_done)
        self.engine.call_after(frame.timeout_ns, self._check_ack, frame)

    def _schedule_arrival(self, frame: _Frame) -> None:
        delay = self.config.wire_latency_ns + self._jitter_ns()
        self.engine.call_after(delay, self._on_arrival, frame)

    def _check_ack(self, frame: _Frame) -> None:
        """Retransmit timer: resend with exponential backoff until acked."""
        ch = self._channel(frame.src, frame.dst)
        if frame.seq not in ch.unacked:
            return  # acked; stale timer
        fc = self.faults
        if frame.retries >= fc.max_retries:
            raise TransportError(
                f"frame {frame.kind.value}#{frame.seq} {frame.src}->{frame.dst} "
                f"unacked after {fc.max_retries} retransmits; the interconnect "
                "is effectively partitioned"
            )
        frame.retries += 1
        self.network.stats[frame.src].net_retransmits += 1
        next_timeout = min(frame.timeout_ns * 2, fc.max_backoff_ns)
        if next_timeout > frame.timeout_ns:
            self.network.stats[frame.src].net_backoffs += 1
        frame.timeout_ns = next_timeout
        self._transmit(frame)

    # ------------------------------------------------------------------ #
    # receiver side
    # ------------------------------------------------------------------ #
    def _on_arrival(self, frame: _Frame) -> None:
        """One wire copy reached the destination's network interface."""
        # Ack every copy, including duplicates: a lost ack means the sender
        # retransmits, and only a fresh ack can stop it.
        self._send_ack(frame)
        ch = self._channel(frame.src, frame.dst)
        if frame.seq < ch.next_deliver_seq or frame.seq in ch.reorder:
            self.network.stats[frame.dst].net_dups += 1
            return
        ch.reorder[frame.seq] = frame
        # Deliver the contiguous run starting at the cursor; later frames
        # wait buffered so handlers execute in send order.
        while ch.next_deliver_seq in ch.reorder:
            ready = ch.reorder.pop(ch.next_deliver_seq)
            ch.next_deliver_seq += 1
            self._deliver(ready)

    def _deliver(self, frame: _Frame) -> None:
        fc = self.faults
        cost = frame.handler_cost_ns
        if fc.stall_prob > 0 and self.rng.random() < fc.stall_prob:
            # A protocol-CPU stall window: the handler's dispatch occupies
            # the protocol processor for an extra stretch first.
            cost += fc.stall_ns
        self.network.dispatch(
            frame.dst, self.config.dispatch_overhead_ns, cost, frame.handler
        )

    def _send_ack(self, frame: _Frame) -> None:
        """Header-only transport ack, dst -> src; unreliable by design."""
        fc = self.faults

        def on_wire_done(_v: object) -> None:
            if fc.drop_prob > 0 and self.rng.random() < fc.drop_prob:
                self.network.stats[frame.dst].net_drops += 1
                return  # the retransmit path recovers
            delay = self.config.wire_latency_ns + self._jitter_ns()
            self.engine.call_after(delay, self._on_ack, frame.src, frame.dst, frame.seq)

        self.network.links[frame.dst].serve(
            self.config.transfer_ns(self.ACK_BYTES)
        ).add_callback(on_wire_done)

    def _on_ack(self, src: int, dst: int, seq: int) -> None:
        self._channel(src, dst).unacked.pop(seq, None)

    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Unacked frames across all channels (for tests/diagnostics)."""
        return sum(len(ch.unacked) for ch in self._channels.values())
