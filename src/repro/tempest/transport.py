"""Reliable, exactly-once, in-order delivery over an unreliable wire.

The protocol stack (``protocol.py``, ``protocol_update.py``,
``extensions.py``, ``barrier.py``) was written against a perfect network:
every handler runs exactly once, and messages between one (src, dst) pair
never reorder — the FIFO link plus fixed latency guarantee it, and protocol
correctness leans on it (e.g. a read-response must not be overtaken by the
invalidation queued behind it).  When :class:`~repro.tempest.faults.
FaultConfig` makes the wire lossy, this module restores both guarantees:

* **sequence numbers** per (src, dst) channel, assigned at send time;
* **acks + timeout retransmit** with capped exponential backoff (timeouts
  are plain engine delays, so everything stays deterministic);
* **receiver-side dedup and reordering**: a frame older than the delivery
  cursor (or already buffered) is acked and discarded; out-of-order frames
  buffer until the gap fills, so handlers fire in send order.

Retransmission timing
---------------------
By default the ack timeout is the fixed ``retransmit_timeout_ns`` (~3 short
-message RTTs).  That timer is blind to queueing: a burst of bulk payloads
serializes for hundreds of microseconds on one link, the ack comes back
late, and the timer fires a *spurious* retransmit — the frame (or its ack)
was still en route.  With ``FaultConfig.adaptive_rto`` each channel keeps a
Jacobson-style estimator instead: SRTT/RTTVAR smoothed from ack round trips
of non-retransmitted frames (Karn's rule), RTO = SRTT + 4·RTTVAR clamped to
``[rto_min_ns, rto_max_ns]``.  The adaptive timer is also *size-aware*:
each frame's own deterministic serialization time rides on top of the RTO
(and is excluded from samples), so bulk payloads never trip a timeout
learned from short control frames.  Queueing backlog — on the sender's own
link, or (with :class:`~repro.tempest.config.SwitchConfig`) cross-traffic
contention at a shared switch port, which both frames and acks traverse —
then inflates the RTO via SRTT/RTTVAR and the spurious-retransmit class
disappears; the simulator
counts the ground truth in ``net_spurious_retransmits`` (a retransmit armed
while a copy of the frame, or its ack, was still in play on the wire).

Transport acks are header-only control frames below the protocol layer:
they occupy the ack sender's link (serialization is real) and can
themselves be dropped or jittered — a lost ack is repaired by the data
frame's retransmission and the receiver's dedup.  When message combining is
enabled (:class:`~repro.tempest.config.CombineConfig`), acks queued behind
a busy link coalesce into one combined ack frame carrying several sequence
numbers — one header, one drop/jitter draw.  Acks never appear in the
per-kind message counters; reliability costs are tracked separately as
``net_drops`` / ``net_dups`` / ``net_retransmits`` / ``net_backoffs`` /
``net_spurious_retransmits`` in :class:`~repro.tempest.stats.NodeStats`.

The transport exists only while faults are enabled; fault-free clusters
never construct one, so their event schedules are untouched.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.tempest.faults import FaultConfig, TransportError
from repro.tempest.stats import MsgKind

__all__ = ["ReliableTransport"]


class _Frame:
    """One transport frame: a protocol message plus reliability state."""

    __slots__ = (
        "seq", "src", "dst", "kind", "size",
        "handler", "handler_cost_ns", "retries", "timeout_ns",
        "sent_at_ns", "pending_acks",
    )

    def __init__(
        self,
        seq: int,
        src: int,
        dst: int,
        kind: MsgKind,
        size: int,
        handler: Callable[[], None],
        handler_cost_ns: int,
        timeout_ns: int,
        sent_at_ns: int,
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.handler = handler
        self.handler_cost_ns = handler_cost_ns
        self.retries = 0
        self.timeout_ns = timeout_ns
        self.sent_at_ns = sent_at_ns
        # Wire copies still in play: one per copy submitted to the link
        # (decremented when the drop draw kills the copy, or its ack).
        # Nonzero at retransmit time == the retransmit was spurious — a
        # copy or its ack was still queued, serializing, or propagating.
        self.pending_acks = 0


class _Channel:
    """Per-(src, dst) reliability state plus the RTT estimator."""

    __slots__ = (
        "next_send_seq", "unacked", "next_deliver_seq", "reorder",
        "srtt_ns", "rttvar_ns", "rto_ns",
    )

    def __init__(self, initial_rto_ns: int) -> None:
        self.next_send_seq = 0
        self.unacked: dict[int, _Frame] = {}
        self.next_deliver_seq = 0
        self.reorder: dict[int, _Frame] = {}
        # Jacobson estimator state; srtt < 0 means "no sample yet" and the
        # channel runs on the configured initial timeout.
        self.srtt_ns = -1
        self.rttvar_ns = 0
        self.rto_ns = initial_rto_ns


class ReliableTransport:
    """Sequence/ack/retransmit machinery for one cluster's network."""

    #: wire size of a transport ack (a bare header)
    ACK_BYTES = 16

    def __init__(self, network, faults: FaultConfig) -> None:
        self.network = network
        self.engine = network.engine
        self.config = network.config
        self.faults = faults
        self.rng = random.Random(faults.seed)
        self._channels: dict[tuple[int, int], _Channel] = {}
        self.adaptive = faults.adaptive_rto
        self._initial_rto = (
            min(max(faults.retransmit_timeout_ns, faults.rto_min_ns),
                faults.rto_max_ns)
            if self.adaptive
            else faults.retransmit_timeout_ns
        )
        # Combined-ack buffers: acker -> (peer -> list of frames to ack).
        # Only touched when the network's combining layer is enabled.
        self._ack_buffers: dict[int, dict[int, list[_Frame]]] = {}

    # ------------------------------------------------------------------ #
    def _channel(self, src: int, dst: int) -> _Channel:
        ch = self._channels.get((src, dst))
        if ch is None:
            ch = self._channels[(src, dst)] = _Channel(self._initial_rto)
        return ch

    def _jitter_ns(self) -> int:
        j = self.faults.jitter_ns
        return self.rng.randrange(j + 1) if j else 0

    def _deterministic_path_ns(self, size: int) -> int:
        """The frame's own fixed bandwidth cost: link serialization, plus
        its store-and-forward time when the shared switch is enabled.  Rides
        on the adaptive timer and is excluded from RTT samples, so the
        estimator tracks only the variable part — queueing, jitter, the ack
        path."""
        path = self.config.transfer_ns(size)
        if self.network.switch is not None:
            path += self.config.switch_forward_ns(size)
        return path

    # ------------------------------------------------------------------ #
    # sender side
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        size: int,
    ) -> None:
        """Submit one protocol message for reliable delivery."""
        ch = self._channel(src, dst)
        # The adaptive timer is size-aware: the sender knows exactly how
        # long its own frame occupies the link, so that deterministic
        # serialization time rides on top of the estimated RTO (and is
        # subtracted back out of RTT samples).  The estimator then tracks
        # only the genuinely variable part — queueing, jitter, ack path —
        # and a bulk payload never trips a timeout learned from short
        # control frames.  The fixed timer stays deliberately blind.
        timeout = ch.rto_ns
        if self.adaptive:
            timeout += self._deterministic_path_ns(size)
        frame = _Frame(
            ch.next_send_seq, src, dst, kind, size,
            handler, handler_cost_ns, timeout, self.engine.now,
        )
        ch.next_send_seq += 1
        ch.unacked[frame.seq] = frame
        self._transmit(frame)

    def _transmit(self, frame: _Frame) -> None:
        """Put one wire copy of ``frame`` on the sender's link and arm the
        retransmit timer."""
        net = self.network
        fc = self.faults

        def on_wire_done(_v: object) -> None:
            # Fault draws in a fixed order so runs replay exactly:
            # drop, duplicate, then per-copy jitter inside arrival.
            dropped = fc.drop_prob > 0 and self.rng.random() < fc.drop_prob
            duplicated = fc.dup_prob > 0 and self.rng.random() < fc.dup_prob
            if dropped:
                frame.pending_acks -= 1
                net.stats[frame.src].net_drops += 1
            else:
                self._schedule_arrival(frame)
            if duplicated:
                # An extra wire copy (it may still be deduplicated).
                frame.pending_acks += 1
                self._schedule_arrival(frame)

        frame.pending_acks += 1
        net.traverse(frame.src, frame.dst, frame.size, on_wire_done)
        self.engine.call_after(frame.timeout_ns, self._check_ack, frame)

    def _schedule_arrival(self, frame: _Frame) -> None:
        delay = self.network.residual_latency_ns + self._jitter_ns()
        self.engine.call_after(delay, self._on_arrival, frame)

    def _check_ack(self, frame: _Frame) -> None:
        """Retransmit timer: resend with exponential backoff until acked."""
        ch = self._channel(frame.src, frame.dst)
        if frame.seq not in ch.unacked:
            return  # acked; stale timer
        fc = self.faults
        if frame.retries >= fc.max_retries:
            raise TransportError(
                f"frame {frame.kind.value}#{frame.seq} {frame.src}->{frame.dst} "
                f"unacked after {fc.max_retries} retransmits; the interconnect "
                "is effectively partitioned"
            )
        if frame.pending_acks > 0:
            # A surviving copy (or its ack) is still on the wire: the timer
            # fired early.  Ground truth, courtesy of the simulator.
            self.network.stats[frame.src].net_spurious_retransmits += 1
        frame.retries += 1
        self.network.stats[frame.src].net_retransmits += 1
        next_timeout = min(frame.timeout_ns * 2, fc.max_backoff_ns)
        if next_timeout > frame.timeout_ns:
            self.network.stats[frame.src].net_backoffs += 1
        frame.timeout_ns = next_timeout
        self._transmit(frame)

    # ------------------------------------------------------------------ #
    # receiver side
    # ------------------------------------------------------------------ #
    def _on_arrival(self, frame: _Frame) -> None:
        """One wire copy reached the destination's network interface."""
        # Ack every copy, including duplicates: a lost ack means the sender
        # retransmits, and only a fresh ack can stop it.
        self._send_ack(frame)
        ch = self._channel(frame.src, frame.dst)
        if frame.seq < ch.next_deliver_seq or frame.seq in ch.reorder:
            self.network.stats[frame.dst].net_dups += 1
            return
        ch.reorder[frame.seq] = frame
        # Deliver the contiguous run starting at the cursor; later frames
        # wait buffered so handlers execute in send order.
        while ch.next_deliver_seq in ch.reorder:
            ready = ch.reorder.pop(ch.next_deliver_seq)
            ch.next_deliver_seq += 1
            self._deliver(ready)

    def _deliver(self, frame: _Frame) -> None:
        fc = self.faults
        cost = frame.handler_cost_ns
        if fc.stall_prob > 0 and self.rng.random() < fc.stall_prob:
            # A protocol-CPU stall window: the handler's dispatch occupies
            # the protocol processor for an extra stretch first.
            cost += fc.stall_ns
        self.network.dispatch(
            frame.dst, self.config.dispatch_overhead_ns, cost, frame.handler
        )

    # ------------------------------------------------------------------ #
    # transport acks (with optional combining)
    # ------------------------------------------------------------------ #
    def _send_ack(self, frame: _Frame) -> None:
        """Header-only transport ack, dst -> src; unreliable by design.

        With combining enabled, an ack finding its sender's link busy parks
        in a per-peer buffer and rides a combined ack frame when the link
        frees (see :meth:`flush_acks`).
        """
        net = self.network
        acker = frame.dst
        if net.combining and net._link_jobs[acker] > 0:
            peers = self._ack_buffers.setdefault(acker, {})
            buf = peers.setdefault(frame.src, [])
            buf.append(frame)
            if len(buf) >= self.config.combine.max_msgs:
                del peers[frame.src]
                self._transmit_acks(acker, frame.src, buf)
            return
        self._transmit_acks(acker, frame.src, [frame])

    def flush_acks(self, acker: int) -> None:
        """Link idle: put parked (combined) acks on the wire."""
        peers = self._ack_buffers.get(acker)
        if not peers:
            return
        flushing = list(peers.items())
        peers.clear()
        for peer, frames in flushing:
            self._transmit_acks(acker, peer, frames)

    def _transmit_acks(self, acker: int, peer: int, frames: list[_Frame]) -> None:
        """One wire ack frame acknowledging ``frames`` (peer's channel)."""
        fc = self.faults
        k = len(frames)
        size = self.ACK_BYTES
        if k > 1:
            size += k * self.config.combine.slot_bytes
            st = self.network.stats[acker]
            st.combine_flushes += 1
            st.msgs_combined[MsgKind.ACK] += k
        seqs = [f.seq for f in frames]

        def on_wire_done(_v: object) -> None:
            if fc.drop_prob > 0 and self.rng.random() < fc.drop_prob:
                self.network.stats[acker].net_drops += 1
                for f in frames:
                    f.pending_acks -= 1
                return  # the retransmit path recovers
            delay = self.network.residual_latency_ns + self._jitter_ns()
            self.engine.call_after(delay, self._on_acks, peer, acker, seqs)

        self.network.traverse(acker, peer, size, on_wire_done)

    def _on_acks(self, src: int, dst: int, seqs: list[int]) -> None:
        ch = self._channel(src, dst)
        now = self.engine.now
        for seq in seqs:
            frame = ch.unacked.pop(seq, None)
            if frame is None:
                continue  # duplicate/stale ack
            if self.adaptive and frame.retries == 0:
                # Karn's rule: only never-retransmitted frames sample RTT
                # (a retransmitted frame's ack is ambiguous).  The frame's
                # own deterministic bandwidth cost (serialization, and the
                # switch forwarding hop when enabled) already rides on the
                # timer, so it is excluded from the sample.
                rtt = now - frame.sent_at_ns - self._deterministic_path_ns(frame.size)
                self._sample_rtt(ch, max(rtt, 0))

    def _sample_rtt(self, ch: _Channel, rtt_ns: int) -> None:
        """Jacobson/Karels update, integer arithmetic for determinism."""
        if ch.srtt_ns < 0:
            ch.srtt_ns = rtt_ns
            ch.rttvar_ns = rtt_ns // 2
        else:
            err = rtt_ns - ch.srtt_ns
            ch.rttvar_ns += (abs(err) - ch.rttvar_ns) // 4
            ch.srtt_ns += err // 8
        fc = self.faults
        ch.rto_ns = min(
            max(ch.srtt_ns + 4 * ch.rttvar_ns, fc.rto_min_ns), fc.rto_max_ns
        )

    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Unacked frames across all channels (for tests/diagnostics)."""
        return sum(len(ch.unacked) for ch in self._channels.values())
