"""Reliable, exactly-once, in-order delivery over an unreliable wire.

The protocol stack (``protocol.py``, ``protocol_update.py``,
``extensions.py``, ``barrier.py``) was written against a perfect network:
every handler runs exactly once, and messages between one (src, dst) pair
never reorder — the FIFO link plus fixed latency guarantee it, and protocol
correctness leans on it (e.g. a read-response must not be overtaken by the
invalidation queued behind it).  When :class:`~repro.tempest.faults.
FaultConfig` makes the wire lossy, this module restores both guarantees:

* **sequence numbers** per (src, dst) channel, assigned at send time;
* **acks + timeout retransmit** with capped exponential backoff (timeouts
  are plain engine delays, so everything stays deterministic);
* **receiver-side dedup and reordering**: a frame older than the delivery
  cursor (or already buffered) is acked and discarded; out-of-order frames
  buffer until the gap fills, so handlers fire in send order.

Retransmission timing
---------------------
By default the ack timeout is the fixed ``retransmit_timeout_ns`` (~3 short
-message RTTs).  That timer is blind to queueing: a burst of bulk payloads
serializes for hundreds of microseconds on one link, the ack comes back
late, and the timer fires a *spurious* retransmit — the frame (or its ack)
was still en route.  With ``FaultConfig.adaptive_rto`` each channel keeps a
Jacobson-style estimator instead: SRTT/RTTVAR smoothed from ack round trips
of non-retransmitted frames (Karn's rule), RTO = SRTT + 4·RTTVAR clamped to
``[rto_min_ns, rto_max_ns]``.  The adaptive timer is also *size-aware*:
each frame's own deterministic serialization time rides on top of the RTO
(and is excluded from samples), so bulk payloads never trip a timeout
learned from short control frames.  Queueing backlog — on the sender's own
link, or (with :class:`~repro.tempest.config.SwitchConfig`) cross-traffic
contention at a shared switch port, which both frames and acks traverse —
then inflates the RTO via SRTT/RTTVAR and the spurious-retransmit class
disappears; the simulator
counts the ground truth in ``net_spurious_retransmits`` (a retransmit armed
while a copy of the frame, or its ack, was still in play on the wire).

Per-link profiles and partitions
--------------------------------
Fault draws resolve through a per-link *profile* at draw time: links listed
in ``FaultConfig.link_faults`` get their own
:class:`~repro.tempest.faults.LinkFaultConfig` overrides **and their own
seeded RNG stream** (derived from ``(seed, src, dst)``), every other link
shares the uniform config and the transport's single stream — so adding a
profile to one link never perturbs the draw sequence, and therefore the
schedule, of any other link, and a config with no overrides is
byte-identical to the uniform-only transport.
:class:`~repro.tempest.faults.PartitionScenario` windows consume no
randomness: a frame (or ack) whose endpoints straddle an active partition
is cut deterministically the moment it leaves its sender's link.

Give-up and recovery
--------------------
A frame that exhausts ``max_retries`` no longer aborts the simulation.
Its channel transitions to ``PARTITIONED``: every unacked frame is *parked*
(in sequence order), later sends on the channel park immediately without
touching the wire, and the give-up is recorded in
``NodeStats.net_gave_up`` plus one ``ClusterStats.partition_events`` entry.
If the responsible partition scenario heals, the channel schedules a heal
at the window's close, re-transmits the parked frames in order (receiver
dedup absorbs any that were delivered before the give-up) and the run
completes normally.  If no scenario heals — a permanent partition, or
organic loss with no scenario at all — the parked frames arm no timers, the
event heap drains, and the cluster finishes *degraded* (see
``Cluster.run``) instead of raising :class:`TransportError`.

Transport acks are header-only control frames below the protocol layer:
they occupy the ack sender's link (serialization is real) and can
themselves be dropped or jittered — a lost ack is repaired by the data
frame's retransmission and the receiver's dedup.  When message combining is
enabled (:class:`~repro.tempest.config.CombineConfig`), acks queued behind
a busy link coalesce into one combined ack frame carrying several sequence
numbers — one header, one drop/jitter draw.  Acks never appear in the
per-kind message counters; reliability costs are tracked separately as
``net_drops`` / ``net_dups`` / ``net_retransmits`` / ``net_backoffs`` /
``net_spurious_retransmits`` in :class:`~repro.tempest.stats.NodeStats`.

Retransmit timers are *coalesced*: instead of one engine event per wire
copy, each (src, dst) channel arms a single timer on the earliest deadline
over its unacked frames (every frame still records its own exact
``deadline_ns``, so retransmits fire at precisely the same instants the
per-frame design produced — TCP does the same thing for the same reason).
A fire processes every due frame, recomputes the earliest remaining
deadline and re-arms; the live timer count is O(channels), not O(frames).

Liveness and fail-stop detection
--------------------------------
When :class:`~repro.tempest.faults.CrashScenario` entries are configured,
the channel timer doubles as a *keepalive*: a channel idle past
``FaultConfig.heartbeat_interval_ns`` sends a header-only probe frame
(negative sequence number, acked-and-discarded by the receiver, never
delivered or counted as a protocol message).  Probes ride the ordinary
unacked/retransmit machinery, so a fail-stopped peer — whose arriving
frames and acks simply vanish — is detected with *no oracle*: the probe
(or any data frame) exhausts ``max_retries``, the channel parks, and the
``on_give_up`` hook lets the recovery layer recognize the dead endpoint.
After the first detection (or once every program finished) monitoring is
suspended so the event heap can drain.  Crash-free configs never probe,
never pre-create channels, and keep their exact event schedules.

The transport exists only while faults are enabled; fault-free clusters
never construct one, so their event schedules are untouched.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.tempest.faults import FaultConfig, TransportError  # noqa: F401  (TransportError re-exported for API compat)
from repro.tempest.stats import MsgKind

__all__ = ["ReliableTransport", "OPEN", "PARTITIONED", "HEARTBEAT"]

#: channel states
OPEN = "open"
PARTITIONED = "partitioned"

#: frame-kind sentinel for keepalive probes — a transport-internal control
#: frame like the ack, deliberately *not* a MsgKind: probes never reach the
#: protocol layer and never appear in per-kind message counters
HEARTBEAT = "heartbeat"


def _noop() -> None:  # probe frames carry no handler
    return None


class _LinkProfile:
    """Effective fault parameters plus the RNG stream for one link.

    The uniform profile wraps the transport's shared stream; each link
    with a :class:`~repro.tempest.faults.LinkFaultConfig` override gets a
    private stream so its draws never shift any other link's sequence.
    """

    __slots__ = ("drop_prob", "dup_prob", "jitter_ns", "stall_prob",
                 "stall_ns", "rng")

    def __init__(
        self,
        drop_prob: float,
        dup_prob: float,
        jitter_ns: int,
        stall_prob: float,
        stall_ns: int,
        rng: random.Random,
    ) -> None:
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.jitter_ns = jitter_ns
        self.stall_prob = stall_prob
        self.stall_ns = stall_ns
        self.rng = rng

    def jitter(self) -> int:
        j = self.jitter_ns
        return self.rng.randrange(j + 1) if j else 0


class _Frame:
    """One transport frame: a protocol message plus reliability state."""

    __slots__ = (
        "seq", "src", "dst", "kind", "size",
        "handler", "handler_cost_ns", "retries", "timeout_ns",
        "sent_at_ns", "pending_acks", "deadline_ns",
        "parent", "first_send_seq",
    )

    def __init__(
        self,
        seq: int,
        src: int,
        dst: int,
        kind: MsgKind,
        size: int,
        handler: Callable[[], None],
        handler_cost_ns: int,
        timeout_ns: int,
        sent_at_ns: int,
        parent=None,
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.handler = handler
        self.handler_cost_ns = handler_cost_ns
        self.retries = 0
        self.timeout_ns = timeout_ns
        self.sent_at_ns = sent_at_ns
        # Lineage: the originating msg.send event seq, and the seq of this
        # frame's first frame.send event — the anchor every later
        # retransmit/accept/deliver/ack event points back to (kept across
        # heals so the whole repair chain shares one root).
        self.parent = parent
        self.first_send_seq = None
        # Wire copies still in play: one per copy submitted to the link
        # (decremented when the drop draw kills the copy, or its ack).
        # Nonzero at retransmit time == the retransmit was spurious — a
        # copy or its ack was still queued, serializing, or propagating.
        self.pending_acks = 0
        # Absolute instant the current ack timeout expires; maintained at
        # every (re)transmit so the channel's single coalesced timer can
        # recover the exact per-frame firing times.
        self.deadline_ns = 0


class _Channel:
    """Per-(src, dst) reliability state plus the RTT estimator."""

    __slots__ = (
        "next_send_seq", "unacked", "next_deliver_seq", "reorder",
        "srtt_ns", "rttvar_ns", "rto_ns",
        "state", "parked", "give_up_event", "give_up_seq",
        "timer_deadline", "timer_seq", "hb_deadline", "next_probe_seq",
    )

    def __init__(self, initial_rto_ns: int) -> None:
        self.next_send_seq = 0
        self.unacked: dict[int, _Frame] = {}
        self.next_deliver_seq = 0
        self.reorder: dict[int, _Frame] = {}
        # Jacobson estimator state; srtt < 0 means "no sample yet" and the
        # channel runs on the configured initial timeout.
        self.srtt_ns = -1
        self.rttvar_ns = 0
        self.rto_ns = initial_rto_ns
        # Give-up / recovery state: a PARTITIONED channel holds its unacked
        # and newly-sent frames in ``parked`` (sequence order) until a heal
        # drains them; ``give_up_event`` aliases the ClusterStats
        # partition_events record so the heal can mark it healed.
        self.state = OPEN
        self.parked: list[_Frame] = []
        self.give_up_event: dict | None = None
        # Lineage: the channel.giveup event seq, so the matching
        # channel.heal can chain to the give-up that parked it.
        self.give_up_seq: int | None = None
        # The one coalesced timer: the armed absolute deadline (None =
        # nothing armed) and a monotonically increasing arm counter that
        # invalidates superseded heap entries.
        self.timer_deadline: int | None = None
        self.timer_seq = 0
        # Keepalive state (crash configs only): next probe instant, and a
        # descending sequence space for probe frames so they never collide
        # with data frames in ``unacked``.
        self.hb_deadline: int | None = None
        self.next_probe_seq = -1


class ReliableTransport:
    """Sequence/ack/retransmit machinery for one cluster's network."""

    #: wire size of a transport ack (a bare header)
    ACK_BYTES = 16

    def __init__(self, network, faults: FaultConfig) -> None:
        self.network = network
        self.engine = network.engine
        self.config = network.config
        self.faults = faults
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        # The uniform profile shares self.rng (kept in sync through the
        # property below, so tests may swap the stream), meaning configs
        # without per-link overrides draw in exactly the historical order;
        # overridden links lazily get private streams in _profile().
        self._uniform = _LinkProfile(
            faults.drop_prob, faults.dup_prob, faults.jitter_ns,
            faults.stall_prob, faults.stall_ns, random.Random(faults.seed),
        )
        self._overrides = faults.link_overrides()
        self._profiles: dict[tuple[int, int], _LinkProfile] = {}
        self._partitions = faults.partitions
        self._channels: dict[tuple[int, int], _Channel] = {}
        self.adaptive = faults.adaptive_rto
        self._initial_rto = (
            min(max(faults.retransmit_timeout_ns, faults.rto_min_ns),
                faults.rto_max_ns)
            if self.adaptive
            else faults.retransmit_timeout_ns
        )
        # Combined-ack buffers: acker -> (peer -> list of frames to ack).
        # Only touched when the network's combining layer is enabled.
        self._ack_buffers: dict[int, dict[int, list[_Frame]]] = {}
        # --- fail-stop liveness layer (CrashScenario configs only) ------ #
        # Nodes currently fail-stopped: frames and acks touching them
        # vanish at arrival time (no ack — that silence *is* the failure
        # signal), and their own timers stop re-arming.
        self._dead: set[int] = set()
        # Heartbeats exist only when crashes are configured; crash-free
        # configs never probe, pre-create no channels, consume no draws.
        self.heartbeats_enabled = bool(faults.crashes)
        self.heartbeat_interval_ns = faults.heartbeat_interval_ns
        # Set after the first dead-peer detection (or once every program
        # finished): stops probes so the event heap can drain.
        self.monitor_suspended = False
        # Recovery hook: called as on_give_up(src, dst) after a channel
        # give-up is recorded; the RecoveryManager uses it to recognize
        # channels that died because their peer fail-stopped.
        self.on_give_up: Callable[[int, int], None] | None = None

    # ------------------------------------------------------------------ #
    @property
    def rng(self) -> random.Random:
        """The shared fault stream (uniform links).  Assignable: swapping
        in a scripted stream redirects every uniform-profile draw."""
        return self._uniform.rng

    @rng.setter
    def rng(self, value: random.Random) -> None:
        self._uniform.rng = value

    # ------------------------------------------------------------------ #
    def _channel(self, src: int, dst: int) -> _Channel:
        ch = self._channels.get((src, dst))
        if ch is None:
            ch = self._channels[(src, dst)] = _Channel(self._initial_rto)
        return ch

    def _profile(self, src: int, dst: int) -> _LinkProfile:
        """The effective fault profile for the directed link src -> dst."""
        if not self._overrides:
            return self._uniform
        prof = self._profiles.get((src, dst))
        if prof is None:
            ov = self._overrides.get((src, dst))
            if ov is None:
                prof = self._uniform
            else:
                fc = self.faults
                # A private stream per overridden link, derived from the
                # config seed and the link endpoints: deterministic, and
                # independent of every other link's draw sequence.
                rng = random.Random(
                    (fc.seed * 1_000_003) ^ (src * 8_209 + dst + 1)
                )
                prof = _LinkProfile(
                    ov.drop_prob if ov.drop_prob is not None else fc.drop_prob,
                    ov.dup_prob if ov.dup_prob is not None else fc.dup_prob,
                    ov.jitter_ns if ov.jitter_ns is not None else fc.jitter_ns,
                    ov.stall_prob if ov.stall_prob is not None else fc.stall_prob,
                    ov.stall_ns if ov.stall_ns is not None else fc.stall_ns,
                    rng,
                )
            self._profiles[(src, dst)] = prof
        return prof

    def _cut_now(self, a: int, b: int) -> bool:
        """True when an active partition separates ``a`` from ``b`` now."""
        now = self.engine.now
        return any(
            s.separates(a, b) and s.active_at(now) for s in self._partitions
        )

    def _active_cut_scenarios(self, a: int, b: int) -> list:
        now = self.engine.now
        return [
            s for s in self._partitions
            if s.separates(a, b) and s.active_at(now)
        ]

    def _deterministic_path_ns(self, size: int) -> int:
        """The frame's own fixed bandwidth cost: link serialization, plus
        its store-and-forward time when the shared switch is enabled.  Rides
        on the adaptive timer and is excluded from RTT samples, so the
        estimator tracks only the variable part — queueing, jitter, the ack
        path."""
        path = self.config.transfer_ns(size)
        if self.network.switch is not None:
            path += self.config.switch_forward_ns(size)
        return path

    # ------------------------------------------------------------------ #
    # sender side
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        size: int,
        parent=None,
    ) -> None:
        """Submit one protocol message for reliable delivery."""
        ch = self._channel(src, dst)
        # The adaptive timer is size-aware: the sender knows exactly how
        # long its own frame occupies the link, so that deterministic
        # serialization time rides on top of the estimated RTO (and is
        # subtracted back out of RTT samples).  The estimator then tracks
        # only the genuinely variable part — queueing, jitter, ack path —
        # and a bulk payload never trips a timeout learned from short
        # control frames.  The fixed timer stays deliberately blind.
        timeout = ch.rto_ns
        if self.adaptive:
            timeout += self._deterministic_path_ns(size)
        frame = _Frame(
            ch.next_send_seq, src, dst, kind, size,
            handler, handler_cost_ns, timeout, self.engine.now, parent,
        )
        ch.next_send_seq += 1
        if ch.state is not OPEN:
            # The channel already gave up: park without touching the wire
            # (no link occupancy, no timers).  A heal drains the queue in
            # sequence order; a degraded run reports it.
            ch.parked.append(frame)
            return
        ch.unacked[frame.seq] = frame
        self._transmit(frame)
        self._arm_timer(src, dst, ch)

    def _transmit(self, frame: _Frame) -> None:
        """Put one wire copy of ``frame`` on the sender's link and stamp
        its ack deadline (the channel timer is armed by the caller)."""
        net = self.network
        # This copy's frame.send event seq; assigned below after the emit.
        # The closure reads the enclosing cell, so drops caused by *this*
        # copy chain to exactly this send event.
        send_seq = None

        def on_wire_done(_v: object) -> None:
            # An active partition cuts the frame deterministically at the
            # end of its serialization — no RNG draw is consumed, so runs
            # without partition scenarios keep their exact draw sequence.
            if self._partitions and self._cut_now(frame.src, frame.dst):
                frame.pending_acks -= 1
                net.stats[frame.src].net_drops += 1
                if self.obs is not None:
                    self.obs.emit(
                        "frame.drop", self.engine.now, node=frame.src,
                        parent=send_seq,
                        dst=frame.dst, seq=frame.seq, cause="partition",
                    )
                return
            # Fault draws in a fixed order so runs replay exactly:
            # drop, duplicate, then per-copy jitter inside arrival.
            prof = self._profile(frame.src, frame.dst)
            dropped = prof.drop_prob > 0 and prof.rng.random() < prof.drop_prob
            duplicated = prof.dup_prob > 0 and prof.rng.random() < prof.dup_prob
            if dropped:
                frame.pending_acks -= 1
                net.stats[frame.src].net_drops += 1
                if self.obs is not None:
                    self.obs.emit(
                        "frame.drop", self.engine.now, node=frame.src,
                        parent=send_seq,
                        dst=frame.dst, seq=frame.seq, cause="loss",
                    )
            else:
                self._schedule_arrival(frame)
            if duplicated:
                # An extra wire copy (it may still be deduplicated).
                frame.pending_acks += 1
                self._schedule_arrival(frame)

        frame.pending_acks += 1
        frame.deadline_ns = self.engine.now + frame.timeout_ns
        if self.obs is not None:
            ev = self.obs.emit(
                "frame.send", self.engine.now, node=frame.src,
                parent=frame.parent,
                dst=frame.dst, seq=frame.seq, msg=frame.kind,
                size=frame.size, retries=frame.retries,
            )
            send_seq = ev.seq
            if frame.first_send_seq is None:
                frame.first_send_seq = ev.seq
        net.traverse(frame.src, frame.dst, frame.size, on_wire_done, send_seq)

    def _schedule_arrival(self, frame: _Frame) -> None:
        prof = self._profile(frame.src, frame.dst)
        delay = self.network.residual_latency_ns + prof.jitter()
        self.engine.call_after(delay, self._on_arrival, frame)

    # ------------------------------------------------------------------ #
    # the coalesced per-channel timer
    # ------------------------------------------------------------------ #
    def _arm_timer(self, src: int, dst: int, ch: _Channel) -> None:
        """(Re)arm the channel's single timer on the earliest deadline:
        the oldest unacked frame's exact ack deadline, or — when the
        liveness layer is probing — the next keepalive instant."""
        deadline: int | None = None
        if ch.state is OPEN and src not in self._dead:
            if ch.unacked:
                deadline = min(f.deadline_ns for f in ch.unacked.values())
            if (self.heartbeats_enabled and not self.monitor_suspended
                    and ch.hb_deadline is not None):
                deadline = (ch.hb_deadline if deadline is None
                            else min(deadline, ch.hb_deadline))
        if deadline is None:
            ch.timer_deadline = None
            return
        if ch.timer_deadline is not None and ch.timer_deadline <= deadline:
            return  # the armed timer fires first and will re-arm
        ch.timer_seq += 1
        ch.timer_deadline = deadline
        self.engine.call_at(deadline, self._on_timer, src, dst, ch.timer_seq)

    def _on_timer(self, src: int, dst: int, timer_seq: int) -> None:
        """The channel timer fired: retransmit every due frame (at exactly
        the instant its own per-frame timer would have fired), send a
        keepalive if the channel has been idle past the heartbeat interval,
        then re-arm on the earliest remaining deadline."""
        ch = self._channels.get((src, dst))
        if ch is None or ch.timer_seq != timer_seq:
            return  # superseded by a later arm
        ch.timer_deadline = None
        if ch.state is not OPEN or src in self._dead:
            return  # parked channels and dead senders arm nothing
        now = self.engine.now
        for seq in sorted(s for s, f in ch.unacked.items()
                          if f.deadline_ns <= now):
            frame = ch.unacked.get(seq)
            if frame is None or not self._retransmit_due(ch, frame):
                return  # the channel gave up and parked mid-scan
        if (self.heartbeats_enabled and not self.monitor_suspended
                and ch.hb_deadline is not None and ch.hb_deadline <= now):
            if ch.unacked:
                # Traffic already in flight probes liveness for free.
                ch.hb_deadline = now + self.heartbeat_interval_ns
            else:
                self._send_probe(src, dst, ch)
        self._arm_timer(src, dst, ch)

    def _retransmit_due(self, ch: _Channel, frame: _Frame) -> bool:
        """Retransmit one due frame with exponential backoff; after
        ``max_retries`` the channel gives up and parks (never raises).
        Returns False when the channel parked."""
        fc = self.faults
        if self._partitions and self._cut_now(frame.src, frame.dst):
            # The link is actively cut by a partition scenario: a
            # retransmit storm cannot succeed, so park immediately instead
            # of burning the retry budget.  Giving up *inside* the window
            # also guarantees the heal is scheduled before the scenario
            # ends — a budget that straddles the heal would otherwise give
            # up on a clean wire with no scenario left to blame.
            self._give_up(ch, frame)
            return False
        if frame.retries >= fc.max_retries:
            self._give_up(ch, frame)
            return False
        spurious = frame.pending_acks > 0
        if spurious:
            # A surviving copy (or its ack) is still on the wire: the timer
            # fired early.  Ground truth, courtesy of the simulator.
            self.network.stats[frame.src].net_spurious_retransmits += 1
        frame.retries += 1
        self.network.stats[frame.src].net_retransmits += 1
        next_timeout = min(frame.timeout_ns * 2, fc.max_backoff_ns)
        backoff = next_timeout > frame.timeout_ns
        if backoff:
            self.network.stats[frame.src].net_backoffs += 1
        frame.timeout_ns = next_timeout
        if self.obs is not None:
            self.obs.emit(
                "frame.retransmit", self.engine.now, node=frame.src,
                parent=frame.first_send_seq,
                dst=frame.dst, seq=frame.seq, retries=frame.retries,
                spurious=spurious, backoff=backoff, timeout_ns=next_timeout,
            )
        self._transmit(frame)
        return True

    # ------------------------------------------------------------------ #
    # give-up and recovery
    # ------------------------------------------------------------------ #
    def _give_up(self, ch: _Channel, frame: _Frame) -> None:
        """Channel recovery instead of the historic ``TransportError``:
        park every unacked frame, record the event, schedule a heal when a
        healing partition scenario explains the loss."""
        now = self.engine.now
        src, dst = frame.src, frame.dst
        ch.state = PARTITIONED
        ch.timer_deadline = None
        ch.timer_seq += 1  # invalidate any armed channel timer
        ch.hb_deadline = None  # no keepalives on a given-up channel
        moved = [ch.unacked.pop(seq) for seq in sorted(ch.unacked)]
        for f in moved:
            # Forget wire copies: the heal re-transmits from a clean slate.
            f.pending_acks = 0
        # Keepalive probes are transport-internal: they are dropped, not
        # parked — a healed channel must not replay stale probes, and the
        # parked counts below stay protocol-frames-only.
        moved = [f for f in moved if f.seq >= 0]
        ch.parked.extend(moved)
        scens = self._active_cut_scenarios(src, dst)
        stats = self.network.stats
        stats[src].net_gave_up += 1
        event = {
            "t_ns": now,
            "src": src,
            "dst": dst,
            "parked": len(moved),
            "scenario": scens[0].name if scens else None,
            "healed": False,
        }
        ch.give_up_event = event
        stats.partition_events.append(event)
        if self.obs is not None:
            ev = self.obs.emit(
                "channel.giveup", now, node=src,
                parent=frame.first_send_seq,
                dst=dst, parked=len(moved), scenario=event["scenario"],
            )
            ch.give_up_seq = ev.seq
        if scens and all(s.heals for s in scens):
            heal_at = max(s.heal_ns for s in scens)
            self.engine.call_after(heal_at - now, self._heal, src, dst)
        # No active healing scenario: nothing is scheduled, the parked
        # frames arm no timers, and the run finishes degraded.
        if self.on_give_up is not None:
            # Recovery layer's detection point: a give-up whose dst is a
            # fail-stopped node is the liveness verdict ``channel.dead``.
            self.on_give_up(src, dst)

    def _heal(self, src: int, dst: int) -> None:
        """A partition window closed: reopen the channel and drain the
        parked frames in sequence order (receiver dedup absorbs any frame
        that was actually delivered before the give-up)."""
        ch = self._channels.get((src, dst))
        if ch is None or ch.state is not PARTITIONED:
            return
        now = self.engine.now
        scens = self._active_cut_scenarios(src, dst)
        if scens:
            # Still cut — an overlapping scenario took over; chase its
            # window if it heals, otherwise stay parked for good.
            if all(s.heals for s in scens):
                heal_at = max(s.heal_ns for s in scens)
                self.engine.call_after(heal_at - now, self._heal, src, dst)
            return
        ch.state = OPEN
        if ch.give_up_event is not None:
            ch.give_up_event["healed"] = True
            ch.give_up_event = None
        parked, ch.parked = ch.parked, []
        if self.obs is not None:
            self.obs.emit(
                "channel.heal", now, node=src, parent=ch.give_up_seq,
                dst=dst, drained=len(parked),
            )
            ch.give_up_seq = None
        for f in parked:
            f.retries = 0
            f.sent_at_ns = now
            timeout = ch.rto_ns
            if self.adaptive:
                timeout += self._deterministic_path_ns(f.size)
            f.timeout_ns = timeout
            ch.unacked[f.seq] = f
            self._transmit(f)
        if self.heartbeats_enabled and not self.monitor_suspended:
            # Restart the keepalive clock: the pre-give-up deadline is
            # stale (possibly in the past) and the reopened channel should
            # get a full quiet interval before its next probe.
            ch.hb_deadline = now + self.heartbeat_interval_ns
        self._arm_timer(src, dst, ch)

    # ------------------------------------------------------------------ #
    # receiver side
    # ------------------------------------------------------------------ #
    def _on_arrival(self, frame: _Frame) -> None:
        """One wire copy reached the destination's network interface."""
        if self._dead and (frame.dst in self._dead or frame.src in self._dead):
            # A fail-stopped endpoint: the copy vanishes *without an ack*.
            # That silence is what the sender's retransmit budget detects.
            return
        if frame.seq < 0:
            # Transport keepalive probe: prove liveness by acking, then
            # discard — probes are never delivered, never deduped, never
            # counted as protocol messages (same layer as transport acks).
            self._send_ack(frame)
            return
        # Ack every copy, including duplicates: a lost ack means the sender
        # retransmits, and only a fresh ack can stop it.
        self._send_ack(frame)
        ch = self._channel(frame.src, frame.dst)
        if frame.seq < ch.next_deliver_seq or frame.seq in ch.reorder:
            self.network.stats[frame.dst].net_dups += 1
            if self.obs is not None:
                self.obs.emit(
                    "frame.dup", self.engine.now, node=frame.dst,
                    parent=frame.first_send_seq,
                    src=frame.src, seq=frame.seq,
                )
            return
        if self.obs is not None:
            self.obs.emit(
                "frame.accept", self.engine.now, node=frame.dst,
                parent=frame.first_send_seq,
                src=frame.src, seq=frame.seq,
            )
        ch.reorder[frame.seq] = frame
        # Deliver the contiguous run starting at the cursor; later frames
        # wait buffered so handlers execute in send order.
        while ch.next_deliver_seq in ch.reorder:
            ready = ch.reorder.pop(ch.next_deliver_seq)
            ch.next_deliver_seq += 1
            self._deliver(ready)

    def _deliver(self, frame: _Frame) -> None:
        if self.obs is not None:
            self.obs.emit(
                "frame.deliver", self.engine.now, node=frame.dst,
                parent=frame.first_send_seq,
                src=frame.src, seq=frame.seq, msg=frame.kind,
            )
        prof = self._profile(frame.src, frame.dst)
        cost = frame.handler_cost_ns
        if prof.stall_prob > 0 and prof.rng.random() < prof.stall_prob:
            # A protocol-CPU stall window: the handler's dispatch occupies
            # the protocol processor for an extra stretch first.
            cost += prof.stall_ns
        self.network.dispatch(
            frame.dst, self.config.dispatch_overhead_ns, cost, frame.handler
        )

    # ------------------------------------------------------------------ #
    # transport acks (with optional combining)
    # ------------------------------------------------------------------ #
    def _send_ack(self, frame: _Frame) -> None:
        """Header-only transport ack, dst -> src; unreliable by design.

        With combining enabled, an ack finding its sender's link busy parks
        in a per-peer buffer and rides a combined ack frame when the link
        frees (see :meth:`flush_acks`).
        """
        net = self.network
        acker = frame.dst
        if net.combining and net._link_jobs[acker] > 0:
            peers = self._ack_buffers.setdefault(acker, {})
            buf = peers.setdefault(frame.src, [])
            buf.append(frame)
            if len(buf) >= self.config.combine.max_msgs:
                del peers[frame.src]
                self._transmit_acks(acker, frame.src, buf)
            return
        self._transmit_acks(acker, frame.src, [frame])

    def flush_acks(self, acker: int) -> None:
        """Link idle: put parked (combined) acks on the wire."""
        if self._dead and acker in self._dead:
            self._ack_buffers.pop(acker, None)  # a dead node acks nothing
            return
        peers = self._ack_buffers.get(acker)
        if not peers:
            return
        flushing = list(peers.items())
        peers.clear()
        for peer, frames in flushing:
            self._transmit_acks(acker, peer, frames)

    def _transmit_acks(self, acker: int, peer: int, frames: list[_Frame]) -> None:
        """One wire ack frame acknowledging ``frames`` (peer's channel)."""
        k = len(frames)
        size = self.ACK_BYTES
        if k > 1:
            size += k * self.config.combine.slot_bytes
            st = self.network.stats[acker]
            st.combine_flushes += 1
            st.msgs_combined[MsgKind.ACK] += k
            if self.obs is not None:
                self.obs.emit(
                    "combine.flush", self.engine.now, node=acker,
                    dst=peer, n=k, kinds=[MsgKind.ACK] * k, size=size,
                )
        seqs = [f.seq for f in frames]

        def on_wire_done(_v: object) -> None:
            # Acks crossing an active partition boundary are cut exactly
            # like data frames — deterministically, no draw consumed.
            if self._partitions and self._cut_now(acker, peer):
                self.network.stats[acker].net_drops += 1
                for f in frames:
                    f.pending_acks -= 1
                if self.obs is not None:
                    self.obs.emit(
                        "frame.drop", self.engine.now, node=acker,
                        dst=peer, seqs=seqs, ack=True, cause="partition",
                    )
                return
            prof = self._profile(acker, peer)
            if prof.drop_prob > 0 and prof.rng.random() < prof.drop_prob:
                self.network.stats[acker].net_drops += 1
                for f in frames:
                    f.pending_acks -= 1
                if self.obs is not None:
                    self.obs.emit(
                        "frame.drop", self.engine.now, node=acker,
                        dst=peer, seqs=seqs, ack=True, cause="loss",
                    )
                return  # the retransmit path recovers
            delay = self.network.residual_latency_ns + prof.jitter()
            self.engine.call_after(delay, self._on_acks, peer, acker, seqs)

        self.network.traverse(acker, peer, size, on_wire_done)

    def _on_acks(self, src: int, dst: int, seqs: list[int]) -> None:
        if self._dead and (src in self._dead or dst in self._dead):
            return  # acks touching a fail-stopped endpoint vanish
        ch = self._channel(src, dst)
        now = self.engine.now
        if self.heartbeats_enabled:
            # Proof of life from dst: push the next keepalive out.  The
            # deadline only moves later, so the armed timer needs no
            # re-arm — it fires, sees nothing due, and re-arms itself.
            ch.hb_deadline = now + self.heartbeat_interval_ns
        for seq in seqs:
            frame = ch.unacked.pop(seq, None)
            if frame is None:
                continue  # duplicate/stale ack
            if self.obs is not None:
                self.obs.emit(
                    "frame.ack", now, node=src,
                    parent=frame.first_send_seq,
                    dst=dst, seq=seq, rtt_ns=now - frame.sent_at_ns,
                )
            if self.adaptive and frame.retries == 0:
                # Karn's rule: only never-retransmitted frames sample RTT
                # (a retransmitted frame's ack is ambiguous).  The frame's
                # own deterministic bandwidth cost (serialization, and the
                # switch forwarding hop when enabled) already rides on the
                # timer, so it is excluded from the sample.
                rtt = now - frame.sent_at_ns - self._deterministic_path_ns(frame.size)
                self._sample_rtt(ch, max(rtt, 0))

    def _sample_rtt(self, ch: _Channel, rtt_ns: int) -> None:
        """Jacobson/Karels update, integer arithmetic for determinism."""
        if ch.srtt_ns < 0:
            ch.srtt_ns = rtt_ns
            ch.rttvar_ns = rtt_ns // 2
        else:
            err = rtt_ns - ch.srtt_ns
            ch.rttvar_ns += (abs(err) - ch.rttvar_ns) // 4
            ch.srtt_ns += err // 8
        fc = self.faults
        ch.rto_ns = min(
            max(ch.srtt_ns + 4 * ch.rttvar_ns, fc.rto_min_ns), fc.rto_max_ns
        )

    # ------------------------------------------------------------------ #
    # fail-stop liveness layer (crash configs only)
    # ------------------------------------------------------------------ #
    def start_monitoring(self) -> None:
        """Pre-create every directed channel and schedule its first
        keepalive: full-mesh coverage means a fail-stopped node is detected
        even on channels that never carried traffic (e.g. a node that died
        before its first barrier arrival)."""
        if not self.heartbeats_enabled:
            return
        n = self.config.n_nodes
        first = self.engine.now + self.heartbeat_interval_ns
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                ch = self._channel(src, dst)
                ch.hb_deadline = first
                self._arm_timer(src, dst, ch)

    def suspend_monitoring(self) -> None:
        """Stop keepalives (first detection made, or all programs done) so
        outstanding probe timers expire as no-ops and the heap can drain."""
        self.monitor_suspended = True

    def _send_probe(self, src: int, dst: int, ch: _Channel) -> None:
        """One header-only keepalive on an idle channel.  The probe sits in
        ``unacked`` like any frame, so the ordinary retransmit/give-up
        machinery is the failure detector — no oracle anywhere."""
        timeout = ch.rto_ns
        if self.adaptive:
            timeout += self._deterministic_path_ns(self.ACK_BYTES)
        frame = _Frame(
            ch.next_probe_seq, src, dst, HEARTBEAT, self.ACK_BYTES,
            _noop, 0, timeout, self.engine.now,
        )
        ch.next_probe_seq -= 1
        ch.hb_deadline = self.engine.now + self.heartbeat_interval_ns
        ch.unacked[frame.seq] = frame
        self._transmit(frame)

    def mark_dead(self, node: int) -> None:
        """Fail-stop ``node``: from now on every frame or ack arriving at
        (or sent to confirm) this endpoint vanishes silently."""
        self._dead.add(node)

    def mark_alive(self, node: int) -> None:
        self._dead.discard(node)

    def reset(self) -> None:
        """Rollback-recovery epoch reset: drop every channel (sequence
        spaces, RTT estimators, reorder buffers, parked frames) and every
        buffered ack, then resume liveness monitoring from scratch.  The
        fault RNG streams deliberately continue — determinism comes from
        the replayed schedule, not from rewinding entropy."""
        self._channels.clear()
        self._ack_buffers.clear()
        self.monitor_suspended = False
        self.start_monitoring()

    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Unacked frames across all channels (for tests/diagnostics)."""
        return sum(len(ch.unacked) for ch in self._channels.values())

    @property
    def armed_timers(self) -> int:
        """Channels with a live coalesced timer — O(channels) by design,
        however many frames are simultaneously unacked (regression-tested
        against the historic one-timer-per-frame behavior)."""
        return sum(
            1 for ch in self._channels.values()
            if ch.timer_deadline is not None
        )

    @property
    def parked_frames(self) -> int:
        """Frames parked on partitioned channels (awaiting heal or report)."""
        return sum(len(ch.parked) for ch in self._channels.values())

    def partitioned_channels(self) -> list[dict]:
        """One record per channel still in the PARTITIONED state, sorted by
        (src, dst) — the raw material for a degraded run's failure report."""
        return [
            {"src": src, "dst": dst, "parked": len(ch.parked)}
            for (src, dst), ch in sorted(self._channels.items())
            if ch.state is PARTITIONED
        ]
