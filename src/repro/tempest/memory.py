"""The global shared address space: arrays, pages, blocks, homes, owners.

Layout model
------------
The cluster exports one shared segment.  Each global (HPF-distributed) array
is allocated at a page-aligned base address; addresses are byte offsets into
the segment.  Coherence operates on fixed-size *blocks* (default 128 bytes);
pages are the unit of home assignment (the *home* node holds the directory
entry for every block in the page).

Arrays use Fortran (column-major) element order, matching HPF: for a 2-D
array ``a(n0, n1)``, element ``a(i, j)`` lives at byte
``base + (i + j * n0) * itemsize``.  Distributing the **last** dimension
(the paper's simplifying assumption) therefore distributes whole columns,
which are contiguous — the property the compiler's contiguity analysis
relies on.

Owner vs. home
--------------
The *owner* of an element is the processor it logically resides on per the
HPF distribution.  The *home* of a block is where its directory lives.  The
two coincide under the default ``HomePolicy.ALIGNED`` but the paper is
explicit that they need not (Section 4.2 step 1 exists exactly because of
this), so ``HomePolicy.ROUND_ROBIN`` and ``HomePolicy.NODE0`` are provided
to exercise the three-hop protocol paths.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.tempest.config import ClusterConfig

__all__ = [
    "Distribution",
    "DistKind",
    "GlobalArray",
    "HomePolicy",
    "SharedMemory",
]


class DistKind(enum.Enum):
    """How the last dimension is spread over the processor line."""

    BLOCK = "block"
    CYCLIC = "cyclic"
    REPLICATED = "replicated"  # every processor owns the whole array


@dataclass(frozen=True)
class Distribution:
    """HPF distribution of an array's last dimension over ``n_procs``.

    ``BLOCK``  : processor ``p`` owns the contiguous chunk
                 ``[p*ceil(E/P), min((p+1)*ceil(E/P), E))``.
    ``CYCLIC`` : processor ``p`` owns indices ``p, p+P, p+2P, ...``.
    ``REPLICATED`` : no distribution; every node owns a private full copy
                 (used for small coefficient arrays and reduction scratch).
    """

    kind: DistKind
    n_procs: int

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("distribution needs at least one processor")

    @staticmethod
    def block(n_procs: int) -> "Distribution":
        return Distribution(DistKind.BLOCK, n_procs)

    @staticmethod
    def cyclic(n_procs: int) -> "Distribution":
        return Distribution(DistKind.CYCLIC, n_procs)

    @staticmethod
    def replicated(n_procs: int) -> "Distribution":
        return Distribution(DistKind.REPLICATED, n_procs)

    def chunk(self, extent: int) -> int:
        """BLOCK distribution chunk size for a dimension of ``extent``."""
        return math.ceil(extent / self.n_procs)

    def owner(self, index: int, extent: int) -> int:
        """Owning processor of last-dimension ``index`` (0-based)."""
        if not 0 <= index < extent:
            raise IndexError(f"index {index} outside [0, {extent})")
        if self.kind is DistKind.BLOCK:
            return min(index // self.chunk(extent), self.n_procs - 1)
        if self.kind is DistKind.CYCLIC:
            return index % self.n_procs
        raise ValueError("replicated arrays have no single owner")

    def owned_indices(self, proc: int, extent: int) -> range:
        """Last-dimension indices owned by ``proc`` as a range object."""
        if not 0 <= proc < self.n_procs:
            raise IndexError(f"processor {proc} outside [0, {self.n_procs})")
        if self.kind is DistKind.BLOCK:
            c = self.chunk(extent)
            lo = min(proc * c, extent)
            hi = min(lo + c, extent)
            return range(lo, hi)
        if self.kind is DistKind.CYCLIC:
            return range(proc, extent, self.n_procs)
        return range(0, extent)


class HomePolicy(enum.Enum):
    ALIGNED = "aligned"          # home = owner of the page's first element
    ROUND_ROBIN = "round_robin"  # home = page_index % n_nodes
    NODE0 = "node0"              # everything homed at node 0 (stress test)


class GlobalArray:
    """A distributed array living in the shared segment.

    Holds the single NumPy backing store (real numerics run against it) plus
    the address geometry used by the coherence model.
    """

    __slots__ = (
        "name",
        "shape",
        "dtype",
        "dist",
        "base",
        "nbytes",
        "data",
        "itemsize",
        "_col_elems",
        "config",
        "base_block",
        "n_blocks",
    )

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype: np.dtype,
        dist: Distribution,
        base: int,
        config: ClusterConfig,
    ) -> None:
        if not shape or any(s <= 0 for s in shape):
            raise ValueError(f"bad shape {shape!r} for array {name!r}")
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.dist = dist
        self.base = base
        self.itemsize = self.dtype.itemsize
        self.data = np.zeros(self.shape, dtype=self.dtype, order="F")
        self.nbytes = self.data.nbytes
        # Number of elements in one "column" (all dims but the last).
        self._col_elems = 1
        for s in self.shape[:-1]:
            self._col_elems *= s
        self.config = config
        self.base_block = base // config.block_size
        self.n_blocks = math.ceil(self.nbytes / config.block_size)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def extent(self) -> int:
        """Extent of the distributed (last) dimension."""
        return self.shape[-1]

    def owner_of_column(self, j: int) -> int:
        return self.dist.owner(j, self.extent)

    def owned_columns(self, proc: int) -> range:
        return self.dist.owned_indices(proc, self.extent)

    def column_byte_range(self, j: int) -> tuple[int, int]:
        """Global byte range [lo, hi) of column ``j`` (contiguous)."""
        if not 0 <= j < self.extent:
            raise IndexError(f"column {j} outside [0, {self.extent})")
        lo = self.base + j * self._col_elems * self.itemsize
        return lo, lo + self._col_elems * self.itemsize

    def element_byte(self, index: Sequence[int]) -> int:
        """Global byte address of an element (Fortran order)."""
        if len(index) != len(self.shape):
            raise IndexError(f"rank mismatch: {index} vs shape {self.shape}")
        offset = 0
        stride = 1
        for i, n in zip(index, self.shape):
            if not 0 <= i < n:
                raise IndexError(f"index {index} outside shape {self.shape}")
            offset += i * stride
            stride *= n
        return self.base + offset * self.itemsize

    def block_of_element(self, index: Sequence[int]) -> int:
        return self.element_byte(index) // self.config.block_size

    def blocks_covering(self, lo_byte: int, hi_byte: int) -> range:
        """Block ids overlapping global byte range [lo, hi)."""
        if hi_byte <= lo_byte:
            return range(0, 0)
        bs = self.config.block_size
        return range(lo_byte // bs, (hi_byte - 1) // bs + 1)

    def blocks_within(self, lo_byte: int, hi_byte: int) -> range:
        """Block ids *fully contained* in [lo, hi) — the runtime-side
        analogue of the paper's ``shmem_limits`` subsetting."""
        bs = self.config.block_size
        first = math.ceil(lo_byte / bs)
        last = hi_byte // bs  # exclusive
        if last <= first:
            return range(0, 0)
        return range(first, last)

    def block_range(self) -> range:
        return range(self.base_block, self.base_block + self.n_blocks)

    def owners_of_blocks(self, blocks) -> "np.ndarray":
        """Vectorized designated owner per block: the owner of the block's
        first element (clamped into the array).  Used by the planner to
        assign a single sender to blocks that straddle ownership
        boundaries — after ``mk_writable`` that sender holds the merged
        current copy (paper Section 4.2 step 1)."""
        import numpy as np

        blocks = np.asarray(blocks, dtype=np.int64)
        byte = blocks * self.config.block_size - self.base
        byte = np.clip(byte, 0, self.nbytes - 1)
        col = byte // (self._col_elems * self.itemsize)
        col = np.clip(col, 0, self.extent - 1)
        if self.dist.kind is DistKind.BLOCK:
            chunk = self.dist.chunk(self.extent)
            return np.minimum(col // chunk, self.dist.n_procs - 1)
        if self.dist.kind is DistKind.CYCLIC:
            return col % self.dist.n_procs
        raise ValueError("replicated arrays have no owners")

    def single_owner_blocks(self, blocks) -> "np.ndarray":
        """Boolean mask: True where every element in the block has one
        owner.  Run-time overhead elimination is only legal for such
        blocks — a multi-owner block's designated sender cannot keep the
        exclusive ownership the rt-elim scheme assumes."""
        import numpy as np

        blocks = np.asarray(blocks, dtype=np.int64)
        bs = self.config.block_size
        first = np.clip(blocks * bs - self.base, 0, self.nbytes - 1)
        last = np.clip((blocks + 1) * bs - 1 - self.base, 0, self.nbytes - 1)
        colbytes = self._col_elems * self.itemsize
        col_first = np.clip(first // colbytes, 0, self.extent - 1)
        col_last = np.clip(last // colbytes, 0, self.extent - 1)
        if self.dist.kind is DistKind.BLOCK:
            # Ownership is monotone in the column index, so checking the
            # block's first and last columns suffices.
            chunk = self.dist.chunk(self.extent)
            return np.minimum(col_first // chunk, self.dist.n_procs - 1) == np.minimum(
                col_last // chunk, self.dist.n_procs - 1
            )
        if self.dist.kind is DistKind.CYCLIC:
            # Consecutive columns alternate owners, so a block is
            # single-owner only when it lies within one column (or there is
            # a single processor).
            if self.dist.n_procs == 1:
                return np.ones(len(blocks), dtype=bool)
            return col_first == col_last
        raise ValueError("replicated arrays have no owners")

    def owned_blocks(self, proc: int) -> list[int]:
        """All blocks whose *first element* is owned by ``proc``.

        Boundary blocks straddling an ownership boundary are attributed to
        the owner of their first byte; this matches how the default
        protocol's home alignment treats them.
        """
        out = []
        for b in self.block_range():
            byte = b * self.config.block_size
            if byte < self.base:
                byte = self.base
            col = (byte - self.base) // (self._col_elems * self.itemsize)
            col = min(col, self.extent - 1)
            if self.dist.kind is DistKind.REPLICATED:
                continue
            if self.owner_of_column(col) == proc:
                out.append(b)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalArray({self.name!r}, shape={self.shape}, "
            f"dist={self.dist.kind.value}, base={self.base:#x})"
        )


class SharedMemory:
    """Allocator and geometry oracle for the shared segment."""

    def __init__(
        self, config: ClusterConfig, home_policy: HomePolicy = HomePolicy.ALIGNED
    ) -> None:
        self.config = config
        self.home_policy = home_policy
        self.arrays: dict[str, GlobalArray] = {}
        self._next_base = 0
        self._page_homes: list[int] = []

    # ------------------------------------------------------------------ #
    def alloc(
        self,
        name: str,
        shape: Sequence[int],
        dist: Distribution,
        dtype: np.dtype | type = np.float64,
    ) -> GlobalArray:
        """Allocate a page-aligned distributed array."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already allocated")
        arr = GlobalArray(name, shape, np.dtype(dtype), dist, self._next_base, self.config)
        self.arrays[name] = arr
        pages = math.ceil(arr.nbytes / self.config.page_size)
        for p in range(pages):
            self._page_homes.append(self._home_for_page(arr, p))
        self._next_base += pages * self.config.page_size
        return arr

    def _home_for_page(self, arr: GlobalArray, page_in_array: int) -> int:
        page_index = len(self._page_homes)
        if self.home_policy is HomePolicy.ROUND_ROBIN:
            return page_index % self.config.n_nodes
        if self.home_policy is HomePolicy.NODE0:
            return 0
        # ALIGNED: home the page with the owner of its first element.
        if arr.dist.kind is DistKind.REPLICATED:
            return page_index % self.config.n_nodes
        byte = page_in_array * self.config.page_size
        col = byte // (arr._col_elems * arr.itemsize)
        col = min(col, arr.extent - 1)
        owner = arr.owner_of_column(col)
        return owner % self.config.n_nodes

    # ------------------------------------------------------------------ #
    @property
    def n_pages(self) -> int:
        return len(self._page_homes)

    @property
    def n_blocks(self) -> int:
        return self.n_pages * self.config.blocks_per_page

    def home_of_block(self, block: int) -> int:
        page = block // self.config.blocks_per_page
        if not 0 <= page < self.n_pages:
            raise IndexError(f"block {block} outside the allocated segment")
        return self._page_homes[page]

    def home_of_page(self, page: int) -> int:
        return self._page_homes[page]

    def array_of_block(self, block: int) -> GlobalArray | None:
        byte = block * self.config.block_size
        for arr in self.arrays.values():
            if arr.base <= byte < arr.base + arr.nbytes:
                return arr
        return None

    def iter_arrays(self) -> Iterator[GlobalArray]:
        return iter(self.arrays.values())

    def total_bytes(self) -> int:
        """Sum of array payloads (not counting page padding)."""
        return sum(a.nbytes for a in self.arrays.values())

    def checkpoint_bytes(self) -> int:
        """Modeled size of one barrier-consistent checkpoint.

        One current copy of every shared block (the segment payload), plus
        per-block recovery metadata: the directory entry (state, owner,
        sharer bitmask, versions — modeled at 32 bytes) and one access tag
        byte per node per block.  Page padding is not written.
        """
        data = self.total_bytes()
        directory_meta = self.n_blocks * 32
        tag_meta = self.n_blocks * self.config.n_nodes
        return data + directory_meta + tag_meta
