"""Collective operations: reductions and point-to-point message passing.

The applications use SUM reductions ("efficiently implemented using
low-level messages" — the paper on *grav*), and the message-passing
comparator backend needs matched send/receive over the same network.  Both
live here, outside the coherence protocol: they use raw Tempest messages.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim import CountingSemaphore, Engine, Future
from repro.tempest.config import ClusterConfig
from repro.tempest.network import Network
from repro.tempest.node import Node
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["Collectives"]


class Collectives:
    """Reduction + message-passing services over the cluster network."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        network: Network,
        nodes: list[Node],
        stats: ClusterStats,
    ) -> None:
        self.engine = engine
        self.config = config
        self.network = network
        self.nodes = nodes
        self.stats = stats
        self.root = config.barrier_manager
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        self._node_gen = [0] * config.n_nodes
        self._arrivals: dict[int, int] = {}
        self._result: dict[tuple[int, int], Future] = {}
        self._tree_semas: dict[tuple[int, int], CountingSemaphore] = {}
        # Message passing: per-receiver semaphore counting arrived messages.
        self._mp_sema = [
            CountingSemaphore(engine, f"mp.n{i}") for i in range(config.n_nodes)
        ]
        self.reductions_completed = 0

    # ------------------------------------------------------------------ #
    # global SUM-style reduction (combine at root, broadcast result)
    # ------------------------------------------------------------------ #
    def reduce(self, node_id: int, n_values: int = 1) -> Generator[Any, Any, None]:
        """All-reduce of ``n_values`` doubles; every node must call it.

        Algorithm per ``config.reduce_algorithm``: ``"central"`` (combine
        at the root, broadcast — 2 hops, root handler serializes N
        contributions) or ``"tree"`` (binomial combine + mirrored
        broadcast — 2·log2(N) hops, no serialization hot-spot).
        """
        cfg = self.config
        node = self.nodes[node_id]
        start = self.engine.now
        gen = self._node_gen[node_id]
        self._node_gen[node_id] += 1
        payload = 8 * n_values
        contrib = None

        if cfg.reduce_algorithm == "tree":
            yield from self._tree_reduce(node_id, gen, payload)
        else:
            result = self.engine.future(f"reduce{gen}.n{node_id}")
            self._result[(gen, node_id)] = result
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            # Ref cell: the contribution handler carries its own msg.send
            # seq so the root's result broadcast can chain to the last
            # contribution that completed the reduction.
            ref: list = [None]
            ref[0] = self.network.send(
                node_id,
                self.root,
                MsgKind.REDUCE,
                lambda g=gen, p=payload, r=ref: self._on_contribution(g, p, r[0]),
                cfg.handler_request_ns,
                payload_bytes=payload,
            )
            contrib = ref[0]
            yield result
            del self._result[(gen, node_id)]
        node.stats.reduce_ns += self.engine.now - start
        if self.obs is not None:
            self.obs.emit(
                "reduce", start, self.engine.now - start, node=node_id,
                parent=contrib, gen=gen, n_values=n_values,
            )

    # ------------------------------------------------------------------ #
    # binomial tree all-reduce
    # ------------------------------------------------------------------ #
    def _children(self, node_id: int) -> list[int]:
        """Binomial-tree children of ``node_id`` (rooted at 0)."""
        n = self.config.n_nodes
        low = node_id & -node_id if node_id else n  # lowest set bit (root: all)
        out = []
        span = 1
        while span < low and node_id + span < n:
            out.append(node_id + span)
            span <<= 1
        return out

    def _tree_sema(self, gen: int, node_id: int) -> CountingSemaphore:
        key = (gen, node_id)
        sema = self._tree_semas.get(key)
        if sema is None:
            sema = self._tree_semas[key] = CountingSemaphore(
                self.engine, f"tree{gen}.n{node_id}"
            )
        return sema

    def _tree_reduce(self, node_id: int, gen: int, payload: int):
        cfg = self.config
        node = self.nodes[node_id]
        children = self._children(node_id)
        # Combine: wait for every child's partial, then send up.
        if children:
            yield self._tree_sema(gen, node_id).wait_for(len(children))
        if node_id != 0:
            parent = node_id - (node_id & -node_id)
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            self.network.send(
                node_id,
                parent,
                MsgKind.REDUCE,
                lambda g=gen, p=parent: self._tree_sema(g, p).post(),
                cfg.handler_ack_ns,
                payload_bytes=payload,
            )
            # Await the result coming back down.
            down = self.engine.future(f"tree{gen}.down.n{node_id}")
            self._result[(gen, node_id)] = down
            yield down
            del self._result[(gen, node_id)]
        else:
            self.reductions_completed += 1
        # Broadcast: forward the result to every child.
        for child in children:
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            self.network.send(
                node_id,
                child,
                MsgKind.REDUCE_RESULT,
                lambda g=gen, c=child: self._result[(g, c)].resolve(None),
                cfg.handler_ack_ns,
                payload_bytes=payload,
            )
        self._tree_semas.pop((gen, node_id), None)

    def _on_contribution(self, gen: int, payload: int, cause=None) -> None:
        count = self._arrivals.get(gen, 0) + 1
        if count < self.config.n_nodes:
            self._arrivals[gen] = count
            return
        self._arrivals.pop(gen, None)
        self.reductions_completed += 1
        for dst in range(self.config.n_nodes):
            self.network.send(
                self.root,
                dst,
                MsgKind.REDUCE_RESULT,
                lambda g=gen, d=dst: self._on_result(g, d),
                self.config.handler_response_ns,
                payload_bytes=payload,
                parent=cause,
            )

    def _on_result(self, gen: int, node_id: int) -> None:
        self._result[(gen, node_id)].resolve(None)

    # ------------------------------------------------------------------ #
    # message passing (for the pghpf-MP comparator backend)
    # ------------------------------------------------------------------ #
    def mp_send(self, src: int, dst: int, nbytes: int) -> Generator[Any, Any, None]:
        """Asynchronous send of ``nbytes`` of section data to ``dst``.

        Only the sender-side per-message overhead lands on the compute CPU;
        transport runs in the background and the waiting cost shows up at
        the matching :meth:`mp_recv`.
        """
        cfg = self.config
        node = self.nodes[src]
        yield node.compute_cpu.use(cfg.send_overhead_ns)
        self.network.send(
            src,
            dst,
            MsgKind.MP_DATA,
            lambda d=dst: self._mp_sema[d].post(1),
            cfg.handler_data_recv_ns,
            payload_bytes=nbytes,
        )

    def mp_recv(self, node_id: int, n_messages: int) -> Generator[Any, Any, None]:
        """Block until ``n_messages`` sends addressed here have arrived."""
        node = self.nodes[node_id]
        start = self.engine.now
        yield self._mp_sema[node_id].wait_for(n_messages)
        node.stats.stall_ns += self.engine.now - start
