"""Tempest-style fine-grain distributed shared memory, simulated.

This subpackage models the substrate of the paper: an 8-node cluster of
workstations running user-level software DSM with *fine-grain access
control* — per-cache-block (default 128 byte) access tags consulted on every
shared-memory access, user-level protocol handlers, and active messages over
a Myrinet-class network.

The pieces:

``config``      cluster parameters, calibrated to the paper's Table 1
``memory``      the global shared segment: arrays, pages, blocks, homes
``access``      per-node per-block access tags (Invalid/ReadOnly/ReadWrite)
``directory``   home-node directory state (Idle/Shared/Exclusive)
``protocol``    the default eager-invalidate release-consistent protocol
``network``     message transport with latency + bandwidth + link occupancy
``node``        a cluster node: compute CPU, protocol CPU, pending set
``barrier``     message-based centralized barrier with release fences
``extensions``  the compiler-control primitives of the paper's Section 4.2
``stats``       miss/message/time accounting
``faults``      deterministic interconnect fault model (drop/dup/jitter)
``transport``   reliable delivery (acks, retransmit, dedup) over faulty wires
``audit``       end-of-run coherence auditor
``cluster``     glues everything together
"""

from repro.tempest.access import AccessTag
from repro.tempest.audit import CoherenceAuditError, audit_coherence, audit_violations
from repro.tempest.cluster import Cluster
from repro.tempest.config import ClusterConfig, CombineConfig, SwitchConfig
from repro.tempest.directory import DirState
from repro.tempest.faults import (
    FaultConfig,
    LinkFaultConfig,
    PartitionScenario,
    TransportError,
)
from repro.tempest.memory import (
    Distribution,
    GlobalArray,
    HomePolicy,
    SharedMemory,
)
from repro.tempest.stats import ClusterStats, MsgKind, NodeStats
from repro.tempest.tracing import MessageTracer

__all__ = [
    "AccessTag",
    "Cluster",
    "ClusterConfig",
    "ClusterStats",
    "CoherenceAuditError",
    "CombineConfig",
    "DirState",
    "Distribution",
    "FaultConfig",
    "GlobalArray",
    "HomePolicy",
    "LinkFaultConfig",
    "MessageTracer",
    "MsgKind",
    "NodeStats",
    "PartitionScenario",
    "SharedMemory",
    "SwitchConfig",
    "TransportError",
    "audit_coherence",
    "audit_violations",
]
