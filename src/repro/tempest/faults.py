"""Deterministic fault injection for the simulated interconnect.

The paper's Tempest substrate assumes a reliable Myrinet: every message
arrives exactly once, in order, after a fixed latency.  Production DSM
transports cannot assume this, so :class:`FaultConfig` describes an
*imperfect* wire — per-message drop and duplication probabilities, bounded
latency jitter, and occasional protocol-CPU stall windows — and
:mod:`repro.tempest.transport` layers a reliable, exactly-once, in-order
delivery discipline on top of it.

Determinism contract
--------------------
The simulation engine forbids wall-clock entropy (every run must be
bit-for-bit replayable), so all fault decisions are drawn from one seeded
``random.Random`` owned by the transport.  Draws happen inside engine event
callbacks, whose order is fully determined by the event heap; therefore the
tuple ``(program, config, seed)`` pins every drop, duplicate, jitter value
and stall — two runs with the same seed produce identical statistics and
identical timing.  Changing only the seed yields an independent fault
pattern over the same workload.

With the default (all-zero) configuration the transport layer is bypassed
entirely: no sequence numbers, no acks, no RNG draws — message counts and
completion times are byte-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimulationError

__all__ = ["FaultConfig", "TransportError"]

_US = 1_000  # nanoseconds per microsecond (kept local to avoid a cycle)


class TransportError(SimulationError):
    """Reliable delivery gave up: a frame exhausted its retransmit budget."""


@dataclass(frozen=True)
class FaultConfig:
    """Fault model plus reliable-transport tuning for one cluster.

    All-zero fault rates (the default) mean a perfect wire; the reliable
    transport is then bypassed completely so fault-free runs cost nothing.
    """

    # --- the imperfect wire ------------------------------------------- #
    drop_prob: float = 0.0       # P(frame lost in transit), per wire copy
    dup_prob: float = 0.0        # P(frame duplicated in transit)
    jitter_ns: int = 0           # extra latency, uniform in [0, jitter_ns]
    stall_prob: float = 0.0      # P(protocol CPU stalls before a handler)
    stall_ns: int = 0            # length of one stall window

    # --- determinism -------------------------------------------------- #
    seed: int = 0                # seeds the transport's random.Random

    # --- reliable-delivery tuning ------------------------------------- #
    retransmit_timeout_ns: int = 120 * _US   # initial ack timeout (~3 RTT)
    max_backoff_ns: int = 2_000 * _US        # cap for exponential backoff
    max_retries: int = 32                    # per frame, then TransportError

    # --- adaptive retransmission (congestion-aware RTO) ---------------- #
    # With ``adaptive_rto`` the fixed timer above only seeds the estimate:
    # each (src, dst) channel keeps a Jacobson-style smoothed RTT
    # (SRTT/RTTVAR, RTO = SRTT + 4·RTTVAR) measured ack-to-send on
    # non-retransmitted frames (Karn's rule), clamped to the floor and
    # ceiling below.  Bulk payload serialization and congestion then
    # inflate the RTO instead of firing spurious retransmits.
    #
    # The floor defaults to the fixed timeout itself (``rto_min_ns=None``):
    # the adaptive timer never fires *earlier* than the timer it replaces,
    # it only waits longer when the measured path — or the frame's own
    # serialization time — justifies it.  Ack round trips on a congested
    # link routinely spike past any tight floor learned from quiet-period
    # samples, so an aggressive floor trades real retransmit storms for a
    # latency win that a correctly-sized fixed timer already banked.
    adaptive_rto: bool = False
    rto_min_ns: int | None = None            # floor; None = the fixed timeout
    rto_max_ns: int = 2_000 * _US            # ceiling: matches backoff cap

    def __post_init__(self) -> None:
        if self.rto_min_ns is None:
            object.__setattr__(self, "rto_min_ns", self.retransmit_timeout_ns)
        for name in ("drop_prob", "dup_prob", "stall_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1); got {p}")
        if self.jitter_ns < 0:
            raise ValueError(f"jitter_ns must be >= 0; got {self.jitter_ns}")
        if self.stall_ns < 0:
            raise ValueError(f"stall_ns must be >= 0; got {self.stall_ns}")
        if self.stall_prob and not self.stall_ns:
            raise ValueError("stall_prob set but stall_ns is zero")
        if self.retransmit_timeout_ns <= 0:
            raise ValueError("retransmit_timeout_ns must be positive")
        if self.max_backoff_ns < self.retransmit_timeout_ns:
            raise ValueError("max_backoff_ns must be >= retransmit_timeout_ns")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.rto_min_ns <= 0:
            raise ValueError("rto_min_ns must be positive")
        if self.rto_max_ns < self.rto_min_ns:
            raise ValueError("rto_max_ns must be >= rto_min_ns")

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism is active (transport engaged)."""
        return bool(
            self.drop_prob or self.dup_prob or self.jitter_ns or self.stall_prob
        )
