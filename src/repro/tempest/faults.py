"""Deterministic fault injection for the simulated interconnect.

The paper's Tempest substrate assumes a reliable Myrinet: every message
arrives exactly once, in order, after a fixed latency.  Production DSM
transports cannot assume this, so :class:`FaultConfig` describes an
*imperfect* wire — per-message drop and duplication probabilities, bounded
latency jitter, and occasional protocol-CPU stall windows — and
:mod:`repro.tempest.transport` layers a reliable, exactly-once, in-order
delivery discipline on top of it.

Real clusters additionally fail *asymmetrically*: one flaky NIC drops a
third of its frames while every other link is clean, one congested uplink
jitters, one rack loses its switch entirely.  Two overlays describe that:

* :class:`LinkFaultConfig` overrides any uniform fault axis for one
  directed ``(src, dst)`` link — the rest of the cluster keeps the
  uniform (possibly all-zero) rates;
* :class:`PartitionScenario` makes a named node set unreachable from
  ``t_start_ns`` for ``duration_ns`` (``None`` = the partition never
  heals).  While a scenario is active, every frame crossing the partition
  boundary is cut the moment it leaves its sender's link.

Determinism contract
--------------------
The simulation engine forbids wall-clock entropy (every run must be
bit-for-bit replayable), so all fault decisions are drawn from seeded
``random.Random`` streams owned by the transport: one shared stream for
links running on the uniform config, plus one *private* stream per link
carrying a :class:`LinkFaultConfig` overlay (seeded from ``(seed, src,
dst)``), so adding a profile to one link never perturbs the draw sequence
of any other.  Draws happen inside engine event callbacks, whose order is
fully determined by the event heap; therefore the tuple ``(program,
config, seed)`` pins every drop, duplicate, jitter value and stall — two
runs with the same seed produce identical statistics and identical
timing.  Partition windows consume no randomness at all: they are pure
functions of simulated time.

With the default (all-zero) configuration the transport layer is bypassed
entirely: no sequence numbers, no acks, no RNG draws — message counts and
completion times are byte-identical to a build without this module.
A config with only uniform rates (no overlays, no partitions) draws from
the shared stream exactly as it always has, so uniform-fault runs are
byte-identical to builds without the overlay machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimulationError

__all__ = [
    "CrashScenario",
    "FaultConfig",
    "LinkFaultConfig",
    "PartitionScenario",
    "TransportError",
]

_US = 1_000  # nanoseconds per microsecond (kept local to avoid a cycle)


class TransportError(SimulationError):
    """Historic abort: a frame exhausted its retransmit budget.

    Since the partition-survival work the transport no longer raises this
    — a give-up marks the channel ``PARTITIONED``, parks the unacked
    frames and lets the run finish degraded (``RunResult.completed``
    False) or heal (see :class:`PartitionScenario`).  The class is kept
    for API compatibility with callers that still catch it.
    """


@dataclass(frozen=True)
class LinkFaultConfig:
    """Fault overrides for one directed ``(src, dst)`` link.

    Every axis defaults to ``None`` — *inherit the uniform value* — so a
    profile states only what makes this link special: a flaky NIC is
    ``LinkFaultConfig(3, 0, drop_prob=0.3)`` on an otherwise clean
    cluster.  Links with a profile draw from their own seeded RNG stream;
    all other links share the uniform stream, untouched.
    """

    src: int
    dst: int
    drop_prob: float | None = None
    dup_prob: float | None = None
    jitter_ns: int | None = None
    stall_prob: float | None = None
    stall_ns: int | None = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(
                f"link endpoints must be >= 0; got ({self.src}, {self.dst})"
            )
        if self.src == self.dst:
            raise ValueError(
                f"loopback sends never cross the wire; a fault profile for "
                f"({self.src}, {self.dst}) would be dead config"
            )
        for name in ("drop_prob", "dup_prob", "stall_prob"):
            p = getattr(self, name)
            if p is not None and not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1); got {p}")
        for name in ("jitter_ns", "stall_ns"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise ValueError(f"{name} must be >= 0; got {v}")

    @property
    def key(self) -> tuple[int, int]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class PartitionScenario:
    """A named node set unreachable for a window of simulated time.

    While active (``t_start_ns <= now < t_start_ns + duration_ns``) every
    frame whose endpoints straddle the partition boundary — exactly one of
    them in ``nodes`` — is cut at the moment it leaves its sender's link;
    transport acks crossing the boundary are cut the same way.  Traffic
    wholly inside either side is untouched.  ``duration_ns=None`` means
    the partition never heals: channels that give up stay parked and the
    run finishes *degraded* instead of aborting.
    """

    name: str
    nodes: frozenset[int]
    t_start_ns: int = 0
    duration_ns: int | None = None   # None: never heals

    def __post_init__(self) -> None:
        # Accept any iterable of node ids; freeze it for hashability.
        object.__setattr__(self, "nodes", frozenset(int(n) for n in self.nodes))
        if not self.nodes:
            raise ValueError(f"partition {self.name!r} has an empty node set")
        if any(n < 0 for n in self.nodes):
            raise ValueError(f"partition {self.name!r} names a negative node id")
        if self.t_start_ns < 0:
            raise ValueError(
                f"partition {self.name!r}: t_start_ns must be >= 0; "
                f"got {self.t_start_ns}"
            )
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError(
                f"partition {self.name!r}: duration_ns must be positive "
                f"(or None for never-healing); got {self.duration_ns}"
            )

    @property
    def heals(self) -> bool:
        return self.duration_ns is not None

    @property
    def heal_ns(self) -> int | None:
        """The instant the window closes; ``None`` when it never does."""
        if self.duration_ns is None:
            return None
        return self.t_start_ns + self.duration_ns

    def active_at(self, t_ns: int) -> bool:
        if t_ns < self.t_start_ns:
            return False
        return self.duration_ns is None or t_ns < self.t_start_ns + self.duration_ns

    def separates(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are on opposite sides of the cut."""
        return (a in self.nodes) != (b in self.nodes)


@dataclass(frozen=True)
class CrashScenario:
    """A node fail-stop at a fixed simulated instant.

    At ``t_ns`` the node stops executing: its replay program is cancelled,
    queued handlers never fire, and every in-flight frame to or from it
    vanishes at arrival time *without an ack* — peers learn of the failure
    only through the transport's liveness layer (unacked data frames and
    per-channel heartbeat probes exhausting their retransmit budget).

    ``restart_delay_ns=None`` means the node never comes back: the run
    finishes *degraded* under the existing contract.  With a delay, the
    node restarts ``restart_delay_ns`` after the crash and — provided a
    checkpoint exists (``--checkpoint-every``) — the whole cluster rolls
    back to the last barrier-consistent checkpoint and re-replays.
    """

    node: int
    t_ns: int
    restart_delay_ns: int | None = None   # None: fail-stop forever

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"crash node must be >= 0; got {self.node}")
        if self.t_ns < 0:
            raise ValueError(f"crash t_ns must be >= 0; got {self.t_ns}")
        if self.restart_delay_ns is not None and self.restart_delay_ns < 0:
            raise ValueError(
                f"restart_delay_ns must be >= 0 (or None for never); "
                f"got {self.restart_delay_ns}"
            )

    @property
    def restarts(self) -> bool:
        return self.restart_delay_ns is not None


@dataclass(frozen=True)
class FaultConfig:
    """Fault model plus reliable-transport tuning for one cluster.

    All-zero fault rates (the default) mean a perfect wire; the reliable
    transport is then bypassed completely so fault-free runs cost nothing.
    ``link_faults`` overlays per-link overrides on the uniform axes;
    ``partitions`` adds timed unreachability windows — either alone also
    engages the transport.
    """

    # --- the imperfect wire ------------------------------------------- #
    drop_prob: float = 0.0       # P(frame lost in transit), per wire copy
    dup_prob: float = 0.0        # P(frame duplicated in transit)
    jitter_ns: int = 0           # extra latency, uniform in [0, jitter_ns]
    stall_prob: float = 0.0      # P(protocol CPU stalls before a handler)
    stall_ns: int = 0            # length of one stall window

    # --- determinism -------------------------------------------------- #
    seed: int = 0                # seeds the transport's random.Random

    # --- reliable-delivery tuning ------------------------------------- #
    retransmit_timeout_ns: int = 120 * _US   # initial ack timeout (~3 RTT)
    max_backoff_ns: int = 2_000 * _US        # cap for exponential backoff
    max_retries: int = 32                    # per frame, then channel gives up

    # --- adaptive retransmission (congestion-aware RTO) ---------------- #
    # With ``adaptive_rto`` the fixed timer above only seeds the estimate:
    # each (src, dst) channel keeps a Jacobson-style smoothed RTT
    # (SRTT/RTTVAR, RTO = SRTT + 4·RTTVAR) measured ack-to-send on
    # non-retransmitted frames (Karn's rule), clamped to the floor and
    # ceiling below.  Bulk payload serialization and congestion then
    # inflate the RTO instead of firing spurious retransmits.
    #
    # The floor defaults to the fixed timeout itself (``rto_min_ns=None``):
    # the adaptive timer never fires *earlier* than the timer it replaces,
    # it only waits longer when the measured path — or the frame's own
    # serialization time — justifies it.  Ack round trips on a congested
    # link routinely spike past any tight floor learned from quiet-period
    # samples, so an aggressive floor trades real retransmit storms for a
    # latency win that a correctly-sized fixed timer already banked.
    adaptive_rto: bool = False
    rto_min_ns: int | None = None            # floor; None = the fixed timeout
    rto_max_ns: int = 2_000 * _US            # ceiling: matches backoff cap

    # --- asymmetric failure overlays ----------------------------------- #
    # Per-link overrides of the uniform axes above (each link with a
    # profile draws from its own seeded RNG stream) and named partition
    # windows.  Empty (the default): the overlay machinery is never
    # consulted and uniform draws are byte-identical to builds before it.
    link_faults: tuple[LinkFaultConfig, ...] = ()
    partitions: tuple[PartitionScenario, ...] = ()

    # --- node fail-stop + recovery -------------------------------------- #
    # ``crashes`` schedules whole-node fail-stops (see CrashScenario).  A
    # crash config arms per-channel heartbeat probes: every channel sends a
    # header-only keepalive after ``heartbeat_interval_ns`` of silence, and
    # the probe rides the ordinary retransmit machinery — a dead peer is
    # *detected* when the probe (or any data frame) exhausts its budget.
    # ``checkpoint_every`` > 0 snapshots protocol state every K completed
    # barriers (a globally consistent cut); the modeled write cost is
    # ``checkpoint_cost_ns_per_kb`` per KiB of shared memory, charged by
    # deferring the barrier release.  Both default off: crash-free configs
    # take no probes, no snapshots, and no extra draws.
    crashes: tuple[CrashScenario, ...] = ()
    heartbeat_interval_ns: int = 500 * _US
    checkpoint_every: int = 0                # barriers between snapshots; 0 = off
    checkpoint_cost_ns_per_kb: int = 50      # ~20 GB/s local snapshot rate

    def __post_init__(self) -> None:
        if self.rto_min_ns is None:
            object.__setattr__(self, "rto_min_ns", self.retransmit_timeout_ns)
        # Tolerate lists for the overlay fields; freeze to tuples.
        if not isinstance(self.link_faults, tuple):
            object.__setattr__(self, "link_faults", tuple(self.link_faults))
        if not isinstance(self.partitions, tuple):
            object.__setattr__(self, "partitions", tuple(self.partitions))
        for name in ("drop_prob", "dup_prob", "stall_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1); got {p}")
        if self.jitter_ns < 0:
            raise ValueError(f"jitter_ns must be >= 0; got {self.jitter_ns}")
        if self.stall_ns < 0:
            raise ValueError(f"stall_ns must be >= 0; got {self.stall_ns}")
        if self.stall_prob and not self.stall_ns:
            raise ValueError("stall_prob set but stall_ns is zero")
        if self.retransmit_timeout_ns <= 0:
            raise ValueError("retransmit_timeout_ns must be positive")
        if self.max_backoff_ns < self.retransmit_timeout_ns:
            raise ValueError("max_backoff_ns must be >= retransmit_timeout_ns")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.rto_min_ns <= 0:
            raise ValueError("rto_min_ns must be positive")
        if self.rto_max_ns < self.rto_min_ns:
            raise ValueError("rto_max_ns must be >= rto_min_ns")
        seen: set[tuple[int, int]] = set()
        for lf in self.link_faults:
            if not isinstance(lf, LinkFaultConfig):
                raise ValueError(f"link_faults entries must be LinkFaultConfig; got {lf!r}")
            if lf.key in seen:
                raise ValueError(f"duplicate link profile for {lf.key}")
            seen.add(lf.key)
            # The *effective* stall config (override falling back to the
            # uniform value) must satisfy the same rule as the uniform one.
            eff_prob = lf.stall_prob if lf.stall_prob is not None else self.stall_prob
            eff_ns = lf.stall_ns if lf.stall_ns is not None else self.stall_ns
            if eff_prob and not eff_ns:
                raise ValueError(
                    f"link {lf.key}: stall_prob set but effective stall_ns is zero"
                )
        names = [s.name for s in self.partitions]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate partition scenario names: {names}")
        for s in self.partitions:
            if not isinstance(s, PartitionScenario):
                raise ValueError(f"partitions entries must be PartitionScenario; got {s!r}")
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))
        crash_nodes: set[int] = set()
        for c in self.crashes:
            if not isinstance(c, CrashScenario):
                raise ValueError(f"crashes entries must be CrashScenario; got {c!r}")
            if c.node in crash_nodes:
                raise ValueError(f"node {c.node} crashes more than once")
            crash_nodes.add(c.node)
        if self.heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat_interval_ns must be positive")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0; got {self.checkpoint_every}"
            )
        if self.checkpoint_cost_ns_per_kb < 0:
            raise ValueError("checkpoint_cost_ns_per_kb must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism is active (transport engaged)."""
        return bool(
            self.drop_prob or self.dup_prob or self.jitter_ns or self.stall_prob
            or self.link_faults or self.partitions or self.crashes
        )

    def link_overrides(self) -> dict[tuple[int, int], "LinkFaultConfig"]:
        """The per-link profiles keyed by ``(src, dst)``."""
        return {lf.key: lf for lf in self.link_faults}
