"""The default coherence protocol: eager-invalidate, release-consistent.

This is the paper's Section 3 / Figure 1(a) protocol, reproduced
message-for-message:

Read miss (data exclusive at a third node — the producer/consumer case)::

    requester --1 read-request-->  home
    home      --2 put-data-request--> exclusive owner
    owner     --3 put-data-response (data)--> home
    home      --4 read-response (data)--> requester

Write fault (readable copies outstanding)::

    writer    --5 write-request--> home
    home      --6 invalidation--> each sharer
    sharer    --7 acknowledgement--> home
    home      --8 write-grant--> writer

Write faults are *eager*: the faulting store proceeds immediately (the tag
flips to ReadWrite at fault time) and the ownership transaction completes in
the background; the grant future is parked in the node's pending set and
drained at release points.  Read misses block the compute thread.

Races on a block are serialized at its home with a per-block transaction
lock: a request arriving while another transaction is in flight queues and
starts when the lock frees — the standard software-DSM discipline, and it
keeps the model deadlock-free by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from repro.sim import Engine, Future
from repro.tempest.access import AccessControl, AccessTag
from repro.tempest.config import ClusterConfig
from repro.tempest.directory import Directory, DirState

_EXCLUSIVE = int(DirState.EXCLUSIVE)
_READWRITE = int(AccessTag.READWRITE)
from repro.tempest.network import Network
from repro.tempest.node import Node
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["DefaultProtocol", "ProtocolError"]


class ProtocolError(RuntimeError):
    """An impossible protocol state — indicates a model bug."""


class DefaultProtocol:
    """State machines for the default protocol over one cluster."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        access: AccessControl,
        directory: Directory,
        network: Network,
        nodes: list[Node],
        stats: ClusterStats,
    ) -> None:
        self.engine = engine
        self.config = config
        self.access = access
        self.directory = directory
        self.network = network
        self.nodes = nodes
        self.stats = stats
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        # Per-block home-side transaction lock: block -> queue of deferred
        # transaction starters.  Presence of the key means "locked".
        self._busy: dict[int, deque[Callable[[], None]]] = {}
        # Requester-side in-flight read transactions (for prefetch overlap):
        # (node, block) -> completion future.  A demand read that finds an
        # in-flight prefetch waits on it instead of issuing a duplicate.
        self._inflight: dict[tuple[int, int], Future] = {}
        # Lineage only (populated when a bus is attached): (node, block) ->
        # the in-flight transaction's root msg.send seq, so a miss.join can
        # chain to the fetch it piggybacked on.
        self._inflight_cause: dict[tuple[int, int], int] = {}
        # Observability only: (node, block) -> the stats fields a
        # still-incomplete transaction has already bumped.  A rollback
        # that orphans the transaction emits a compensating ``miss.abort``
        # from this record, so event-derived counters stay exactly equal
        # to ClusterStats even when a crash wipes in-flight misses.
        self._inflight_counted: dict[tuple[int, int], dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # transaction lock
    # ------------------------------------------------------------------ #
    def _lock(self, block: int, start: Callable[[], None]) -> None:
        q = self._busy.get(block)
        if q is None:
            self._busy[block] = deque()
            start()
        else:
            q.append(start)

    def _unlock(self, block: int) -> None:
        q = self._busy.get(block)
        if q is None:  # pragma: no cover
            raise ProtocolError(f"unlock of unlocked block {block}")
        if q:
            q.popleft()()  # hand the lock to the next queued transaction
        else:
            del self._busy[block]

    # ------------------------------------------------------------------ #
    # read miss (blocking)
    # ------------------------------------------------------------------ #
    def read_block(
        self, node_id: int, block: int, count_stats: bool = True
    ) -> Generator[Any, Any, None]:
        """Service a read miss for ``node_id`` on ``block``; blocks until
        the data is installed readable.

        An outstanding prefetch of the same block is joined rather than
        duplicated.  ``count_stats=False`` lets protocol variants reuse the
        fetch machinery under their own accounting.
        """
        cfg = self.config
        node = self.nodes[node_id]
        key = (node_id, block)
        obs = self.obs
        t0 = self.engine.now
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Overlap with an outstanding (pre)fetch of the same block.
            if count_stats:
                node.stats.prefetch_waits += 1
                if obs is not None:
                    self._inflight_counted[key] = {"prefetch_waits": 1}
            joined = self._inflight_cause.get(key)
            yield inflight
            if obs is not None and count_stats:
                self._inflight_counted.pop(key, None)
                obs.emit(
                    "miss.join", t0, self.engine.now - t0,
                    node=node_id, parent=joined, block=block,
                )
            return
        if count_stats:
            node.stats.read_misses += 1
            if obs is not None:
                self._inflight_counted[key] = {"read_misses": 1}
        yield cfg.fault_detect_ns

        home = self.directory.home_of(block)
        done = self.engine.future("rd")
        self._inflight[key] = done
        done.add_callback(lambda _v: (
            self._inflight.pop(key, None),
            self._inflight_cause.pop(key, None),
        ))
        root = None
        if home != node_id:
            if count_stats:
                node.stats.remote_read_misses += 1
                if obs is not None:
                    self._inflight_counted[key]["remote_read_misses"] = 1
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            # The handler closure is built before network.send returns the
            # msg.send seq; the ref cell closes the loop so the home-side
            # chain carries the request's lineage root.
            ref: list = [None]
            ref[0] = self.network.send(
                node_id,
                home,
                MsgKind.READ_REQ,
                lambda r=ref: self._lock(
                    block, lambda: self._home_read(block, node_id, done, r[0])
                ),
                cfg.handler_request_ns,
            )
            root = ref[0]
        else:
            # Local miss at the home: only possible when the data is
            # exclusive at a remote node (otherwise the home's tag is valid).
            self._lock(block, lambda: self._home_read(block, node_id, done))
        if obs is not None and root is not None:
            self._inflight_cause[key] = root
        yield done
        if obs is not None and count_stats:
            self._inflight_counted.pop(key, None)
            obs.emit(
                "miss.read", t0, self.engine.now - t0, node=node_id,
                parent=root, block=block, home=home, remote=home != node_id,
            )

    # ------------------------------------------------------------------ #
    # phase-level write hook (the executor delegates whole write batches
    # so protocol variants can implement their own write semantics)
    # ------------------------------------------------------------------ #
    def write_phase(self, node_id: int, blocks, phase: int) -> Generator[Any, Any, None]:
        """Perform a phase's write accesses under this protocol.

        Invalidate semantics: versions bump first (stores land in memory
        immediately under the eager multiple-writer discipline), then each
        non-writable block takes an eager ownership fault.
        """
        self.directory.record_write(node_id, blocks, phase)
        tags = self.access.rows[node_id][blocks]
        fault_mask = tags != _READWRITE
        if not fault_mask.any():
            return  # every block already writable — the common steady state
        for b in blocks[fault_mask].tolist():
            # Re-check: an earlier fault's transaction may have raced.
            if not self.access.writable(node_id, b):
                yield from self.write_block(node_id, b)

    def start_prefetch(self, node_id: int, block: int) -> Future | None:
        """Issue a co-operative prefetch for ``block``; returns its
        completion future, or None when one is already outstanding.

        Registration is synchronous (the in-flight entry exists the moment
        this returns), so a demand read arriving at the same instant joins
        the transaction instead of duplicating it; the per-message costs
        are charged asynchronously on the issuing node's compute CPU.
        """
        key = (node_id, block)
        if key in self._inflight:
            return None
        cfg = self.config
        node = self.nodes[node_id]
        node.stats.prefetches += 1
        home = self.directory.home_of(block)
        pf_seq = None
        if self.obs is not None:
            pf_seq = self.obs.emit(
                "miss.prefetch", self.engine.now, node=node_id,
                block=block, home=home,
            ).seq
        done = self.engine.future(f"pf.b{block}.n{node_id}")
        self._inflight[key] = done
        done.add_callback(lambda _v: (
            self._inflight.pop(key, None),
            self._inflight_cause.pop(key, None),
        ))

        # The caller (ext.prefetch) charges the issue overhead inline, so
        # the request leaves immediately and the transaction overlaps the
        # computation that follows — the whole point of the prefetch.
        if home != node_id:
            ref: list = [None]
            ref[0] = self.network.send(
                node_id,
                home,
                MsgKind.READ_REQ,
                lambda r=ref: self._lock(
                    block, lambda: self._home_read(block, node_id, done, r[0])
                ),
                cfg.handler_request_ns,
                parent=pf_seq,
            )
            if self.obs is not None and ref[0] is not None:
                self._inflight_cause[key] = ref[0]
        else:
            self._lock(block, lambda: self._home_read(block, node_id, done))
        return done

    def _home_read(
        self, block: int, requester: int, done: Future, cause=None
    ) -> None:
        """Runs at the home with the block lock held."""
        d = self.directory
        home = d.home_of(block)
        state = d.state[block]
        cfg = self.config

        if state == _EXCLUSIVE and d.owner[block] != requester:
            owner = d.owner[block]
            if owner == home:
                # The home itself holds the exclusive copy: its handler
                # reads local memory directly — no self-messages.
                self.access.set(home, block, AccessTag.READONLY)
                d.add_sharer(block, home)
                self._finish_read(block, requester, done, cause)
                return
            # 2. put-data-request to the exclusive owner.
            ref: list = [None]
            ref[0] = self.network.send(
                home,
                owner,
                MsgKind.PUT_REQ,
                lambda r=ref: self._owner_put(block, owner, requester, done, r[0]),
                cfg.handler_request_ns,
                parent=cause,
            )
            return
        if state == _EXCLUSIVE:  # pragma: no cover - impossible
            raise ProtocolError(
                f"node {requester} read-faulted on block {block} it owns exclusively"
            )
        # Home memory is current (Idle or Shared): reply directly.
        self._finish_read(block, requester, done, cause)

    def _owner_put(
        self, block: int, owner: int, requester: int, done: Future, cause=None
    ) -> None:
        """Exclusive owner downgrades and returns the data to the home."""
        d = self.directory
        home = d.home_of(block)
        cfg = self.config
        self.access.set(owner, block, AccessTag.READONLY)
        ref: list = [None]

        def at_home(r=ref) -> None:
            # Home installs the current data; its own copy becomes valid.
            d.deliver_copy_one(home, block)
            if not self.access.readable(home, block):
                self.access.set(home, block, AccessTag.READONLY)
            d.add_sharer(block, owner)
            self._finish_read(block, requester, done, r[0])

        # 3. put-data-response carries the block back to the home.
        ref[0] = self.network.send(
            owner,
            home,
            MsgKind.PUT_RESP,
            at_home,
            cfg.handler_response_ns,
            payload_bytes=cfg.block_size,
            parent=cause,
        )

    def _finish_read(
        self, block: int, requester: int, done: Future, cause=None
    ) -> None:
        """Home sends (or locally installs) the read response."""
        d = self.directory
        home = d.home_of(block)
        cfg = self.config
        if requester == home:
            d.add_sharer(block, requester)
            self.access.set(requester, block, AccessTag.READONLY)
            d.deliver_copy_one(requester, block)
            self._unlock(block)
            self.engine.call_at(self.engine.now, done.resolve, None)
            return

        def at_requester() -> None:
            self.access.set(requester, block, AccessTag.READONLY)
            d.deliver_copy_one(requester, block)
            done.resolve(None)

        d.add_sharer(block, requester)
        # Granting a shared copy downgrades the home itself.
        if self.access.writable(home, block):
            self.access.set(home, block, AccessTag.READONLY)
        d.add_sharer(block, home)
        # 4. read-response with the data.  Submitted *before* releasing the
        # block lock: a queued write transaction starts synchronously at
        # unlock, and its invalidation must enter the FIFO link behind this
        # response, or the requester would install a copy the directory
        # already believes invalidated.
        self.network.send(
            home,
            requester,
            MsgKind.READ_RESP,
            at_requester,
            cfg.handler_response_ns,
            payload_bytes=cfg.block_size,
            parent=cause,
        )
        self._unlock(block)

    # ------------------------------------------------------------------ #
    # write fault (eager, non-blocking)
    # ------------------------------------------------------------------ #
    def write_block(
        self, node_id: int, block: int, count_fault: bool = True
    ) -> Generator[Any, Any, Future]:
        """Take write ownership of ``block`` for ``node_id``.

        The store proceeds immediately (tag flips to ReadWrite); the
        returned future resolves when ownership is granted, and is also
        parked in the node's pending set so release fences see it.

        ``count_fault=False`` is used by the compiler's ``mk_writable``
        primitive, which reuses this transaction but must not count as a
        demand miss.
        """
        cfg = self.config
        node = self.nodes[node_id]
        obs = self.obs
        t0 = self.engine.now
        if count_fault:
            node.stats.write_faults += 1
            if obs is not None:
                self._inflight_counted[(node_id, block)] = {"write_faults": 1}
            yield cfg.fault_detect_ns

        self.access.set(node_id, block, AccessTag.READWRITE)
        grant = self.engine.future("wr")
        node.post_pending(grant)

        home = self.directory.home_of(block)
        root = None
        if home != node_id:
            yield node.compute_cpu.use(cfg.send_overhead_ns)
            ref: list = [None]
            ref[0] = self.network.send(
                node_id,
                home,
                MsgKind.WRITE_REQ,
                lambda r=ref: self._lock(
                    block, lambda: self._home_write(block, node_id, grant, r[0])
                ),
                cfg.handler_request_ns,
            )
            root = ref[0]
        else:
            self._lock(block, lambda: self._home_write(block, node_id, grant))
        if obs is not None and count_fault:
            # Covers the inline portion of the fault (detection + request
            # send); the ownership transaction itself completes in the
            # background and resolves ``grant``.
            self._inflight_counted.pop((node_id, block), None)
            obs.emit(
                "miss.write", t0, self.engine.now - t0, node=node_id,
                parent=root, block=block, home=home,
            )
        return grant

    def _home_write(
        self, block: int, writer: int, grant: Future, cause=None
    ) -> None:
        """Home-side write transaction, lock held."""
        d = self.directory
        cfg = self.config
        home = d.home_of(block)
        state = d.state[block]

        if state == _EXCLUSIVE:
            owner = d.owner[block]
            if owner == writer:
                self._finish_write(block, writer, grant, cause)
                return
            # Recall: invalidate the owner; it flushes the data home.
            inv_ref: list = [None]

            def owner_inv(r=inv_ref) -> None:
                self.access.set(owner, block, AccessTag.INVALID)
                put_ref: list = [None]

                def at_home(pr=put_ref) -> None:
                    d.deliver_copy_one(home, block)
                    self._finish_write(block, writer, grant, pr[0])

                put_ref[0] = self.network.send(
                    owner,
                    home,
                    MsgKind.PUT_RESP,
                    at_home,
                    cfg.handler_response_ns,
                    payload_bytes=cfg.block_size,
                    parent=r[0],
                )

            inv_ref[0] = self.network.send(
                home, owner, MsgKind.INV, owner_inv,
                cfg.handler_invalidate_ns, combinable=True, parent=cause,
            )
            return

        # The home's own readable copy dies inline (no self-messages needed).
        if home != writer:
            self.access.set(home, block, AccessTag.INVALID)
        sharers = [s for s in d.sharers_of(block) if s != writer and s != home]
        if not sharers:
            self._finish_write(block, writer, grant, cause)
            return

        remaining = len(sharers)

        def make_inv(sharer: int) -> tuple[Callable[[], None], list]:
            inv_ref: list = [None]

            def on_inv(r=inv_ref) -> None:
                self.access.set(sharer, block, AccessTag.INVALID)
                ack_ref: list = [None]

                def on_ack(ar=ack_ref) -> None:
                    nonlocal remaining
                    remaining -= 1
                    if remaining == 0:
                        self._finish_write(block, writer, grant, ar[0])

                # 7. acknowledgement back to the home.
                ack_ref[0] = self.network.send(
                    sharer, home, MsgKind.ACK, on_ack,
                    cfg.handler_ack_ns, combinable=True, parent=r[0],
                )

            return on_inv, inv_ref

        for s in sharers:
            # 6. invalidation to each sharer.
            on_inv, inv_ref = make_inv(s)
            inv_ref[0] = self.network.send(
                home, s, MsgKind.INV, on_inv,
                cfg.handler_invalidate_ns, combinable=True, parent=cause,
            )

    def _finish_write(
        self, block: int, writer: int, grant: Future, cause=None
    ) -> None:
        d = self.directory
        cfg = self.config
        home = d.home_of(block)
        d.set_exclusive(block, writer)
        if home != writer:
            self.access.set(home, block, AccessTag.INVALID)
            # The writer may have had no copy at all; the grant carries the
            # current data so partial-block stores merge correctly.  The
            # grant also (re)installs write permission: a racing writer's
            # invalidation may have wiped the tag set eagerly at fault time
            # while this transaction was queued at the home.
            def at_writer() -> None:
                self.access.set(writer, block, AccessTag.READWRITE)
                d.deliver_copy_one(writer, block)
                grant.resolve(None)

            # 8. write-grant (with data), submitted before the unlock so a
            # queued transaction's messages cannot overtake it on the link.
            self.network.send(
                home,
                writer,
                MsgKind.GRANT,
                at_writer,
                cfg.handler_response_ns,
                payload_bytes=cfg.block_size,
                parent=cause,
            )
            self._unlock(block)
        else:
            self.access.set(writer, block, AccessTag.READWRITE)
            d.deliver_copy_one(writer, block)
            self._unlock(block)
            self.engine.call_at(self.engine.now, grant.resolve, None)
