"""The cluster interconnect: active messages with calibrated costs.

Model
-----
Each node has one outgoing link (a FIFO :class:`~repro.sim.Resource`): a
message occupies the sender's link for its serialization time
(``bytes / bandwidth``), then arrives ``wire_latency_ns`` later and is
dispatched as a *handler* on the destination's protocol CPU.  Back-to-back
sends from one node therefore pipeline on the wire but serialize on the
link — exactly the behaviour that makes the paper's bulk-transfer
optimization profitable (one large payload pays the per-message overheads
once).

Handlers are plain callables executed after their occupancy completes on the
destination's protocol CPU (see :meth:`repro.tempest.node.Node.run_handler`).
Self-sends skip the wire but still pay dispatch costs, matching Tempest's
loopback path.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Engine, Resource
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["Network", "HEADER_BYTES"]

#: Fixed header on every message (request/control payloads are header-only).
HEADER_BYTES = 16


class Network:
    """Message transport between the cluster's nodes."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        stats: ClusterStats,
        nodes: list,  # list[Node]; typed loosely to avoid a cycle
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.nodes = nodes
        self.links = [
            Resource(engine, f"link{n}") for n in range(config.n_nodes)
        ]

    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        payload_bytes: int = 0,
    ) -> None:
        """Send an active message; ``handler`` runs at ``dst`` after
        transport + dispatch + handler occupancy.

        The *sender-side CPU* cost (``send_overhead_ns``) is charged by the
        caller — node processes charge it to the compute CPU, protocol
        handlers fold it into their own occupancy — because who pays differs
        by context.
        """
        size = HEADER_BYTES + payload_bytes
        self.stats[src].count_message(kind, size)
        cfg = self.config
        dst_node = self.nodes[dst]
        if src == dst:
            # Loopback: no wire, but dispatch + handler still run.
            self.engine.call_after(
                cfg.dispatch_overhead_ns,
                dst_node.run_handler,
                handler_cost_ns,
                handler,
            )
            return

        def on_wire_done(_v: object) -> None:
            # Serialization finished; arrival after propagation delay.
            self.engine.call_after(
                cfg.wire_latency_ns + cfg.dispatch_overhead_ns,
                dst_node.run_handler,
                handler_cost_ns,
                handler,
            )

        self.links[src].serve(cfg.transfer_ns(size)).add_callback(on_wire_done)

    def broadcast(
        self,
        src: int,
        kind: MsgKind,
        make_handler: Callable[[int], Callable[[], None]],
        handler_cost_ns: int,
        payload_bytes: int = 0,
        include_self: bool = False,
    ) -> int:
        """Send to every other node (optionally self); returns count sent."""
        sent = 0
        for dst in range(self.config.n_nodes):
            if dst == src and not include_self:
                continue
            self.send(src, dst, kind, make_handler(dst), handler_cost_ns, payload_bytes)
            sent += 1
        return sent
