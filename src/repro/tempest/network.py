"""The cluster interconnect: active messages with calibrated costs.

Model
-----
Each node has one outgoing link (a FIFO :class:`~repro.sim.Resource`): a
message occupies the sender's link for its serialization time
(``bytes / bandwidth``), then arrives ``wire_latency_ns`` later and is
dispatched as a *handler* on the destination's protocol CPU.  Back-to-back
sends from one node therefore pipeline on the wire but serialize on the
link — exactly the behaviour that makes the paper's bulk-transfer
optimization profitable (one large payload pays the per-message overheads
once).

Shared switch
-------------
The paper's 8-node cluster runs all traffic through one Myrinet switch;
independent links cannot reproduce cross-traffic queueing.  With
:class:`~repro.tempest.config.SwitchConfig` enabled, every remote frame
routes sender-link → switch output port → receiver: the one-way
propagation splits in half around a store-and-forward hop on the
*destination's* output port (a :class:`~repro.sim.PortedResource` server
forwarding at the switch's per-port rate, ``dst % ports``).  Frames from
different senders racing to one destination serialize on its port, and the
port's backlog *backpressures* the sender: the sending link stays held
until the port accepts the frame (Myrinet-style blocking flow control), so
later traffic from the same sender queues behind the congestion, the
adaptive RTO's RTT samples inflate, and the combining layer's link-busy
parking windows lengthen.  Port arbitration is in link-submission order —
the engine's deterministic event order — so contended runs replay exactly.
Contention is accounted per sending node (``switch_wait_ns``,
``switch_frames``) and per port (:class:`~repro.tempest.stats.PortStats`).
Disabled (the default), none of the machinery is constructed and schedules
are byte-identical to the link-only model.

Handlers are plain callables executed after their occupancy completes on the
destination's protocol CPU (see :meth:`repro.tempest.node.Node.run_handler`).
Self-sends skip the wire but still pay dispatch costs, matching Tempest's
loopback path; both paths converge on one :meth:`Network.dispatch` so every
message — local or remote, reliable or not — enters the destination node the
same way.

Message combining
-----------------
The paper's bulk-transfer optimization (Section 4.2) coalesces contiguous
*data* blocks so the per-message overheads are paid once.  When
:class:`~repro.tempest.config.CombineConfig` is enabled, the same idea is
applied to *control* traffic: a header-only frame (a protocol INV or ACK, a
barrier notification).  The eager protocol emits these in bursts —
consecutive boundary-block invalidations to one sharer arrive ~10 us apart
— and the combining layer exploits exactly that shape.  The first control
frame on a *cold* channel transmits immediately (an isolated frame never
pays combining latency), but it heats the channel: any combinable frame
sent to the same destination within ``max_wait_ns``, or while the outgoing
link is busy serializing, parks in a per-(src, dst) combine buffer.
Channel-mates accumulate and travel as ONE combined frame: one 16-byte
header plus ``slot_bytes`` per sub-message on the wire, one receiver-side
dispatch, the sub-handlers executed back to back in send order.

A buffer flushes on the earliest of four triggers:

* it reaches ``max_msgs`` sub-messages;
* its oldest frame has waited ``max_wait_ns`` (the hold timer — bounds the
  latency any parked control frame can pick up, ~1 short-message RTT);
* the outgoing link goes idle after a busy spell (frames parked behind
  bulk serialization leave the moment the link frees);
* a non-combinable message to the same destination is sent — the buffer
  flushes ahead of it, so per-channel FIFO order is preserved exactly.

A channel with no burst behaves exactly as without combining: cold
channels transmit eagerly, so workloads with no control-frame locality
(one barrier notification here, one invalidation there) keep their
uncombined schedules and latencies.

Transport acks (below the protocol layer) combine only *opportunistically*
— they park only while their link is busy — keeping ack round trips, and
hence the adaptive RTO's RTT samples, tight.

Combining is strictly opt-in: disabled (the default) none of the machinery
is touched and schedules are byte-identical to the uncombined model.

Reliability
-----------
By default the wire is perfect (the paper's Myrinet assumption).  When the
config's :class:`~repro.tempest.faults.FaultConfig` enables any fault, every
wire send is routed through :class:`~repro.tempest.transport.
ReliableTransport` — sequence numbers, acks, retransmit with capped
exponential backoff, and receiver-side dedup/reordering — so protocol
handlers still observe exactly-once, in-order delivery.  Combining layers
cleanly on top: a combined frame is one transport frame, and transport acks
themselves combine.

Faults need not be uniform: per-link
:class:`~repro.tempest.faults.LinkFaultConfig` profiles override any fault
axis for one directed link (with a private RNG stream, so other links'
draws never shift), and :class:`~repro.tempest.faults.PartitionScenario`
windows cut frames crossing a partition boundary deterministically.  A
channel that exhausts its retransmit budget *parks* instead of raising —
see :mod:`repro.tempest.transport` for the give-up/heal protocol and
``Cluster.run`` for how a never-healing partition becomes a degraded
result rather than a traceback.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Engine, PortedResource, Resource, SimulationError
from repro.tempest.config import US, ClusterConfig
from repro.tempest.stats import ClusterStats, MsgKind, PortStats

__all__ = ["Network", "HEADER_BYTES"]

#: Fixed header on every message (request/control payloads are header-only).
HEADER_BYTES = 16


class _CombineBuffer:
    """Header-only control frames parked for one (src, dst) channel."""

    __slots__ = ("dst", "kinds", "handlers", "costs")

    def __init__(self, dst: int) -> None:
        self.dst = dst
        self.kinds: list[MsgKind] = []
        self.handlers: list[Callable[[], None]] = []
        self.costs: list[int] = []

    def add(self, kind: MsgKind, handler: Callable[[], None], cost_ns: int) -> None:
        self.kinds.append(kind)
        self.handlers.append(handler)
        self.costs.append(cost_ns)

    def __len__(self) -> int:
        return len(self.kinds)


class Network:
    """Message transport between the cluster's nodes."""

    __slots__ = (
        "engine",
        "config",
        "stats",
        "nodes",
        "obs",
        "links",
        "switch",
        "_port_depth",
        "_lat_to_switch",
        "residual_latency_ns",
        "combining",
        "_link_jobs",
        "_pending",
        "_last_ctl",
        "transport",
        "_fused_wire",
        "_arrival_delay_ns",
        "_bw_bytes_per_us",
    )

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        stats: ClusterStats,
        nodes: list,  # list[Node]; typed loosely to avoid a cycle
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.nodes = nodes
        #: observability bus (see repro.obs); None keeps publishing free
        self.obs = None
        self.links = [
            Resource(engine, f"link{n}") for n in range(config.n_nodes)
        ]
        if config.switch.enabled:
            n_ports = config.switch_ports
            self.switch = PortedResource(engine, n_ports, "switch")
            self._port_depth = [0] * n_ports
            # The switch sits mid-path: propagation splits in half around
            # the store-and-forward hop on the output port.
            self._lat_to_switch = config.wire_latency_ns // 2
            self.residual_latency_ns = (
                config.wire_latency_ns - self._lat_to_switch
            )
            stats.ports = [PortStats(p) for p in range(n_ports)]
        else:
            self.switch = None
            self.residual_latency_ns = config.wire_latency_ns
        self.combining = config.combine.enabled
        if self.combining:
            # Outstanding serializations per link; a nonzero count is one
            # of the "park this control frame" signals.
            self._link_jobs = [0] * config.n_nodes
            # Per source, dst -> buffer, in creation order (dict order).
            self._pending: list[dict[int, _CombineBuffer]] = [
                {} for _ in range(config.n_nodes)
            ]
            # Per source, dst -> engine time of the last combinable frame
            # put on the wire; a recent entry marks the channel "hot".
            self._last_ctl: list[dict[int, int]] = [
                {} for _ in range(config.n_nodes)
            ]
        if config.faults.enabled:
            # Imported lazily: fault-free clusters never pay for (or touch)
            # the reliability machinery.
            from repro.tempest.transport import ReliableTransport

            self.transport = ReliableTransport(self, config.faults)
        else:
            self.transport = None
        # Perfect plain wire (no switch, no combining, no faults) under a
        # fused engine: _put_on_wire takes the allocation-free two-event
        # path.  Precomputing the decision and the arrival delay keeps the
        # per-frame branch to one attribute load.
        self._fused_wire = (
            engine.fused
            and self.transport is None
            and self.switch is None
            and not self.combining
        )
        self._arrival_delay_ns = (
            self.residual_latency_ns + config.dispatch_overhead_ns
        )
        self._bw_bytes_per_us = config.bandwidth_bytes_per_us

    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        payload_bytes: int = 0,
        combinable: bool = False,
        parent=None,
    ) -> int | None:
        """Send an active message; ``handler`` runs at ``dst`` after
        transport + dispatch + handler occupancy.

        The *sender-side CPU* cost (``send_overhead_ns``) is charged by the
        caller — node processes charge it to the compute CPU, protocol
        handlers fold it into their own occupancy — because who pays differs
        by context.

        ``combinable`` marks a header-only control frame the sender is
        willing to have coalesced with channel-mates behind a busy link
        (a no-op unless the config enables combining).

        ``parent`` is the causal predecessor's event seq for lineage
        (ignored without a bus).  Returns the ``msg.send`` event's seq,
        or None when no bus is attached — or when the frame parked in a
        combine buffer, where per-message lineage coarsens to the
        combined frame (a deliberate, documented loss of resolution).
        """
        if payload_bytes < 0:
            raise SimulationError(
                f"malformed payload: {payload_bytes} bytes "
                f"({kind.value} {src}->{dst})"
            )
        if handler_cost_ns < 0:
            raise SimulationError(
                f"negative handler cost {handler_cost_ns} "
                f"({kind.value} {src}->{dst})"
            )
        if combinable and payload_bytes:
            raise SimulationError(
                f"only header-only messages combine; {kind.value} "
                f"{src}->{dst} carries {payload_bytes} payload bytes"
            )
        size = HEADER_BYTES + payload_bytes
        assert size > 0, "every message carries at least its header"
        cfg = self.config
        if src == dst:
            # Loopback: no wire, but dispatch + handler still run.
            seq = self._count(src, dst, kind, size, parent)
            self.dispatch(dst, cfg.dispatch_overhead_ns, handler_cost_ns, handler)
            return seq
        if not self.combining:
            seq = self._count(src, dst, kind, size, parent)
            self._put_on_wire(src, dst, kind, handler, handler_cost_ns, size, seq)
            return seq

        # ---------------- combining fast path ---------------- #
        pending = self._pending[src]
        if combinable:
            buf = pending.get(dst)
            if buf is not None:
                buf.add(kind, handler, handler_cost_ns)
                if len(buf) >= cfg.combine.max_msgs:
                    del pending[dst]
                    self._flush_buffer(src, buf)
                return None
            last = self._last_ctl[src].get(dst)
            hot = (
                last is not None
                and self.engine.now - last < cfg.combine.max_wait_ns
            )
            if hot or self._link_jobs[src] > 0:
                buf = pending[dst] = _CombineBuffer(dst)
                buf.add(kind, handler, handler_cost_ns)
                # The hold timer bounds the wait for channel-mates; it
                # no-ops if another trigger flushed the buffer first.
                self.engine.call_after(
                    cfg.combine.max_wait_ns, self._flush_timer, src, dst, buf
                )
                return None
            # Cold channel, idle link: transmit eagerly — an isolated
            # control frame pays no combining latency — and heat the
            # channel so a burst's followers park behind this frame.
            self._last_ctl[src][dst] = self.engine.now
            seq = self._count(src, dst, kind, size, parent)
            self._put_on_wire(src, dst, kind, handler, handler_cost_ns, size, seq)
            return seq
        # Non-combinable: anything parked for this channel must enter the
        # FIFO link first, preserving per-channel order.
        buf = pending.pop(dst, None)
        if buf is not None:
            self._flush_buffer(src, buf)
        seq = self._count(src, dst, kind, size, parent)
        self._put_on_wire(src, dst, kind, handler, handler_cost_ns, size, seq)
        return seq

    def _count(
        self, src: int, dst: int, kind: MsgKind, size: int, parent=None
    ) -> int | None:
        """Account one message send (stats counter + bus event); returns
        the ``msg.send`` event seq (None without a bus)."""
        s = self.stats[src]
        s.messages[kind] += 1
        s.bytes_sent += size
        if self.obs is None:
            return None
        # wire_ns: the bandwidth-limited serialization this message will
        # pay, recorded so the critical-path walker can split delivery
        # latency into wire vs queueing without re-deriving the model.
        if src == dst:
            wire_ns = 0
        else:
            wire_ns = int(self.config.transfer_ns(size)) + self.config.wire_latency_ns
            if self.switch is not None:
                wire_ns += self.config.switch_forward_ns(size)
        ev = self.obs.emit(
            "msg.send", self.engine.now, node=src, parent=parent,
            src=src, dst=dst, msg=kind, size=size, wire_ns=wire_ns,
        )
        return ev.seq

    def _flush_timer(self, src: int, dst: int, buf: _CombineBuffer) -> None:
        """Hold timer expired: flush ``buf`` if it is still parked."""
        if self._pending[src].get(dst) is buf:
            del self._pending[src][dst]
            self._flush_buffer(src, buf)

    # ------------------------------------------------------------------ #
    # wire submission
    # ------------------------------------------------------------------ #
    def _put_on_wire(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        size: int,
        parent=None,
    ) -> None:
        """One frame onto the sender's link (reliable or perfect path)."""
        if self._fused_wire:
            # Perfect plain wire, fused: occupy the link and run the same
            # serialization-done / same-instant-hop / arrival event chain
            # as the classic serve().add_callback path — with no Future and
            # no closures.  Identical (time, seq) slots, identical order.
            # Inlined config.transfer_ns — same float expression, one fewer
            # method call per frame.
            finish = self.links[src].occupy_end(
                int(size / self._bw_bytes_per_us * US)
            )
            self.engine.call_at(finish, self._wire_hop, dst, handler, handler_cost_ns)
            return
        if self.transport is not None:
            self.transport.send(src, dst, kind, handler, handler_cost_ns, size, parent)
            return
        cfg = self.config

        def on_wire_done(_v: object) -> None:
            # Past the bandwidth-limited path; arrival after the remaining
            # propagation delay.
            self.dispatch(
                dst,
                self.residual_latency_ns + cfg.dispatch_overhead_ns,
                handler_cost_ns,
                handler,
            )

        self.traverse(src, dst, size, on_wire_done, parent)

    def _wire_hop(self, dst: int, handler: Callable[[], None], handler_cost_ns: int) -> None:
        """Fused serialization completed: hop (Future.resolve mirror)."""
        self.engine.call_now(self._wire_done, dst, handler, handler_cost_ns)

    def _wire_done(self, dst: int, handler: Callable[[], None], handler_cost_ns: int) -> None:
        """Fused wire completion: propagate and enter the destination."""
        engine = self.engine
        engine.call_at(
            engine.now + self._arrival_delay_ns, self.nodes[dst].run_handler,
            handler_cost_ns, handler,
        )

    @staticmethod
    def _link_freed(_v: object) -> None:
        """Link leg of a switched path: completion is port-side."""

    def traverse(
        self, src: int, dst: int, size: int, on_done: Callable[[object], None],
        parent=None,
    ) -> None:
        """Move one frame through the bandwidth-limited part of the path.

        Link-only model: the sender's link; ``on_done`` fires when
        serialization completes.  Switch model: the link, then the shared
        switch's output port for ``dst``; ``on_done`` fires when the port
        finishes forwarding.  Either way the caller adds the remaining
        ``residual_latency_ns`` of propagation (plus any jitter) itself.
        """
        if self.switch is None:
            self.serve_link(src, size, on_done)
            return
        cfg = self.config
        # The whole path is reserved now: link occupancy and port service
        # times are known at submission, so contention delay is exact.
        link_done = self.links[src].free_at + cfg.transfer_ns(size)
        release = link_done + self._lat_to_switch
        port = dst % self.switch.n_ports
        forward_ns = cfg.switch_forward_ns(size)
        start, _finish, fut = self.switch.serve_at(port, release, forward_ns)
        wait = start - release
        st = self.stats[src]
        st.switch_frames += 1
        st.switch_wait_ns += wait
        ps = self.stats.ports[port]
        ps.frames += 1
        ps.wait_ns += wait
        ps.busy_ns += forward_ns
        depth = self._port_depth[port] = self._port_depth[port] + 1
        if depth > ps.max_depth:
            ps.max_depth = depth
        if self.obs is not None:
            self.obs.emit(
                "switch.traverse", self.engine.now, node=src, parent=parent,
                dst=dst, port=port, wait_ns=wait, forward_ns=forward_ns,
                depth=depth, size=size,
            )
        # Backpressure: a backlogged port delays accepting the frame, and
        # the sending link stays held until it does (blocking flow
        # control) — upstream senders feel hot destinations.
        self.serve_link(
            src, size, self._link_freed,
            hold_ns=start - self._lat_to_switch - link_done,
        )

        def port_done(value: object) -> None:
            self._port_depth[port] -= 1
            on_done(value)

        fut.add_callback(port_done)

    def serve_link(
        self,
        src: int,
        size: int,
        on_done: Callable[[object], None],
        hold_ns: int = 0,
    ) -> None:
        """Serialize ``size`` bytes on ``src``'s link, then ``on_done``.

        The single chokepoint for link occupancy: with combining enabled it
        maintains the per-link busy count and flushes parked control frames
        the moment the link goes idle — inside the same completion event,
        so no extra engine events are scheduled.  ``hold_ns`` extends the
        occupancy past serialization (switch backpressure).
        """
        fut = self.links[src].serve(self.config.transfer_ns(size) + hold_ns)
        if not self.combining:
            fut.add_callback(on_done)
            return
        self._link_jobs[src] += 1

        def wrapped(value: object) -> None:
            self._link_jobs[src] -= 1
            on_done(value)
            if self._link_jobs[src] == 0:
                self._flush_src(src)

        fut.add_callback(wrapped)

    def _flush_src(self, src: int) -> None:
        """Link went idle: put every parked control frame on the wire."""
        pending = self._pending[src]
        if pending:
            bufs = list(pending.values())
            pending.clear()
            for buf in bufs:
                self._flush_buffer(src, buf)
        if self.transport is not None:
            self.transport.flush_acks(src)

    def _flush_buffer(self, src: int, buf: _CombineBuffer) -> None:
        """Emit one combine buffer: a single frame if alone, else combined."""
        self._last_ctl[src][buf.dst] = self.engine.now
        st = self.stats[src]
        k = len(buf)
        if k == 1:
            # A lone parked frame travels exactly as it would have queued.
            seq = self._count(src, buf.dst, buf.kinds[0], HEADER_BYTES)
            self._put_on_wire(
                src, buf.dst, buf.kinds[0], buf.handlers[0], buf.costs[0],
                HEADER_BYTES, seq,
            )
            return
        size = HEADER_BYTES + k * self.config.combine.slot_bytes
        seq = self._count(src, buf.dst, MsgKind.COMBINED, size)
        st.combine_flushes += 1
        for kind in buf.kinds:
            st.msgs_combined[kind] += 1
        if self.obs is not None:
            self.obs.emit(
                "combine.flush", self.engine.now, node=src, parent=seq,
                dst=buf.dst, n=k, kinds=list(buf.kinds), size=size,
            )
        handlers = tuple(buf.handlers)

        def run_all() -> None:
            # Sub-handlers apply in send order at the combined frame's
            # occupancy completion (one dispatch, one handler slot).
            for h in handlers:
                h()

        self._put_on_wire(
            src, buf.dst, MsgKind.COMBINED, run_all, sum(buf.costs), size, seq
        )

    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        dst: int,
        delay_ns: int,
        handler_cost_ns: int,
        handler: Callable[[], None],
    ) -> None:
        """The single entry point into a destination node: after
        ``delay_ns`` (remaining transport + dispatch overhead), run the
        handler on ``dst``'s protocol CPU.  Loopback sends, perfect-wire
        arrivals and reliable-transport deliveries all land here.
        """
        self.engine.call_after(
            delay_ns, self.nodes[dst].run_handler, handler_cost_ns, handler
        )

    def broadcast(
        self,
        src: int,
        kind: MsgKind,
        make_handler: Callable[[int], Callable[[], None]],
        handler_cost_ns: int,
        payload_bytes: int = 0,
        include_self: bool = False,
        combinable: bool = False,
        parent=None,
    ) -> int:
        """Send to every other node (optionally self); returns count sent."""
        sent = 0
        for dst in range(self.config.n_nodes):
            if dst == src and not include_self:
                continue
            self.send(
                src, dst, kind, make_handler(dst), handler_cost_ns,
                payload_bytes, combinable=combinable, parent=parent,
            )
            sent += 1
        return sent
