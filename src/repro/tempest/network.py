"""The cluster interconnect: active messages with calibrated costs.

Model
-----
Each node has one outgoing link (a FIFO :class:`~repro.sim.Resource`): a
message occupies the sender's link for its serialization time
(``bytes / bandwidth``), then arrives ``wire_latency_ns`` later and is
dispatched as a *handler* on the destination's protocol CPU.  Back-to-back
sends from one node therefore pipeline on the wire but serialize on the
link — exactly the behaviour that makes the paper's bulk-transfer
optimization profitable (one large payload pays the per-message overheads
once).

Handlers are plain callables executed after their occupancy completes on the
destination's protocol CPU (see :meth:`repro.tempest.node.Node.run_handler`).
Self-sends skip the wire but still pay dispatch costs, matching Tempest's
loopback path; both paths converge on one :meth:`Network.dispatch` so every
message — local or remote, reliable or not — enters the destination node the
same way.

Reliability
-----------
By default the wire is perfect (the paper's Myrinet assumption).  When the
config's :class:`~repro.tempest.faults.FaultConfig` enables any fault, every
wire send is routed through :class:`~repro.tempest.transport.
ReliableTransport` — sequence numbers, acks, retransmit with capped
exponential backoff, and receiver-side dedup/reordering — so protocol
handlers still observe exactly-once, in-order delivery.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Engine, Resource, SimulationError
from repro.tempest.config import ClusterConfig
from repro.tempest.stats import ClusterStats, MsgKind

__all__ = ["Network", "HEADER_BYTES"]

#: Fixed header on every message (request/control payloads are header-only).
HEADER_BYTES = 16


class Network:
    """Message transport between the cluster's nodes."""

    def __init__(
        self,
        engine: Engine,
        config: ClusterConfig,
        stats: ClusterStats,
        nodes: list,  # list[Node]; typed loosely to avoid a cycle
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.nodes = nodes
        self.links = [
            Resource(engine, f"link{n}") for n in range(config.n_nodes)
        ]
        if config.faults.enabled:
            # Imported lazily: fault-free clusters never pay for (or touch)
            # the reliability machinery.
            from repro.tempest.transport import ReliableTransport

            self.transport = ReliableTransport(self, config.faults)
        else:
            self.transport = None

    def send(
        self,
        src: int,
        dst: int,
        kind: MsgKind,
        handler: Callable[[], None],
        handler_cost_ns: int,
        payload_bytes: int = 0,
    ) -> None:
        """Send an active message; ``handler`` runs at ``dst`` after
        transport + dispatch + handler occupancy.

        The *sender-side CPU* cost (``send_overhead_ns``) is charged by the
        caller — node processes charge it to the compute CPU, protocol
        handlers fold it into their own occupancy — because who pays differs
        by context.
        """
        if payload_bytes < 0:
            raise SimulationError(
                f"malformed payload: {payload_bytes} bytes "
                f"({kind.value} {src}->{dst})"
            )
        if handler_cost_ns < 0:
            raise SimulationError(
                f"negative handler cost {handler_cost_ns} "
                f"({kind.value} {src}->{dst})"
            )
        size = HEADER_BYTES + payload_bytes
        assert size > 0, "every message carries at least its header"
        self.stats[src].count_message(kind, size)
        cfg = self.config
        if src == dst:
            # Loopback: no wire, but dispatch + handler still run.
            self.dispatch(dst, cfg.dispatch_overhead_ns, handler_cost_ns, handler)
            return
        if self.transport is not None:
            self.transport.send(src, dst, kind, handler, handler_cost_ns, size)
            return

        def on_wire_done(_v: object) -> None:
            # Serialization finished; arrival after propagation delay.
            self.dispatch(
                dst,
                cfg.wire_latency_ns + cfg.dispatch_overhead_ns,
                handler_cost_ns,
                handler,
            )

        self.links[src].serve(cfg.transfer_ns(size)).add_callback(on_wire_done)

    def dispatch(
        self,
        dst: int,
        delay_ns: int,
        handler_cost_ns: int,
        handler: Callable[[], None],
    ) -> None:
        """The single entry point into a destination node: after
        ``delay_ns`` (remaining transport + dispatch overhead), run the
        handler on ``dst``'s protocol CPU.  Loopback sends, perfect-wire
        arrivals and reliable-transport deliveries all land here.
        """
        self.engine.call_after(
            delay_ns, self.nodes[dst].run_handler, handler_cost_ns, handler
        )

    def broadcast(
        self,
        src: int,
        kind: MsgKind,
        make_handler: Callable[[int], Callable[[], None]],
        handler_cost_ns: int,
        payload_bytes: int = 0,
        include_self: bool = False,
    ) -> int:
        """Send to every other node (optionally self); returns count sent."""
        sent = 0
        for dst in range(self.config.n_nodes):
            if dst == src and not include_self:
                continue
            self.send(src, dst, kind, make_handler(dst), handler_cost_ns, payload_bytes)
            sent += 1
        return sent
