"""Fine-grain access control: per-node, per-block access tags.

Tempest's defining feature is that every shared-memory access is checked
against a per-block tag (``Invalid`` / ``ReadOnly`` / ``ReadWrite``); an
access that the tag does not permit traps to a user-level handler.  The
simulation keeps one dense ``uint8`` tag vector per node — O(1) lookup and
cheap bulk updates for the compiler-control primitives that flip whole
ranges at once (``implicit_writable``, ``implicit_invalidate``).
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AccessTag", "AccessControl"]


class AccessTag(enum.IntEnum):
    INVALID = 0
    READONLY = 1
    READWRITE = 2


class AccessControl:
    """Tag tables for all nodes over the whole shared segment.

    Besides the tag itself, each (node, block) slot carries an *implicit*
    bit: set when the current tag was granted by a compiler-control
    primitive (``implicit_writable``) behind the directory's back, clear
    when the tag reflects a directory transaction.  The coherence auditor
    uses it to tell protocol-owned copies (which must match the directory
    and be version-current) from compiler-controlled ones (whose safety the
    contract checker enforces instead).
    """

    def __init__(self, n_nodes: int, n_blocks: int) -> None:
        if n_nodes < 1 or n_blocks < 0:
            raise ValueError("bad access-control dimensions")
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        self._tags = np.zeros((n_nodes, n_blocks), dtype=np.uint8)
        self._implicit = np.zeros((n_nodes, n_blocks), dtype=bool)

    # ------------------------------------------------------------------ #
    def get(self, node: int, block: int) -> AccessTag:
        return AccessTag(int(self._tags[node, block]))

    def set(
        self, node: int, block: int, tag: AccessTag, implicit: bool = False
    ) -> None:
        self._tags[node, block] = int(tag)
        self._implicit[node, block] = implicit and tag is not AccessTag.INVALID

    def set_range(
        self,
        node: int,
        blocks: Sequence[int] | range,
        tag: AccessTag,
        implicit: bool = False,
    ) -> None:
        """Bulk tag update; `blocks` may be a range or an index list."""
        flag = implicit and tag is not AccessTag.INVALID
        if isinstance(blocks, range):
            sl = slice(blocks.start, blocks.stop, blocks.step)
            self._tags[node, sl] = int(tag)
            self._implicit[node, sl] = flag
        else:
            idx = np.asarray(blocks, dtype=np.intp)
            if idx.size:
                self._tags[node, idx] = int(tag)
                self._implicit[node, idx] = flag

    def is_implicit(self, node: int, block: int) -> bool:
        """True when the node's tag came from compiler control."""
        return bool(self._implicit[node, block])

    def readable(self, node: int, block: int) -> bool:
        return self._tags[node, block] >= AccessTag.READONLY

    def writable(self, node: int, block: int) -> bool:
        return self._tags[node, block] == AccessTag.READWRITE

    def holders(self, block: int, at_least: AccessTag = AccessTag.READONLY) -> list[int]:
        """Nodes whose tag for ``block`` is at least ``at_least``."""
        return np.flatnonzero(self._tags[:, block] >= int(at_least)).tolist()

    def count_with_tag(self, node: int, tag: AccessTag) -> int:
        return int(np.count_nonzero(self._tags[node] == int(tag)))

    def snapshot(self, block: int) -> tuple[AccessTag, ...]:
        """All nodes' tags for one block — handy in tests and traces."""
        return tuple(AccessTag(int(t)) for t in self._tags[:, block])

    def nonreadable_subset(self, node: int, blocks: Iterable[int]) -> list[int]:
        """Blocks from ``blocks`` this node cannot currently read."""
        idx = np.fromiter(blocks, dtype=np.intp)
        if idx.size == 0:
            return []
        mask = self._tags[node, idx] < int(AccessTag.READONLY)
        return idx[mask].tolist()
