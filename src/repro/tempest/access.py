"""Fine-grain access control: per-node, per-block access tags.

Tempest's defining feature is that every shared-memory access is checked
against a per-block tag (``Invalid`` / ``ReadOnly`` / ``ReadWrite``); an
access that the tag does not permit traps to a user-level handler.  The
simulation keeps one dense ``uint8`` tag vector per node — O(1) lookup and
cheap bulk updates for the compiler-control primitives that flip whole
ranges at once (``implicit_writable``, ``implicit_invalidate``).

Storage layout: the tag table is one flat ``bytearray`` with a writable
2-D NumPy view (``_tags``) on top.  Bulk operations (range flips, fancy
indexing, snapshot/restore) go through the view at full NumPy speed; the
per-access hot path (``readable``/``writable``/``set`` on a single block)
indexes the bytearray directly, which costs ~5× less than a NumPy scalar
access plus enum boxing.  Both aliases address the same bytes, so either
side always observes the other's writes.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AccessTag", "AccessControl"]


class AccessTag(enum.IntEnum):
    INVALID = 0
    READONLY = 1
    READWRITE = 2


#: Module-level int constants for hot-path comparisons (no enum boxing).
_INVALID = int(AccessTag.INVALID)
_READONLY = int(AccessTag.READONLY)
_READWRITE = int(AccessTag.READWRITE)


class AccessControl:
    """Tag tables for all nodes over the whole shared segment.

    Besides the tag itself, each (node, block) slot carries an *implicit*
    bit: set when the current tag was granted by a compiler-control
    primitive (``implicit_writable``) behind the directory's back, clear
    when the tag reflects a directory transaction.  The coherence auditor
    uses it to tell protocol-owned copies (which must match the directory
    and be version-current) from compiler-controlled ones (whose safety the
    contract checker enforces instead).
    """

    __slots__ = ("n_nodes", "n_blocks", "_tag_buf", "_imp_buf",
                 "_tags", "_implicit", "rows")

    def __init__(self, n_nodes: int, n_blocks: int) -> None:
        if n_nodes < 1 or n_blocks < 0:
            raise ValueError("bad access-control dimensions")
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        # Flat byte storage + 2-D views; see the module docstring.
        self._tag_buf = bytearray(n_nodes * n_blocks)
        self._imp_buf = bytearray(n_nodes * n_blocks)
        self._tags = np.frombuffer(self._tag_buf, dtype=np.uint8).reshape(
            n_nodes, n_blocks
        )
        self._implicit = np.frombuffer(self._imp_buf, dtype=np.bool_).reshape(
            n_nodes, n_blocks
        )
        #: per-node row views, precomputed so hot bulk paths skip the
        #: 2-D __getitem__ allocation on every call
        self.rows = [self._tags[n] for n in range(n_nodes)]

    # ------------------------------------------------------------------ #
    def get(self, node: int, block: int) -> AccessTag:
        return AccessTag(self._tag_buf[node * self.n_blocks + block])

    def tag_int(self, node: int, block: int) -> int:
        """The raw tag byte — the allocation-free hot-path query."""
        return self._tag_buf[node * self.n_blocks + block]

    def set(
        self, node: int, block: int, tag: AccessTag, implicit: bool = False
    ) -> None:
        i = node * self.n_blocks + block
        self._tag_buf[i] = tag
        self._imp_buf[i] = 1 if (implicit and tag != _INVALID) else 0

    def set_range(
        self,
        node: int,
        blocks: Sequence[int] | range,
        tag: AccessTag,
        implicit: bool = False,
    ) -> None:
        """Bulk tag update; `blocks` may be a range or an index list."""
        flag = implicit and tag is not AccessTag.INVALID
        if isinstance(blocks, range):
            sl = slice(blocks.start, blocks.stop, blocks.step)
            row = self.rows[node]
            row[sl] = int(tag)
            self._implicit[node, sl] = flag
        else:
            idx = np.asarray(blocks, dtype=np.intp)
            if idx.size:
                self.rows[node][idx] = int(tag)
                self._implicit[node, idx] = flag

    def is_implicit(self, node: int, block: int) -> bool:
        """True when the node's tag came from compiler control."""
        return bool(self._imp_buf[node * self.n_blocks + block])

    def readable(self, node: int, block: int) -> bool:
        return self._tag_buf[node * self.n_blocks + block] >= _READONLY

    def writable(self, node: int, block: int) -> bool:
        return self._tag_buf[node * self.n_blocks + block] == _READWRITE

    def holders(self, block: int, at_least: AccessTag = AccessTag.READONLY) -> list[int]:
        """Nodes whose tag for ``block`` is at least ``at_least``."""
        return np.flatnonzero(self._tags[:, block] >= int(at_least)).tolist()

    def count_with_tag(self, node: int, tag: AccessTag) -> int:
        return int(np.count_nonzero(self._tags[node] == int(tag)))

    def snapshot(self, block: int) -> tuple[AccessTag, ...]:
        """All nodes' tags for one block — handy in tests and traces."""
        return tuple(AccessTag(int(t)) for t in self._tags[:, block])

    def nonreadable_subset(self, node: int, blocks: Iterable[int]) -> list[int]:
        """Blocks from ``blocks`` this node cannot currently read."""
        idx = np.fromiter(blocks, dtype=np.intp)
        if idx.size == 0:
            return []
        mask = self.rows[node][idx] < _READONLY
        return idx[mask].tolist()
