"""Miss, message and time accounting.

The paper's evaluation (Table 3, Figures 3-4) is entirely in terms of

* per-node **miss counts** (read misses + write faults handled by the
  default protocol),
* **communication time** — "time spent waiting for servicing misses and for
  synchronization", plus, in the optimized versions, "time spent in various
  protocol calls", and
* **compute time**.

``NodeStats`` tracks exactly those categories; ``ClusterStats`` aggregates.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["MsgKind", "NodeStats", "PortStats", "ClusterStats"]


class MsgKind(enum.Enum):
    # Members are singletons, so identity hashing is sound — and it skips
    # ``Enum.__hash__``'s name lookup on every Counter update (the message
    # counters are bumped once per simulated message).
    __hash__ = object.__hash__

    READ_REQ = "read_req"
    READ_RESP = "read_resp"
    PUT_REQ = "put_req"            # home asks exclusive owner for the data
    PUT_RESP = "put_resp"
    WRITE_REQ = "write_req"
    INV = "inv"
    ACK = "ack"
    GRANT = "grant"
    DATA = "data"                  # compiler-pushed block payload
    FLUSH = "flush"                # non-owner-write data returned to owner
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    REDUCE = "reduce"
    REDUCE_RESULT = "reduce_result"
    MP_DATA = "mp_data"            # message-passing backend payload
    SELF_INV = "self_inv"          # advisory self-invalidate notice to home
    UPDATE = "update"              # write-update protocol: new data to sharers
    UPDATE_ACK = "update_ack"
    COMBINED = "combined"          # several control frames in one message


#: Messages that belong to the default coherence protocol (Figure 1a).
COHERENCE_KINDS = frozenset(
    {
        MsgKind.READ_REQ,
        MsgKind.READ_RESP,
        MsgKind.PUT_REQ,
        MsgKind.PUT_RESP,
        MsgKind.WRITE_REQ,
        MsgKind.INV,
        MsgKind.ACK,
        MsgKind.GRANT,
        MsgKind.UPDATE,
        MsgKind.UPDATE_ACK,
    }
)


@dataclass
class NodeStats:
    """Counters for one node.  All times in nanoseconds."""

    node: int
    read_misses: int = 0
    write_faults: int = 0
    remote_read_misses: int = 0   # subset of read_misses needing the network
    prefetches: int = 0           # advisory co-operative prefetches issued
    prefetch_waits: int = 0       # demand reads that overlapped a prefetch
    messages: Counter = field(default_factory=Counter)   # MsgKind -> count
    bytes_sent: int = 0
    compute_ns: int = 0
    stall_ns: int = 0      # blocked on read misses / pending-write drain
    barrier_ns: int = 0    # waiting at barriers
    call_ns: int = 0       # executing compiler-control runtime calls
    reduce_ns: int = 0     # collective reductions

    # --- reliable-transport accounting (fault injection only) --------- #
    # All zero on a perfect wire.  Drops are charged to the node whose
    # frame (or ack) was lost; dups count duplicate deliveries suppressed
    # by the receiver's dedup; retransmits/backoffs are sender-side.
    net_drops: int = 0
    net_dups: int = 0
    net_retransmits: int = 0
    net_backoffs: int = 0
    # Retransmits fired while a copy of the frame (or its ack) was still
    # en route — i.e. the timer was simply too short.  The simulator is
    # omniscient, so this is ground truth, not a heuristic.
    net_spurious_retransmits: int = 0
    # Channels from this node that exhausted max_retries and parked their
    # unacked frames instead of aborting the run (one count per give-up
    # event, not per parked frame).
    net_gave_up: int = 0

    # --- message-combining accounting (CombineConfig only) ------------- #
    # msgs_combined counts, per original kind, the control messages that
    # travelled inside a combined frame instead of alone; combine_flushes
    # counts the combined frames this node put on the wire.
    msgs_combined: Counter = field(default_factory=Counter)
    combine_flushes: int = 0

    # --- shared-switch accounting (SwitchConfig only) ------------------ #
    # All zero on the link-only model.  switch_frames counts this node's
    # frames routed through the switch fabric; switch_wait_ns is the
    # contention delay those frames accumulated queueing for their output
    # port (zero when the port was idle on arrival).
    switch_frames: int = 0
    switch_wait_ns: int = 0

    def count_message(self, kind: MsgKind, size_bytes: int) -> None:
        self.messages[kind] += 1
        self.bytes_sent += size_bytes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_faults

    @property
    def comm_ns(self) -> int:
        """The paper's 'communication time' for this node."""
        return self.stall_ns + self.barrier_ns + self.call_ns + self.reduce_ns

    @property
    def coherence_messages(self) -> int:
        return sum(n for k, n in self.messages.items() if k in COHERENCE_KINDS)


@dataclass
class PortStats:
    """Counters for one switch output port (SwitchConfig only).

    ``wait_ns`` is the contention delay accumulated by frames queueing for
    this port; ``max_depth`` is the deepest the port's queue ever got
    (frames accepted but not yet forwarded, including the one in service).
    """

    port: int
    frames: int = 0
    busy_ns: int = 0
    wait_ns: int = 0
    max_depth: int = 0


@dataclass
class ClusterStats:
    """Aggregate view over all nodes plus the run's wall-clock."""

    nodes: list[NodeStats]
    elapsed_ns: int = 0
    #: engine events dispatched by the run (simulator wall-clock proxy)
    events_dispatched: int = 0
    #: high-water mark of the engine's pending-event heap — a cheap storm
    #: detector (retransmit storms, broadcast bursts) without a trace
    max_queue_depth: int = 0
    #: per-port switch counters; empty unless the switch model is enabled
    ports: list[PortStats] = field(default_factory=list)
    #: False when the run finished *degraded*: at least one channel gave up
    #: and never healed, so some programs did not run to completion.  The
    #: counters above then cover the work done up to the give-up point.
    completed: bool = True
    #: one record per channel give-up:
    #: {"t_ns", "src", "dst", "parked", "scenario", "healed"} — "scenario"
    #: is the PartitionScenario name (None for organic loss), "healed" is
    #: filled in when the channel later drains its parked frames.
    partition_events: list[dict] = field(default_factory=list)
    #: failure report for a degraded run (None when completed): stuck
    #: programs, partitioned channels, parked-frame counts, unreachable
    #: nodes, residual coherence violations on the surviving nodes.
    failure: dict | None = None

    # --- fail-stop / rollback-recovery accounting (CrashScenario only) - #
    #: barrier-consistent snapshots written (re-executed barriers after a
    #: rollback re-checkpoint, so this can exceed barriers/K)
    recovery_checkpoints: int = 0
    #: modeled bytes captured across all checkpoint writes
    recovery_checkpoint_bytes: int = 0
    #: rollbacks performed (one per recovered crash)
    recovery_rollbacks: int = 0
    #: simulated time lost to outages: crash instant -> restart instant,
    #: summed over recovered crashes (re-execution time is visible in the
    #: profiler's ``recovery`` bucket instead)
    recovery_ns: int = 0
    #: one record per CrashScenario that fired:
    #: {"node", "t_ns", "detected_t_ns", "restart_t_ns", "recovered"} —
    #: detection/restart stay None for an undetected or never-restarting
    #: crash, "recovered" flips True when the rollback completed.
    crash_events: list[dict] = field(default_factory=list)

    @classmethod
    def for_nodes(cls, n: int) -> "ClusterStats":
        return cls(nodes=[NodeStats(i) for i in range(n)])

    def __getitem__(self, node: int) -> NodeStats:
        return self.nodes[node]

    # -------------------------- aggregates ---------------------------- #
    @property
    def total_misses(self) -> int:
        return sum(s.misses for s in self.nodes)

    @property
    def avg_misses_per_node(self) -> float:
        return self.total_misses / len(self.nodes)

    @property
    def total_messages(self) -> int:
        return sum(sum(s.messages.values()) for s in self.nodes)

    def messages_by_kind(self) -> Counter:
        total: Counter = Counter()
        for s in self.nodes:
            total.update(s.messages)
        return total

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.nodes)

    @property
    def avg_compute_ns(self) -> float:
        return sum(s.compute_ns for s in self.nodes) / len(self.nodes)

    @property
    def avg_comm_ns(self) -> float:
        return sum(s.comm_ns for s in self.nodes) / len(self.nodes)

    @property
    def max_comm_ns(self) -> int:
        return max(s.comm_ns for s in self.nodes)

    # --------------------- reliability aggregates --------------------- #
    @property
    def total_drops(self) -> int:
        return sum(s.net_drops for s in self.nodes)

    @property
    def total_dups(self) -> int:
        return sum(s.net_dups for s in self.nodes)

    @property
    def total_retransmits(self) -> int:
        return sum(s.net_retransmits for s in self.nodes)

    @property
    def total_backoffs(self) -> int:
        return sum(s.net_backoffs for s in self.nodes)

    @property
    def total_spurious_retransmits(self) -> int:
        return sum(s.net_spurious_retransmits for s in self.nodes)

    @property
    def total_gave_up(self) -> int:
        return sum(s.net_gave_up for s in self.nodes)

    def reliability_summary(self) -> dict:
        """The reliable-transport counters as a flat dict."""
        return {
            "drops": self.total_drops,
            "dups": self.total_dups,
            "retransmits": self.total_retransmits,
            "backoffs": self.total_backoffs,
            "spurious_retransmits": self.total_spurious_retransmits,
            "gave_up": self.total_gave_up,
        }

    # --------------------- combining aggregates ----------------------- #
    @property
    def total_msgs_combined(self) -> int:
        return sum(sum(s.msgs_combined.values()) for s in self.nodes)

    @property
    def total_combine_flushes(self) -> int:
        return sum(s.combine_flushes for s in self.nodes)

    def msgs_combined_by_kind(self) -> Counter:
        total: Counter = Counter()
        for s in self.nodes:
            total.update(s.msgs_combined)
        return total

    def combining_summary(self) -> dict:
        """Message-combining counters as a flat dict (zero when disabled)."""
        return {
            "msgs_combined": self.total_msgs_combined,
            "combine_flushes": self.total_combine_flushes,
        }

    # ----------------------- switch aggregates ------------------------ #
    @property
    def total_switch_frames(self) -> int:
        return sum(s.switch_frames for s in self.nodes)

    @property
    def total_switch_wait_ns(self) -> int:
        return sum(s.switch_wait_ns for s in self.nodes)

    @property
    def max_port_depth(self) -> int:
        return max((p.max_depth for p in self.ports), default=0)

    def switch_summary(self) -> dict:
        """Shared-switch contention counters (all zero when disabled)."""
        return {
            "switch_frames": self.total_switch_frames,
            "switch_wait_ms": self.total_switch_wait_ns / 1e6,
            "max_port_depth": self.max_port_depth,
        }

    # ----------------------- recovery aggregates ----------------------- #
    def recovery_summary(self) -> dict:
        """Crash/checkpoint/rollback counters (all zero without crashes)."""
        return {
            "crashes": len(self.crash_events),
            "checkpoints": self.recovery_checkpoints,
            "checkpoint_mbytes": self.recovery_checkpoint_bytes / 1e6,
            "rollbacks": self.recovery_rollbacks,
            "recovery_ms": self.recovery_ns / 1e6,
        }

    # ----------------------- engine aggregates ------------------------ #
    @property
    def events_per_ms(self) -> float:
        """Engine events dispatched per simulated millisecond."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.events_dispatched / (self.elapsed_ns / 1e6)

    def engine_summary(self) -> dict:
        """Event-loop rate counters (degenerate event storms show up as
        outliers here long before anyone opens a trace)."""
        return {
            "events_k": self.events_dispatched / 1e3,
            "events_per_ms": self.events_per_ms,
            "max_queue_depth": self.max_queue_depth,
        }

    def summary(self) -> dict:
        """Flat dict for harness tables."""
        out = {
            "elapsed_ms": self.elapsed_ns / 1e6,
            "compute_ms": self.avg_compute_ns / 1e6,
            "comm_ms": self.avg_comm_ns / 1e6,
            "misses": self.total_misses,
            "misses_per_node_k": self.avg_misses_per_node / 1e3,
            "messages": self.total_messages,
            "mbytes": self.total_bytes / 1e6,
        }
        # Only surfaced when the run actually exercised the reliable
        # transport (or the combining layer), keeping default tables
        # identical to the seed's.
        rel = self.reliability_summary()
        if any(rel.values()):
            out.update(rel)
        comb = self.combining_summary()
        if any(comb.values()):
            out.update(comb)
        sw = self.switch_summary()
        if any(sw.values()):
            out.update(sw)
        # Synthetic stats objects (unit tests, hand-built tables) never ran
        # an engine; skip the rate keys so their summaries stay minimal.
        if self.events_dispatched:
            out.update(self.engine_summary())
        # Degraded runs / partition give-ups surface only when they happen,
        # keeping healthy tables identical to the seed's.
        if self.partition_events:
            out["partition_events"] = len(self.partition_events)
        if self.crash_events or self.recovery_checkpoints:
            out.update(self.recovery_summary())
        if not self.completed:
            out["completed"] = False
        return out
