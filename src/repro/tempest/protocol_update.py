"""A write-update protocol variant.

The paper's Section 3 notes that "general update-based protocols have
analogous problems" to invalidation protocols; Tempest's whole premise is
that the protocol is user-level code, so this module provides the obvious
alternative default for comparison (``bench_ablation_protocol``).

Semantics
---------
* Blocks are only ever ``IDLE`` (home copy only) or ``SHARED`` (the home
  plus cached copies); there is no exclusive state.
* A read miss fetches from the home — which is *always current* — and
  registers the reader as a sharer.
* A write first acquires a local copy if needed (a write-allocate fetch,
  counted as a write fault), then pushes an UPDATE message carrying the
  block to every other sharer and to the home.  Updates are eager: the
  writer collects UPDATE_ACKs at the next release point, not inline.

The well-known trade: producer→consumer data moves in a single data-bearing
message (what the paper's compiler achieves *selectively*), but every write
to ever-shared data updates all historical sharers whether or not they will
read again — the "useless update" pathology that made invalidation the
default everywhere.  Self-invalidate (``repro.tempest.extensions``) is the
classic mitigation.

Compiler-control extensions assume invalidation semantics (exclusive
ownership); the executor refuses ``optimize=True`` under this protocol.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.tempest.access import AccessTag
from repro.tempest.protocol import DefaultProtocol
from repro.tempest.stats import MsgKind

__all__ = ["UpdateProtocol"]


class UpdateProtocol(DefaultProtocol):
    """Write-update, release-consistent protocol over the same directory."""

    # The read path is inherited: without exclusive states, `_home_read`
    # only ever takes its Idle/Shared branch, where the home is current.

    def write_block(self, node_id: int, block: int, count_fault: bool = True):
        raise NotImplementedError(
            "the update protocol has no ownership transactions; "
            "compiler extensions require the invalidate protocol"
        )

    def write_phase(self, node_id: int, blocks, phase: int) -> Generator[Any, Any, None]:
        cfg = self.config
        node = self.nodes[node_id]
        d = self.directory
        d.record_write(node_id, blocks, phase)

        obs = self.obs
        tags = self.access.rows[node_id][blocks]
        missing = blocks[tags < int(AccessTag.READONLY)]
        for b in missing.tolist():
            # Write-allocate: fetch the current copy (blocking), counted as
            # a write fault rather than a read miss.
            if not self.access.readable(node_id, b):
                node.stats.write_faults += 1
                t0 = self.engine.now
                yield cfg.fault_detect_ns
                yield from self.read_block(node_id, b, count_stats=False)
                if obs is not None:
                    obs.emit(
                        "miss.write", t0, self.engine.now - t0,
                        node=node_id, block=b, home=d.home_of(b),
                    )
            self.access.set(node_id, b, AccessTag.READWRITE)
        held = blocks[tags >= int(AccessTag.READONLY)]
        if held.size:
            self.access.set_range(node_id, held, AccessTag.READWRITE)

        # Push the new data to every other holder; the home always gets a
        # copy so cold readers fetch current data from it.
        for b in blocks.tolist():
            home = d.home_of(b)
            targets = set(d.sharers_of(b))
            targets.add(home)
            targets.discard(node_id)
            # The writer is a holder the directory must track, so a later
            # writer's updates reach it.
            d.add_sharer(b, node_id)
            if not targets:
                continue  # private data: free, like a local cache hit
            ack = self.engine.future(f"upd.b{b}.n{node_id}")
            remaining = [len(targets)]
            node.post_pending(ack)

            def on_ack(_remaining=remaining, _ack=ack) -> None:
                _remaining[0] -= 1
                if _remaining[0] == 0:
                    _ack.resolve(None)

            def make_handler(dst: int, blk: int, ack_cb=on_ack):
                def on_update() -> None:
                    # Install the new data (a dropped copy still acks; the
                    # next read simply refetches).
                    if self.access.get(dst, blk) is not AccessTag.INVALID:
                        d.deliver_copy_one(dst, blk)
                    self.network.send(
                        dst,
                        node_id,
                        MsgKind.UPDATE_ACK,
                        ack_cb,
                        self.config.handler_ack_ns,
                        combinable=True,
                    )

                return on_update

            yield node.compute_cpu.use(cfg.send_overhead_ns)
            for dst in sorted(targets):
                self.network.send(
                    node_id,
                    dst,
                    MsgKind.UPDATE,
                    make_handler(dst, b),
                    cfg.handler_response_ns,
                    payload_bytes=cfg.block_size,
                )