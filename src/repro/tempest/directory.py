"""Home-node directory state, one entry per block.

A block's directory entry lives at its *home* node and records which nodes
hold copies:

``IDLE``       only the home's own memory holds the data
``SHARED``     one or more read-only copies exist (sharer bitmask)
``EXCLUSIVE``  exactly one node holds a writable copy (the data at the home
               may be stale)

The directory also carries the *version* machinery used to validate
coherence: ``global_version[b]`` is the logical timestamp (phase number) of
the last write to block ``b``, and ``copy_version[n, b]`` is the timestamp
of the data node ``n`` last received.  A read of a block whose copy version
lags the global version is a **stale read** — the invariant the compiler /
protocol contract must never break.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["DirState", "Directory", "StaleReadError"]


class StaleReadError(AssertionError):
    """A node observed an out-of-date copy — a protocol/contract bug."""


class DirState(enum.IntEnum):
    IDLE = 0
    SHARED = 1
    EXCLUSIVE = 2


#: Module-level int constants for hot-path comparisons (no enum boxing).
_IDLE = int(DirState.IDLE)
_SHARED = int(DirState.SHARED)
_EXCLUSIVE = int(DirState.EXCLUSIVE)


class Directory:
    """Dense directory + version tracker for the whole segment.

    Storage: the protocol-scalar fields (``state``/``owner``/``sharers``)
    are plain Python containers — a ``bytearray`` and two lists — because
    protocol handlers touch them one block at a time, where NumPy scalar
    indexing plus integer boxing costs several times a native list access.
    The version vectors stay NumPy: every consumer (bulk validation,
    ``record_write``, the auditor) operates on whole index arrays.
    """

    def __init__(self, n_nodes: int, n_blocks: int, homes: Sequence[int]) -> None:
        if len(homes) != n_blocks:
            raise ValueError("homes must give one home per block")
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        self.home = np.asarray(homes, dtype=np.int32)
        #: per-block home as a Python list (home_of is a hot O(1) lookup)
        self._home = [int(h) for h in homes]
        self.state = bytearray(n_blocks)
        self.owner: list[int] = [-1] * n_blocks
        self.sharers: list[int] = [0] * n_blocks  # bitmask per block
        self.global_version = np.zeros(n_blocks, dtype=np.int64)
        # Version each block held before the current phase's write bumped it
        # (used to tolerate legal same-phase read/write overlap in
        # INDEPENDENT loops — the reader may see the pre-phase value).
        self.prev_version = np.zeros(n_blocks, dtype=np.int64)
        self.copy_version = np.zeros((n_nodes, n_blocks), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    def state_of(self, block: int) -> DirState:
        return DirState(self.state[block])

    def owner_of(self, block: int) -> int:
        return int(self.owner[block])

    def home_of(self, block: int) -> int:
        return self._home[block]

    def sharers_of(self, block: int) -> list[int]:
        mask = int(self.sharers[block])
        return [n for n in range(self.n_nodes) if mask >> n & 1]

    # ------------------------------------------------------------------ #
    # state transitions (called by protocol handlers)
    # ------------------------------------------------------------------ #
    def add_sharer(self, block: int, node: int) -> None:
        self.sharers[block] = int(self.sharers[block]) | (1 << node)
        self.state[block] = _SHARED
        self.owner[block] = -1

    def set_exclusive(self, block: int, node: int) -> None:
        self.state[block] = _EXCLUSIVE
        self.owner[block] = node
        self.sharers[block] = 0

    def set_idle(self, block: int) -> None:
        self.state[block] = _IDLE
        self.owner[block] = -1
        self.sharers[block] = 0

    def clear_sharer(self, block: int, node: int) -> None:
        mask = int(self.sharers[block]) & ~(1 << node)
        self.sharers[block] = mask
        if mask == 0 and self.state[block] == _SHARED:
            self.state[block] = _IDLE

    # ------------------------------------------------------------------ #
    # versions
    # ------------------------------------------------------------------ #
    def record_write(self, node: int, blocks: Iterable[int] | range, phase: int) -> None:
        """Mark ``blocks`` as written by ``node`` at logical time ``phase``.

        The writer's own copy becomes current.
        """
        idx = _as_index(blocks)
        if idx is None:
            return
        bumped = self.global_version[idx] < phase
        bump_idx = idx[bumped]
        self.prev_version[bump_idx] = self.global_version[bump_idx]
        self.global_version[bump_idx] = phase
        self.copy_version[node][idx] = self.global_version[idx]

    def deliver_copy(self, node: int, blocks: Iterable[int] | range) -> None:
        """Node received the current data for ``blocks``."""
        idx = _as_index(blocks)
        if idx is None:
            return
        self.copy_version[node][idx] = self.global_version[idx]

    def deliver_copy_one(self, node: int, block: int) -> None:
        """Single-block :meth:`deliver_copy` without index-array overhead.

        Protocol handlers deliver one block per message; building an
        ``np.arange`` for every message dominates the cost of the update
        itself.
        """
        self.copy_version[node, block] = self.global_version[block]

    def copy_is_current(self, node: int, block: int) -> bool:
        return self.copy_version[node, block] >= self.global_version[block]

    def validate_read(
        self, node: int, block: int, context: str = "", phase: int | None = None
    ) -> None:
        """Raise :class:`StaleReadError` if ``node`` would read stale data.

        ``phase`` is the reader's current phase: a block written in the
        *same* phase is legal to read at its pre-phase version (INDEPENDENT
        loop semantics — readers see the old value).
        """
        c = self.copy_version[node, block]
        g = self.global_version[block]
        if c >= g:
            return
        if phase is not None and g == phase and c >= self.prev_version[block]:
            return
        raise StaleReadError(
            f"node {node} read block {block} at copy version {int(c)} < "
            f"global {int(g)}" + (f" ({context})" if context else "")
        )

    def validate_reads_bulk(
        self,
        node: int,
        blocks: Iterable[int],
        context: str = "",
        phase: int | None = None,
    ) -> None:
        idx = _as_index(blocks)
        if idx is None:
            return
        c = self.copy_version[node][idx]
        g = self.global_version[idx]
        ok = c >= g
        if phase is not None:
            ok |= (g == phase) & (c >= self.prev_version[idx])
        if not ok.all():
            bad = idx[~ok][:5].tolist()
            raise StaleReadError(
                f"node {node} stale read of blocks {bad}..." + (f" ({context})" if context else "")
            )


def _as_index(blocks: Iterable[int] | range) -> np.ndarray | None:
    if isinstance(blocks, np.ndarray):
        return blocks.astype(np.intp, copy=False) if blocks.size else None
    if isinstance(blocks, range):
        if len(blocks) == 0:
            return None
        return np.arange(blocks.start, blocks.stop, blocks.step, dtype=np.intp)
    idx = np.fromiter(blocks, dtype=np.intp)
    return idx if idx.size else None
