"""Message tracing: record and render protocol traffic.

Debugging a coherence protocol is archaeology over message interleavings;
this module makes the dig pleasant.  A :class:`MessageTracer` hooks a
cluster's network (explicitly, before the run) and records every message
with its timestamp, endpoints, kind and size.  Afterwards it renders

* a textual **message-sequence chart** (one column per node, time flowing
  down) — the format protocol papers draw by hand, and
* per-kind / per-link **summaries** for traffic analysis.

Example::

    cl = Cluster(cfg, mem)
    tracer = MessageTracer(cl, kinds={MsgKind.READ_REQ, MsgKind.READ_RESP})
    cl.run(programs)
    print(tracer.sequence_chart())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.tempest.cluster import Cluster
from repro.tempest.stats import MsgKind

__all__ = ["MessageRecord", "MessageTracer"]


@dataclass(frozen=True)
class MessageRecord:
    """One message send event."""

    t_ns: int
    src: int
    dst: int
    kind: MsgKind
    size_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.t_ns / 1000:10.1f}us  n{self.src} -> n{self.dst}  "
            f"{self.kind.value} ({self.size_bytes}B)"
        )


class MessageTracer:
    """Records a cluster's message traffic (install before running)."""

    def __init__(
        self,
        cluster: Cluster,
        kinds: Iterable[MsgKind] | None = None,
        max_records: int = 100_000,
    ) -> None:
        self.cluster = cluster
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.max_records = max_records
        self.records: list[MessageRecord] = []
        self.dropped = 0
        self._original_send = cluster.network.send
        cluster.network.send = self._traced_send  # type: ignore[method-assign]

    # ------------------------------------------------------------------ #
    def _traced_send(
        self, src, dst, kind, handler, handler_cost_ns, payload_bytes=0,
        combinable=False,
    ):
        if self.kinds is None or kind in self.kinds:
            if len(self.records) < self.max_records:
                self.records.append(
                    MessageRecord(
                        self.cluster.engine.now, src, dst, kind, 16 + payload_bytes
                    )
                )
            else:
                self.dropped += 1
        return self._original_send(
            src, dst, kind, handler, handler_cost_ns, payload_bytes,
            combinable=combinable,
        )

    def uninstall(self) -> None:
        """Restore the network's original send."""
        self.cluster.network.send = self._original_send  # type: ignore[method-assign]

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def by_kind(self) -> Counter:
        return Counter(r.kind for r in self.records)

    def by_link(self) -> Counter:
        return Counter((r.src, r.dst) for r in self.records)

    def bytes_total(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def between(self, t0_ns: int, t1_ns: int) -> list[MessageRecord]:
        return [r for r in self.records if t0_ns <= r.t_ns < t1_ns]

    def involving(self, node: int) -> list[MessageRecord]:
        return [r for r in self.records if node in (r.src, r.dst)]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def sequence_chart(self, max_rows: int = 60, col_width: int = 14) -> str:
        """Render a text message-sequence chart (columns = nodes).

        Each row is one send: the message label sits in the source node's
        column with an arrow toward the destination.
        """
        n = self.cluster.n_nodes
        header = "time (us)".ljust(12) + "".join(
            f"n{i}".center(col_width) for i in range(n)
        )
        lines = [header, "-" * len(header)]
        for r in self.records[:max_rows]:
            cells = [" " * col_width] * n
            label = r.kind.value[: col_width - 2]
            if r.src == r.dst:
                cells[r.src] = f"({label})".center(col_width)
            else:
                arrow = ">" if r.dst > r.src else "<"
                cells[r.src] = f"{label}{arrow}".rjust(col_width) if r.dst > r.src else f"{arrow}{label}".ljust(col_width)
                lo, hi = sorted((r.src, r.dst))
                for mid in range(lo + 1, hi):
                    cells[mid] = ("-" * (col_width - 2)).center(col_width)
            lines.append(f"{r.t_ns / 1000:<12.1f}" + "".join(cells))
        if len(self.records) > max_rows:
            lines.append(f"... {len(self.records) - max_rows} more messages")
        if self.dropped:
            lines.append(f"... {self.dropped} messages dropped (max_records)")
        return "\n".join(lines)

    def summary(self) -> str:
        kinds = ", ".join(f"{k.value}:{c}" for k, c in self.by_kind().most_common())
        return (
            f"{len(self.records)} messages, {self.bytes_total()} bytes "
            f"[{kinds}]"
        )
